/**
 * @file
 * Shard coordinator tests: the acceptance matrix runs 36 jobs across
 * 4 shard runners under seeded chaos -- a SIGKILL'd shard, a stalled
 * shard whose work is stolen, and a zombie whose late result must be
 * fenced by the ownership epoch -- and still produces results and a
 * journal byte-identical (one entry per job, no losses, no
 * duplicates) to an unfaulted in-process sweep, for several seeds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "isa/program_builder.hh"
#include "sim/coordinator.hh"
#include "sim/journal.hh"
#include "sim/report_json.hh"
#include "sim/sweep.hh"

namespace cawa
{
namespace
{

Program
trivialProgram()
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(2, 1, 2);
    b.movImm(3, 7);
    b.stGlobal(2, 3, 0x1000);
    b.exit();
    return b.build();
}

SweepJob
matrixJob(const std::string &name, int gridDim, int blockDim)
{
    SweepJob job;
    job.name = name;
    job.cfg = GpuConfig::fermiGtx480();
    job.cfg.numSms = 1;
    job.build = [gridDim, blockDim](MemoryImage &) {
        KernelInfo k;
        k.name = "t";
        k.program = trivialProgram();
        k.gridDim = gridDim;
        k.blockDim = blockDim;
        return k;
    };
    return job;
}

std::string
tempPath(const std::string &file)
{
    return ::testing::TempDir() + file;
}

std::string
reportBytes(const SimReport &report)
{
    JsonWriteOptions opt;
    opt.pretty = false;
    return toJson(report, opt);
}

/** Fast coordination timings so chaos tests finish in seconds. */
CoordinatorOptions
fastOptions(int shards)
{
    CoordinatorOptions opt;
    opt.shards = shards;
    opt.heartbeatIntervalSec = 0.04;
    opt.heartbeatMissLimit = 50; // 2s of silence == hung
    opt.gracePeriodSec = 0.5;
    opt.backoff.baseSec = 0.01;
    opt.backoff.capSec = 0.05;
    opt.stealStallSec = 0.5;
    opt.stealFraction = 0.0; // chaos tests drive the stall rule only
    return opt;
}

TEST(ShardSplit, DeterministicRoundRobin)
{
    const auto split = shardSplit(7, 3);
    ASSERT_EQ(split.size(), 3u);
    EXPECT_EQ(split[0], (std::vector<std::size_t>{0, 3, 6}));
    EXPECT_EQ(split[1], (std::vector<std::size_t>{1, 4}));
    EXPECT_EQ(split[2], (std::vector<std::size_t>{2, 5}));

    // Degenerate shapes: never zero shards, never a lost job.
    EXPECT_EQ(shardSplit(2, 0).size(), 1u);
    EXPECT_EQ(shardSplit(2, 0)[0].size(), 2u);
    EXPECT_EQ(shardSplit(0, 4).size(), 4u);
}

// The acceptance matrix: 36 jobs on 4 shard runners, three chaos
// seeds, each with a SIGKILL'd shard (respawn + checkpoint resume), a
// shard that stalls mid-sweep while holding a finished result (the
// stall-steal path), and the held result arriving later under a stale
// epoch (the fencing path). Results and the master journal must match
// an unfaulted in-process run exactly.
TEST(Coordinator, ChaosMatrixMergesByteIdenticalToInProcessRun)
{
    for (const unsigned seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));

        std::vector<SweepJob> jobs;
        std::vector<std::string> ckpts;
        for (int i = 0; i < 36; ++i) {
            SweepJob job = matrixJob(
                "job" + std::to_string(i), /*gridDim=*/2 + (i % 3),
                /*blockDim=*/32 * (1 + i % 2));
            const std::string ckpt =
                tempPath("coord_s" + std::to_string(seed) + "_" +
                         std::to_string(i) + ".ckpt");
            std::remove(ckpt.c_str());
            job.cfg.checkpointPath = ckpt;
            job.cfg.checkpointInterval = 50;
            ckpts.push_back(ckpt);
            jobs.push_back(std::move(job));
        }

        // Unfaulted in-process baseline.
        const SweepEngine engine(4);
        const auto baseline = engine.run(jobs);
        ASSERT_EQ(baseline.size(), jobs.size());
        for (const auto &r : baseline)
            ASSERT_TRUE(r.ok()) << r.error;
        // Leftover baseline checkpoints must not leak into the
        // coordinator's resume decisions.
        for (const std::string &ckpt : ckpts)
            std::remove(ckpt.c_str());

        const int killVictim = static_cast<int>(seed % 4);
        const int holdVictim = static_cast<int>((seed + 1) % 4);

        CoordinatorOptions opt = fastOptions(4);
        opt.maxRespawnsPerShard = 2;
        // SIGKILL the kill victim once it has delivered a
        // seed-dependent number of results.
        CoordinatorChaosAction kill;
        kill.shard = killVictim;
        kill.afterResults = static_cast<int>(seed % 3);
        kill.kind = CoordinatorChaosAction::Kind::Kill;
        kill.signo = SIGKILL;
        opt.chaos.push_back(kill);
        // The hold victim finishes one more job but sits on the
        // result: its progress freezes, the stall rule steals all its
        // unfinalized jobs, and the held result must arrive later
        // under the old epoch and be fenced.
        opt.runnerChaos = [&](int slot, int) {
            ShardRunnerChaos chaos;
            if (slot == holdVictim) {
                chaos.holdAfterResults = static_cast<int>(seed % 2);
                chaos.holdResultSec = 60.0;
            }
            return chaos;
        };

        const std::string journalPath = tempPath(
            "coord_s" + std::to_string(seed) + ".journal.jsonl");
        std::remove(journalPath.c_str());
        for (int k = 0; k < 4; ++k)
            std::remove(shardJournalPath(journalPath, k).c_str());
        JournalWriter journal;
        journal.open(journalPath);
        opt.journal = &journal;
        opt.journalBasePath = journalPath;

        std::mutex doneMutex;
        std::vector<int> completions(jobs.size(), 0);
        ShardCoordinator coordinator(opt);
        const auto results = coordinator.run(
            jobs, [&](std::size_t index, const SweepResult &res) {
                std::lock_guard<std::mutex> lock(doneMutex);
                ASSERT_LT(index, completions.size());
                completions[index]++;
                EXPECT_TRUE(res.ok()) << jobs[index].name;
            });
        journal.close();

        // Byte-identity in submission order, exactly one completion
        // per job.
        ASSERT_EQ(results.size(), jobs.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(completions[i], 1) << "job " << i;
            ASSERT_TRUE(results[i].ok())
                << jobs[i].name << ": " << results[i].error;
            EXPECT_EQ(reportBytes(results[i].report),
                      reportBytes(baseline[i].report))
                << jobs[i].name;
        }

        // Every chaos path actually fired.
        const CoordinatorStats &stats = coordinator.stats();
        EXPECT_GE(stats.respawns, 1) << "SIGKILL should respawn";
        EXPECT_GE(stats.stallSteals, 1)
            << "the held shard should be stall-stolen";
        EXPECT_GE(stats.stolenJobs, 1);
        EXPECT_GE(stats.fenced, 1)
            << "the zombie's held result should be fenced";

        // The master journal has exactly one ok entry per job -- no
        // lost entries, no duplicates, fenced results never recorded.
        const auto master = readJournal(journalPath);
        ASSERT_EQ(master.size(), jobs.size());
        std::set<std::string> seen;
        for (const auto &entry : master) {
            EXPECT_EQ(entry.status, "ok") << entry.job;
            EXPECT_TRUE(seen.insert(entry.job).second)
                << "duplicate journal entry for " << entry.job;
        }

        // Merging the master with every shard journal fences the
        // zombie's stale-epoch entry and reproduces the submission
        // order exactly.
        std::vector<std::vector<JournalEntry>> journals;
        journals.push_back(master);
        for (int k = 0; k < 4; ++k) {
            const std::string path = shardJournalPath(journalPath, k);
            std::vector<JournalEntry> entries;
            try {
                entries = readJournal(path);
            } catch (const std::exception &) {
                // A shard that never journaled is fine.
            }
            journals.push_back(std::move(entries));
        }
        std::vector<std::string> order;
        for (const auto &job : jobs)
            order.push_back(job.name);
        const auto merged = mergeJournals(journals, &order);
        ASSERT_EQ(merged.size(), jobs.size());
        for (std::size_t i = 0; i < merged.size(); ++i) {
            EXPECT_EQ(merged[i].job, order[i]);
            EXPECT_EQ(merged[i].status, "ok") << merged[i].job;
        }

        std::remove(journalPath.c_str());
        for (int k = 0; k < 4; ++k)
            std::remove(shardJournalPath(journalPath, k).c_str());
        for (const std::string &ckpt : ckpts)
            std::remove(ckpt.c_str());
    }
}

// A shard that keeps crashing past its respawn cap loses its jobs to
// the surviving runner, and the sweep still completes exactly.
TEST(Coordinator, RespawnCapExhaustedReshardsOntoHealthyRunner)
{
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(matrixJob("re" + std::to_string(i),
                                 2 + (i % 2), 32));
    const SweepEngine engine(2);
    const auto baseline = engine.run(jobs);

    CoordinatorOptions opt = fastOptions(2);
    opt.maxRespawnsPerShard = 1;
    opt.stealStallSec = 0.0; // isolate the respawn/re-shard path
    opt.runnerChaos = [](int slot, int) {
        ShardRunnerChaos chaos;
        if (slot == 0) {
            chaos.exitAfterResults = 1; // die after every result
            chaos.exitCode = 7;
        }
        return chaos;
    };
    ShardCoordinator coordinator(opt);
    const auto results = coordinator.run(jobs);

    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok())
            << jobs[i].name << ": " << results[i].error;
        EXPECT_EQ(reportBytes(results[i].report),
                  reportBytes(baseline[i].report));
    }
    EXPECT_EQ(coordinator.stats().respawns, 1);
    EXPECT_GE(coordinator.stats().stolenJobs, 2);
}

// SIGSTOP starves the heartbeat: the shard is classified hung, killed
// through the SIGTERM -> SIGKILL escalation, and respawned.
TEST(Coordinator, StoppedShardClassifiedHungAndRespawned)
{
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back(matrixJob("hg" + std::to_string(i), 2, 32));
    const SweepEngine engine(2);
    const auto baseline = engine.run(jobs);

    CoordinatorOptions opt = fastOptions(2);
    opt.heartbeatMissLimit = 6; // hung after 0.24s of silence
    opt.gracePeriodSec = 0.3;
    opt.stealStallSec = 0.0; // force the hang path, not a steal
    // Keep shard 0 busy (but heartbeating) so the SIGSTOP lands with
    // jobs still on its queue.
    opt.runnerChaos = [](int slot, int) {
        ShardRunnerChaos chaos;
        if (slot == 0)
            chaos.slowPerJobSec = 0.15;
        return chaos;
    };
    CoordinatorChaosAction stop;
    stop.shard = 0;
    stop.afterResults = 1;
    stop.kind = CoordinatorChaosAction::Kind::Stop;
    opt.chaos.push_back(stop);

    std::mutex eventsMutex;
    std::vector<std::string> events;
    opt.onEvent = [&](int, const std::string &event,
                      const std::string &) {
        std::lock_guard<std::mutex> lock(eventsMutex);
        events.push_back(event);
    };
    ShardCoordinator coordinator(opt);
    const auto results = coordinator.run(jobs);

    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok())
            << jobs[i].name << ": " << results[i].error;
        EXPECT_EQ(reportBytes(results[i].report),
                  reportBytes(baseline[i].report));
    }
    EXPECT_GE(coordinator.stats().respawns, 1);
    int hung = 0;
    for (const auto &event : events)
        hung += event == "hung";
    EXPECT_GE(hung, 1);
}

// No healthy runner left and the cap exhausted: the orphaned jobs are
// finalized with the shard's failure classification, not dropped.
TEST(Coordinator, NoSurvivorFinalizesOrphansAsFailed)
{
    std::vector<SweepJob> jobs = {matrixJob("o0", 2, 32),
                                  matrixJob("o1", 2, 32),
                                  matrixJob("o2", 2, 32)};
    CoordinatorOptions opt = fastOptions(1);
    opt.maxRespawnsPerShard = 0;
    opt.stealStallSec = 0.0;
    opt.runnerChaos = [](int, int) {
        ShardRunnerChaos chaos;
        chaos.exitAfterResults = 1;
        chaos.exitCode = 9;
        return chaos;
    };
    ShardCoordinator coordinator(opt);
    const auto results = coordinator.run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_FALSE(results[i].ok());
        EXPECT_EQ(results[i].failureReason, "crashed");
    }
}

TEST(Coordinator, PreCancelledSweepFinalizesEverythingCancelled)
{
    std::vector<SweepJob> jobs = {matrixJob("c0", 2, 32),
                                  matrixJob("c1", 2, 32)};
    std::atomic<bool> cancel{true};
    CoordinatorOptions opt = fastOptions(2);
    opt.cancelFlag = &cancel;
    ShardCoordinator coordinator(opt);
    const auto results = coordinator.run(jobs);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok());
        EXPECT_EQ(r.failureReason, "cancelled");
    }
}

} // namespace
} // namespace cawa
