/**
 * @file
 * Functional reference interpreter tests (straight-line, loops,
 * barriers, shared memory) plus the central cross-check property:
 * the SIMT timing pipeline and the scalar interpreter produce
 * identical memory results on divergent programs.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sim/functional.hh"
#include "sim/gpu.hh"

namespace cawa
{
namespace
{

KernelInfo
makeKernel(Program p, int grid, int block, int smem = 0)
{
    KernelInfo k;
    k.name = "test";
    k.program = std::move(p);
    k.gridDim = grid;
    k.blockDim = block;
    k.regsPerThread = 16;
    k.smemPerBlock = smem;
    return k;
}

TEST(Functional, StraightLine)
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.mulImm(2, 1, 3);
    b.addImm(2, 2, 11);
    b.shlImm(3, 1, 2);
    b.stGlobal(3, 2, 0x1000);
    b.exit();
    MemoryImage mem;
    runFunctional(makeKernel(b.build(), 2, 32), mem);
    for (int t = 0; t < 64; ++t)
        EXPECT_EQ(mem.read32(0x1000 + 4ull * t),
                  static_cast<std::uint32_t>(t * 3 + 11));
}

TEST(Functional, DataDependentLoop)
{
    // OUT[t] = sum of 1..(t % 5 + 1)
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.movImm(5, 4);
    b.and_(2, 1, 5);
    b.addImm(2, 2, 1);   // n = (t & 3...) + 1 (using mask 4 bits 0b100)
    b.movImm(3, 0);
    b.label("loop");
    b.setpImm(0, CmpOp::Le, 2, 0);
    b.braIf("done", 0, "done");
    b.add(3, 3, 2);
    b.addImm(2, 2, -1);
    b.bra("loop");
    b.label("done");
    b.shlImm(4, 1, 2);
    b.stGlobal(4, 3, 0x2000);
    b.exit();
    MemoryImage mem;
    runFunctional(makeKernel(b.build(), 1, 64), mem);
    for (int t = 0; t < 64; ++t) {
        const int n = (t & 4) + 1;
        EXPECT_EQ(mem.read32(0x2000 + 4ull * t),
                  static_cast<std::uint32_t>(n * (n + 1) / 2));
    }
}

TEST(Functional, BarrierSharedMemoryExchange)
{
    // Each thread writes lane value to shared, barrier, then reads
    // its neighbour's slot (reverse order).
    ProgramBuilder b;
    b.s2r(1, SpecialReg::TidX);
    b.shlImm(2, 1, 2);
    b.mulImm(3, 1, 5);
    b.stShared(2, 3, 0);
    b.bar();
    b.movImm(4, 31);
    b.sub(4, 4, 1);         // 31 - tid
    b.shlImm(4, 4, 2);
    b.ldShared(5, 4, 0);
    b.s2r(6, SpecialReg::GlobalTid);
    b.shlImm(6, 6, 2);
    b.stGlobal(6, 5, 0x3000);
    b.exit();
    MemoryImage mem;
    runFunctional(makeKernel(b.build(), 2, 32, 128), mem);
    for (int blk = 0; blk < 2; ++blk)
        for (int t = 0; t < 32; ++t)
            EXPECT_EQ(mem.read32(0x3000 + 4ull * (blk * 32 + t)),
                      static_cast<std::uint32_t>((31 - t) * 5));
}

TEST(Functional, MatchesSimtPipelineOnDivergentKernel)
{
    // A thoroughly divergent kernel: nested if/else inside a
    // data-dependent loop, with scattered loads.
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.sfu(2, 1);
    b.shrImm(2, 2, 60);     // iterations 0..15
    b.movImm(3, 0);
    b.label("loop");
    b.setpImm(0, CmpOp::Le, 2, 0);
    b.braIf("done", 0, "done");
    b.movImm(6, 1);
    b.and_(4, 2, 6);
    b.setpImm(1, CmpOp::Ne, 4, 0);
    b.braIf("odd", 1, "join");
    b.mulImm(3, 3, 3);
    b.addImm(3, 3, 7);
    b.bra("join");
    b.label("odd");
    b.addImm(3, 3, 13);
    b.label("join");
    b.addImm(2, 2, -1);
    b.bra("loop");
    b.label("done");
    b.shlImm(5, 1, 2);
    b.stGlobal(5, 3, 0x9000);
    b.exit();
    const KernelInfo kernel = makeKernel(b.build(), 6, 96);

    MemoryImage ref;
    runFunctional(kernel, ref);

    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 3;
    MemoryImage sim;
    const SimReport r = runKernel(cfg, sim, kernel);
    EXPECT_FALSE(r.timedOut);
    for (int t = 0; t < kernel.totalThreads(); ++t)
        ASSERT_EQ(sim.read32(0x9000 + 4ull * t),
                  ref.read32(0x9000 + 4ull * t))
            << "thread " << t;
}

TEST(Functional, PartialLastWarpMatches)
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.mulImm(2, 1, 2);
    b.shlImm(3, 1, 2);
    b.stGlobal(3, 2, 0x4000);
    b.exit();
    // blockDim 40: one full warp + one 8-lane warp.
    const KernelInfo kernel = makeKernel(b.build(), 2, 40);
    MemoryImage ref;
    runFunctional(kernel, ref);
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    MemoryImage sim;
    runKernel(cfg, sim, kernel);
    for (int t = 0; t < 80; ++t)
        ASSERT_EQ(sim.read32(0x4000 + 4ull * t),
                  ref.read32(0x4000 + 4ull * t));
}

} // namespace
} // namespace cawa
