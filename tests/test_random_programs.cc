/**
 * @file
 * Property test: generate random structured kernels (nested if/else,
 * bounded data-dependent loops, scattered thread-private memory
 * traffic) and check that the SIMT timing pipeline produces exactly
 * the functional interpreter's results under every scheduler and
 * cache policy. This is the strongest end-to-end correctness check in
 * the suite: divergence handling, reconvergence, scoreboarding and
 * the memory system must all be value-correct for it to pass.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "sim/functional.hh"
#include "sim/gpu.hh"

namespace cawa
{
namespace
{

constexpr Addr kIn = 0x100000;
constexpr Addr kOut = 0x200000;

/**
 * Emit a random structured region: a few ALU ops, optionally an
 * if/else on a data-dependent predicate or a bounded loop, recursing
 * down @p depth.
 */
class RandomKernelGen
{
  public:
    explicit RandomKernelGen(std::uint64_t seed) : rng_(seed) {}

    Program
    generate()
    {
        b_ = ProgramBuilder{};
        label_ = 0;
        // r1 = gtid; r2 = IN[gtid] (data-dependence source); r3 = acc
        b_.s2r(1, SpecialReg::GlobalTid);
        b_.shlImm(4, 1, 2);
        b_.ldGlobal(2, 4, kIn);
        b_.movImm(3, 1);
        region(3);
        b_.shlImm(4, 1, 2);
        b_.stGlobal(4, 3, kOut);
        b_.exit();
        return b_.build();
    }

  private:
    std::string
    fresh(const char *stem)
    {
        return std::string(stem) + std::to_string(label_++);
    }

    void
    aluBurst()
    {
        const int n = 1 + static_cast<int>(rng_.nextBounded(4));
        for (int i = 0; i < n; ++i) {
            switch (rng_.nextBounded(6)) {
              case 0: b_.addImm(3, 3, rng_.nextRange(-9, 9)); break;
              case 1: b_.mulImm(3, 3, 1 + rng_.nextBounded(5)); break;
              case 2: b_.add(3, 3, 2); break;
              case 3: b_.xor_(3, 3, 1); break;
              case 4: b_.shrImm(3, 3, 1); break;
              default: b_.sub(3, 3, 1); break;
            }
        }
    }

    void
    ifElse(int depth)
    {
        const std::string els = fresh("else");
        const std::string end = fresh("endif");
        // Predicate on a mix of the data value and the accumulator.
        b_.and_(5, 2, 3);
        b_.setpImm(0, CmpOp::Gt, 5,
                   static_cast<std::int64_t>(rng_.nextBounded(8)));
        b_.braIf(els.c_str(), 0, end.c_str());
        region(depth - 1);
        b_.bra(end.c_str());
        b_.label(els.c_str());
        region(depth - 1);
        b_.label(end.c_str());
    }

    void
    loop(int depth)
    {
        const std::string head = fresh("loop");
        const std::string exit_l = fresh("lexit");
        // Trip count 0..7, data dependent.
        b_.movImm(6, 7);
        b_.and_(6, 2, 6);
        b_.label(head.c_str());
        b_.setpImm(1, CmpOp::Le, 6, 0);
        b_.braIf(exit_l.c_str(), 1, exit_l.c_str());
        region(depth - 1);
        b_.addImm(6, 6, -1);
        b_.bra(head.c_str());
        b_.label(exit_l.c_str());
    }

    void
    region(int depth)
    {
        aluBurst();
        if (depth <= 0)
            return;
        switch (rng_.nextBounded(4)) {
          case 0:
            ifElse(depth);
            break;
          case 1:
            loop(depth);
            break;
          case 2:
            ifElse(depth);
            aluBurst();
            loop(depth - 1 > 0 ? depth - 1 : 0);
            break;
          default:
            // Scattered load mixed into the region.
            b_.movImm(5, 0xff);
            b_.and_(5, 3, 5);
            b_.shlImm(5, 5, 2);
            b_.ldGlobal(7, 5, kIn);
            b_.add(3, 3, 7);
            break;
        }
        aluBurst();
    }

    ProgramBuilder b_;
    Rng rng_;
    int label_ = 0;
};

struct Case
{
    std::uint64_t seed;
    SchedulerKind sched;
    CachePolicyKind cache;
};

class RandomProgramTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(RandomProgramTest, SimtMatchesFunctionalReference)
{
    const Case &c = GetParam();
    RandomKernelGen gen(c.seed);
    KernelInfo kernel;
    kernel.name = "random";
    kernel.program = gen.generate();
    kernel.gridDim = 4;
    kernel.blockDim = 96;
    kernel.regsPerThread = 16;
    ASSERT_EQ(kernel.program.validate(), "");

    auto init_inputs = [&](MemoryImage &mem) {
        Rng data_rng(c.seed * 31 + 7);
        for (int i = 0; i < 1024; ++i)
            mem.write32(kIn + 4ull * i, static_cast<std::uint32_t>(
                data_rng.nextBounded(1u << 20)));
    };

    MemoryImage ref;
    init_inputs(ref);
    runFunctional(kernel, ref);

    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 2;
    cfg.scheduler = c.sched;
    cfg.l1Policy = c.cache;
    MemoryImage sim;
    init_inputs(sim);
    const SimReport r = runKernel(cfg, sim, kernel);
    ASSERT_FALSE(r.timedOut);

    for (int t = 0; t < kernel.totalThreads(); ++t)
        ASSERT_EQ(sim.read32(kOut + 4ull * t),
                  ref.read32(kOut + 4ull * t))
            << "seed " << c.seed << " thread " << t;
}

std::vector<Case>
makeCases()
{
    std::vector<Case> cases;
    const SchedulerKind scheds[] = {
        SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::TwoLevel,
        SchedulerKind::Gcaws};
    const CachePolicyKind caches[] = {
        CachePolicyKind::Lru, CachePolicyKind::Srrip,
        CachePolicyKind::Ship, CachePolicyKind::Cacp};
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        cases.push_back({seed, scheds[seed % 4],
                         caches[(seed / 4) % 4]});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomProgramTest, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        return "seed" + std::to_string(info.param.seed) + "_" +
               schedulerKindName(info.param.sched) + "_" +
               cachePolicyKindName(info.param.cache);
    });

} // namespace
} // namespace cawa
