/**
 * @file
 * Simulation-service tests: the cache-key contract (observational
 * knobs share an entry, semantic knobs miss), the on-disk result
 * cache, the persistent job queue and its scheduling policy, the
 * frame protocol codecs, and end-to-end daemon runs that exec the
 * real cawad binary -- concurrent clients, cache-hit byte identity,
 * kill-mid-job restart recovery, cancellation and status.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "common/sim_error.hh"
#include "common/subprocess.hh"
#include "sim/gpu_config.hh"
#include "sim/service/job_queue.hh"
#include "sim/service/protocol.hh"
#include "sim/service/result_cache.hh"
#include "sim/supervisor.hh"
#include "workloads/sweep_jobs.hh"

namespace cawa
{
namespace
{

namespace fs = std::filesystem;

WorkloadJobSpec
bfsSpec(std::uint64_t seed = 1, double scale = 0.05)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::Gcaws;
    spec.cfg.l1Policy = CachePolicyKind::Cacp;
    spec.params.seed = seed;
    spec.params.scale = scale;
    return spec;
}

std::string
cacheKeyOf(const WorkloadJobSpec &spec)
{
    return serviceCacheKey(workloadJobName(spec),
                           configSignature(spec.cfg, false));
}

// ---------------------------------------------------------------------
// Cache-key contract. The configSignature() exclusion list is the
// oracle: knobs documented as observational must not change the
// service cache key (two such submissions share one entry), knobs
// that change simulated results must (they miss).
// ---------------------------------------------------------------------

TEST(ServiceCacheKey, ObservationalKnobsShareOneEntry)
{
    const WorkloadJobSpec base = bfsSpec();
    WorkloadJobSpec obs = bfsSpec();
    obs.cfg.simThreads = 4;
    obs.cfg.trace.enabled = true;
    obs.cfg.trace.bufferCapacity = 1024;
    obs.cfg.checkLevel = 2;
    obs.cfg.auditInterval = 99;
    obs.cfg.profilePhases = true;
    obs.cfg.fastForward = !base.cfg.fastForward;
    obs.cfg.wallClockLimitSec = 5.0;
    EXPECT_EQ(cacheKeyOf(base), cacheKeyOf(obs))
        << "an observational knob leaked into the cache key";
}

TEST(ServiceCacheKey, SemanticKnobsMiss)
{
    const WorkloadJobSpec base = bfsSpec();

    WorkloadJobSpec geometry = bfsSpec();
    geometry.cfg.l1d.ways = 8;
    EXPECT_NE(cacheKeyOf(base), cacheKeyOf(geometry));

    // Scheduler and policy also rename the kernel id, but the
    // signature alone must already differ: the id is advisory, the
    // signature is the integrity check.
    WorkloadJobSpec sched = bfsSpec();
    sched.cfg.scheduler = SchedulerKind::Lrr;
    EXPECT_NE(configSignature(base.cfg, false),
              configSignature(sched.cfg, false));

    WorkloadJobSpec policy = bfsSpec();
    policy.cfg.l1Policy = CachePolicyKind::Lru;
    EXPECT_NE(configSignature(base.cfg, false),
              configSignature(policy.cfg, false));

    // Seed and scale live in the kernel id, not the config.
    EXPECT_NE(cacheKeyOf(base), cacheKeyOf(bfsSpec(2)));
    EXPECT_NE(cacheKeyOf(base), cacheKeyOf(bfsSpec(1, 0.1)));

    // An attached oracle changes scheduling under the same config.
    EXPECT_NE(configSignature(base.cfg, false),
              configSignature(base.cfg, true));
}

TEST(ServiceCacheKey, KernelIdIsSanitizedForTheFilesystem)
{
    EXPECT_EQ(serviceCacheKey("a b/c..D", 0x1a2b3c4d),
              "a_b_c..D-1a2b3c4d");
    EXPECT_EQ(serviceCacheKey("bfs.gcaws", 0x5),
              "bfs.gcaws-00000005");
}

// ---------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------

TEST(ResultCacheTest, StoreLookupRoundTripIsByteExact)
{
    const std::string dir =
        ::testing::TempDir() + "/cawa_cache_rt";
    fs::remove_all(dir);
    ResultCache cache(dir);
    EXPECT_EQ(cache.entries(), 0u);

    const std::string raw =
        "{\"type\":\"result\",\"report\":{\"x\":1}}";
    std::string out;
    EXPECT_FALSE(cache.lookup("k1", out));
    EXPECT_EQ(cache.misses(), 1u);

    cache.store("k1", raw);
    ASSERT_TRUE(cache.lookup("k1", out));
    EXPECT_EQ(out, raw); // bytes, not JSON-equivalence
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.entries(), 1u);

    // contains() is for restart replay: no counter side effects.
    EXPECT_TRUE(cache.contains("k1"));
    EXPECT_FALSE(cache.contains("k2"));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);

    // store() atomically replaces.
    cache.store("k1", raw + "v2");
    ASSERT_TRUE(cache.lookup("k1", out));
    EXPECT_EQ(out, raw + "v2");
    EXPECT_EQ(cache.entries(), 1u);
    fs::remove_all(dir);
}

TEST(ResultCacheTest, EntriesSurviveReopen)
{
    const std::string dir =
        ::testing::TempDir() + "/cawa_cache_reopen";
    fs::remove_all(dir);
    {
        ResultCache cache(dir);
        cache.store("persisted", "payload bytes");
    }
    ResultCache cache(dir);
    std::string out;
    ASSERT_TRUE(cache.lookup("persisted", out));
    EXPECT_EQ(out, "payload bytes");
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Scheduling policy: pickNextJob is a pure function.
// ---------------------------------------------------------------------

QueuedJob
qj(std::uint64_t id, const std::string &client, int priority)
{
    QueuedJob j;
    j.id = id;
    j.client = client;
    j.priority = priority;
    j.name = "job" + std::to_string(id);
    return j;
}

TEST(PickNextJob, PriorityThenFifoWithQuotaAndBusySkips)
{
    const std::vector<QueuedJob> pending = {
        qj(1, "alice", 0), qj(2, "bob", 5), qj(3, "bob", 5),
        qj(4, "carol", -1)};
    std::unordered_map<std::string, int> running;
    std::unordered_set<std::uint64_t> busy;

    // Highest priority wins; ties go to the lowest id.
    ASSERT_NE(pickNextJob(pending, running, 2, busy), nullptr);
    EXPECT_EQ(pickNextJob(pending, running, 2, busy)->id, 2u);

    // Busy ids are invisible.
    busy.insert(2);
    EXPECT_EQ(pickNextJob(pending, running, 2, busy)->id, 3u);

    // A client at quota is skipped even with top priority...
    running["bob"] = 2;
    EXPECT_EQ(pickNextJob(pending, running, 2, busy)->id, 1u);
    // ...and quota <= 0 means unlimited.
    EXPECT_EQ(pickNextJob(pending, running, 0, busy)->id, 3u);

    // Nothing eligible -> nullptr, never a busy or over-quota pick.
    busy.insert(1);
    busy.insert(3);
    busy.insert(4);
    EXPECT_EQ(pickNextJob(pending, running, 2, busy), nullptr);
}

// ---------------------------------------------------------------------
// Persistent queue: journal replay.
// ---------------------------------------------------------------------

TEST(ServiceQueue, ReplayResumesExactlyTheUnfinishedJobs)
{
    const std::string path =
        ::testing::TempDir() + "/cawa_queue_replay.jsonl";
    fs::remove(path);

    std::uint64_t keep = 0;
    {
        ServiceJobQueue queue;
        queue.open(path);
        const std::uint64_t a = queue.submit(
            "a", "alice", 0, cacheKeyOf(bfsSpec(1)), bfsSpec(1));
        keep = queue.submit("b", "bob", 3, cacheKeyOf(bfsSpec(2)),
                            bfsSpec(2));
        const std::uint64_t c = queue.submit(
            "c", "carol", 0, cacheKeyOf(bfsSpec(3)), bfsSpec(3));
        EXPECT_EQ(queue.pending().size(), 3u);
        queue.markDone(a, "ok");
        queue.markCancelled(c);
        EXPECT_EQ(queue.pending().size(), 1u);
    } // lock released

    ServiceJobQueue queue;
    queue.open(path);
    ASSERT_EQ(queue.pending().size(), 1u);
    const QueuedJob &job = queue.pending().front();
    EXPECT_EQ(job.id, keep);
    EXPECT_EQ(job.name, "b");
    EXPECT_EQ(job.client, "bob");
    EXPECT_EQ(job.priority, 3);
    EXPECT_EQ(job.cacheKey, cacheKeyOf(bfsSpec(2)));
    EXPECT_EQ(workloadJobName(job.spec), workloadJobName(bfsSpec(2)));

    // Ids keep counting past everything ever journaled: a finished
    // job's id is never reissued, so cache/journal cross-references
    // stay unambiguous across restarts.
    EXPECT_GT(queue.submit("d", "dave", 0, "k", bfsSpec(4)), 3u);
    fs::remove(path);
}

TEST(ServiceQueue, ReplayToleratesGarbageLines)
{
    const std::string path =
        ::testing::TempDir() + "/cawa_queue_garbage.jsonl";
    fs::remove(path);
    {
        ServiceJobQueue queue;
        queue.open(path);
        queue.submit("a", "alice", 0, "key-a", bfsSpec(1));
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "this is not json\n";
        out << "{\"op\":\"unknown-op\",\"job\":1}\n";
    }
    ServiceJobQueue queue;
    queue.open(path);
    ASSERT_EQ(queue.pending().size(), 1u);
    EXPECT_EQ(queue.pending().front().name, "a");
    fs::remove(path);
}

TEST(ServiceQueue, SecondOpenOnLockedJournalThrows)
{
    const std::string path =
        ::testing::TempDir() + "/cawa_queue_locked.jsonl";
    fs::remove(path);
    ServiceJobQueue first;
    first.open(path);
    ServiceJobQueue second;
    EXPECT_THROW(second.open(path), SimError);
    fs::remove(path);
}

// ---------------------------------------------------------------------
// Protocol codecs.
// ---------------------------------------------------------------------

TEST(ServiceProtocol, SubmitSpecRoundTrips)
{
    const WorkloadJobSpec spec = bfsSpec(7, 0.25);
    const std::string frame = "{\"type\":\"submit\",\"spec\":" +
                              serviceSpecJson(spec) +
                              ",\"priority\":9,\"client\":\"ci\"}";
    const ServiceSubmit sub = submitFromJson(parseJson(frame));
    EXPECT_EQ(sub.priority, 9);
    EXPECT_EQ(sub.client, "ci");
    EXPECT_EQ(workloadJobName(sub.spec), workloadJobName(spec));
    EXPECT_EQ(configSignature(sub.spec.cfg, false),
              configSignature(spec.cfg, false));
}

TEST(ServiceProtocol, MalformedSubmitsThrow)
{
    auto parse = [](const std::string &text) {
        return submitFromJson(parseJson(text));
    };
    EXPECT_THROW(parse("{\"type\":\"submit\"}"), SimError);
    EXPECT_THROW(
        parse("{\"type\":\"submit\",\"spec\":{\"workload\":\"nope\","
              "\"scheduler\":\"rr\",\"policy\":\"lru\",\"seed\":1,"
              "\"scale\":0.5}}"),
        SimError);
    EXPECT_THROW(parse("{\"type\":\"submit\",\"spec\":" +
                       serviceSpecJson(bfsSpec()) +
                       ",\"priority\":101}"),
                 SimError);
}

// ---------------------------------------------------------------------
// End-to-end: the real cawad binary over a real socket.
// ---------------------------------------------------------------------

class DaemonE2E : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = ::testing::TempDir() + "/cawad_" + info->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        sock_ = dir_ + "/d.sock";
        state_ = dir_ + "/state";
    }

    void TearDown() override
    {
        stopDaemon();
        fs::remove_all(dir_);
    }

    void startDaemon(std::vector<std::string> extra = {})
    {
        std::vector<std::string> args = {
            CAWA_CAWAD_BIN, "--socket", sock_, "--state-dir", state_,
            "--quiet", "--checkpoint-interval", "20000"};
        for (auto &arg : extra)
            args.push_back(std::move(arg));
        std::vector<char *> argv;
        for (auto &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);

        daemonPid_ = fork();
        ASSERT_GE(daemonPid_, 0);
        if (daemonPid_ == 0) {
            execv(argv[0], argv.data());
            _exit(127);
        }
        // Ready when the socket accepts a connection.
        for (int i = 0; i < 200; ++i) {
            try {
                close(connectUnixSocket(sock_));
                return;
            } catch (const SimError &) {
                usleep(25'000);
            }
        }
        FAIL() << "cawad never came up on " << sock_;
    }

    void stopDaemon(int sig = SIGTERM)
    {
        if (daemonPid_ <= 0)
            return;
        kill(daemonPid_, sig);
        int status = 0;
        waitpid(daemonPid_, &status, 0);
        daemonPid_ = -1;
    }

    /** SIGKILL without the graceful-drain path, for crash tests. */
    void killDaemonHard()
    {
        ASSERT_GT(daemonPid_, 0);
        kill(daemonPid_, SIGKILL);
        int status = 0;
        waitpid(daemonPid_, &status, 0);
        daemonPid_ = -1;
    }

    std::string submitFrame(const WorkloadJobSpec &spec,
                            int priority = 0,
                            const std::string &client = "anon")
    {
        return "{\"type\":\"submit\",\"spec\":" +
               serviceSpecJson(spec) +
               ",\"priority\":" + std::to_string(priority) +
               ",\"client\":" + frameJsonQuote(client) + "}";
    }

    /** Read frames on @p fd until the terminal result envelope. */
    JsonValue awaitResult(int fd)
    {
        std::string payload;
        while (readFrameBlocking(fd, payload)) {
            const JsonValue doc = parseJson(payload);
            const std::string type = doc.at("type").asString();
            if (type == "result")
                return doc;
            if (type == "error")
                ADD_FAILURE()
                    << "daemon error: " << payload;
        }
        ADD_FAILURE() << "connection closed before a result";
        return parseJson("{}");
    }

    std::string journalText() const
    {
        std::ifstream in(state_ + "/queue.jsonl");
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    }

    static std::size_t countOccurrences(const std::string &haystack,
                                        const std::string &needle)
    {
        std::size_t count = 0;
        for (std::size_t at = haystack.find(needle);
             at != std::string::npos;
             at = haystack.find(needle, at + 1))
            ++count;
        return count;
    }

    pid_t daemonPid_ = -1;
    std::string dir_, sock_, state_;
};

TEST_F(DaemonE2E, FourConcurrentClientsAndByteIdenticalCacheHit)
{
    startDaemon({"--workers", "2"});

    // Four clients with open connections and jobs in flight at once.
    const int kClients = 4;
    int fds[kClients];
    for (int i = 0; i < kClients; ++i) {
        fds[i] = connectUnixSocket(sock_);
        const WorkloadJobSpec spec = bfsSpec(1 + i);
        ASSERT_TRUE(writeFrame(
            fds[i], submitFrame(spec, 0, "c" + std::to_string(i))));
    }
    for (int i = 0; i < kClients; ++i) {
        const JsonValue doc = awaitResult(fds[i]);
        EXPECT_FALSE(doc.at("cached").asBool());
        EXPECT_EQ(doc.at("name").asString(),
                  workloadJobName(bfsSpec(1 + i)));
        const SweepResult res =
            resultFromFrameFields(doc.at("result"));
        EXPECT_TRUE(res.ok()) << res.error;
        close(fds[i]);
    }

    // A repeat submission is served from the cache -- and because the
    // daemon replays the stored frame verbatim, the embedded result
    // document is byte-identical to the fresh run's.
    const int fresh = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(fresh, submitFrame(bfsSpec(1))));
    std::string payload, freshResult;
    while (readFrameBlocking(fresh, payload)) {
        const JsonValue doc = parseJson(payload);
        if (doc.at("type").asString() != "result")
            continue;
        EXPECT_TRUE(doc.at("cached").asBool());
        freshResult = payload;
        break;
    }
    close(fresh);
    ASSERT_FALSE(freshResult.empty());

    const int again = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(again, submitFrame(bfsSpec(1))));
    while (readFrameBlocking(again, payload)) {
        if (parseJson(payload).at("type").asString() != "result")
            continue;
        // Two cached replays are bytes-equal except the job id field
        // (0 for every cache hit), i.e. fully equal.
        EXPECT_EQ(payload, freshResult);
        break;
    }
    close(again);
}

TEST_F(DaemonE2E, ObservationalResubmitIsACacheHit)
{
    startDaemon();
    const int first = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(first, submitFrame(bfsSpec())));
    EXPECT_FALSE(awaitResult(first).at("cached").asBool());
    close(first);

    // The canonical submit spec carries no observational knobs, so
    // any two submissions of the same (workload, scheduler, policy,
    // seed, scale) tuple must hit -- this is the client-visible face
    // of the ServiceCacheKey contract.
    const int second = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(second, submitFrame(bfsSpec())));
    EXPECT_TRUE(awaitResult(second).at("cached").asBool());
    close(second);
}

TEST_F(DaemonE2E, KillMidJobThenRestartResumesWithoutDuplication)
{
    startDaemon();
    const WorkloadJobSpec spec = bfsSpec(1, 1.0); // ~0.5 s of work
    const int fd = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(fd, submitFrame(spec)));

    // Wait for the worker to be running (the spawn progress frame),
    // then SIGKILL the daemon mid-job.
    std::string payload;
    bool sawSpawn = false;
    while (!sawSpawn && readFrameBlocking(fd, payload)) {
        const JsonValue doc = parseJson(payload);
        sawSpawn = doc.at("type").asString() == "progress" &&
                   doc.at("event").asString() == "spawn";
    }
    ASSERT_TRUE(sawSpawn);
    killDaemonHard();
    close(fd);

    // The journal has the submit but no done: the job is pending.
    EXPECT_EQ(countOccurrences(journalText(), "\"op\":\"submit\""),
              1u);
    EXPECT_EQ(countOccurrences(journalText(), "\"op\":\"done\""), 0u);

    // A restart on the same state dir replays the queue and runs the
    // job to completion; a resubmission coalesces onto the resumed
    // job or hits the cache -- either way the result arrives and the
    // job completed exactly once.
    startDaemon();
    const int retry = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(retry, submitFrame(spec)));
    const JsonValue doc = awaitResult(retry);
    const SweepResult res = resultFromFrameFields(doc.at("result"));
    EXPECT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(doc.at("name").asString(), workloadJobName(spec));
    close(retry);

    const std::string journal = journalText();
    EXPECT_EQ(countOccurrences(journal, "\"op\":\"submit\""), 1u)
        << journal;
    EXPECT_EQ(countOccurrences(journal,
                               "\"op\":\"done\",\"job\":1,"
                               "\"status\":\"ok\""),
              1u)
        << journal;
}

TEST_F(DaemonE2E, CancelPendingJobNotifiesItsWaiter)
{
    startDaemon({"--workers", "1"});
    // Occupy the one worker...
    const int runner = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(runner, submitFrame(bfsSpec(1, 1.0))));
    // ...so the second job stays pending.
    const int waiter = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(waiter, submitFrame(bfsSpec(2, 1.0))));
    std::string payload;
    std::uint64_t pendingId = 0;
    while (readFrameBlocking(waiter, payload)) {
        const JsonValue doc = parseJson(payload);
        if (doc.at("type").asString() == "queued") {
            pendingId = doc.at("job").asU64();
            break;
        }
    }
    ASSERT_GT(pendingId, 0u);

    const int canceller = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(canceller,
                           "{\"type\":\"cancel\",\"job\":" +
                               std::to_string(pendingId) + "}"));
    ASSERT_TRUE(readFrameBlocking(canceller, payload));
    const JsonValue reply = parseJson(payload);
    EXPECT_EQ(reply.at("type").asString(), "cancelled");
    EXPECT_EQ(reply.at("state").asString(), "queued");
    close(canceller);

    // The waiter gets a terminal (failed) result, not silence.
    const JsonValue doc = awaitResult(waiter);
    const SweepResult res = resultFromFrameFields(doc.at("result"));
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.failureReason, "cancelled");
    close(waiter);

    // The first job is unaffected.
    EXPECT_TRUE(
        resultFromFrameFields(awaitResult(runner).at("result")).ok());
    close(runner);
}

TEST_F(DaemonE2E, StatusAndErrorFrames)
{
    startDaemon();
    const int status = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(status, "{\"type\":\"status\"}"));
    std::string payload;
    ASSERT_TRUE(readFrameBlocking(status, payload));
    const JsonValue doc = parseJson(payload);
    EXPECT_EQ(doc.at("type").asString(), "status-reply");
    EXPECT_EQ(doc.at("workers").asU64(), 1u);
    close(status);

    const int bad = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(bad, "this is not json"));
    ASSERT_TRUE(readFrameBlocking(bad, payload));
    EXPECT_EQ(parseJson(payload).at("type").asString(), "error");
    close(bad);

    const int unknown = connectUnixSocket(sock_);
    ASSERT_TRUE(writeFrame(unknown, "{\"type\":\"bogus\"}"));
    ASSERT_TRUE(readFrameBlocking(unknown, payload));
    EXPECT_EQ(parseJson(payload).at("type").asString(), "error");
    close(unknown);
}

} // namespace
} // namespace cawa
