/**
 * @file
 * Unit tests for the hot-path allocation primitives (common/arena.hh):
 * SlabPool's deterministic LIFO recycling and checkpoint round-trip,
 * PooledMap's find/insert/erase semantics and capacity reuse, and
 * RingQueue's FIFO order across growth, wrap-around and eraseIf
 * compaction. Determinism matters beyond hygiene here: the pools hand
 * out the ids the simulator serializes, so allocation order is part
 * of the byte-identity contract.
 */

#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "common/serialize.hh"

using namespace cawa;

namespace
{

TEST(SlabPool, AllocGrowsSequentially)
{
    SlabPool<int> pool;
    EXPECT_EQ(pool.alloc(), 0u);
    EXPECT_EQ(pool.alloc(), 1u);
    EXPECT_EQ(pool.alloc(), 2u);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.live(), 3);
}

TEST(SlabPool, FreeIsRecycledLifo)
{
    SlabPool<int> pool;
    for (int i = 0; i < 4; ++i)
        pool.alloc();
    pool.free(1);
    pool.free(3);
    // Most recently freed first, and no growth while the free list
    // has entries.
    EXPECT_EQ(pool.alloc(), 3u);
    EXPECT_EQ(pool.alloc(), 1u);
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_EQ(pool.alloc(), 4u); // free list empty again: grow
}

TEST(SlabPool, RecycledSlotKeepsContents)
{
    SlabPool<std::vector<int>> pool;
    const std::uint32_t idx = pool.alloc();
    pool.at(idx) = {1, 2, 3};
    pool.free(idx);
    const std::uint32_t again = pool.alloc();
    ASSERT_EQ(again, idx);
    // Documented contract: slots are not reset on reuse, so pooled
    // heap capacity survives a free/alloc cycle.
    EXPECT_EQ(pool.at(again), (std::vector<int>{1, 2, 3}));
}

TEST(SlabPool, SaveRestorePreservesAllocationOrder)
{
    SlabPool<int> pool;
    for (int i = 0; i < 6; ++i)
        pool.at(pool.alloc()) = 10 * i;
    pool.free(2);
    pool.free(5);
    pool.free(0);

    OutArchive out;
    pool.save(out, [](OutArchive &ar, const int &v) {
        ar.putU32(static_cast<std::uint32_t>(v));
    });

    SlabPool<int> copy;
    InArchive in(out.data(), out.size(), "slab");
    copy.load(in, [](InArchive &ar, int &v) {
        v = static_cast<int>(ar.getU32());
    });
    in.expectEnd();

    EXPECT_EQ(copy.size(), pool.size());
    EXPECT_EQ(copy.live(), pool.live());
    EXPECT_EQ(copy.freeList(), pool.freeList());
    for (std::uint32_t i = 0; i < 6; ++i)
        EXPECT_EQ(copy.at(i), pool.at(i));
    // The restored pool must hand out exactly the ids the original
    // would: 0, 5, 2 (LIFO), then growth at 6.
    EXPECT_EQ(copy.alloc(), pool.alloc());
    EXPECT_EQ(copy.alloc(), pool.alloc());
    EXPECT_EQ(copy.alloc(), pool.alloc());
    EXPECT_EQ(copy.alloc(), pool.alloc());
    EXPECT_EQ(copy.size(), pool.size());
}

TEST(PooledMap, InsertFindErase)
{
    PooledMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    map.insert(7) = 70;
    map.insert(9) = 90;
    map.insert(11) = 110;
    EXPECT_EQ(map.size(), 3u);
    ASSERT_NE(map.find(9), nullptr);
    EXPECT_EQ(*map.find(9), 90);
    EXPECT_EQ(map.find(8), nullptr);

    map.erase(9);
    EXPECT_EQ(map.find(9), nullptr);
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70);
    ASSERT_NE(map.find(11), nullptr);
    EXPECT_EQ(*map.find(11), 110);
}

TEST(PooledMap, ReinsertReusesPooledSlot)
{
    PooledMap<int, std::vector<int>> map;
    auto &v = map.insert(1);
    v.assign(100, 42);
    const int *storage = v.data();
    map.erase(1);
    // The next insert recycles the freed value slot; its vector keeps
    // the old heap allocation (same data pointer, capacity intact).
    auto &w = map.insert(2);
    EXPECT_EQ(w.data(), storage);
    EXPECT_GE(w.capacity(), 100u);
}

TEST(PooledMap, ForEachVisitsEveryLiveEntry)
{
    PooledMap<int, int> map;
    for (int k = 0; k < 8; ++k)
        map.insert(k) = k * k;
    map.erase(3);
    map.erase(6);
    int sum = 0;
    std::size_t count = 0;
    map.forEach([&](int k, int v) {
        EXPECT_EQ(v, k * k);
        sum += v;
        count++;
    });
    EXPECT_EQ(count, 6u);
    EXPECT_EQ(sum, 0 + 1 + 4 + 16 + 25 + 49);
}

TEST(RingQueue, FifoAcrossGrowthAndWrap)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    // Interleave pushes and pops so the ring wraps while growing from
    // its initial capacity (16) through two doublings.
    int next_push = 0;
    int next_pop = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 13; ++i)
            q.push_back(next_push++);
        for (int i = 0; i < 7; ++i) {
            ASSERT_FALSE(q.empty());
            EXPECT_EQ(q.front(), next_pop);
            q.pop_front();
            next_pop++;
        }
    }
    // Order stable under front-relative indexing too.
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q[i], next_pop + static_cast<int>(i));
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_pop++);
        q.pop_front();
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(RingQueue, EraseIfKeepsSurvivorOrder)
{
    RingQueue<int> q;
    // Force a wrapped layout first: fill, drain half, refill.
    for (int i = 0; i < 16; ++i)
        q.push_back(-1);
    for (int i = 0; i < 16; ++i)
        q.pop_front();
    for (int i = 0; i < 24; ++i)
        q.push_back(i);
    q.eraseIf([](int v) { return v % 3 == 0; });
    std::vector<int> got;
    for (std::size_t i = 0; i < q.size(); ++i)
        got.push_back(q[i]);
    std::vector<int> want;
    for (int i = 0; i < 24; ++i)
        if (i % 3 != 0)
            want.push_back(i);
    EXPECT_EQ(got, want);
}

TEST(RingQueue, EraseIfAllAndNone)
{
    RingQueue<int> q;
    for (int i = 0; i < 5; ++i)
        q.push_back(i);
    q.eraseIf([](int) { return false; });
    EXPECT_EQ(q.size(), 5u);
    q.eraseIf([](int) { return true; });
    EXPECT_TRUE(q.empty());
    // Still usable after a full purge.
    q.push_back(99);
    EXPECT_EQ(q.front(), 99);
}

} // namespace
