/**
 * @file
 * Deadlock watchdog tests: a deliberately wedged kernel (fault
 * injection drops a barrier arrival or a load completion) must end
 * with exitStatus "deadlock" and a diagnostic naming the blocked
 * warps, long before maxCycles; a clean kernel must be untouched by
 * an enabled watchdog; with the watchdog disabled the same wedge
 * burns to the maxCycles timeout.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "isa/program_builder.hh"
#include "sim/gpu.hh"

namespace cawa
{
namespace
{

/// These tests pick audit levels per-config (several need the auditor
/// *off* so the watchdog is the detector); a CAWA_CHECK inherited
/// from the environment (e.g. the "check" preset) would override
/// them, so drop it for this binary.
class PinnedCheckLevel : public ::testing::Environment
{
    void SetUp() override { unsetenv("CAWA_CHECK"); }
};
const auto *const pinned_check_level =
    ::testing::AddGlobalTestEnvironment(new PinnedCheckLevel);

/// Per-thread load -> ALU -> barrier -> store: exercises both fault
/// hooks (barrier arrivals and load completions).
Program
barrierProgram()
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(4, 1, 2);
    b.ldGlobal(2, 4, 0x100000);
    b.addImm(3, 2, 1);
    b.bar();
    b.stGlobal(4, 3, 0x200000);
    b.exit();
    return b.build();
}

KernelInfo
kernel(Program p, int grid, int block)
{
    KernelInfo k;
    k.name = "t";
    k.program = std::move(p);
    k.gridDim = grid;
    k.blockDim = block;
    return k;
}

/// One SM, auditor off (these tests exercise the watchdog alone),
/// tight watchdog cadence so detection is fast.
GpuConfig
watchdogCfg()
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    cfg.checkLevel = 0;
    cfg.watchdogInterval = 1'000;
    cfg.maxCycles = 1'000'000;
    return cfg;
}

TEST(Watchdog, BarrierDeadlockClassified)
{
    GpuConfig cfg = watchdogCfg();
    cfg.faults.dropBarrierArrival = 0; // swallow the first arrival
    MemoryImage mem;
    const SimReport r = runKernel(cfg, mem, kernel(barrierProgram(),
                                                   2, 64));
    EXPECT_EQ(r.exitStatus, ExitStatus::Deadlock);
    EXPECT_FALSE(r.timedOut);
    // Detected by the next watchdog boundary, not at the timeout.
    EXPECT_LT(r.cycles, 100'000u);
    // The dump names the failure class and the stuck warps.
    EXPECT_NE(r.diagnostic.find("barrier deadlock"), std::string::npos)
        << r.diagnostic;
    EXPECT_NE(r.diagnostic.find("atBarrier"), std::string::npos)
        << r.diagnostic;
    EXPECT_NE(r.diagnostic.find("sm 0"), std::string::npos)
        << r.diagnostic;
}

TEST(Watchdog, TokenLeakClassified)
{
    GpuConfig cfg = watchdogCfg();
    cfg.faults.dropLoadCompletion = 0; // drop the first L1 delivery
    MemoryImage mem;
    const SimReport r = runKernel(cfg, mem, kernel(barrierProgram(),
                                                   2, 64));
    EXPECT_EQ(r.exitStatus, ExitStatus::Deadlock);
    EXPECT_LT(r.cycles, 100'000u);
    EXPECT_NE(r.diagnostic.find("token leak"), std::string::npos)
        << r.diagnostic;
}

TEST(Watchdog, CleanRunCompletes)
{
    // The watchdog is a pure observer: a healthy kernel completes
    // with an empty diagnostic and the same results as ever.
    MemoryImage mem;
    const SimReport r = runKernel(watchdogCfg(), mem,
                                  kernel(barrierProgram(), 4, 64));
    EXPECT_EQ(r.exitStatus, ExitStatus::Completed);
    EXPECT_TRUE(r.diagnostic.empty());
    for (int t = 0; t < 4 * 64; ++t)
        EXPECT_EQ(mem.read32(0x200000 + 4ull * t), 1u);
}

TEST(Watchdog, DisabledWatchdogBurnsToTimeout)
{
    GpuConfig cfg = watchdogCfg();
    cfg.watchdogInterval = 0; // disabled
    cfg.faults.dropBarrierArrival = 0;
    cfg.maxCycles = 20'000;
    MemoryImage mem;
    const SimReport r = runKernel(cfg, mem, kernel(barrierProgram(),
                                                   2, 64));
    EXPECT_EQ(r.exitStatus, ExitStatus::Timeout);
    EXPECT_TRUE(r.timedOut);
    EXPECT_EQ(r.cycles, 20'000u);
}

TEST(Watchdog, DeadlockReportStillCarriesProgress)
{
    // The deadlock report is a real report: instructions retired
    // before the wedge are still counted.
    GpuConfig cfg = watchdogCfg();
    cfg.faults.dropBarrierArrival = 0;
    MemoryImage mem;
    const SimReport r = runKernel(cfg, mem, kernel(barrierProgram(),
                                                   2, 64));
    EXPECT_EQ(r.exitStatus, ExitStatus::Deadlock);
    EXPECT_GT(r.instructions, 0u);
}

} // namespace
} // namespace cawa
