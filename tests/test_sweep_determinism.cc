/**
 * @file
 * Locks in simulator determinism under the parallel sweep engine:
 * the same job list must produce byte-identical SimReport streams
 * (cycles, instructions, L1/L2 counters, block records, trace) at
 * any worker count, and back-to-back serial runs must match too.
 */

#include <gtest/gtest.h>

#include "sim/report_json.hh"
#include "sim/sweep.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams params;
    params.scale = 0.15;
    params.seed = 1;
    return params;
}

GpuConfig
config(SchedulerKind sched, CachePolicyKind policy)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.scheduler = sched;
    cfg.l1Policy = policy;
    return cfg;
}

std::vector<WorkloadJobSpec>
mixedSpecs()
{
    const WorkloadParams params = tinyParams();
    return {
        {"bfs", config(SchedulerKind::Gto, CachePolicyKind::Lru),
         params},
        {"bfs", config(SchedulerKind::Gcaws, CachePolicyKind::Cacp),
         params},
        {"pathfinder",
         config(SchedulerKind::Lrr, CachePolicyKind::Lru), params},
        {"pathfinder",
         config(SchedulerKind::Gcaws, CachePolicyKind::Cacp), params},
        {"kmeans", config(SchedulerKind::Gto, CachePolicyKind::Cacp),
         params},
    };
}

/** Full-fidelity serialization: any behavioural drift shows up. */
std::vector<std::string>
runAndSerialize(int threads, int sim_threads = 1)
{
    const SweepEngine engine(threads);
    EXPECT_EQ(engine.threads(), threads);
    std::vector<WorkloadJobSpec> specs = mixedSpecs();
    for (WorkloadJobSpec &spec : specs)
        spec.cfg.simThreads = sim_threads;
    const auto results = engine.run(makeWorkloadJobs(specs));
    std::vector<std::string> docs;
    for (const auto &res : results) {
        EXPECT_TRUE(res.ok()) << res.error;
        docs.push_back(toJson(res.report));
    }
    return docs;
}

} // namespace

TEST(SweepDeterminism, IdenticalReportsAcrossThreadCounts)
{
    const std::vector<std::string> serial = runAndSerialize(1);
    ASSERT_EQ(serial.size(), mixedSpecs().size());

    for (int threads : {2, 8}) {
        const std::vector<std::string> parallel =
            runAndSerialize(threads);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(serial[i], parallel[i])
                << "report " << i << " differs at " << threads
                << " threads";
    }
}

/**
 * Both parallelism layers at once: the sweep pool runs whole jobs on
 * worker threads while each job's Gpu ticks its SMs on a nested
 * fork-join team (GpuConfig::simThreads). Every cell of the outer x
 * inner cross-product must reproduce the serial-serial bytes — this
 * is the configuration a real sweep on a many-core box runs in, and
 * it exercises the thread-local sim_assert plumbing (each nested
 * worker inherits its job thread's throw mode).
 */
TEST(SweepDeterminism, SweepPoolTimesSimThreadsCrossProduct)
{
    const std::vector<std::string> reference = runAndSerialize(1, 1);
    ASSERT_EQ(reference.size(), mixedSpecs().size());

    for (int outer : {1, 2, 8}) {
        for (int inner : {1, 2, 4}) {
            if (outer == 1 && inner == 1)
                continue; // that is the reference itself
            const std::vector<std::string> docs =
                runAndSerialize(outer, inner);
            ASSERT_EQ(reference.size(), docs.size());
            for (std::size_t i = 0; i < reference.size(); ++i)
                EXPECT_EQ(reference[i], docs[i])
                    << "report " << i << " differs at sweep pool "
                    << outer << " x simThreads " << inner;
        }
    }
}

TEST(SweepDeterminism, ResultsComeBackInSubmissionOrder)
{
    const auto specs = mixedSpecs();
    const SweepEngine engine(8);
    const auto results = engine.run(makeWorkloadJobs(specs));
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(results[i].report.kernelName, specs[i].workload);
        EXPECT_EQ(results[i].report.schedulerName,
                  schedulerKindName(specs[i].cfg.scheduler));
    }
}

TEST(SweepDeterminism, BackToBackCawaRunsAreBitwiseEqual)
{
    WorkloadJobSpec spec{
        "bfs", config(SchedulerKind::Gcaws, CachePolicyKind::Cacp),
        tinyParams()};
    const SweepResult first = runSweepJob(makeWorkloadJob(spec));
    const SweepResult second = runSweepJob(makeWorkloadJob(spec));
    ASSERT_TRUE(first.ok()) << first.error;
    ASSERT_TRUE(second.ok()) << second.error;
    EXPECT_GT(first.report.cycles, 0u);
    EXPECT_GT(first.report.instructions, 0u);
    EXPECT_EQ(toJson(first.report), toJson(second.report));
}

TEST(SweepDeterminism, SeedChangesTheRun)
{
    WorkloadJobSpec a{
        "bfs", config(SchedulerKind::Gto, CachePolicyKind::Lru),
        tinyParams()};
    WorkloadJobSpec b = a;
    b.params.seed = 2;
    const SweepResult ra = runSweepJob(makeWorkloadJob(a));
    const SweepResult rb = runSweepJob(makeWorkloadJob(b));
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_NE(toJson(ra.report), toJson(rb.report));
}
