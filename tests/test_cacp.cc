/**
 * @file
 * CACP unit tests: CCBP/SHiP table transitions, partition-respecting
 * victim selection, and the Algorithm 4 training rules (critical hit
 * increments, misprediction rollback on eviction, zero-reuse SHiP
 * decrement).
 */

#include <gtest/gtest.h>

#include "mem/cacp_policy.hh"

namespace cawa
{
namespace
{

CacpConfig
smallConfig()
{
    CacpConfig cfg;
    cfg.criticalWays = 2;
    cfg.tableEntries = 256;
    cfg.ccbpThreshold = 2;
    cfg.ccbpInitial = 1;
    cfg.regionShift = 7;
    return cfg;
}

AccessInfo
mkAccess(Addr addr, bool critical, std::uint32_t pc = 0)
{
    AccessInfo info;
    info.addr = addr;
    info.pc = pc;
    info.criticalWarp = critical;
    return info;
}

int
fill(TagArray &t, CacpPolicy &p, const AccessInfo &info)
{
    const auto set = t.setIndex(info.addr);
    const int way = p.selectVictim(t, set, info);
    auto &line = t.line(set, way);
    if (line.valid)
        p.onEvict(t, set, way);
    line.valid = true;
    line.tag = t.tagOf(info.addr);
    line.reuseCount = 0;
    p.onFill(t, set, way, info);
    return way;
}

TEST(CcbpTable, SaturatingCounters)
{
    CcbpTable t(256, 2, 1);
    const CacheSignature sig = 42;
    EXPECT_EQ(t.counter(sig), 1);
    EXPECT_FALSE(t.predictCritical(sig));
    t.increment(sig);
    EXPECT_TRUE(t.predictCritical(sig));
    t.increment(sig);
    t.increment(sig);
    t.increment(sig);
    EXPECT_EQ(t.counter(sig), 3); // saturates at 3
    for (int i = 0; i < 6; ++i)
        t.decrement(sig);
    EXPECT_EQ(t.counter(sig), 0); // saturates at 0
    EXPECT_FALSE(t.predictCritical(sig));
}

TEST(CcbpTable, SignatureMasking)
{
    CcbpTable t(256, 2, 1);
    t.increment(7);
    // Signature 7+256 aliases to the same entry.
    EXPECT_EQ(t.counter(static_cast<CacheSignature>(7 + 256)),
              t.counter(7));
}

TEST(ShipTable, InsertionRrpvFollowsPrediction)
{
    ShipTable t(256);
    const CacheSignature sig = 9;
    EXPECT_EQ(t.insertionRrpv(sig), 2);
    t.decrement(sig);
    EXPECT_EQ(t.insertionRrpv(sig), 3);
    t.increment(sig);
    EXPECT_EQ(t.insertionRrpv(sig), 2);
}

TEST(CacpPolicy, UntrainedLinesGoToNonCriticalPartition)
{
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig()); // ways 0-1 critical, 2-3 non-crit
    const int way = fill(tags, p, mkAccess(0, false));
    EXPECT_GE(way, 2);
    EXPECT_FALSE(tags.line(0, way).inCriticalPartition);
}

TEST(CacpPolicy, TrainedSignaturesGoToCriticalPartition)
{
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig());
    const AccessInfo acc = mkAccess(0, true);
    // Train: fill, then hit by a critical warp (CCBP 1 -> 2).
    const int way = fill(tags, p, acc);
    tags.line(0, way).reuseCount = 1;
    p.onHit(tags, 0, way, acc);
    EXPECT_TRUE(p.ccbp().predictCritical(tags.line(0, way).signature));
    // Same signature now fills into the critical partition.
    const int way2 = fill(tags, p, mkAccess(128 * 256, true));
    // (different address, same low region bits xor pc -> check via
    // partition flag rather than signature equality)
    if (p.ccbp().predictCritical(tags.line(0, way2).signature))
        EXPECT_LT(way2, 2);
}

TEST(CacpPolicy, CriticalHitSetsFlagsAndTrainsBoth)
{
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig());
    const AccessInfo acc = mkAccess(0, true);
    const int way = fill(tags, p, acc);
    auto &line = tags.line(0, way);
    const auto ccbp_before = p.ccbp().counter(line.signature);
    const auto ship_before = p.ship().counter(line.signature);
    line.reuseCount = 1;
    p.onHit(tags, 0, way, acc);
    EXPECT_TRUE(line.cReuse);
    EXPECT_FALSE(line.ncReuse);
    EXPECT_EQ(line.rrpv, 0);
    EXPECT_EQ(p.ccbp().counter(line.signature), ccbp_before + 1);
    EXPECT_EQ(p.ship().counter(line.signature), ship_before + 1);
}

TEST(CacpPolicy, NonCriticalHitTrainsShipOnly)
{
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig());
    const int way = fill(tags, p, mkAccess(0, false));
    auto &line = tags.line(0, way);
    const auto ccbp_before = p.ccbp().counter(line.signature);
    line.reuseCount = 1;
    p.onHit(tags, 0, way, mkAccess(0, false));
    EXPECT_FALSE(line.cReuse);
    EXPECT_TRUE(line.ncReuse);
    EXPECT_EQ(p.ccbp().counter(line.signature), ccbp_before);
}

TEST(CacpPolicy, MispredictionRollbackOnEviction)
{
    // A line that lived in the critical partition but was only
    // reused by non-critical warps decrements CCBP (Algorithm 4's
    // EVICTLINE first case).
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig());
    const int way = fill(tags, p, mkAccess(0, false));
    auto &line = tags.line(0, way);
    line.inCriticalPartition = true; // place it in the critical part
    p.ccbp().counter(line.signature);
    const auto sig = line.signature;
    // Bump the counter so the decrement is observable.
    CacpPolicy &ref = p;
    (void)ref;
    line.reuseCount = 1;
    p.onHit(tags, 0, way, mkAccess(0, false)); // nc reuse
    const auto before = p.ccbp().counter(sig);
    p.onEvict(tags, 0, way);
    EXPECT_EQ(p.ccbp().counter(sig), before - 1);
}

TEST(CacpPolicy, ZeroReuseEvictionDecrementsShip)
{
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig());
    const int way = fill(tags, p, mkAccess(0, false));
    const auto sig = tags.line(0, way).signature;
    const auto before = p.ship().counter(sig);
    p.onEvict(tags, 0, way); // no reuse at all
    EXPECT_EQ(p.ship().counter(sig), before - 1);
}

TEST(CacpPolicy, CriticalReuseEvictionDoesNotRollBack)
{
    TagArray tags(1, 4, 128);
    CacpPolicy p(smallConfig());
    const AccessInfo acc = mkAccess(0, true);
    const int way = fill(tags, p, acc);
    auto &line = tags.line(0, way);
    line.reuseCount = 1;
    p.onHit(tags, 0, way, acc);
    const auto ccbp = p.ccbp().counter(line.signature);
    const auto ship = p.ship().counter(line.signature);
    p.onEvict(tags, 0, way);
    EXPECT_EQ(p.ccbp().counter(line.signature), ccbp);
    EXPECT_EQ(p.ship().counter(line.signature), ship);
}

TEST(CacpPolicy, DegeneratePartitionsFallBackToWholeSet)
{
    TagArray tags(1, 4, 128);
    CacpConfig cfg = smallConfig();
    cfg.criticalWays = 0;
    CacpPolicy p(cfg);
    // All fills must still find victims across the whole set.
    for (int i = 0; i < 8; ++i)
        fill(tags, p, mkAccess(128ull * 256 * i, false));
    EXPECT_EQ(tags.validCount(0), 4);

    TagArray tags2(1, 4, 128);
    cfg.criticalWays = 4;
    CacpPolicy p2(cfg);
    for (int i = 0; i < 8; ++i)
        fill(tags2, p2, mkAccess(128ull * 256 * i, false));
    EXPECT_EQ(tags2.validCount(0), 4);
}

TEST(CacpPolicy, PartitionOccupancyInvariant)
{
    // Property: lines whose partition flag says critical always sit
    // in ways [0, criticalWays).
    TagArray tags(4, 8, 128);
    CacpConfig cfg = smallConfig();
    cfg.criticalWays = 3;
    CacpPolicy p(cfg);
    // Train some signatures critical by hitting with critical warps.
    for (int i = 0; i < 200; ++i) {
        const Addr addr = 128ull * (i * 13 % 512);
        const bool critical = i % 3 == 0;
        const auto set = tags.setIndex(addr);
        const int hit_way = tags.probe(addr);
        if (hit_way >= 0) {
            tags.line(set, hit_way).reuseCount++;
            p.onHit(tags, set, hit_way, mkAccess(addr, critical));
        } else {
            fill(tags, p, mkAccess(addr, critical));
        }
    }
    for (std::uint32_t set = 0; set < 4; ++set) {
        for (int way = 0; way < 8; ++way) {
            const auto &line = tags.line(set, way);
            if (line.valid && line.inCriticalPartition)
                EXPECT_LT(way, cfg.criticalWays);
        }
    }
}

} // namespace
} // namespace cawa
