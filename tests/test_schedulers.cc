/**
 * @file
 * Warp scheduler policy tests: each policy's selection rule (LRR
 * rotation, GTO greed + oldest, two-level demotion/promotion, CAWS
 * priority, gCAWS greed + criticality), plus the property that every
 * policy only ever picks from the ready set.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sched/caws_oracle.hh"
#include "sched/gcaws.hh"
#include "sched/gto.hh"
#include "sched/lrr.hh"
#include "sched/scheduler.hh"
#include "sched/two_level.hh"

namespace cawa
{
namespace
{

constexpr int kSlots = 16;

struct Arrays
{
    std::vector<std::uint64_t> age;
    std::vector<std::int64_t> priority;

    Arrays() : age(kSlots), priority(kSlots)
    {
        for (int i = 0; i < kSlots; ++i)
            age[i] = i; // slot id == dispatch order by default
    }

    SchedCtx ctx() const { return SchedCtx{age, priority}; }
};

TEST(Factory, CreatesEveryKind)
{
    for (SchedulerKind kind :
         {SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::TwoLevel,
          SchedulerKind::CawsOracle, SchedulerKind::Gcaws}) {
        auto s = createScheduler(kind, kSlots);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->name(), schedulerKindName(kind));
    }
}

TEST(Lrr, RotatesThroughReadyWarps)
{
    LrrScheduler s(kSlots);
    Arrays a;
    const std::vector<WarpSlot> ready{1, 4, 9};
    WarpSlot pick = s.pick(ready, a.ctx());
    EXPECT_EQ(pick, 1);
    s.notifyIssued(pick);
    pick = s.pick(ready, a.ctx());
    EXPECT_EQ(pick, 4);
    s.notifyIssued(pick);
    pick = s.pick(ready, a.ctx());
    EXPECT_EQ(pick, 9);
    s.notifyIssued(pick);
    pick = s.pick(ready, a.ctx());
    EXPECT_EQ(pick, 1); // wraps
}

TEST(Lrr, EmptyReadyReturnsNoWarp)
{
    LrrScheduler s(kSlots);
    Arrays a;
    EXPECT_EQ(s.pick({}, a.ctx()), kNoWarp);
}

TEST(Gto, GreedyThenOldest)
{
    GtoScheduler s;
    Arrays a;
    a.age = {5, 3, 8, 1};
    a.age.resize(kSlots, 99);
    // First pick with no current warp: the oldest ready (slot 3,
    // age 1).
    WarpSlot pick = s.pick({0, 1, 2, 3}, a.ctx());
    EXPECT_EQ(pick, 3);
    s.notifyIssued(pick);
    // Greedy: stays on 3 while it remains ready.
    EXPECT_EQ(s.pick({0, 1, 3}, a.ctx()), 3);
    // 3 stalls: falls back to the oldest remaining (slot 1, age 3).
    EXPECT_EQ(s.pick({0, 1, 2}, a.ctx()), 1);
}

TEST(Gto, DeactivationClearsGreedyTarget)
{
    GtoScheduler s;
    Arrays a;
    s.notifyIssued(2);
    s.notifyDeactivated(2);
    a.age = {7, 2};
    a.age.resize(kSlots, 99);
    EXPECT_EQ(s.pick({0, 1}, a.ctx()), 1);
}

TEST(TwoLevel, RoundRobinWithinActiveSet)
{
    TwoLevelScheduler s(kSlots, 2);
    Arrays a;
    for (WarpSlot w : {0, 1, 2, 3})
        s.notifyActivated(w);
    EXPECT_EQ(s.activeCount(), 2);
    EXPECT_TRUE(s.isActive(0));
    EXPECT_TRUE(s.isActive(1));
    EXPECT_FALSE(s.isActive(2));
    // Only active warps are picked even when pending ones are ready.
    const std::vector<WarpSlot> ready{0, 1, 2, 3};
    WarpSlot pick = s.pick(ready, a.ctx());
    EXPECT_TRUE(pick == 0 || pick == 1);
    s.notifyIssued(pick);
    const WarpSlot next = s.pick(ready, a.ctx());
    EXPECT_NE(next, pick);
    EXPECT_TRUE(s.isActive(next));
}

TEST(TwoLevel, LongStallDemotesAndPromotes)
{
    TwoLevelScheduler s(kSlots, 2);
    Arrays a;
    for (WarpSlot w : {0, 1, 2})
        s.notifyActivated(w);
    s.notifyLongStall(0);
    EXPECT_FALSE(s.isActive(0));
    EXPECT_TRUE(s.isActive(2)); // promoted from pending
    EXPECT_EQ(s.activeCount(), 2);
}

TEST(TwoLevel, DeadlockFreeWhenActiveSetStalls)
{
    TwoLevelScheduler s(kSlots, 2);
    Arrays a;
    for (WarpSlot w : {0, 1, 2, 3})
        s.notifyActivated(w);
    // Only a pending warp is ready: it must still get picked.
    EXPECT_EQ(s.pick({3}, a.ctx()), 3);
    EXPECT_TRUE(s.isActive(3));
}

TEST(TwoLevel, DeactivationRemovesEverywhere)
{
    TwoLevelScheduler s(kSlots, 2);
    Arrays a;
    for (WarpSlot w : {0, 1, 2})
        s.notifyActivated(w);
    s.notifyDeactivated(0);
    EXPECT_FALSE(s.isActive(0));
    EXPECT_TRUE(s.isActive(2)); // pending warp promoted
}

TEST(CawsOracle, PicksHighestPriority)
{
    CawsOracleScheduler s;
    Arrays a;
    a.priority = {10, 50, 30};
    a.priority.resize(kSlots, 0);
    EXPECT_EQ(s.pick({0, 1, 2}, a.ctx()), 1);
    // Not greedy: keeps picking by priority even after issuing.
    s.notifyIssued(1);
    a.priority[2] = 99;
    EXPECT_EQ(s.pick({0, 1, 2}, a.ctx()), 2);
}

TEST(CawsOracle, TieBreaksOldest)
{
    CawsOracleScheduler s;
    Arrays a;
    a.priority = {7, 7, 7};
    a.priority.resize(kSlots, 0);
    a.age = {3, 1, 2};
    a.age.resize(kSlots, 99);
    EXPECT_EQ(s.pick({0, 1, 2}, a.ctx()), 1);
}

TEST(Gcaws, GreedyOnCurrentThenCriticality)
{
    GcawsScheduler s;
    Arrays a;
    a.priority = {10, 50, 30};
    a.priority.resize(kSlots, 0);
    // Selection by criticality.
    WarpSlot pick = s.pick({0, 1, 2}, a.ctx());
    EXPECT_EQ(pick, 1);
    s.notifyIssued(pick);
    // Greedy: holds the current warp even when another becomes more
    // critical.
    a.priority[2] = 99;
    EXPECT_EQ(s.pick({0, 1, 2}, a.ctx()), 1);
    // Current warp stalls: switch to the most critical ready warp.
    EXPECT_EQ(s.pick({0, 2}, a.ctx()), 2);
}

TEST(Gcaws, TieBreaksOldestLikeGto)
{
    GcawsScheduler s;
    Arrays a;
    a.priority = {5, 5, 5, 5};
    a.priority.resize(kSlots, 0);
    a.age = {4, 2, 9, 7};
    a.age.resize(kSlots, 99);
    EXPECT_EQ(s.pick({0, 1, 2, 3}, a.ctx()), 1);
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(SchedulerPropertyTest, AlwaysPicksFromReadySet)
{
    auto s = createScheduler(GetParam(), kSlots);
    Arrays a;
    Rng rng(99);
    for (int slot = 0; slot < kSlots; ++slot)
        s->notifyActivated(slot);
    for (int step = 0; step < 2000; ++step) {
        std::vector<WarpSlot> ready;
        for (int slot = 0; slot < kSlots; ++slot) {
            a.priority[slot] =
                static_cast<std::int64_t>(rng.nextBounded(1000));
            if (rng.nextBounded(3) != 0)
                ready.push_back(slot);
        }
        const WarpSlot pick = s->pick(ready, a.ctx());
        if (ready.empty()) {
            ASSERT_EQ(pick, kNoWarp);
            continue;
        }
        ASSERT_NE(std::find(ready.begin(), ready.end(), pick),
                  ready.end());
        s->notifyIssued(pick);
        if (rng.nextBounded(8) == 0)
            s->notifyLongStall(pick);
        if (rng.nextBounded(50) == 0) {
            s->notifyDeactivated(pick);
            s->notifyActivated(pick);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedulerPropertyTest,
    ::testing::Values(SchedulerKind::Lrr, SchedulerKind::Gto,
                      SchedulerKind::TwoLevel, SchedulerKind::CawsOracle,
                      SchedulerKind::Gcaws),
    [](const ::testing::TestParamInfo<SchedulerKind> &info) {
        std::string n = schedulerKindName(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace cawa
