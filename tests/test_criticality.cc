/**
 * @file
 * CPL unit tests: branch-delta inference (Algorithm 2), stall
 * accounting at issue (Algorithm 3), Eq. (1) composition, frozen
 * finished warps, block-scoped critical classification and the
 * priority quantization.
 */

#include <gtest/gtest.h>

#include "cawa/criticality.hh"

namespace cawa
{
namespace
{

TEST(BranchDelta, ForwardIfElse)
{
    // bra at 4 -> target 10, reconv 12: fall path 5..9 (5 instrs),
    // taken path 10..11 (2 instrs).
    EXPECT_EQ(CriticalityPredictor::branchDelta(4, 10, 12, true, false),
              2);
    EXPECT_EQ(CriticalityPredictor::branchDelta(4, 10, 12, false, false),
              5);
    // Divergence pays for both sides (the Fig 6 m+n case).
    EXPECT_EQ(CriticalityPredictor::branchDelta(4, 10, 12, true, true),
              7);
}

TEST(BranchDelta, BranchToReconvergence)
{
    // if-without-else: taken path is empty.
    EXPECT_EQ(CriticalityPredictor::branchDelta(4, 12, 12, true, false),
              0);
    EXPECT_EQ(CriticalityPredictor::branchDelta(4, 12, 12, false, false),
              7);
}

TEST(BranchDelta, BackwardLoopEdge)
{
    // bra at 9 -> target 3: body length 7.
    EXPECT_EQ(CriticalityPredictor::branchDelta(9, 3, 10, true, false),
              7);
    EXPECT_EQ(CriticalityPredictor::branchDelta(9, 3, 10, false, false),
              0);
    EXPECT_EQ(CriticalityPredictor::branchDelta(9, 3, 10, true, true),
              7);
}

TEST(Cpl, StallAccruesAtIssue)
{
    CriticalityPredictor cpl(4, 0.25);
    cpl.reset(0, 100, 1);
    cpl.onIssue(0, 101);  // gap 0
    EXPECT_EQ(cpl.stallCycles(0), 0u);
    cpl.onIssue(0, 102);  // back-to-back
    EXPECT_EQ(cpl.stallCycles(0), 0u);
    cpl.onIssue(0, 150);  // 47 idle cycles between issues
    EXPECT_EQ(cpl.stallCycles(0), 47u);
}

TEST(Cpl, CommitBalancesBranchDelta)
{
    CriticalityPredictor cpl(4, 0.25);
    cpl.reset(0, 0, 1);
    cpl.onBranch(0, 4, 10, 12, true, true); // +7
    EXPECT_EQ(cpl.instDisparity(0), 7);
    for (int i = 0; i < 7; ++i)
        cpl.onIssue(0, 10 + i);
    EXPECT_EQ(cpl.instDisparity(0), 0);
}

TEST(Cpl, CriticalityCombinesTermsPerEq1)
{
    CriticalityPredictor cpl(4, 0.25);
    cpl.reset(0, 0, 1);
    cpl.onIssue(0, 50);                      // stall 49
    cpl.onBranch(0, 4, 10, 12, true, true);  // +7 pending
    // criticality = nInst * CPI + nStall; both terms positive.
    const auto full = cpl.criticality(0);
    EXPECT_GT(full, 49);

    cpl.setUseInstTerm(false);
    EXPECT_EQ(cpl.criticality(0), 49);
    cpl.setUseInstTerm(true);
    cpl.setUseStallTerm(false);
    EXPECT_EQ(cpl.criticality(0), full - 49);
}

TEST(Cpl, BarrierReleaseIsNotStall)
{
    CriticalityPredictor cpl(4, 0.25);
    cpl.reset(0, 0, 1);
    cpl.onIssue(0, 1);
    cpl.releaseBarrier(0, 500);
    cpl.onIssue(0, 501);
    EXPECT_EQ(cpl.stallCycles(0), 0u);
}

TEST(Cpl, FinishedWarpFreezes)
{
    CriticalityPredictor cpl(4, 0.25);
    cpl.reset(0, 0, 1);
    cpl.onIssue(0, 100);
    const auto frozen = cpl.criticality(0);
    cpl.deactivate(0);
    EXPECT_EQ(cpl.criticality(0), frozen);
    // Finished warps are never classified critical for the cache.
    EXPECT_FALSE(cpl.isCriticalWarp(0));
}

TEST(Cpl, IsCriticalRanksWithinBlock)
{
    CriticalityPredictor cpl(8, 0.25);
    // Block 1 on slots 0-3, block 2 on slots 4-7.
    for (int s = 0; s < 4; ++s)
        cpl.reset(s, 0, 1);
    for (int s = 4; s < 8; ++s)
        cpl.reset(s, 0, 2);
    // Slot 2 stalls massively: top of block 1.
    cpl.onIssue(2, 1000);
    cpl.onIssue(0, 10);
    cpl.onIssue(1, 20);
    cpl.onIssue(3, 30);
    EXPECT_TRUE(cpl.isCriticalWarp(2));
    EXPECT_FALSE(cpl.isCriticalWarp(0));
    // Block 2 is independent: its top warp is critical even though
    // its counter is smaller than block 1's top.
    cpl.onIssue(5, 200);
    EXPECT_TRUE(cpl.isCriticalWarp(5));
}

TEST(Cpl, CriticalFractionWidensSelection)
{
    CriticalityPredictor strict(8, 0.125);
    CriticalityPredictor loose(8, 0.5);
    for (int s = 0; s < 8; ++s) {
        strict.reset(s, 0, 1);
        loose.reset(s, 0, 1);
        strict.onIssue(s, 10 * (s + 1));
        loose.onIssue(s, 10 * (s + 1));
    }
    int strict_n = 0;
    int loose_n = 0;
    for (int s = 0; s < 8; ++s) {
        strict_n += strict.isCriticalWarp(s);
        loose_n += loose.isCriticalWarp(s);
    }
    EXPECT_LT(strict_n, loose_n);
    EXPECT_GE(strict_n, 1);
}

TEST(Cpl, PriorityQuantization)
{
    // priority() converts the cycle-valued counter to instruction
    // units (divide by CPI) and truncates to 2^shift buckets, so
    // small progress differences compare equal and fall back to the
    // age tie-break.
    CriticalityPredictor cpl(4, 0.25);
    cpl.setQuantShift(4);
    cpl.reset(0, 0, 1);
    cpl.reset(1, 0, 1);
    cpl.onIssue(0, 100);   // stall 99
    cpl.onIssue(1, 900);   // stall 899
    EXPECT_EQ(cpl.priority(0), cpl.priority(1));
    EXPECT_NE(cpl.criticality(0), cpl.criticality(1));
    cpl.onIssue(1, 5000);  // far behind now
    EXPECT_GT(cpl.priority(1), cpl.priority(0));
}

TEST(Cpl, ResetClearsState)
{
    CriticalityPredictor cpl(4, 0.25);
    cpl.reset(0, 0, 1);
    cpl.onIssue(0, 500);
    cpl.onBranch(0, 4, 10, 12, true, true);
    cpl.reset(0, 1000, 2);
    EXPECT_EQ(cpl.criticality(0), 0);
    EXPECT_EQ(cpl.stallCycles(0), 0u);
    EXPECT_EQ(cpl.instDisparity(0), 0);
}

TEST(Cpl, CriticalityNeverNegativeFromStallsAlone)
{
    CriticalityPredictor cpl(2, 0.5);
    cpl.setUseInstTerm(false);
    cpl.reset(0, 0, 1);
    for (Cycle t = 1; t < 100; t += 7)
        cpl.onIssue(0, t);
    EXPECT_GE(cpl.criticality(0), 0);
}

} // namespace
} // namespace cawa
