/**
 * @file
 * End-to-end integration: every workload runs to completion on the
 * timing simulator under every scheduler and cache policy of
 * interest, and the resulting memory image matches the functional
 * reference. Also checks simulator-level invariants (block count,
 * determinism) and the paper's headline behavioural regressions.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "sim/oracle.hh"
#include "workloads/registry.hh"

namespace cawa
{
namespace
{

GpuConfig
testConfig()
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 4;        // keep test runtime small
    cfg.maxCycles = 20'000'000;
    return cfg;
}

WorkloadParams
testParams()
{
    WorkloadParams params;
    params.scale = 0.2;
    return params;
}

struct RunCase
{
    std::string workload;
    SchedulerKind sched;
    CachePolicyKind cache;
};

std::string
caseName(const ::testing::TestParamInfo<RunCase> &info)
{
    std::string s = info.param.workload + "_" +
                    schedulerKindName(info.param.sched) + "_" +
                    cachePolicyKindName(info.param.cache);
    for (char &c : s)
        if (c == '+' || c == '-')
            c = 'p';
    return s;
}

class RunMatrixTest : public ::testing::TestWithParam<RunCase>
{
};

TEST_P(RunMatrixTest, RunsAndVerifies)
{
    const RunCase &rc = GetParam();
    GpuConfig cfg = testConfig();
    cfg.scheduler = rc.sched;
    cfg.l1Policy = rc.cache;

    auto wl = makeWorkload(rc.workload);
    MemoryImage mem;
    const KernelInfo kernel = wl->build(mem, testParams());
    const SimReport report = runKernel(cfg, mem, kernel);

    EXPECT_FALSE(report.timedOut);
    EXPECT_EQ(report.blocks.size(),
              static_cast<std::size_t>(kernel.gridDim));
    EXPECT_GT(report.instructions, 0u);
    EXPECT_GT(report.cycles, 0u);
    EXPECT_TRUE(wl->verify(mem))
        << rc.workload << " produced wrong results under "
        << schedulerKindName(rc.sched);

    // Every block's warps all finished inside the block's lifetime.
    for (const auto &b : report.blocks) {
        for (const auto &w : b.warps) {
            EXPECT_GE(w.endCycle, w.startCycle);
            EXPECT_LE(w.endCycle, b.endCycle);
            EXPECT_GT(w.instructions, 0u);
        }
    }
}

std::vector<RunCase>
makeMatrix()
{
    std::vector<RunCase> cases;
    // All workloads under the baseline and under full CAWA.
    for (const auto &name : allWorkloadNames()) {
        cases.push_back({name, SchedulerKind::Lrr,
                         CachePolicyKind::Lru});
        cases.push_back({name, SchedulerKind::Gcaws,
                         CachePolicyKind::Cacp});
    }
    // Scheduler sweep on a divergent and a memory-bound workload.
    for (SchedulerKind sched :
         {SchedulerKind::Gto, SchedulerKind::TwoLevel,
          SchedulerKind::Gcaws}) {
        cases.push_back({"bfs", sched, CachePolicyKind::Lru});
        cases.push_back({"kmeans", sched, CachePolicyKind::Lru});
    }
    // Cache-policy sweep under a fixed scheduler.
    for (CachePolicyKind cache :
         {CachePolicyKind::Srrip, CachePolicyKind::Ship,
          CachePolicyKind::Cacp}) {
        cases.push_back({"kmeans", SchedulerKind::Gto, cache});
        cases.push_back({"bfs", SchedulerKind::Lrr, cache});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, RunMatrixTest,
                         ::testing::ValuesIn(makeMatrix()), caseName);

TEST(Integration, DeterministicReplay)
{
    for (int rep = 0; rep < 2; ++rep) {
        static Cycle first_cycles = 0;
        static std::uint64_t first_instr = 0;
        GpuConfig cfg = testConfig();
        cfg.scheduler = SchedulerKind::Gcaws;
        cfg.l1Policy = CachePolicyKind::Cacp;
        auto wl = makeWorkload("bfs");
        MemoryImage mem;
        const KernelInfo kernel = wl->build(mem, testParams());
        const SimReport report = runKernel(cfg, mem, kernel);
        if (rep == 0) {
            first_cycles = report.cycles;
            first_instr = report.instructions;
        } else {
            EXPECT_EQ(report.cycles, first_cycles);
            EXPECT_EQ(report.instructions, first_instr);
        }
    }
}

TEST(Integration, CawsOracleTwoPass)
{
    GpuConfig cfg = testConfig();
    auto wl = makeWorkload("bfs");
    MemoryImage mem;
    MemoryImage profile_mem;
    const KernelInfo kernel = wl->build(mem, testParams());
    auto wl2 = makeWorkload("bfs");
    wl2->build(profile_mem, testParams());

    const SimReport report =
        runWithCawsOracle(cfg, mem, profile_mem, kernel);
    EXPECT_FALSE(report.timedOut);
    EXPECT_EQ(report.schedulerName, "caws");
    EXPECT_TRUE(wl->verify(mem));
}

TEST(Integration, GcawsKeepsDisparityBoundedOnKmeans)
{
    // Criticality-aware scheduling must not blow up the execution
    // time spread the way a purely greedy-oldest policy can: gCAWS's
    // disparity stays within a modest factor of the fair baseline
    // while GTO's is unconstrained.
    GpuConfig base = testConfig();
    base.scheduler = SchedulerKind::Lrr;
    GpuConfig cawa = testConfig();
    cawa.scheduler = SchedulerKind::Gcaws;

    auto wl1 = makeWorkload("kmeans");
    auto wl2 = makeWorkload("kmeans");
    MemoryImage m1;
    MemoryImage m2;
    WorkloadParams params;
    params.scale = 0.3;
    const KernelInfo k1 = wl1->build(m1, params);
    const KernelInfo k2 = wl2->build(m2, params);

    const SimReport rr = runKernel(base, m1, k1);
    const SimReport gc = runKernel(cawa, m2, k2);
    EXPECT_LT(gc.avgDisparity(), 2.0 * rr.avgDisparity() + 0.5);
}

TEST(Integration, CawaSpeedsUpKmeans)
{
    GpuConfig base = testConfig();
    base.scheduler = SchedulerKind::Lrr;
    base.l1Policy = CachePolicyKind::Lru;
    GpuConfig cawa = testConfig();
    cawa.scheduler = SchedulerKind::Gcaws;
    cawa.l1Policy = CachePolicyKind::Cacp;

    auto wl1 = makeWorkload("kmeans");
    auto wl2 = makeWorkload("kmeans");
    MemoryImage m1;
    MemoryImage m2;
    WorkloadParams params;
    params.scale = 0.3;
    const KernelInfo k1 = wl1->build(m1, params);
    const KernelInfo k2 = wl2->build(m2, params);

    const SimReport rr = runKernel(base, m1, k1);
    const SimReport cw = runKernel(cawa, m2, k2);
    EXPECT_GT(cw.ipc(), rr.ipc());
}

} // namespace
} // namespace cawa
