/**
 * @file
 * Sweep supervisor tests: process-isolated workers must produce
 * byte-identical reports to the in-process engine even when workers
 * are SIGKILL'd mid-run; heartbeat-stalled workers are classified
 * "hung", killed via SIGTERM -> SIGKILL escalation and retried on
 * the deterministic backoff schedule; exit-code/oom failures are
 * classified and journaled first-class; the retry budget bounds
 * respawns; checkpoints carry progress across worker deaths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "isa/program_builder.hh"
#include "sim/journal.hh"
#include "sim/report_json.hh"
#include "sim/supervisor.hh"
#include "sim/sweep.hh"

namespace cawa
{
namespace
{

Program
trivialProgram()
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(2, 1, 2);
    b.movImm(3, 7);
    b.stGlobal(2, 3, 0x1000);
    b.exit();
    return b.build();
}

SweepJob
goodJob(const std::string &name, int gridDim = 2, int blockDim = 64)
{
    SweepJob job;
    job.name = name;
    job.cfg = GpuConfig::fermiGtx480();
    job.cfg.numSms = 1;
    job.build = [gridDim, blockDim](MemoryImage &) {
        KernelInfo k;
        k.name = "t";
        k.program = trivialProgram();
        k.gridDim = gridDim;
        k.blockDim = blockDim;
        return k;
    };
    return job;
}

std::string
tempPath(const char *file)
{
    return ::testing::TempDir() + file;
}

/** Compact full-fidelity serialization used for byte comparison. */
std::string
reportBytes(const SimReport &report)
{
    JsonWriteOptions opt;
    opt.pretty = false;
    return toJson(report, opt);
}

/** Fast supervision timings so fault tests finish in seconds. */
SupervisorOptions
fastOptions(int workers = 2)
{
    SupervisorOptions opt;
    opt.workers = workers;
    opt.heartbeatIntervalSec = 0.05;
    opt.heartbeatMissLimit = 20;
    opt.gracePeriodSec = 0.3;
    opt.backoffBaseSec = 0.01;
    opt.backoffCapSec = 0.05;
    return opt;
}

TEST(Backoff, DeterministicJitteredAndCapped)
{
    SupervisorOptions opt;
    opt.backoffBaseSec = 0.1;
    opt.backoffCapSec = 1.0;
    opt.backoffSeed = 42;

    // Same (seed, job, attempt) -> same delay, run to run.
    const double d1 = backoffDelaySec(opt, "job-a", 1);
    EXPECT_DOUBLE_EQ(d1, backoffDelaySec(opt, "job-a", 1));

    // Jitter stays within [0.75, 1.25) of the exponential base, and
    // the cap bounds late attempts.
    for (int attempt = 1; attempt <= 10; ++attempt) {
        const double base = std::min(
            opt.backoffCapSec,
            opt.backoffBaseSec * std::pow(2.0, attempt - 1));
        const double d = backoffDelaySec(opt, "job-a", attempt);
        EXPECT_GE(d, 0.75 * base);
        EXPECT_LT(d, 1.25 * base);
    }

    // Different jobs and seeds draw different jitter.
    EXPECT_NE(backoffDelaySec(opt, "job-a", 1),
              backoffDelaySec(opt, "job-b", 1));
    SupervisorOptions other = opt;
    other.backoffSeed = 43;
    EXPECT_NE(backoffDelaySec(opt, "job-a", 1),
              backoffDelaySec(other, "job-a", 1));
}

TEST(ResultFrame, RoundTripsLosslessly)
{
    SweepResult r = runSweepJob(goodJob("frame-job"));
    ASSERT_TRUE(r.ok());
    r.attempts = 2;
    r.resumed = true;

    const SweepResult back = resultFromFrame(resultFrameJson(r, 1));
    EXPECT_EQ(back.verified, r.verified);
    EXPECT_EQ(back.attempts, r.attempts);
    EXPECT_EQ(back.resumed, r.resumed);
    EXPECT_EQ(back.error, r.error);
    EXPECT_EQ(back.failureReason, r.failureReason);
    EXPECT_EQ(reportBytes(back.report), reportBytes(r.report));
}

TEST(ResultFrame, MalformedFrameThrows)
{
    EXPECT_THROW(resultFromFrame("{\"type\":\"heartbeat\",\"seq\":0}"),
                 std::runtime_error);
    EXPECT_THROW(resultFromFrame("not json"), std::runtime_error);
}

// The acceptance matrix: 12 jobs, 3 of them SIGKILL'd mid-run, must
// merge to byte-identical reports vs an unfaulted in-process sweep,
// in submission order, with exactly one completion per job.
TEST(Supervisor, KilledWorkersMergeByteIdenticalToInProcessRun)
{
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 12; ++i)
        jobs.push_back(goodJob("job" + std::to_string(i),
                               /*gridDim=*/2 + (i % 3),
                               /*blockDim=*/32 * (1 + i % 2)));

    // Unfaulted in-process baseline.
    const SweepEngine engine(4);
    const auto baseline = engine.run(jobs);
    ASSERT_EQ(baseline.size(), jobs.size());
    for (const auto &r : baseline)
        ASSERT_TRUE(r.ok());

    // Same matrix with workers 2, 5 and 9 killed by SIGKILL at an
    // early simulated cycle (one-shot: the respawn is disarmed).
    for (const int victim : {2, 5, 9}) {
        jobs[victim].cfg.faults.workerKillSignal = SIGKILL;
        jobs[victim].cfg.faults.workerFaultCycle = 1;
    }

    SupervisorOptions opt = fastOptions(4);
    opt.maxAttemptsPerJob = 3;
    SweepSupervisor supervisor(opt);

    std::mutex doneMutex;
    std::vector<int> completions(jobs.size(), 0);
    const auto results = supervisor.run(
        jobs, [&](std::size_t index, const SweepResult &res) {
            std::lock_guard<std::mutex> lock(doneMutex);
            ASSERT_LT(index, completions.size());
            completions[index]++;
            EXPECT_TRUE(res.ok()) << jobs[index].name;
        });

    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(completions[i], 1) << "job " << i;
        ASSERT_TRUE(results[i].ok())
            << jobs[i].name << ": " << results[i].error;
        EXPECT_EQ(reportBytes(results[i].report),
                  reportBytes(baseline[i].report))
            << jobs[i].name;
    }
    // The killed jobs consumed a respawn; the healthy ones did not.
    EXPECT_GE(results[2].attempts, 2);
    EXPECT_GE(results[5].attempts, 2);
    EXPECT_GE(results[9].attempts, 2);
    EXPECT_EQ(results[0].attempts, 1);
}

// A worker that stops heartbeating (but stays alive, ignoring
// SIGTERM) must be declared hung, killed via escalation, and retried
// on exactly the deterministic backoff schedule.
TEST(Supervisor, StalledHeartbeatClassifiedHungAndRetried)
{
    std::vector<SweepJob> jobs = {goodJob("stall-job")};
    jobs[0].cfg.faults.workerStallHeartbeat = true;
    jobs[0].cfg.faults.workerFaultCycle = 1;

    SupervisorOptions opt = fastOptions(1);
    opt.heartbeatMissLimit = 4; // hung after 0.2s of silence
    opt.maxAttemptsPerJob = 2;

    std::mutex eventsMutex;
    std::vector<std::string> events;
    double retryDelay = -1.0;
    opt.onEvent = [&](std::size_t, int, const std::string &event,
                      const std::string &, double delaySec) {
        std::lock_guard<std::mutex> lock(eventsMutex);
        events.push_back(event);
        if (event == "retry")
            retryDelay = delaySec;
    };

    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run(jobs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_EQ(results[0].attempts, 2);

    int hung = 0, retry = 0;
    for (const auto &event : events) {
        hung += event == "hung";
        retry += event == "retry";
    }
    EXPECT_EQ(hung, 1);
    EXPECT_EQ(retry, 1);
    // The scheduled delay is exactly the deterministic backoff value.
    EXPECT_DOUBLE_EQ(retryDelay,
                     backoffDelaySec(opt, "stall-job", 1));
}

TEST(Supervisor, ExitCodeDeathClassifiedCrashedAndBounded)
{
    std::vector<SweepJob> jobs = {goodJob("exit-job")};
    jobs[0].cfg.faults.workerExitCode = 9;
    jobs[0].cfg.faults.workerFaultCycle = 1;
    jobs[0].cfg.faults.workerFaultAttempts = 99; // never disarmed

    SupervisorOptions opt = fastOptions(1);
    opt.maxAttemptsPerJob = 2;
    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run(jobs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].failureReason, "crashed");
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_NE(results[0].error.find("exit code 9"), std::string::npos)
        << results[0].error;
    // The journal records the first-class status.
    EXPECT_EQ(makeJournalEntry("exit-job", results[0]).status,
              "crashed");
}

TEST(Supervisor, RetryBudgetBoundsRespawnsAcrossTheSweep)
{
    std::vector<SweepJob> jobs = {goodJob("budget-job")};
    jobs[0].cfg.faults.workerKillSignal = SIGKILL;
    jobs[0].cfg.faults.workerFaultCycle = 1;
    jobs[0].cfg.faults.workerFaultAttempts = 99; // crash every attempt

    SupervisorOptions opt = fastOptions(1);
    opt.maxAttemptsPerJob = 5;
    opt.retryBudget = 1; // only one respawn allowed sweep-wide
    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run(jobs);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].failureReason, "crashed");
    EXPECT_EQ(results[0].attempts, 2); // initial + the budgeted retry
}

TEST(Supervisor, BadAllocClassifiedOomAndRetried)
{
    SweepJob job = goodJob("oom-job");
    job.build = [](MemoryImage &) -> KernelInfo {
        throw std::bad_alloc();
    };
    SupervisorOptions opt = fastOptions(1);
    opt.maxAttemptsPerJob = 2;
    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_EQ(results[0].failureReason, "oom");
    EXPECT_EQ(results[0].attempts, 2); // oom is process-retryable
    EXPECT_EQ(makeJournalEntry("oom-job", results[0]).status, "oom");
}

TEST(Supervisor, PreCancelledSweepFinalizesEverythingCancelled)
{
    const std::vector<SweepJob> jobs = {goodJob("c0"), goodJob("c1")};
    std::atomic<bool> cancel{true};
    SupervisorOptions opt = fastOptions(2);
    opt.cancelFlag = &cancel;
    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run(jobs);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok());
        EXPECT_EQ(r.failureReason, "cancelled");
    }
}

// A killed worker's checkpoint carries its progress to the respawn:
// the retry resumes instead of restarting, and the merged report is
// still byte-identical to an uninterrupted run.
TEST(Supervisor, CheckpointCarriesProgressAcrossWorkerDeath)
{
    // Enough blocks on one SM to run well past the kill cycle.
    SweepJob job = goodJob("ckpt-job", /*gridDim=*/64, /*blockDim=*/64);
    const std::string ckpt = tempPath("supervisor_ckpt.ckpt");
    std::remove(ckpt.c_str());
    job.cfg.checkpointPath = ckpt;
    job.cfg.checkpointInterval = 50;

    // Baseline proves the job actually crosses the fault cycle.
    const SweepResult baseline = runSweepJob(job);
    ASSERT_TRUE(baseline.ok());
    ASSERT_GT(baseline.report.cycles, 200u);

    job.cfg.faults.workerKillSignal = SIGKILL;
    job.cfg.faults.workerFaultCycle = 200;

    SupervisorOptions opt = fastOptions(1);
    opt.maxAttemptsPerJob = 2;
    std::mutex eventsMutex;
    bool sawCheckpointFrame = false;
    opt.onEvent = [&](std::size_t, int, const std::string &event,
                      const std::string &, double) {
        std::lock_guard<std::mutex> lock(eventsMutex);
        sawCheckpointFrame |= event == "checkpoint";
    };
    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run({job});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_TRUE(results[0].resumed)
        << "the respawn should restore the dead worker's checkpoint";
    EXPECT_TRUE(sawCheckpointFrame)
        << "the worker should stream checkpoint-written frames";
    EXPECT_EQ(reportBytes(results[0].report),
              reportBytes(baseline.report));
    std::remove(ckpt.c_str());
}

} // namespace
} // namespace cawa
