/**
 * @file
 * CAWS oracle tests: building the table from a profile, lookups on
 * missing entries, and the two-pass runner's config handling.
 */

#include <gtest/gtest.h>

#include "sim/oracle.hh"
#include "workloads/registry.hh"

namespace cawa
{
namespace
{

TEST(Oracle, BuildFromProfile)
{
    SimReport profile;
    BlockRecord b0;
    b0.id = 0;
    WarpRecord w0;
    w0.startCycle = 10;
    w0.endCycle = 110;
    WarpRecord w1;
    w1.startCycle = 10;
    w1.endCycle = 60;
    b0.warps = {w0, w1};
    profile.blocks.push_back(b0);
    BlockRecord b3;
    b3.id = 3;
    WarpRecord w3;
    w3.startCycle = 0;
    w3.endCycle = 42;
    b3.warps = {w3};
    profile.blocks.push_back(b3);

    const OracleTable table = buildOracle(profile);
    EXPECT_EQ(table.lookup(0, 0), 100);
    EXPECT_EQ(table.lookup(0, 1), 50);
    EXPECT_EQ(table.lookup(3, 0), 42);
    // Missing entries return neutral priority.
    EXPECT_EQ(table.lookup(0, 7), 0);
    EXPECT_EQ(table.lookup(99, 0), 0);
}

TEST(Oracle, TwoPassPreservesRequestedCacheConfig)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 2;
    cfg.l1Policy = CachePolicyKind::Cacp;
    auto wl = makeWorkload("pathfinder");
    auto wl2 = makeWorkload("pathfinder");
    MemoryImage mem;
    MemoryImage profile_mem;
    WorkloadParams params;
    params.scale = 0.1;
    const KernelInfo kernel = wl->build(mem, params);
    wl2->build(profile_mem, params);

    const SimReport r = runWithCawsOracle(cfg, mem, profile_mem, kernel);
    EXPECT_EQ(r.schedulerName, "caws");
    EXPECT_EQ(r.cachePolicyName, "cacp");
    EXPECT_TRUE(wl->verify(mem));
}

TEST(Oracle, OracleProfileIsDeterministic)
{
    auto make = []() {
        GpuConfig cfg = GpuConfig::fermiGtx480();
        cfg.numSms = 2;
        auto wl = makeWorkload("tpacf");
        MemoryImage mem;
        WorkloadParams params;
        params.scale = 0.1;
        const KernelInfo kernel = wl->build(mem, params);
        return buildOracle(runKernel(cfg, mem, kernel));
    };
    const OracleTable a = make();
    const OracleTable b = make();
    ASSERT_EQ(a.values.size(), b.values.size());
    for (const auto &[block, vals] : a.values) {
        auto it = b.values.find(block);
        ASSERT_NE(it, b.values.end());
        EXPECT_EQ(vals, it->second);
    }
}

} // namespace
} // namespace cawa
