/**
 * @file
 * Locks in the event-driven fast-forward core's contract: cycle
 * skipping is a pure speed optimization. For every registered
 * workload, a run with GpuConfig::fastForward enabled must produce a
 * SimReport that serializes byte-for-byte identically to the same
 * run ticked flat (fastForward = false) — cycles, stall breakdowns,
 * cache counters, per-warp block records and criticality traces
 * included. Config variations cover both scheduler families, the
 * CACP cache path and the trace sampler, whose cycle-boundary
 * samples are the easiest thing for a skip to miss.
 */

#include <gtest/gtest.h>

#include "sim/report_json.hh"
#include "sim/sweep.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 1;
    return params;
}

/** Serialize one job's report with every section included. */
std::string
reportJson(const WorkloadJobSpec &spec)
{
    const SweepEngine engine(0);
    const auto results = engine.run(makeWorkloadJobs({spec}));
    EXPECT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    JsonWriteOptions opt;
    opt.includeBlocks = true;
    opt.includeTrace = true;
    opt.includeDerived = true;
    return toJson(results[0].report, opt);
}

/** Run @p spec with fast-forward on and off; reports must match. */
void
expectBitIdentical(WorkloadJobSpec spec)
{
    spec.cfg.fastForward = false;
    const std::string flat = reportJson(spec);
    spec.cfg.fastForward = true;
    const std::string skipped = reportJson(spec);
    EXPECT_EQ(flat, skipped)
        << "fast-forward diverged for " << workloadJobName(spec);
}

} // namespace

class FastForwardIdentity
    : public ::testing::TestWithParam<std::string>
{
};

/** Every workload, default config (GTO + LRU via fermiGtx480). */
TEST_P(FastForwardIdentity, MatchesFlatTicking)
{
    WorkloadJobSpec spec;
    spec.workload = GetParam();
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();
    expectBitIdentical(spec);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FastForwardIdentity,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

TEST(FastForwardConfigs, GcawsCacp)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::Gcaws;
    spec.cfg.l1Policy = CachePolicyKind::Cacp;
    spec.params = tinyParams();
    expectBitIdentical(spec);
}

TEST(FastForwardConfigs, TwoLevelScheduler)
{
    WorkloadJobSpec spec;
    spec.workload = "backprop";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::TwoLevel;
    spec.params = tinyParams();
    expectBitIdentical(spec);
}

/**
 * The criticality trace records samples at fixed cycle boundaries
 * while a block is resident; a skip that jumped over a boundary
 * would silently drop samples.
 */
TEST(FastForwardConfigs, TraceSampling)
{
    WorkloadJobSpec spec;
    spec.workload = "pathfinder";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.traceBlockId = 0;
    spec.params = tinyParams();
    expectBitIdentical(spec);
}

/**
 * The hardened-harness machinery must be a pure observer on healthy
 * runs: enabling the watchdog at a tight cadence and the invariant
 * auditor at its deepest level may not perturb a single counter.
 * Compares full serialized reports against the default config (which
 * runs with checkLevel 0) across both scheduler families.
 */
class WatchdogAuditorObserver
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WatchdogAuditorObserver, ReportsAreByteIdentical)
{
    WorkloadJobSpec spec;
    spec.workload = GetParam();
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();
    const std::string baseline = reportJson(spec);

    spec.cfg.checkLevel = 2;
    spec.cfg.auditInterval = 256;
    spec.cfg.watchdogInterval = 1'000;
    const std::string hardened = reportJson(spec);
    EXPECT_EQ(baseline, hardened)
        << "watchdog/auditor perturbed " << GetParam();

    // Same property on the GCAWS + CACP configuration.
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::Gcaws;
    spec.cfg.l1Policy = CachePolicyKind::Cacp;
    const std::string cawa_baseline = reportJson(spec);
    spec.cfg.checkLevel = 2;
    spec.cfg.auditInterval = 256;
    spec.cfg.watchdogInterval = 1'000;
    EXPECT_EQ(cawa_baseline, reportJson(spec))
        << "watchdog/auditor perturbed gcaws+cacp " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    SampleWorkloads, WatchdogAuditorObserver,
    ::testing::Values("bfs", "backprop", "pathfinder"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });
