/**
 * @file
 * Byte-identity matrix for the parallel-SM tick (sim/gpu.cc): the
 * GpuConfig::simThreads knob is a pure speed optimization. For every
 * registered workload under the paper's three headline configurations
 * (GTO, gCAWS, full CAWA = gCAWS + CACP), a run ticked with a
 * fork-join team must produce a SimReport that serializes
 * byte-for-byte identically to the serial simulator — with
 * fast-forward on or off, at 2/4/8 worker threads, and across a
 * checkpoint written under parallel execution and restored into a
 * serial run (and vice versa; simThreads is excluded from the config
 * signature on purpose). A negative case flips the phase-2 drain
 * order to prove the matrix is not vacuous: the fixed SM drain order
 * is exactly what the determinism argument rests on.
 *
 * Runtime is kept sane by sampling the full matrix: every workload
 * runs at 4 threads; needle/bfs/kmeans additionally sweep 1/2/8.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "sim/gpu.hh"
#include "sim/report_json.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 1;
    return params;
}

/** The paper's three headline configurations. */
std::vector<std::pair<std::string, GpuConfig>>
headlineConfigs()
{
    std::vector<std::pair<std::string, GpuConfig>> configs;
    GpuConfig gto = GpuConfig::fermiGtx480();
    configs.emplace_back("gto", gto);
    GpuConfig gcaws = gto;
    gcaws.scheduler = SchedulerKind::Gcaws;
    configs.emplace_back("gcaws", gcaws);
    GpuConfig cawa = gcaws;
    cawa.l1Policy = CachePolicyKind::Cacp;
    configs.emplace_back("cawa", cawa);
    return configs;
}

std::string
fullJson(const SimReport &report)
{
    JsonWriteOptions opt;
    opt.includeBlocks = true;
    opt.includeTrace = true;
    opt.includeDerived = true;
    return toJson(report, opt);
}

/** Full-fat serialized report of @p spec at a given thread count. */
std::string
runJson(WorkloadJobSpec spec, int sim_threads, bool fast_forward)
{
    spec.cfg.simThreads = sim_threads;
    spec.cfg.fastForward = fast_forward;
    const SweepJob job = makeWorkloadJob(spec);
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    gpu.launch(kernel);
    gpu.runToCompletion();
    return fullJson(gpu.finish());
}

std::string
tmpPath(const std::string &stem)
{
    return (std::filesystem::path(::testing::TempDir()) /
            (stem + ".ckpt"))
        .string();
}

std::string
sanitized(std::string name)
{
    for (char &c : name)
        if (c == '+' || c == '.')
            c = 'p';
    return name;
}

} // namespace

// --- The identity matrix -------------------------------------------

class ParallelSmIdentity : public ::testing::TestWithParam<std::string>
{
};

/**
 * Every workload × every headline config × ff on/off, serial vs 4
 * worker threads. 4 is the matrix's dense sample point (the bench
 * default); the sparse 1/2/8 sweep below covers the rest.
 */
TEST_P(ParallelSmIdentity, FourThreadsMatchSerial)
{
    for (const auto &[cfg_name, cfg] : headlineConfigs()) {
        WorkloadJobSpec spec;
        spec.workload = GetParam();
        spec.cfg = cfg;
        spec.params = tinyParams();
        for (const bool ff : {true, false}) {
            const std::string serial = runJson(spec, 1, ff);
            EXPECT_EQ(serial, runJson(spec, 4, ff))
                << GetParam() << " under " << cfg_name
                << (ff ? " (ff)" : " (flat)")
                << " diverged at simThreads=4";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelSmIdentity,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return sanitized(info.param);
    });

class ParallelSmThreadSweep
    : public ::testing::TestWithParam<std::string>
{
};

/** needle/bfs/kmeans sweep the thread axis: 1, 2 and 8 workers. */
TEST_P(ParallelSmThreadSweep, ThreadCountNeverChangesBytes)
{
    for (const auto &[cfg_name, cfg] : headlineConfigs()) {
        WorkloadJobSpec spec;
        spec.workload = GetParam();
        spec.cfg = cfg;
        spec.params = tinyParams();
        const std::string serial = runJson(spec, 1, true);
        for (const int threads : {2, 8})
            EXPECT_EQ(serial, runJson(spec, threads, true))
                << GetParam() << " under " << cfg_name
                << " diverged at simThreads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SampleWorkloads, ParallelSmThreadSweep,
    ::testing::Values("needle", "bfs", "kmeans"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return sanitized(info.param);
    });

// --- Checkpoint crossover ------------------------------------------

/**
 * simThreads is excluded from the checkpoint config signature: a
 * checkpoint written mid-run under parallel execution restores into a
 * serial Gpu (and vice versa) and finishes byte-identical to an
 * uninterrupted serial run. Phase 2 commits every deferred store
 * inside tick(), so a cycle boundary — where checkpoints happen —
 * never has buffered state to lose.
 */
TEST(ParallelSmCheckpoint, CrossesSerialAndParallelBothWays)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::Gcaws;
    spec.cfg.l1Policy = CachePolicyKind::Cacp;
    spec.params = tinyParams();

    const std::string baseline = runJson(spec, 1, true);

    const SweepJob job = makeWorkloadJob(spec);
    for (const bool parallel_writer : {true, false}) {
        const int writer_threads = parallel_writer ? 4 : 1;
        const int reader_threads = parallel_writer ? 1 : 4;
        const std::string path = tmpPath(
            parallel_writer ? "par_to_serial" : "serial_to_par");

        GpuConfig writer_cfg = spec.cfg;
        writer_cfg.simThreads = writer_threads;
        MemoryImage writer_mem;
        const KernelInfo writer_kernel = job.build(writer_mem);
        Gpu writer(writer_cfg, writer_mem);
        writer.launch(writer_kernel);
        writer.stepUntil(2'000); // mid-run cycle boundary
        writer.saveCheckpoint(path);

        GpuConfig reader_cfg = spec.cfg;
        reader_cfg.simThreads = reader_threads;
        MemoryImage reader_mem;
        const KernelInfo reader_kernel = job.build(reader_mem);
        Gpu reader(reader_cfg, reader_mem);
        reader.restoreCheckpoint(path, reader_kernel);
        reader.runToCompletion();
        EXPECT_EQ(baseline, fullJson(reader.finish()))
            << (parallel_writer ? "parallel->serial"
                                : "serial->parallel")
            << " checkpoint crossover diverged";
    }
}

// --- Negative case -------------------------------------------------

/**
 * The determinism argument rests on phase 2 draining SM->icnt
 * traffic in fixed SM order; reversing that order must change the
 * interconnect arbitration and therefore the report bytes of the
 * same counters the golden-stats baseline pins (so a regression in
 * the drain order is caught, not absorbed). The reversed drain is
 * still deterministic, so serial and parallel reversed runs agree
 * with each other — only with the proper order's bytes they don't.
 */
TEST(ParallelSmNegative, ReorderedPhase2DrainIsCaught)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();

    const std::string clean = runJson(spec, 1, true);

    WorkloadJobSpec reordered = spec;
    reordered.cfg.faults.reverseSmDrainOrder = true;
    const std::string reversed_serial = runJson(reordered, 1, true);
    const std::string reversed_parallel = runJson(reordered, 4, true);

    EXPECT_NE(clean, reversed_serial)
        << "reversing the phase-2 drain order changed nothing: the "
           "byte-identity matrix would be vacuous";
    EXPECT_EQ(reversed_serial, reversed_parallel)
        << "the reversed drain must still be thread-count invariant";
}
