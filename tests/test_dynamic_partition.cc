/**
 * @file
 * Dynamic CACP partition tuning tests (the UCP-style extension):
 * epoch-driven adaptation toward the denser partition, bounds
 * clamping, and end-to-end behaviour.
 */

#include <gtest/gtest.h>

#include "mem/cacp_policy.hh"
#include "sim/gpu.hh"
#include "workloads/registry.hh"

namespace cawa
{
namespace
{

CacpConfig
dynConfig()
{
    CacpConfig cfg;
    cfg.criticalWays = 8;
    cfg.dynamicPartition = true;
    cfg.adaptEpochFills = 8;
    cfg.minWays = 2;
    cfg.regionShift = 7;
    return cfg;
}

AccessInfo
mkAccess(Addr addr, bool critical)
{
    AccessInfo info;
    info.addr = addr;
    info.criticalWarp = critical;
    return info;
}

void
fill(TagArray &t, CacpPolicy &p, Addr addr)
{
    const auto info = mkAccess(addr, false);
    const auto set = t.setIndex(addr);
    const int way = p.selectVictim(t, set, info);
    auto &line = t.line(set, way);
    if (line.valid)
        p.onEvict(t, set, way);
    line.valid = true;
    line.tag = t.tagOf(addr);
    p.onFill(t, set, way, info);
}

TEST(DynamicPartition, StartsAtConfiguredSize)
{
    CacpPolicy p(dynConfig());
    EXPECT_EQ(p.criticalWays(), 8);
}

TEST(DynamicPartition, GrowsTowardCriticalOnCriticalHits)
{
    TagArray tags(1, 16, 128);
    CacpPolicy p(dynConfig());
    // Hits land exclusively in critical ways (< 8).
    fill(tags, p, 0); // way 8+ (untrained -> non-critical part), but
                      // hits are attributed by way index; hit way 0:
    tags.line(0, 0).valid = true;
    tags.line(0, 0).tag = tags.tagOf(0x10000);
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (int i = 0; i < 4; ++i)
            p.onHit(tags, 0, 0, mkAccess(0x10000, true));
        // Trigger an epoch boundary via fills.
        for (int i = 0; i < 8; ++i)
            fill(tags, p, 128ull * 256 * (epoch * 8 + i + 1));
    }
    EXPECT_GT(p.criticalWays(), 8);
}

TEST(DynamicPartition, ShrinksTowardNonCriticalOnNonCriticalHits)
{
    TagArray tags(1, 16, 128);
    CacpPolicy p(dynConfig());
    tags.line(0, 15).valid = true;
    tags.line(0, 15).tag = tags.tagOf(0x20000);
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (int i = 0; i < 4; ++i)
            p.onHit(tags, 0, 15, mkAccess(0x20000, false));
        for (int i = 0; i < 8; ++i)
            fill(tags, p, 128ull * 256 * (epoch * 8 + i + 1));
    }
    EXPECT_LT(p.criticalWays(), 8);
}

TEST(DynamicPartition, ClampsAtMinWays)
{
    TagArray tags(1, 16, 128);
    CacpConfig cfg = dynConfig();
    cfg.minWays = 3;
    CacpPolicy p(cfg);
    tags.line(0, 15).valid = true;
    tags.line(0, 15).tag = tags.tagOf(0x20000);
    for (int epoch = 0; epoch < 30; ++epoch) {
        for (int i = 0; i < 4; ++i)
            p.onHit(tags, 0, 15, mkAccess(0x20000, false));
        for (int i = 0; i < 8; ++i)
            fill(tags, p, 128ull * 256 * (epoch * 8 + i + 1));
    }
    EXPECT_GE(p.criticalWays(), 3);

    // And in the other direction.
    CacpPolicy q(cfg);
    tags.line(0, 0).valid = true;
    tags.line(0, 0).tag = tags.tagOf(0x30000);
    for (int epoch = 0; epoch < 30; ++epoch) {
        for (int i = 0; i < 4; ++i)
            q.onHit(tags, 0, 0, mkAccess(0x30000, true));
        for (int i = 0; i < 8; ++i)
            fill(tags, q, 128ull * 256 * (epoch * 8 + i + 1));
    }
    EXPECT_LE(q.criticalWays(), 13);
}

TEST(DynamicPartition, StaticConfigNeverMoves)
{
    TagArray tags(1, 16, 128);
    CacpConfig cfg = dynConfig();
    cfg.dynamicPartition = false;
    CacpPolicy p(cfg);
    for (int i = 0; i < 100; ++i)
        fill(tags, p, 128ull * 256 * i);
    EXPECT_EQ(p.criticalWays(), 8);
}

TEST(DynamicPartition, EndToEndRunsAndVerifies)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 4;
    cfg.scheduler = SchedulerKind::Gcaws;
    cfg.l1Policy = CachePolicyKind::Cacp;
    cfg.cacp.dynamicPartition = true;
    auto wl = makeWorkload("kmeans");
    MemoryImage mem;
    WorkloadParams params;
    params.scale = 0.2;
    const KernelInfo kernel = wl->build(mem, params);
    const SimReport report = runKernel(cfg, mem, kernel);
    EXPECT_FALSE(report.timedOut);
    EXPECT_TRUE(wl->verify(mem));
}

} // namespace
} // namespace cawa
