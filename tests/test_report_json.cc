/**
 * @file
 * Round-trip and schema tests for the JSON report export: every
 * numeric field of SimReport and CacheStats must appear in the
 * output and parse back to exactly the same value, the writer must
 * be deterministic, and a timedOut report must serialize cleanly.
 */

#include <gtest/gtest.h>

#include "sim/report_json.hh"

using namespace cawa;

namespace
{

CacheStats
denseCacheStats(std::uint64_t base)
{
    CacheStats s;
    s.accesses = base + 1;
    s.hits = base + 2;
    s.misses = base + 3;
    s.mshrMerges = base + 4;
    s.mshrRejects = base + 5;
    s.evictions = base + 6;
    s.criticalAccesses = base + 7;
    s.criticalHits = base + 8;
    s.nonCriticalAccesses = base + 9;
    s.nonCriticalHits = base + 10;
    s.zeroReuseEvictions = base + 11;
    s.zeroReuseCriticalEvictions = base + 12;
    s.criticalFills = base + 13;
    for (std::size_t i = 0; i < s.reuseDistanceHist.size(); ++i) {
        s.reuseDistanceHist[i] = base + 20 + i;
        s.criticalReuseDistanceHist[i] = base + 30 + i;
    }
    s.perPc[4] = {base + 40, base + 41, base + 42, base + 43};
    s.perPc[1024] = {base + 50, base + 51, base + 52, base + 53};
    return s;
}

SimReport
denseReport()
{
    SimReport r;
    r.kernelName = "bfs \"quoted\"\n";
    r.schedulerName = "gcaws";
    r.cachePolicyName = "cacp";
    r.cycles = 0xdeadbeefcafeULL; // exercises > 32-bit counters
    r.instructions = 1234567890123ULL;
    r.l1 = denseCacheStats(1000);
    r.l2 = denseCacheStats(2000);
    r.dramReads = 77;
    r.dramWrites = 88;
    r.icntMessages = 99;

    BlockRecord b;
    b.id = 5;
    b.smId = 3;
    b.startCycle = 100;
    b.endCycle = 900;
    b.cplSamples = 17;
    WarpRecord w0{0, 100, 800, 640, 11, 12, 13, 14, 15, 16, 7};
    WarpRecord w1{1, 120, 900, 512, 21, 22, 23, 24, 25, 26, 9};
    b.warps = {w0, w1};
    r.blocks = {b};

    TraceSample t0;
    t0.cycle = 256;
    t0.criticality = {-5, 0, 42};
    TraceSample t1;
    t1.cycle = 512;
    t1.criticality = {7};
    r.trace = {t0, t1};
    return r;
}

void
expectStatsEqual(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.mshrMerges, b.mshrMerges);
    EXPECT_EQ(a.mshrRejects, b.mshrRejects);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.criticalAccesses, b.criticalAccesses);
    EXPECT_EQ(a.criticalHits, b.criticalHits);
    EXPECT_EQ(a.nonCriticalAccesses, b.nonCriticalAccesses);
    EXPECT_EQ(a.nonCriticalHits, b.nonCriticalHits);
    EXPECT_EQ(a.zeroReuseEvictions, b.zeroReuseEvictions);
    EXPECT_EQ(a.zeroReuseCriticalEvictions,
              b.zeroReuseCriticalEvictions);
    EXPECT_EQ(a.criticalFills, b.criticalFills);
    EXPECT_EQ(a.reuseDistanceHist, b.reuseDistanceHist);
    EXPECT_EQ(a.criticalReuseDistanceHist, b.criticalReuseDistanceHist);
    ASSERT_EQ(a.perPc.size(), b.perPc.size());
    for (const auto &[pc, st] : a.perPc) {
        ASSERT_TRUE(b.perPc.count(pc));
        const auto &other = b.perPc.at(pc);
        EXPECT_EQ(st.fills, other.fills);
        EXPECT_EQ(st.hits, other.hits);
        EXPECT_EQ(st.zeroReuseEvictions, other.zeroReuseEvictions);
        EXPECT_EQ(st.reusedEvictions, other.reusedEvictions);
    }
}

} // namespace

TEST(ReportJson, CacheStatsRoundTrip)
{
    const CacheStats original = denseCacheStats(5000);
    const CacheStats parsed =
        cacheStatsFromJson(parseJson(toJson(original)));
    expectStatsEqual(original, parsed);
}

TEST(ReportJson, ReportRoundTripAllFields)
{
    const SimReport original = denseReport();
    const SimReport parsed = reportFromJson(toJson(original));

    EXPECT_EQ(original.kernelName, parsed.kernelName);
    EXPECT_EQ(original.schedulerName, parsed.schedulerName);
    EXPECT_EQ(original.cachePolicyName, parsed.cachePolicyName);
    EXPECT_EQ(original.timedOut, parsed.timedOut);
    EXPECT_EQ(original.cycles, parsed.cycles);
    EXPECT_EQ(original.instructions, parsed.instructions);
    EXPECT_EQ(original.dramReads, parsed.dramReads);
    EXPECT_EQ(original.dramWrites, parsed.dramWrites);
    EXPECT_EQ(original.icntMessages, parsed.icntMessages);
    expectStatsEqual(original.l1, parsed.l1);
    expectStatsEqual(original.l2, parsed.l2);

    ASSERT_EQ(original.blocks.size(), parsed.blocks.size());
    for (std::size_t i = 0; i < original.blocks.size(); ++i) {
        const BlockRecord &a = original.blocks[i];
        const BlockRecord &b = parsed.blocks[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.smId, b.smId);
        EXPECT_EQ(a.startCycle, b.startCycle);
        EXPECT_EQ(a.endCycle, b.endCycle);
        EXPECT_EQ(a.cplSamples, b.cplSamples);
        ASSERT_EQ(a.warps.size(), b.warps.size());
        for (std::size_t w = 0; w < a.warps.size(); ++w) {
            const WarpRecord &wa = a.warps[w];
            const WarpRecord &wb = b.warps[w];
            EXPECT_EQ(wa.warpInBlock, wb.warpInBlock);
            EXPECT_EQ(wa.startCycle, wb.startCycle);
            EXPECT_EQ(wa.endCycle, wb.endCycle);
            EXPECT_EQ(wa.instructions, wb.instructions);
            EXPECT_EQ(wa.memStallCycles, wb.memStallCycles);
            EXPECT_EQ(wa.aluStallCycles, wb.aluStallCycles);
            EXPECT_EQ(wa.structStallCycles, wb.structStallCycles);
            EXPECT_EQ(wa.schedWaitCycles, wb.schedWaitCycles);
            EXPECT_EQ(wa.barrierCycles, wb.barrierCycles);
            EXPECT_EQ(wa.finishedWaitCycles, wb.finishedWaitCycles);
            EXPECT_EQ(wa.slowSamples, wb.slowSamples);
        }
    }

    ASSERT_EQ(original.trace.size(), parsed.trace.size());
    for (std::size_t i = 0; i < original.trace.size(); ++i) {
        EXPECT_EQ(original.trace[i].cycle, parsed.trace[i].cycle);
        EXPECT_EQ(original.trace[i].criticality,
                  parsed.trace[i].criticality);
    }

    // Derived doubles are re-computed from the parsed counters.
    EXPECT_DOUBLE_EQ(original.ipc(), parsed.ipc());
    EXPECT_DOUBLE_EQ(original.mpki(), parsed.mpki());
}

TEST(ReportJson, WriterIsDeterministicAndIdempotent)
{
    const SimReport r = denseReport();
    const std::string once = toJson(r);
    EXPECT_EQ(once, toJson(r));
    // serialize -> parse -> serialize is a fixed point
    EXPECT_EQ(once, toJson(reportFromJson(once)));
}

TEST(ReportJson, CompactAndFilteredOutput)
{
    const SimReport r = denseReport();
    JsonWriteOptions opt;
    opt.pretty = false;
    const std::string compact = toJson(r, opt);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    EXPECT_EQ(reportFromJson(compact).cycles, r.cycles);

    opt.includeBlocks = false;
    opt.includeTrace = false;
    opt.includeDerived = false;
    const SimReport slim = reportFromJson(toJson(r, opt));
    EXPECT_TRUE(slim.blocks.empty());
    EXPECT_TRUE(slim.trace.empty());
    EXPECT_EQ(slim.instructions, r.instructions);
}

TEST(ReportJson, TimedOutReportSerializesCleanly)
{
    SimReport r;
    r.kernelName = "needle";
    r.schedulerName = "gto";
    r.cachePolicyName = "lru";
    r.timedOut = true;
    r.cycles = 100'000'000;
    const SimReport parsed = reportFromJson(toJson(r));
    EXPECT_TRUE(parsed.timedOut);
    EXPECT_EQ(parsed.cycles, r.cycles);
    EXPECT_EQ(parsed.instructions, 0u);
    EXPECT_TRUE(parsed.blocks.empty());
}

TEST(ReportJson, ExitStatusAndDiagnosticRoundTrip)
{
    SimReport r = denseReport();
    r.exitStatus = ExitStatus::Deadlock;
    r.diagnostic = "deadlock detected at cycle 9000: barrier deadlock\n"
                   "  sm 0 block 0 warp 1 AtBarrier pc=5\n";
    const std::string doc = toJson(r);
    const SimReport parsed = reportFromJson(doc);
    EXPECT_EQ(parsed.exitStatus, ExitStatus::Deadlock);
    EXPECT_EQ(parsed.diagnostic, r.diagnostic);
    // The new fields keep serialize -> parse -> serialize a fixed
    // point.
    EXPECT_EQ(doc, toJson(parsed));

    // Healthy reports do not carry a diagnostic key at all.
    SimReport clean = denseReport();
    EXPECT_EQ(toJson(clean).find("diagnostic"), std::string::npos);
    EXPECT_EQ(reportFromJson(toJson(clean)).exitStatus,
              ExitStatus::Completed);
}

TEST(ReportJson, ExitStatusNamesRoundTrip)
{
    for (ExitStatus s :
         {ExitStatus::Completed, ExitStatus::Timeout,
          ExitStatus::Deadlock, ExitStatus::Invariant}) {
        ExitStatus back = ExitStatus::Completed;
        ASSERT_TRUE(exitStatusFromName(exitStatusName(s), back));
        EXPECT_EQ(back, s);
    }
    ExitStatus unused;
    EXPECT_FALSE(exitStatusFromName("wedged", unused));
}

TEST(ReportJson, V1DocumentsStillParse)
{
    // Rewrite a current document into the v1 shape (old schema tag,
    // no exitStatus/diagnostic keys) the way pre-v2 files on disk
    // look, and check the reader derives the status from timedOut.
    auto asV1 = [](SimReport r) {
        JsonWriteOptions opt;
        opt.pretty = false;
        opt.schemaVersion = 2;  // v1 is the v2 layout minus exitStatus
        std::string doc = toJson(r, opt);
        const std::string v2 = "\"schema\":\"cawa-simreport-v2\"";
        doc.replace(doc.find(v2), v2.size(),
                    "\"schema\":\"cawa-simreport-v1\"");
        const std::string status = std::string("\"exitStatus\":\"") +
                                   exitStatusName(r.exitStatus) +
                                   "\",";
        doc.erase(doc.find(status), status.size());
        return doc;
    };

    SimReport done = denseReport();
    const SimReport parsed_done = reportFromJson(asV1(done));
    EXPECT_EQ(parsed_done.exitStatus, ExitStatus::Completed);
    EXPECT_EQ(parsed_done.cycles, done.cycles);

    SimReport hung = denseReport();
    hung.timedOut = true;
    hung.exitStatus = ExitStatus::Timeout;
    EXPECT_EQ(reportFromJson(asV1(hung)).exitStatus,
              ExitStatus::Timeout);
}

TEST(ReportJson, UnknownExitStatusRejected)
{
    SimReport r;
    JsonWriteOptions opt;
    opt.pretty = false;
    std::string doc = toJson(r, opt);
    const std::string good = "\"exitStatus\":\"completed\"";
    doc.replace(doc.find(good), good.size(),
                "\"exitStatus\":\"wedged\"");
    try {
        reportFromJson(doc);
        FAIL() << "unknown exitStatus accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("wedged"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReportJson, ParseErrorsCarryOffsetAndExcerpt)
{
    try {
        parseJson("{\"cycles\": tru}");
        FAIL() << "bad literal accepted";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("offset"), std::string::npos) << what;
        EXPECT_NE(what.find("near '"), std::string::npos) << what;
        EXPECT_NE(what.find("tru"), std::string::npos) << what;
    }

    // Wrong-type access points at the offending value.
    try {
        parseJson("{\"cycles\": 12}").at("cycles").asString();
        FAIL() << "number read as string";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("not a string"), std::string::npos)
            << what;
        EXPECT_NE(what.find("12"), std::string::npos) << what;
    }

    // Missing keys name the object they were looked up in.
    try {
        parseJson("{\"a\": 1}").at("missing");
        FAIL() << "missing key lookup succeeded";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("missing"), std::string::npos) << what;
        EXPECT_NE(what.find("offset"), std::string::npos) << what;
    }
}

TEST(ReportJson, FailureDocumentRoundTrips)
{
    const std::string doc =
        failureToJson("bfs_gcaws_cacp", "invariant [cycle 9]: boom", 3);
    const JsonValue v = parseJson(doc);
    EXPECT_EQ(v.at("schema").asString(), "cawa-sweepfailure-v1");
    EXPECT_EQ(v.at("job").asString(), "bfs_gcaws_cacp");
    EXPECT_EQ(v.at("error").asString(), "invariant [cycle 9]: boom");
    EXPECT_EQ(v.at("attempts").asI64(), 3);
}

TEST(ReportJson, MalformedInputThrows)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parseJson("[1, 2,]x"), std::runtime_error);
    EXPECT_THROW(parseJson("{\"a\": 1} extra"), std::runtime_error);
    EXPECT_THROW(reportFromJson(std::string("{\"schema\": \"nope\"}")),
                 std::runtime_error);
    // Valid JSON but missing required report keys.
    EXPECT_THROW(reportFromJson(std::string(
                     "{\"schema\": \"cawa-simreport-v1\"}")),
                 std::runtime_error);
}
