/**
 * @file
 * Workload construction tests: every Table 2 benchmark builds a valid
 * program, is deterministic in its seed, scales, and its functional
 * reference terminates and produces nonzero output.
 */

#include <gtest/gtest.h>

#include "sim/functional.hh"
#include "workloads/registry.hh"

namespace cawa
{
namespace
{

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, BuildsValidProgram)
{
    auto wl = makeWorkload(GetParam());
    MemoryImage mem;
    WorkloadParams params;
    const KernelInfo kernel = wl->build(mem, params);
    EXPECT_EQ(kernel.program.validate(), "");
    EXPECT_GT(kernel.gridDim, 0);
    EXPECT_GT(kernel.blockDim, 0);
    EXPECT_LE(kernel.regsPerThread, kNumRegs);
    EXPECT_FALSE(wl->outputs().empty());
}

TEST_P(WorkloadTest, MetadataMatchesRegistry)
{
    auto wl = makeWorkload(GetParam());
    EXPECT_EQ(wl->name(), GetParam());
    EXPECT_FALSE(wl->dataSet().empty());
}

TEST_P(WorkloadTest, DeterministicBuild)
{
    auto wl1 = makeWorkload(GetParam());
    auto wl2 = makeWorkload(GetParam());
    MemoryImage m1;
    MemoryImage m2;
    WorkloadParams params;
    params.seed = 42;
    wl1->build(m1, params);
    wl2->build(m2, params);
    // Compare the output of the functional reference on both images.
    for (const auto &range : wl1->outputs()) {
        for (std::uint64_t b = 0; b < range.bytes; b += 4) {
            ASSERT_EQ(m1.read32(range.base + b),
                      m2.read32(range.base + b));
        }
    }
}

TEST_P(WorkloadTest, FunctionalReferenceTerminates)
{
    auto wl = makeWorkload(GetParam());
    MemoryImage mem;
    WorkloadParams params;
    params.scale = 0.25;
    const KernelInfo kernel = wl->build(mem, params);
    runFunctional(kernel, mem);
    // The reference output should not be all zeros.
    bool any_nonzero = false;
    for (const auto &range : wl->outputs())
        for (std::uint64_t b = 0; b < range.bytes && !any_nonzero;
             b += 4)
            any_nonzero = mem.read32(range.base + b) != 0;
    EXPECT_TRUE(any_nonzero);
}

TEST_P(WorkloadTest, ScaleChangesGrid)
{
    auto small = makeWorkload(GetParam());
    auto large = makeWorkload(GetParam());
    MemoryImage m1;
    MemoryImage m2;
    WorkloadParams p_small;
    p_small.scale = 0.25;
    WorkloadParams p_large;
    p_large.scale = 1.0;
    const KernelInfo k_small = small->build(m1, p_small);
    const KernelInfo k_large = large->build(m2, p_large);
    EXPECT_LT(k_small.gridDim, k_large.gridDim);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '+')
                c = 'p';
        return name;
    });

TEST(Registry, NamesAreComplete)
{
    EXPECT_EQ(allWorkloadNames().size(), 12u);
    EXPECT_EQ(sensitiveWorkloadNames().size(), 7u);
    for (const auto &name : allWorkloadNames()) {
        auto wl = makeWorkload(name);
        ASSERT_NE(wl, nullptr);
    }
}

TEST(Registry, SensitivityClassesMatchTable2)
{
    for (const auto &name : sensitiveWorkloadNames())
        EXPECT_TRUE(makeWorkload(name)->sensitive()) << name;
    EXPECT_FALSE(makeWorkload("backprop")->sensitive());
    EXPECT_FALSE(makeWorkload("particle")->sensitive());
    EXPECT_FALSE(makeWorkload("pathfinder")->sensitive());
    EXPECT_FALSE(makeWorkload("strcltr_mid")->sensitive());
    EXPECT_FALSE(makeWorkload("tpacf")->sensitive());
}

} // namespace
} // namespace cawa
