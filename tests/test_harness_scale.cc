/**
 * @file
 * Unit tests for the benchmark harness environment parsing:
 * CAWA_BENCH_SCALE must reject garbage (std::atof used to yield 0.0
 * silently, degenerating every workload) and CAWA_BENCH_THREADS must
 * reject non-positive or non-numeric worker counts.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "harness.hh"

using namespace cawa;

TEST(BenchScale, ValidValuesParse)
{
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("0.75"), 0.75);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("1"), 1.0);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("1e2"), 100.0);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("0.25"), 0.25);
}

TEST(BenchScale, MissingFallsBack)
{
    EXPECT_DOUBLE_EQ(bench::parseBenchScale(nullptr), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale(""), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale(nullptr, 0.25), 0.25);
}

TEST(BenchScale, GarbageFallsBackInsteadOfZero)
{
    // Each of these made std::atof return 0.0 (or nonsense) before.
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("abc"), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("2.5xyz"), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("0"), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("-1"), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("nan"), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("inf"), 0.5);
    EXPECT_DOUBLE_EQ(bench::parseBenchScale("1e999"), 0.5);
}

TEST(BenchScale, ReadsEnvironment)
{
    ASSERT_EQ(setenv("CAWA_BENCH_SCALE", "0.33", 1), 0);
    EXPECT_DOUBLE_EQ(bench::benchScale(), 0.33);
    ASSERT_EQ(setenv("CAWA_BENCH_SCALE", "garbage", 1), 0);
    EXPECT_DOUBLE_EQ(bench::benchScale(), 0.5);
    ASSERT_EQ(unsetenv("CAWA_BENCH_SCALE"), 0);
    EXPECT_DOUBLE_EQ(bench::benchScale(), 0.5);
}

TEST(BenchThreads, ValidatesEnvironment)
{
    ASSERT_EQ(setenv("CAWA_BENCH_THREADS", "4", 1), 0);
    EXPECT_EQ(bench::benchThreads(), 4);
    // Invalid values mean "unset": the engine picks its default.
    ASSERT_EQ(setenv("CAWA_BENCH_THREADS", "abc", 1), 0);
    EXPECT_EQ(bench::benchThreads(), 0);
    ASSERT_EQ(setenv("CAWA_BENCH_THREADS", "0", 1), 0);
    EXPECT_EQ(bench::benchThreads(), 0);
    ASSERT_EQ(setenv("CAWA_BENCH_THREADS", "-3", 1), 0);
    EXPECT_EQ(bench::benchThreads(), 0);
    ASSERT_EQ(setenv("CAWA_BENCH_THREADS", "8x", 1), 0);
    EXPECT_EQ(bench::benchThreads(), 0);
    ASSERT_EQ(unsetenv("CAWA_BENCH_THREADS"), 0);
    EXPECT_EQ(bench::benchThreads(), 0);

    SweepEngine defaulted(0);
    EXPECT_GE(defaulted.threads(), 1);
}
