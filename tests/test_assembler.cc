/**
 * @file
 * Assembler tests: round-trip against the ProgramBuilder, every
 * operand form, error reporting, and functional equivalence of an
 * assembled kernel with its builder-constructed twin.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/program_builder.hh"
#include "sim/functional.hh"

namespace cawa
{
namespace
{

TEST(Assembler, EmptyAndCommentsOnlyFails)
{
    // A program must end in exit; an empty listing is invalid.
    const auto r = assemble("; nothing here\n\n# nor here\n");
    EXPECT_FALSE(r.ok());
}

TEST(Assembler, MinimalProgram)
{
    const auto r = assemble("exit\n");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program.size(), 1u);
    EXPECT_EQ(r.program.at(0).op, Opcode::Exit);
}

TEST(Assembler, AluForms)
{
    const auto r = assemble(R"(
        mov r1, 5
        mov r2, r1
        add r3, r1, r2
        add r3, r3, -7
        mul r4, r3, r1
        mul r4, r4, 0x10
        mad r5, r1, r2, r3
        sub r6, r5, r4
        min r7, r5, r6
        max r7, r7, r1
        and r8, r7, r1
        or  r8, r8, r2
        xor r8, r8, r3
        shl r9, r8, 3
        shr r9, r9, 1
        sfu r10, r9
        exit
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program.at(0).op, Opcode::MovImm);
    EXPECT_EQ(r.program.at(1).op, Opcode::Mov);
    EXPECT_EQ(r.program.at(2).op, Opcode::Add);
    EXPECT_EQ(r.program.at(3).op, Opcode::AddImm);
    EXPECT_EQ(r.program.at(3).imm, -7);
    EXPECT_EQ(r.program.at(5).op, Opcode::MulImm);
    EXPECT_EQ(r.program.at(5).imm, 16);
    EXPECT_EQ(r.program.at(6).op, Opcode::Mad);
    EXPECT_EQ(r.program.at(13).op, Opcode::ShlImm);
}

TEST(Assembler, MemoryOperands)
{
    const auto r = assemble(R"(
        s2r r1, %gtid
        shl r2, r1, 2
        ld.global r3, [r2 + 0x1000]
        ld.global r4, [r2]
        ld.shared r5, [r2 - 4]
        st.shared [r2], r5
        st.global [r2 + 0x2000], r3
        exit
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program.at(2).op, Opcode::LdGlobal);
    EXPECT_EQ(r.program.at(2).imm, 0x1000);
    EXPECT_EQ(r.program.at(3).imm, 0);
    EXPECT_EQ(r.program.at(4).imm, -4);
    EXPECT_EQ(r.program.at(5).op, Opcode::StShared);
    EXPECT_EQ(r.program.at(6).op, Opcode::StGlobal);
    EXPECT_EQ(r.program.at(6).src1, 3);
}

TEST(Assembler, BranchesAndPredicates)
{
    const auto r = assemble(R"(
    top:
        setp.lt p0, r1, r2
        @p0 bra body, join
        @!p1 bra top, join
        bra join
    body:
        nop
    join:
        exit
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    const Instruction &b0 = r.program.at(1);
    EXPECT_TRUE(b0.predUsed);
    EXPECT_FALSE(b0.predNegate);
    EXPECT_EQ(b0.target, 4u);   // body
    EXPECT_EQ(b0.reconv, 5u);   // join
    const Instruction &b1 = r.program.at(2);
    EXPECT_TRUE(b1.predNegate);
    EXPECT_EQ(b1.psrc, 1);
    EXPECT_EQ(b1.target, 0u);   // top (backward)
    const Instruction &b2 = r.program.at(3);
    EXPECT_FALSE(b2.predUsed);
}

TEST(Assembler, SpecialRegisters)
{
    const auto r = assemble(R"(
        s2r r1, %tid
        s2r r2, %ctaid
        s2r r3, %ntid
        s2r r4, %nctaid
        s2r r5, %lane
        s2r r6, %warpid
        s2r r7, %gtid
        exit
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(static_cast<SpecialReg>(r.program.at(0).imm),
              SpecialReg::TidX);
    EXPECT_EQ(static_cast<SpecialReg>(r.program.at(6).imm),
              SpecialReg::GlobalTid);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    {
        const auto r = assemble("mov r1, 5\nfrobnicate r1\nexit\n");
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.error.find("line 2"), std::string::npos);
        EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
    }
    {
        const auto r = assemble("add r1, r2\nexit\n");
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.error.find("line 1"), std::string::npos);
    }
    {
        const auto r = assemble("bra nowhere\nexit\n");
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.error.find("nowhere"), std::string::npos);
    }
    {
        const auto r = assemble("s2r r1, %bogus\nexit\n");
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.error.find("%bogus"), std::string::npos);
    }
    {
        const auto r = assemble("mov r99, 1\nexit\n");
        ASSERT_FALSE(r.ok());
    }
    {
        const auto r = assemble("a: nop\na: exit\n");
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.error.find("duplicate"), std::string::npos);
    }
    {
        // Only bra may be predicated.
        const auto r = assemble("@p0 add r1, r1, r2\nexit\n");
        ASSERT_FALSE(r.ok());
    }
}

TEST(Assembler, EquivalentToBuilderProgram)
{
    // The same data-dependent loop, written both ways, must produce
    // identical functional results.
    const auto assembled = assemble(R"(
        s2r r1, %gtid
        mov r5, 7
        and r2, r1, r5
        mov r3, 0
    loop:
        setp.le p0, r2, 0
        @p0 bra done, done
        add r3, r3, r2
        add r2, r2, -1
        bra loop
    done:
        shl r4, r1, 2
        st.global [r4 + 0x2000], r3
        exit
    )");
    ASSERT_TRUE(assembled.ok()) << assembled.error;

    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.movImm(5, 7);
    b.and_(2, 1, 5);
    b.movImm(3, 0);
    b.label("loop");
    b.setpImm(0, CmpOp::Le, 2, 0);
    b.braIf("done", 0, "done");
    b.add(3, 3, 2);
    b.addImm(2, 2, -1);
    b.bra("loop");
    b.label("done");
    b.shlImm(4, 1, 2);
    b.stGlobal(4, 3, 0x2000);
    b.exit();

    KernelInfo ka;
    ka.program = assembled.program;
    ka.gridDim = 2;
    ka.blockDim = 64;
    KernelInfo kb = ka;
    kb.program = b.build();

    MemoryImage ma;
    MemoryImage mb;
    runFunctional(ka, ma);
    runFunctional(kb, mb);
    for (int t = 0; t < 128; ++t)
        ASSERT_EQ(ma.read32(0x2000 + 4ull * t),
                  mb.read32(0x2000 + 4ull * t));
}

TEST(Assembler, SetpVariants)
{
    const auto r = assemble(R"(
        setp.eq p0, r1, r2
        setp.ne p1, r1, 42
        setp.ge p2, r1, r2
        exit
    )");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.program.at(0).op, Opcode::Setp);
    EXPECT_EQ(r.program.at(0).cmp, CmpOp::Eq);
    EXPECT_EQ(r.program.at(1).op, Opcode::SetpImm);
    EXPECT_EQ(r.program.at(1).imm, 42);
    EXPECT_EQ(r.program.at(2).cmp, CmpOp::Ge);
}

} // namespace
} // namespace cawa
