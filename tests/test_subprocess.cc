/**
 * @file
 * POSIX subprocess helper tests: fork/reap round trips, frame
 * protocol framing (including torn tails and oversized frames),
 * signal delivery and the setrlimit memory cap.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "common/subprocess.hh"

namespace cawa
{
namespace
{

/** Blocking frame read from a child's pipe for test use. */
bool
readFrameBlocking(int fd, FrameReader &reader, std::string &payload)
{
    char buf[4096];
    while (!reader.next(payload)) {
        if (reader.corrupt())
            return false;
        const ssize_t got = read(fd, buf, sizeof(buf));
        if (got <= 0)
            return false;
        reader.feed(buf, static_cast<std::size_t>(got));
    }
    return true;
}

TEST(Subprocess, ForkWorkerFramesAndExitCodeRoundTrip)
{
    ASSERT_TRUE(processIsolationAvailable());
    ChildProcess child = forkWorker([](int, int outFd) {
        writeFrame(outFd, "first frame");
        writeFrame(outFd, std::string(100'000, 'x')); // multi-read
        return 7;
    });
    FrameReader reader;
    std::string payload;
    ASSERT_TRUE(readFrameBlocking(child.fromChild, reader, payload));
    EXPECT_EQ(payload, "first frame");
    ASSERT_TRUE(readFrameBlocking(child.fromChild, reader, payload));
    EXPECT_EQ(payload, std::string(100'000, 'x'));

    const WaitStatus st = waitChild(child.pid);
    EXPECT_TRUE(st.exited);
    EXPECT_EQ(st.exitCode, 7);
    EXPECT_EQ(st.describe(), "exit code 7");
    child.closePipes();
}

TEST(Subprocess, ParentToChildPipeCarriesFrames)
{
    ChildProcess child = forkWorker([](int inFd, int outFd) {
        FrameReader reader;
        std::string payload;
        if (!readFrameBlocking(inFd, reader, payload))
            return 1;
        writeFrame(outFd, "echo:" + payload);
        return 0;
    });
    ASSERT_TRUE(writeFrame(child.toChild, "job spec"));
    close(child.toChild);
    child.toChild = -1;

    FrameReader reader;
    std::string payload;
    ASSERT_TRUE(readFrameBlocking(child.fromChild, reader, payload));
    EXPECT_EQ(payload, "echo:job spec");
    EXPECT_EQ(waitChild(child.pid).exitCode, 0);
    child.closePipes();
}

TEST(Subprocess, SignaledChildDecodesAsSignal)
{
    ChildProcess child = forkWorker([](int, int) {
        for (;;)
            pause();
        return 0;
    });
    EXPECT_FALSE(pollChild(child.pid).has_value());
    signalChild(child.pid, SIGKILL);
    const WaitStatus st = waitChild(child.pid);
    EXPECT_TRUE(st.signaled);
    EXPECT_EQ(st.termSignal, SIGKILL);
    EXPECT_NE(st.describe().find("signal 9"), std::string::npos)
        << st.describe();
    child.closePipes();
}

TEST(Subprocess, ThrowingBodyExits125)
{
    ChildProcess child = forkWorker(
        [](int, int) -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(waitChild(child.pid).exitCode, 125);
    child.closePipes();
}

TEST(Subprocess, MemoryLimitKillsOverAllocatingChild)
{
    if (!memoryLimitSupported())
        GTEST_SKIP() << "RLIMIT_AS unusable under this sanitizer";
    ChildLimits limits;
    limits.memoryBytes = 64ull << 20;
    ChildProcess child = forkWorker(
        [](int, int) -> int {
            try {
                // Far over the cap; touch every page so the pages are
                // really committed. The volatile access keeps the
                // optimizer from eliding the unused new/delete pair
                // (in which case the cap would never be hit).
                const std::size_t want = 512ull << 20;
                char *p = new char[want];
                for (std::size_t i = 0; i < want; i += 4096)
                    p[i] = 1;
                const volatile char sink = p[want - 1];
                delete[] p;
                return sink == 1 ? 0 : 2;
            } catch (const std::bad_alloc &) {
                return 42;
            }
        },
        limits);
    const WaitStatus st = waitChild(child.pid);
    // Either the allocation throws (42) or the kernel kills the
    // child; what must NOT happen is a clean over-cap success.
    EXPECT_TRUE((st.exited && st.exitCode == 42) || st.signaled)
        << st.describe();
    child.closePipes();
}

TEST(FrameReader, TornTailNeverYieldsAndIsCountable)
{
    // A frame cut at any byte: no payload comes out, and the reader
    // reports the pending (torn) byte count.
    const std::string payload = "torn tail victim";
    std::string wire;
    const std::uint32_t size =
        static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        wire += static_cast<char>((size >> (8 * i)) & 0xff);
    wire += payload;

    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        FrameReader reader;
        reader.feed(wire.data(), cut);
        std::string out;
        EXPECT_FALSE(reader.next(out)) << "cut at " << cut;
        EXPECT_EQ(reader.pendingBytes(), cut);
        // Completing the stream yields exactly the one frame.
        reader.feed(wire.data() + cut, wire.size() - cut);
        ASSERT_TRUE(reader.next(out));
        EXPECT_EQ(out, payload);
        EXPECT_FALSE(reader.next(out));
    }
}

TEST(FrameReader, OversizedFrameMarksStreamCorrupt)
{
    FrameReader reader(/*maxFrameBytes=*/16);
    const std::uint32_t size = 17;
    std::string wire;
    for (int i = 0; i < 4; ++i)
        wire += static_cast<char>((size >> (8 * i)) & 0xff);
    wire += std::string(17, 'y');
    reader.feed(wire.data(), wire.size());
    std::string out;
    EXPECT_FALSE(reader.next(out));
    EXPECT_TRUE(reader.corrupt());
}

TEST(FrameReader, BackToBackFramesInOneFeed)
{
    std::string wire;
    auto addFrame = [&wire](const std::string &payload) {
        const std::uint32_t size =
            static_cast<std::uint32_t>(payload.size());
        for (int i = 0; i < 4; ++i)
            wire += static_cast<char>((size >> (8 * i)) & 0xff);
        wire += payload;
    };
    addFrame("a");
    addFrame(""); // empty payloads are legal
    addFrame("ccc");

    FrameReader reader;
    reader.feed(wire.data(), wire.size());
    std::string out;
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, "a");
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, "");
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, "ccc");
    EXPECT_FALSE(reader.next(out));
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

// writeFrame() must be MSG_NOSIGNAL-equivalent: a worker dying with
// the coordinator mid-frame surfaces as a false return the caller can
// classify, not as a SIGPIPE that kills the writing process -- even
// when the process keeps the default SIGPIPE disposition.
TEST(Subprocess, WriteFrameToDeadReaderReportsFailure)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    close(fds[0]);             // reader gone
    signal(SIGPIPE, SIG_DFL);  // deliberately NOT ignored
    EXPECT_FALSE(writeFrame(fds[1], "nobody listening"));
    // A handler installed by the caller must not have a stray
    // SIGPIPE delivered to it after the call either.
    EXPECT_FALSE(writeFrame(fds[1], std::string(1 << 20, 'y')));
    close(fds[1]);
}

// A caller-installed SIGPIPE disposition survives writeFrame().
TEST(Subprocess, WriteFrameRestoresCallerSigpipeDisposition)
{
    signal(SIGPIPE, SIG_IGN);
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    close(fds[0]);
    EXPECT_FALSE(writeFrame(fds[1], "x"));
    close(fds[1]);
    // Still ignored: raising SIGPIPE now must not kill the process.
    raise(SIGPIPE);
    signal(SIGPIPE, SIG_DFL);
    SUCCEED();
}

// The exported blocking reader consumes exactly one frame: bytes
// queued behind it (the shard runner's control frames behind the
// spec frame) stay on the fd for the next reader.
TEST(Subprocess, ReadFrameBlockingDoesNotOverRead)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    ASSERT_TRUE(writeFrame(fds[1], "spec frame"));
    ASSERT_TRUE(writeFrame(fds[1], "control frame"));
    std::string payload;
    ASSERT_TRUE(cawa::readFrameBlocking(fds[0], payload));
    EXPECT_EQ(payload, "spec frame");
    ASSERT_TRUE(cawa::readFrameBlocking(fds[0], payload));
    EXPECT_EQ(payload, "control frame");
    close(fds[1]);
    // EOF mid-protocol reads as failure, not a hang or a torn frame.
    EXPECT_FALSE(cawa::readFrameBlocking(fds[0], payload));
    close(fds[0]);
}

TEST(Subprocess, ReadFrameBlockingRejectsOversizedAndTornFrames)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    // Oversized: a 32-byte claimed length against a 16-byte cap.
    const unsigned char big[4] = {32, 0, 0, 0};
    ASSERT_EQ(write(fds[1], big, 4), 4);
    std::string payload;
    EXPECT_FALSE(cawa::readFrameBlocking(fds[0], payload, 16));
    close(fds[0]);
    close(fds[1]);

    ASSERT_EQ(pipe(fds), 0);
    // Torn: header promises 8 bytes, the writer dies after 3.
    const unsigned char torn[4] = {8, 0, 0, 0};
    ASSERT_EQ(write(fds[1], torn, 4), 4);
    ASSERT_EQ(write(fds[1], "abc", 3), 3);
    close(fds[1]);
    EXPECT_FALSE(cawa::readFrameBlocking(fds[0], payload));
    close(fds[0]);
}

// ---------------------------------------------------------------------
// Socket semantics: drainAvailable() and the DrainStatus vocabulary.
// These run over AF_UNIX socketpairs because that is exactly the
// transport cawad serves -- pipes cannot produce Reset or the
// partial-read interleavings a stream socket can.
// ---------------------------------------------------------------------

namespace
{

/** Nonblocking AF_UNIX stream socketpair for drain tests. */
void
makeSocketPair(int fds[2])
{
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    setNonBlocking(fds[0]);
}

} // namespace

TEST(DrainAvailable, EmptyNonBlockingSocketReportsWouldBlock)
{
    int fds[2];
    makeSocketPair(fds);
    FrameReader reader;
    std::size_t bytes = 99;
    EXPECT_EQ(drainAvailable(fds[0], reader, &bytes),
              DrainStatus::WouldBlock);
    EXPECT_EQ(bytes, 0u);
    EXPECT_EQ(reader.pendingBytes(), 0u);
    close(fds[0]);
    close(fds[1]);
}

TEST(DrainAvailable, PartialFrameAssemblesAcrossDrains)
{
    // The frame arrives in three fragments with a drain after each:
    // no fragment ever yields a premature payload, no drain ever
    // busy-loops, and the final fragment completes the frame.
    const std::string payload(300, 'p');
    std::string wire;
    const std::uint32_t size =
        static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        wire += static_cast<char>((size >> (8 * i)) & 0xff);
    wire += payload;

    int fds[2];
    makeSocketPair(fds);
    FrameReader reader;
    std::string out;
    const std::size_t cuts[2] = {2, 150}; // mid-header, mid-payload
    std::size_t sent = 0;
    for (const std::size_t cut : cuts) {
        ASSERT_EQ(write(fds[1], wire.data() + sent, cut - sent),
                  static_cast<ssize_t>(cut - sent));
        sent = cut;
        EXPECT_EQ(drainAvailable(fds[0], reader),
                  DrainStatus::Data);
        EXPECT_FALSE(reader.next(out)) << "yielded at byte " << cut;
    }
    ASSERT_EQ(write(fds[1], wire.data() + sent, wire.size() - sent),
              static_cast<ssize_t>(wire.size() - sent));
    std::size_t bytes = 0;
    EXPECT_EQ(drainAvailable(fds[0], reader, &bytes),
              DrainStatus::Data);
    EXPECT_EQ(bytes, wire.size() - sent);
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, payload);
    close(fds[0]);
    close(fds[1]);
}

TEST(DrainAvailable, OrderlyCloseReportsEofAfterData)
{
    int fds[2];
    makeSocketPair(fds);
    ASSERT_TRUE(writeFrame(fds[1], "last words"));
    close(fds[1]); // orderly shutdown with nothing unread on the peer
    FrameReader reader;
    // Queued bytes drain first; only a later drain reports Eof.
    EXPECT_EQ(drainAvailable(fds[0], reader), DrainStatus::Data);
    std::string out;
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, "last words");
    EXPECT_EQ(drainAvailable(fds[0], reader), DrainStatus::Eof);
    close(fds[0]);
}

TEST(DrainAvailable, PeerClosingWithUnreadDataReportsReset)
{
    // Linux AF_UNIX semantics: closing a stream socket that still has
    // unread data in its receive queue raises ECONNRESET on the peer.
    // That is the "client vanished mid-conversation" case the daemon
    // must distinguish from a clean goodbye.
    int fds[2];
    makeSocketPair(fds);
    ASSERT_TRUE(writeFrame(fds[0], "never read by the peer"));
    close(fds[1]); // dies with data pending -> RST to fds[0]
    FrameReader reader;
    EXPECT_EQ(drainAvailable(fds[0], reader), DrainStatus::Reset);

    // The legacy pipe-semantics wrapper folds Reset into EOF (0).
    int pair2[2];
    makeSocketPair(pair2);
    ASSERT_TRUE(writeFrame(pair2[0], "unread"));
    close(pair2[1]);
    FrameReader reader2;
    EXPECT_EQ(readAvailable(pair2[0], reader2), 0);
    close(fds[0]);
    close(pair2[0]);
}

TEST(DrainAvailable, OversizedFrameOnSocketMarksCorruptNotCrash)
{
    int fds[2];
    makeSocketPair(fds);
    const std::uint32_t size = 64;
    std::string wire;
    for (int i = 0; i < 4; ++i)
        wire += static_cast<char>((size >> (8 * i)) & 0xff);
    wire += std::string(64, 'z');
    ASSERT_EQ(write(fds[1], wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    FrameReader reader(/*maxFrameBytes=*/16);
    EXPECT_EQ(drainAvailable(fds[0], reader), DrainStatus::Data);
    std::string out;
    EXPECT_FALSE(reader.next(out));
    EXPECT_TRUE(reader.corrupt());
    close(fds[0]);
    close(fds[1]);
}

TEST(UnixSocket, ListenConnectAcceptCarriesFrames)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/cawa_sock_test.sock";
    const int listener = listenUnixSocket(path);
    ASSERT_GE(listener, 0);
    const int client = connectUnixSocket(path);
    ASSERT_GE(client, 0);
    const int server = acceptConnection(listener);
    ASSERT_GE(server, 0);

    ASSERT_TRUE(writeFrame(client, "hello daemon"));
    std::string payload;
    ASSERT_TRUE(cawa::readFrameBlocking(server, payload));
    EXPECT_EQ(payload, "hello daemon");
    ASSERT_TRUE(writeFrame(server, "hello client"));
    ASSERT_TRUE(cawa::readFrameBlocking(client, payload));
    EXPECT_EQ(payload, "hello client");

    close(client);
    close(server);
    close(listener);
    unlink(path.c_str());
}

TEST(UnixSocket, StaleSocketFileIsReplacedOnListen)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/cawa_stale_test.sock";
    const int first = listenUnixSocket(path);
    close(first); // dead server leaves the socket file behind
    const int second = listenUnixSocket(path);
    ASSERT_GE(second, 0);
    const int client = connectUnixSocket(path);
    EXPECT_GE(client, 0);
    close(client);
    close(second);
    unlink(path.c_str());
}

} // namespace
} // namespace cawa
