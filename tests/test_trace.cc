/**
 * @file
 * Locks in the event-tracing contract (sim/trace.hh): tracing is a
 * pure observer. For every workload under the paper's three headline
 * configurations (GTO, gCAWS, full CAWA = gCAWS + CACP), the final
 * SimReport serializes byte-for-byte identically with tracing on or
 * off, with fast-forward on or off, and across a checkpoint written
 * by a non-tracing run restored into a tracing one (the trace knob is
 * excluded from the config signature on purpose). Also covers the
 * ring buffer's drop-oldest overflow behavior, the TraceFilter
 * predicate, and the structural well-formedness of both exporters
 * (Chrome trace_event JSON via the repo's own parser, JSONL line by
 * line).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/gpu.hh"
#include "sim/report_json.hh"
#include "sim/trace.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 1;
    return params;
}

/** The paper's three headline configurations. */
std::vector<std::pair<std::string, GpuConfig>>
headlineConfigs()
{
    std::vector<std::pair<std::string, GpuConfig>> configs;
    GpuConfig gto = GpuConfig::fermiGtx480();
    configs.emplace_back("gto", gto);
    GpuConfig gcaws = gto;
    gcaws.scheduler = SchedulerKind::Gcaws;
    configs.emplace_back("gcaws", gcaws);
    GpuConfig cawa = gcaws;
    cawa.l1Policy = CachePolicyKind::Cacp;
    configs.emplace_back("cawa", cawa);
    return configs;
}

std::string
fullJson(const SimReport &report)
{
    JsonWriteOptions opt;
    opt.includeBlocks = true;
    opt.includeTrace = true;
    opt.includeDerived = true;
    return toJson(report, opt);
}

/**
 * Run @p spec through the direct Gpu API. @p recorded, when non-null,
 * receives how many trace events the run emitted (0 with tracing
 * off), so purity assertions can prove they are not vacuous.
 */
SimReport
runDirect(const WorkloadJobSpec &spec,
          std::uint64_t *recorded = nullptr)
{
    const SweepJob job = makeWorkloadJob(spec);
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    gpu.launch(kernel);
    gpu.runToCompletion();
    SimReport report = gpu.finish();
    if (recorded)
        *recorded =
            gpu.traceBuffer() ? gpu.traceBuffer()->recorded() : 0;
    return report;
}

std::string
tmpPath(const std::string &stem)
{
    return (std::filesystem::path(::testing::TempDir()) /
            (stem + ".ckpt"))
        .string();
}

std::string
sanitized(std::string name)
{
    for (char &c : name)
        if (c == '+' || c == '.')
            c = 'p';
    return name;
}

} // namespace

// --- Ring buffer unit behavior -------------------------------------

TEST(TraceBuffer, DropsOldestOnOverflowAndCounts)
{
    TraceBuffer buf(16);
    EXPECT_EQ(buf.capacity(), 16u);
    for (int i = 0; i < 20; ++i)
        buf.record(100 + i, TraceEventKind::WarpIssue, 0, i, i, 0);
    EXPECT_EQ(buf.size(), 16u);
    EXPECT_EQ(buf.recorded(), 20u);
    EXPECT_EQ(buf.dropped(), 4u);
    // Oldest four were overwritten: retained events are 4..19 in
    // recording order.
    for (std::size_t i = 0; i < buf.size(); ++i) {
        EXPECT_EQ(buf.at(i).a, static_cast<std::int64_t>(i + 4));
        EXPECT_EQ(buf.at(i).cycle, 104 + i);
    }
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.recorded(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, ZeroCapacityClampsToOne)
{
    TraceBuffer buf(0);
    EXPECT_EQ(buf.capacity(), 1u);
    buf.record(1, TraceEventKind::WarpIssue, 0, 0);
    buf.record(2, TraceEventKind::WarpStall, 0, 0);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf.dropped(), 1u);
    EXPECT_EQ(buf.at(0).kind, TraceEventKind::WarpStall);
}

TEST(TraceFilterTest, PredicateMatchesAllDimensions)
{
    TraceEvent e;
    e.cycle = 500;
    e.sm = 3;
    e.warp = 7;
    e.kind = TraceEventKind::CacheFill;

    TraceFilter any;
    EXPECT_TRUE(any.pass(e));

    TraceFilter by_sm;
    by_sm.sm = 3;
    EXPECT_TRUE(by_sm.pass(e));
    by_sm.sm = 4;
    EXPECT_FALSE(by_sm.pass(e));

    TraceFilter by_warp;
    by_warp.warp = 7;
    EXPECT_TRUE(by_warp.pass(e));
    by_warp.warp = 8;
    EXPECT_FALSE(by_warp.pass(e));

    TraceFilter by_cycle;
    by_cycle.minCycle = 500;
    by_cycle.maxCycle = 500;
    EXPECT_TRUE(by_cycle.pass(e));
    by_cycle.minCycle = 501;
    EXPECT_FALSE(by_cycle.pass(e));

    TraceFilter by_kind;
    by_kind.kindMask =
        std::uint32_t{1} << static_cast<int>(TraceEventKind::CacheFill);
    EXPECT_TRUE(by_kind.pass(e));
    by_kind.kindMask = std::uint32_t{1}
        << static_cast<int>(TraceEventKind::WarpIssue);
    EXPECT_FALSE(by_kind.pass(e));
}

// --- Observer purity -----------------------------------------------

/**
 * Per workload: under each headline configuration, a tracing run
 * (fast-forward on and off) and a run restored from a checkpoint into
 * a tracing Gpu all serialize identically to the trace-off baseline.
 */
class TracePurity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TracePurity, ReportsAreByteIdenticalWithTracingOn)
{
    for (const auto &[cfg_name, cfg] : headlineConfigs()) {
        WorkloadJobSpec spec;
        spec.workload = GetParam();
        spec.cfg = cfg;
        spec.params = tinyParams();

        const SimReport baseline = runDirect(spec);
        const std::string baseline_json = fullJson(baseline);

        // Tracing on, fast-forward on (the default).
        spec.cfg.trace.enabled = true;
        std::uint64_t recorded = 0;
        EXPECT_EQ(baseline_json, fullJson(runDirect(spec, &recorded)))
            << GetParam() << "/" << cfg_name
            << ": tracing perturbed the report";
        EXPECT_GT(recorded, 0u)
            << GetParam() << "/" << cfg_name
            << ": purity test is vacuous, no events recorded";

        // Tracing on, fast-forward off (flat ticking emits per-cycle
        // stall events; totals must still match the bulk charges).
        spec.cfg.fastForward = false;
        EXPECT_EQ(baseline_json, fullJson(runDirect(spec)))
            << GetParam() << "/" << cfg_name
            << ": tracing + flat ticking perturbed the report";
        spec.cfg.fastForward = true;

        // Checkpoint written by a NON-tracing run, restored into a
        // tracing Gpu (the trace knob is excluded from the config
        // signature), finished from there.
        const Cycle stop = baseline.cycles / 2;
        const std::string path = tmpPath(
            "trace_" + sanitized(GetParam()) + "_" + cfg_name);
        spec.cfg.trace.enabled = false;
        const SweepJob job = makeWorkloadJob(spec);
        {
            MemoryImage mem;
            const KernelInfo kernel = job.build(mem);
            Gpu gpu(job.cfg, mem);
            gpu.launch(kernel);
            gpu.stepUntil(stop);
            gpu.saveCheckpoint(path);
        }
        spec.cfg.trace.enabled = true;
        const SweepJob traced_job = makeWorkloadJob(spec);
        MemoryImage mem;
        const KernelInfo kernel = traced_job.build(mem);
        Gpu gpu(traced_job.cfg, mem);
        gpu.restoreCheckpoint(path, kernel);
        gpu.runToCompletion();
        EXPECT_EQ(baseline_json, fullJson(gpu.finish()))
            << GetParam() << "/" << cfg_name
            << ": tracing diverged after restore at cycle " << stop;
        std::filesystem::remove(path);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TracePurity,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return sanitized(info.param);
    });

// --- Exporters -----------------------------------------------------

namespace
{

/** Run @p workload with tracing on; returns the live Gpu + report. */
std::unique_ptr<Gpu>
tracedRun(const std::string &workload, MemoryImage &mem,
          std::uint64_t capacity = std::uint64_t{1} << 18)
{
    WorkloadJobSpec spec;
    spec.workload = workload;
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::Gcaws;
    spec.cfg.l1Policy = CachePolicyKind::Cacp;
    spec.cfg.trace.enabled = true;
    spec.cfg.trace.bufferCapacity = capacity;
    spec.params = tinyParams();
    const SweepJob job = makeWorkloadJob(spec);
    const KernelInfo kernel = job.build(mem);
    auto gpu = std::make_unique<Gpu>(job.cfg, mem);
    gpu->launch(kernel);
    gpu->runToCompletion();
    gpu->finish();
    return gpu;
}

/** Structural checks on a Chrome trace_event export. */
void
expectValidChromeJson(const std::string &doc, const char *what)
{
    SCOPED_TRACE(what);
    const JsonValue root = parseJson(doc);
    ASSERT_TRUE(root.has("traceEvents"));
    const auto &events = root.at("traceEvents").items();
    ASSERT_FALSE(events.empty());
    const std::set<std::string> phases{"M", "i", "X"};
    bool saw_slice = false;
    for (const JsonValue &e : events) {
        ASSERT_TRUE(e.has("name"));
        ASSERT_TRUE(e.has("ph"));
        ASSERT_TRUE(e.has("pid"));
        const std::string ph = e.at("ph").asString();
        EXPECT_TRUE(phases.count(ph)) << "unexpected phase " << ph;
        if (ph != "M") {
            ASSERT_TRUE(e.has("ts"));
            ASSERT_TRUE(e.has("tid"));
        }
        if (ph == "X") {
            ASSERT_TRUE(e.has("dur"));
            EXPECT_GE(e.at("dur").asU64(), 1u);
            saw_slice = true;
        }
    }
    EXPECT_TRUE(saw_slice) << "no stall duration slices in export";
    ASSERT_TRUE(root.has("otherData"));
    EXPECT_TRUE(root.at("otherData").has("recorded"));
    EXPECT_TRUE(root.at("otherData").has("dropped"));
}

} // namespace

class ChromeExport : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ChromeExport, IsWellFormed)
{
    MemoryImage mem;
    const auto gpu = tracedRun(GetParam(), mem);
    ASSERT_NE(gpu->traceBuffer(), nullptr);
    expectValidChromeJson(traceToChromeJson(*gpu->traceBuffer()),
                          GetParam().c_str());
}

INSTANTIATE_TEST_SUITE_P(AcceptanceWorkloads, ChromeExport,
                         ::testing::Values("bfs", "kmeans"),
                         [](const ::testing::TestParamInfo<std::string>
                                &info) { return info.param; });

TEST(ChromeExport, FilterRestrictsEvents)
{
    MemoryImage mem;
    const auto gpu = tracedRun("bfs", mem);
    const TraceBuffer &buf = *gpu->traceBuffer();

    TraceFilter only_sm0;
    only_sm0.sm = 0;
    const JsonValue root = parseJson(traceToChromeJson(buf, only_sm0));
    for (const JsonValue &e : root.at("traceEvents").items()) {
        if (e.at("ph").asString() == "M")
            continue;
        // pid 0 is the memory system, pid 1 is SM 0.
        EXPECT_EQ(e.at("pid").asU64(), 1u);
    }
}

TEST(JsonlExport, EveryLineParses)
{
    MemoryImage mem;
    const auto gpu = tracedRun("bfs", mem);
    const std::string doc = traceToJsonl(*gpu->traceBuffer());
    ASSERT_FALSE(doc.empty());
    std::size_t pos = 0;
    std::size_t lines = 0;
    while (pos < doc.size()) {
        std::size_t nl = doc.find('\n', pos);
        if (nl == std::string::npos)
            nl = doc.size();
        const std::string line = doc.substr(pos, nl - pos);
        if (!line.empty()) {
            const JsonValue v = parseJson(line);
            EXPECT_TRUE(v.has("cycle"));
            EXPECT_TRUE(v.has("kind"));
            lines++;
        }
        pos = nl + 1;
    }
    EXPECT_EQ(lines, gpu->traceBuffer()->size());
}

// --- Overflow at simulation level ----------------------------------

TEST(TraceOverflow, RingsStayBoundedAndCountDrops)
{
    // A capacity far below the event volume of even a tiny bfs run.
    // The Gpu splits it across its per-source TraceSet rings
    // (dispatch + one per SM + memory system), so the merged view
    // holds at most kCap events: per-ring capacity is the floor of
    // the even split and drops are counted exactly per ring.
    constexpr std::uint64_t kCap = 512;
    MemoryImage mem;
    const auto gpu = tracedRun("bfs", mem, kCap);
    const TraceBuffer &buf = *gpu->traceBuffer();
    EXPECT_LE(buf.size(), kCap);
    EXPECT_GT(buf.size(), 0u);
    EXPECT_GT(buf.dropped(), 0u);
    EXPECT_EQ(buf.recorded(), buf.dropped() + buf.size());
    // Each ring retains its newest events; the merge keeps them
    // cycle-ordered.
    for (std::size_t i = 1; i < buf.size(); ++i)
        EXPECT_LE(buf.at(i - 1).cycle, buf.at(i).cycle);
}
