/**
 * @file
 * Property tests: the L1D cache under long random traffic streams,
 * for every replacement policy. Invariants checked every step:
 * valid-line count never exceeds associativity, a probe after a fill
 * finds the line, hits never change the tag contents, MSHR occupancy
 * is bounded, all completions are eventually delivered, and (static)
 * CACP lines respect their partition.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cacp_policy.hh"
#include "mem/l1d_cache.hh"
#include "sim/gpu_config.hh"

namespace cawa
{
namespace
{

struct PolicyCase
{
    const char *name;
    CachePolicyKind kind;
};

std::unique_ptr<ReplacementPolicy>
makePolicy(CachePolicyKind kind)
{
    switch (kind) {
      case CachePolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case CachePolicyKind::Srrip:
        return std::make_unique<SrripPolicy>();
      case CachePolicyKind::Ship:
        return std::make_unique<ShipPolicy>(256, 9);
      case CachePolicyKind::Cacp:
        return std::make_unique<CacpPolicy>(CacpConfig{});
    }
    return nullptr;
}

class CacheRandomTrafficTest
    : public ::testing::TestWithParam<CachePolicyKind>
{
};

TEST_P(CacheRandomTrafficTest, InvariantsHoldUnderRandomTraffic)
{
    L1DConfig cfg;
    cfg.sets = 8;
    cfg.ways = 16;
    cfg.lineBytes = 128;
    cfg.hitLatency = 5;
    cfg.numMshrs = 8;
    cfg.mshrTargets = 4;
    L1DCache l1(cfg, 0, makePolicy(GetParam()));

    Rng rng(2024);
    std::set<Addr> outstanding; // lines we owe a fill for
    std::uint64_t next_token = 1;
    std::uint64_t tokens_issued = 0;
    std::uint64_t tokens_completed = 0;
    std::vector<L1DCache::Completion> done;

    for (Cycle now = 0; now < 30000; ++now) {
        // Random access most cycles, skewed toward a hot region.
        if (rng.nextBounded(4) != 0) {
            const bool hot = rng.nextBounded(2) == 0;
            const Addr line = 128ull * (hot ? rng.nextBounded(64)
                                            : rng.nextBounded(4096));
            AccessInfo info;
            info.addr = line;
            info.pc = static_cast<std::uint32_t>(rng.nextBounded(16));
            info.warp = static_cast<WarpSlot>(rng.nextBounded(48));
            info.criticalWarp = rng.nextBounded(8) == 0;
            info.isStore = rng.nextBounded(8) == 0;
            const std::uint64_t token = info.isStore ? 0 : next_token;
            const auto result = l1.access(info, now, token);
            if (!info.isStore &&
                result != L1DCache::Result::RejectMshrFull) {
                next_token++;
                tokens_issued++;
            }
            if (result == L1DCache::Result::Miss && !info.isStore)
                outstanding.insert(line);
        }
        // Drain outgoing read requests and fill them after a delay.
        while (l1.hasOutgoing())
            (void)l1.popOutgoing();
        if (!outstanding.empty() && rng.nextBounded(3) == 0) {
            const Addr line = *outstanding.begin();
            outstanding.erase(outstanding.begin());
            l1.fill(line, now);
            // After a fill the line must be present.
            ASSERT_GE(l1.tags().probe(line), 0);
        }
        done.clear();
        l1.drainCompleted(now, done);
        tokens_completed += done.size();

        // Structural invariants.
        ASSERT_GE(l1.freeMshrs(), 0);
        ASSERT_LE(l1.freeMshrs(), cfg.numMshrs);
        if (now % 512 == 0) {
            for (std::uint32_t set = 0;
                 set < static_cast<std::uint32_t>(cfg.sets); ++set) {
                ASSERT_LE(l1.tags().validCount(set), cfg.ways);
                // No duplicate tags within a set.
                std::set<Addr> tags;
                for (int w = 0; w < cfg.ways; ++w) {
                    const auto &line = l1.tags().line(set, w);
                    if (line.valid)
                        ASSERT_TRUE(tags.insert(line.tag).second);
                }
            }
        }
    }
    // Flush the remaining fills and check every load completes.
    Cycle now = 30000;
    while (!outstanding.empty()) {
        const Addr line = *outstanding.begin();
        outstanding.erase(outstanding.begin());
        l1.fill(line, now++);
    }
    done.clear();
    l1.drainCompleted(now + cfg.hitLatency + 1, done);
    tokens_completed += done.size();
    EXPECT_EQ(tokens_completed, tokens_issued);
    EXPECT_TRUE(l1.idle());

    // Sanity: the hot region produced real hits.
    EXPECT_GT(l1.stats().hits, 0u);
    EXPECT_GT(l1.stats().misses, 0u);
}

TEST_P(CacheRandomTrafficTest, HitsDoNotChangeTagContents)
{
    L1DConfig cfg;
    cfg.sets = 8;
    cfg.ways = 16;
    L1DCache l1(cfg, 0, makePolicy(GetParam()));
    // Install four lines.
    std::vector<Addr> lines;
    for (int i = 0; i < 4; ++i) {
        const Addr a = 128ull * 8 * i; // all in set 0
        AccessInfo info;
        info.addr = a;
        l1.access(info, 0, i + 1);
        while (l1.hasOutgoing())
            (void)l1.popOutgoing();
        l1.fill(a, 1);
        lines.push_back(a);
    }
    auto snapshot = [&]() {
        std::multiset<Addr> tags;
        for (int w = 0; w < cfg.ways; ++w)
            if (l1.tags().line(0, w).valid)
                tags.insert(l1.tags().line(0, w).tag);
        return tags;
    };
    const auto before = snapshot();
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        AccessInfo info;
        info.addr = lines[rng.nextBounded(4)];
        info.criticalWarp = rng.nextBounded(2) == 0;
        const auto result = l1.access(info, 100 + i, 1000 + i);
        ASSERT_EQ(result, L1DCache::Result::Hit);
    }
    EXPECT_EQ(snapshot(), before);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CacheRandomTrafficTest,
    ::testing::Values(CachePolicyKind::Lru, CachePolicyKind::Srrip,
                      CachePolicyKind::Ship, CachePolicyKind::Cacp),
    [](const ::testing::TestParamInfo<CachePolicyKind> &info) {
        return cachePolicyKindName(info.param);
    });

} // namespace
} // namespace cawa
