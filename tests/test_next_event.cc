/**
 * @file
 * Unit tests for the per-component next-event queries behind the
 * fast-forward engine. Each component must report the exact earliest
 * cycle at which ticking it does something (kNoCycle when only an
 * external push can wake it); an early value merely wastes a tick,
 * but a late one would skip real work, so exactness is asserted.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l1d_cache.hh"
#include "mem/l2_cache.hh"
#include "sm/sm_core.hh"

namespace cawa
{
namespace
{

MemMsg
readMsg(Addr line_addr)
{
    MemMsg msg;
    msg.lineAddr = line_addr;
    msg.smId = 0;
    msg.isStore = false;
    return msg;
}

TEST(NextEvent, InterconnectEmptyThenQueued)
{
    Interconnect icnt(/*latency=*/50, /*width=*/4);
    EXPECT_EQ(icnt.nextEventCycle(0), kNoCycle);

    icnt.pushToL2(readMsg(0x100), 10);
    EXPECT_EQ(icnt.nextEventCycle(10), 60u);
    // Earlier of the two directions wins.
    icnt.pushToSm(readMsg(0x200), 5);
    EXPECT_EQ(icnt.nextEventCycle(10), 55u);
    // A query from beyond the ready cycle clamps to now.
    EXPECT_EQ(icnt.nextEventCycle(100), 100u);

    (void)icnt.popToSm(55);
    EXPECT_EQ(icnt.nextEventCycle(10), 60u);
    (void)icnt.popToL2(60);
    EXPECT_EQ(icnt.nextEventCycle(60), kNoCycle);
}

TEST(NextEvent, DramQueueAndResponseLatency)
{
    DramModel dram(/*latency=*/120, /*service_interval=*/2);
    EXPECT_EQ(dram.nextEventCycle(0), kNoCycle);

    // A queued request is serviceable immediately...
    dram.push(readMsg(0x100), 10);
    EXPECT_EQ(dram.nextEventCycle(10), 10u);
    dram.tick(10);
    // ...after which only the in-flight response remains.
    EXPECT_EQ(dram.nextEventCycle(11), 130u);
    EXPECT_EQ(dram.nextEventCycle(200), 200u);

    // The service interval gates the next request's start.
    dram.push(readMsg(0x200), 11);
    EXPECT_EQ(dram.nextEventCycle(11), 12u);

    dram.tick(12);
    (void)dram.popResponses(132);
    EXPECT_EQ(dram.nextEventCycle(132), kNoCycle);
}

TEST(NextEvent, DramWriteProducesNoResponse)
{
    DramModel dram(120, 1);
    MemMsg store = readMsg(0x100);
    store.isStore = true;
    dram.push(store, 0);
    EXPECT_EQ(dram.nextEventCycle(0), 0u);
    dram.tick(0);
    EXPECT_EQ(dram.nextEventCycle(1), kNoCycle);
}

TEST(NextEvent, L2QueuedRequestAndScheduledResponse)
{
    L2Config cfg;
    L2Cache l2(cfg);
    DramModel dram(120, 1);
    EXPECT_EQ(l2.nextEventCycle(0), kNoCycle);

    // A bank with a queued request must be serviced now.
    l2.pushRequest(readMsg(0x100), 10);
    EXPECT_EQ(l2.nextEventCycle(10), 10u);

    // A cold read misses to DRAM: nothing left to do at the L2.
    l2.tick(10, dram);
    EXPECT_EQ(l2.nextEventCycle(11), kNoCycle);

    // The fill schedules the merged response for the next cycle.
    l2.handleDramResponse(readMsg(0x100), 130);
    EXPECT_EQ(l2.nextEventCycle(130), 131u);
    EXPECT_EQ(l2.nextEventCycle(500), 500u);

    (void)l2.popResponses(131);
    EXPECT_EQ(l2.nextEventCycle(131), kNoCycle);
}

TEST(NextEvent, L1MissOutgoingThenFillThenHitLatency)
{
    L1DConfig cfg;
    L1DCache l1(cfg, /*sm_id=*/0, std::make_unique<LruPolicy>());
    EXPECT_EQ(l1.nextEventCycle(0), kNoCycle);

    AccessInfo info;
    info.addr = 0x100;
    info.pc = 1;

    // Cold miss: outgoing traffic needs draining immediately.
    EXPECT_EQ(l1.access(info, 10, /*token=*/1), L1DCache::Result::Miss);
    EXPECT_EQ(l1.nextEventCycle(10), 10u);
    (void)l1.popOutgoing();
    EXPECT_EQ(l1.nextEventCycle(10), kNoCycle);

    // The fill completes the queued token one cycle later.
    l1.fill(0x100, 200);
    EXPECT_EQ(l1.nextEventCycle(200), 201u);
    std::vector<L1DCache::Completion> done;
    l1.drainCompleted(201, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(l1.nextEventCycle(201), kNoCycle);

    // A hit schedules its completion after the hit latency.
    EXPECT_EQ(l1.access(info, 300, /*token=*/2), L1DCache::Result::Hit);
    EXPECT_EQ(l1.nextEventCycle(300), 300u + cfg.hitLatency);
    EXPECT_EQ(l1.nextEventCycle(1000), 1000u);
}

KernelInfo
dependencyKernel()
{
    // s2r then a dependent add: after the first issue the warp is
    // scoreboard-blocked until the ALU writeback matures.
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.addImm(2, 1, 1);
    b.stGlobal(2, 2, 0x1000);
    b.exit();
    KernelInfo k;
    k.name = "dep";
    k.program = b.build();
    k.gridDim = 1;
    k.blockDim = 32;
    k.regsPerThread = 16;
    k.smemPerBlock = 0;
    return k;
}

TEST(NextEvent, SmCoreWritebackAndWakeups)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    MemoryImage mem;
    const KernelInfo kernel = dependencyKernel();
    SmCore sm(cfg, 0, mem, kernel, nullptr);

    // The cache starts at 0 so the first tick always runs.
    EXPECT_TRUE(sm.dueAt(0));
    sm.tick(0);
    // No blocks resident and nothing queued: only an external event
    // (acceptBlock) can wake the SM.
    EXPECT_EQ(sm.nextEventCycle(), kNoCycle);

    // acceptBlock pulls the wake-up to the dispatch cycle.
    sm.acceptBlock(0, 5);
    EXPECT_TRUE(sm.dueAt(5));

    // The lone warp issues s2r; a ready set was seen, so the SM must
    // tick again next cycle.
    sm.tick(5);
    EXPECT_EQ(sm.nextEventCycle(), 6u);

    // Now the warp is scoreboard-blocked on the s2r writeback, due at
    // issue + aluLatency; the SM may sleep exactly until then (the
    // first CPL sampling boundary is much later).
    sm.tick(6);
    EXPECT_EQ(sm.nextEventCycle(), 5u + cfg.aluLatency);
    EXPECT_FALSE(sm.dueAt(6 + 1));
    EXPECT_TRUE(sm.dueAt(5 + cfg.aluLatency));
}

TEST(NextEvent, SmCoreSamplingBoundaryWins)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    // A sampling boundary inside the writeback wait: the SM must wake
    // for it (sampling mutates per-block counters even when stalled).
    cfg.cplSampleInterval = 2;
    MemoryImage mem;
    const KernelInfo kernel = dependencyKernel();
    SmCore sm(cfg, 0, mem, kernel, nullptr);

    sm.tick(0);
    sm.acceptBlock(0, 0);
    sm.tick(0); // issues s2r; writeback due at aluLatency
    sm.tick(1); // blocked; next boundary is cycle 2 < writeback
    EXPECT_EQ(sm.nextEventCycle(), 2u);
}

} // namespace
} // namespace cawa
