/**
 * @file
 * Runtime invariant auditor and config-validation tests: a healthy
 * run passes the deepest audit level untouched; injected faults are
 * rejected with SimError (kind Invariant) carrying cycle/SM context;
 * sim_assert throw-mode is scoped and restorable; GpuConfig::validate
 * reports actionable messages and Gpu refuses bad configs/launches.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/sim_assert.hh"
#include "isa/program_builder.hh"
#include "sim/gpu.hh"

namespace cawa
{
namespace
{

/// Audit levels are part of each test's contract here; drop any
/// CAWA_CHECK inherited from the environment (the "check" preset
/// exports CAWA_CHECK=2) so it cannot override them.
class PinnedCheckLevel : public ::testing::Environment
{
    void SetUp() override { unsetenv("CAWA_CHECK"); }
};
const auto *const pinned_check_level =
    ::testing::AddGlobalTestEnvironment(new PinnedCheckLevel);

Program
barrierProgram()
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(4, 1, 2);
    b.ldGlobal(2, 4, 0x100000);
    b.addImm(3, 2, 1);
    b.bar();
    b.stGlobal(4, 3, 0x200000);
    b.exit();
    return b.build();
}

KernelInfo
kernel(Program p, int grid, int block)
{
    KernelInfo k;
    k.name = "t";
    k.program = std::move(p);
    k.gridDim = grid;
    k.blockDim = block;
    return k;
}

GpuConfig
auditedCfg(int level)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    cfg.checkLevel = level;
    cfg.auditInterval = 64; // audit often so faults surface fast
    return cfg;
}

TEST(Invariants, HealthyRunPassesDeepestAudit)
{
    MemoryImage mem;
    const SimReport r = runKernel(auditedCfg(2), mem,
                                  kernel(barrierProgram(), 4, 64));
    EXPECT_EQ(r.exitStatus, ExitStatus::Completed);
    for (int t = 0; t < 4 * 64; ++t)
        EXPECT_EQ(mem.read32(0x200000 + 4ull * t), 1u);
}

TEST(Invariants, LostBarrierArrivalCaught)
{
    GpuConfig cfg = auditedCfg(1); // barrier audit is level 1
    cfg.faults.dropBarrierArrival = 0;
    MemoryImage mem;
    try {
        runKernel(cfg, mem, kernel(barrierProgram(), 2, 64));
        FAIL() << "auditor did not catch the lost barrier arrival";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Invariant);
        EXPECT_EQ(e.context().smId, 0);
        EXPECT_NE(e.context().cycle, kNoCycle);
        EXPECT_NE(std::string(e.what()).find("barrier"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Invariants, LostLoadCompletionCaught)
{
    GpuConfig cfg = auditedCfg(2); // token cross-check is level 2
    cfg.faults.dropLoadCompletion = 0;
    MemoryImage mem;
    try {
        runKernel(cfg, mem, kernel(barrierProgram(), 2, 64));
        FAIL() << "auditor did not catch the dropped completion";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Invariant);
        EXPECT_NE(std::string(e.what()).find("completion"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Invariants, AuditLevelZeroIsInert)
{
    // With audits off, the same fault is left for the watchdog: the
    // run must not throw.
    GpuConfig cfg = auditedCfg(0);
    cfg.faults.dropBarrierArrival = 0;
    cfg.watchdogInterval = 1'000;
    MemoryImage mem;
    SimReport r;
    EXPECT_NO_THROW(
        r = runKernel(cfg, mem, kernel(barrierProgram(), 2, 64)));
    EXPECT_EQ(r.exitStatus, ExitStatus::Deadlock);
}

TEST(Invariants, AssertThrowGuardScopesAndRestores)
{
    const bool before = simAssertThrows();
    {
        SimAssertThrowGuard guard(true);
        EXPECT_TRUE(simAssertThrows());
        try {
            setSimAssertContext(42, 3);
            sim_panic("forced failure");
            FAIL() << "sim_panic did not throw in throw-mode";
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), SimErrorKind::Assertion);
            EXPECT_EQ(e.context().cycle, 42u);
            EXPECT_EQ(e.context().smId, 3);
        }
        clearSimAssertContext();
    }
    EXPECT_EQ(simAssertThrows(), before);
}

TEST(Invariants, ValidateRejectsBadConfigWithNamedField)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 0;
    const auto problems = cfg.validate();
    ASSERT_FALSE(problems.empty());
    bool named = false;
    for (const auto &p : problems)
        named = named || p.find("numSms") != std::string::npos;
    EXPECT_TRUE(named) << problems.front();

    try {
        cfg.validateOrThrow();
        FAIL() << "validateOrThrow accepted numSms=0";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
    }
}

TEST(Invariants, GpuConstructorValidates)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.warpSize = 0;
    MemoryImage mem;
    EXPECT_THROW(Gpu(cfg, mem), SimError);
}

TEST(Invariants, OversizedBlockRejectedAtLaunch)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    cfg.maxWarpsPerSm = 2;
    MemoryImage mem;
    try {
        // 4 warps per block can never fit a 2-warp SM.
        runKernel(cfg, mem, kernel(barrierProgram(), 1, 128));
        FAIL() << "unplaceable block was accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Config);
        EXPECT_NE(std::string(e.what()).find("warps"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace cawa
