/**
 * @file
 * Warp functional-execution tests: per-opcode semantics through the
 * SIMT pipeline (special registers, predicates, memory, divergence),
 * barrier/exit state transitions, and the scoreboard dependency
 * masks.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sm/barrier.hh"
#include "sm/scoreboard.hh"
#include "sm/warp.hh"

namespace cawa
{
namespace
{

struct WarpFixture
{
    MemoryImage mem;
    MemPort port{mem}; // passthrough: executor sees mem directly
    std::vector<std::uint8_t> shared = std::vector<std::uint8_t>(1024);
    Warp warp{32};
    Program program;

    ExecContext
    ctx()
    {
        ExecContext c;
        c.global = &port;
        c.shared = &shared;
        c.blockDim = 64;
        c.gridDim = 4;
        c.blockIdX = 2;
        return c;
    }

    void
    start(Program p, int active = 32)
    {
        program = std::move(p);
        warp.activate(&program, 2, 1, active, 0, 0);
    }
};

TEST(Warp, SpecialRegisters)
{
    WarpFixture f;
    ProgramBuilder b;
    b.s2r(1, SpecialReg::TidX);
    b.s2r(2, SpecialReg::CtaIdX);
    b.s2r(3, SpecialReg::NTidX);
    b.s2r(4, SpecialReg::LaneId);
    b.s2r(5, SpecialReg::WarpIdInBlock);
    b.s2r(6, SpecialReg::GlobalTid);
    b.exit();
    f.start(b.build());
    auto c = f.ctx();
    for (int i = 0; i < 6; ++i)
        f.warp.executeNext(c);
    // Warp 1 of block 2, blockDim 64: lane 5 -> tid 37, gtid 165.
    EXPECT_EQ(f.warp.reg(5, 1), 37u);
    EXPECT_EQ(f.warp.reg(5, 2), 2u);
    EXPECT_EQ(f.warp.reg(5, 3), 64u);
    EXPECT_EQ(f.warp.reg(5, 4), 5u);
    EXPECT_EQ(f.warp.reg(5, 5), 1u);
    EXPECT_EQ(f.warp.reg(5, 6), 2u * 64 + 37);
}

TEST(Warp, GlobalLoadStoreRoundTrip)
{
    WarpFixture f;
    for (int lane = 0; lane < 32; ++lane)
        f.mem.write32(0x1000 + 4ull * lane, 100 + lane);
    ProgramBuilder b;
    b.s2r(1, SpecialReg::LaneId);
    b.shlImm(1, 1, 2);
    b.ldGlobal(2, 1, 0x1000);
    b.addImm(2, 2, 1);
    b.stGlobal(1, 2, 0x2000);
    b.exit();
    f.start(b.build());
    auto c = f.ctx();
    for (int i = 0; i < 5; ++i) {
        const ExecResult r = f.warp.executeNext(c);
        if (r.inst->isGlobal())
            EXPECT_EQ(r.laneAddrs->size(), 32u);
    }
    for (int lane = 0; lane < 32; ++lane)
        EXPECT_EQ(f.mem.read32(0x2000 + 4ull * lane),
                  static_cast<std::uint32_t>(101 + lane));
}

TEST(Warp, SharedMemoryRoundTrip)
{
    WarpFixture f;
    ProgramBuilder b;
    b.s2r(1, SpecialReg::LaneId);
    b.shlImm(2, 1, 2);
    b.mulImm(3, 1, 7);
    b.stShared(2, 3, 0);
    b.ldShared(4, 2, 0);
    b.exit();
    f.start(b.build());
    auto c = f.ctx();
    for (int i = 0; i < 5; ++i)
        f.warp.executeNext(c);
    EXPECT_EQ(f.warp.reg(9, 4), 63u);
}

TEST(Warp, DivergentBranchExecutesBothPaths)
{
    WarpFixture f;
    // if (lane < 16) r2 = 1 else r2 = 2
    ProgramBuilder b;
    b.s2r(1, SpecialReg::LaneId);
    b.setpImm(0, CmpOp::Ge, 1, 16);
    b.braIf("else", 0, "endif");
    b.movImm(2, 1);
    b.bra("endif");
    b.label("else");
    b.movImm(2, 2);
    b.label("endif");
    b.exit();
    f.start(b.build());
    auto c = f.ctx();
    ExecResult r;
    int steps = 0;
    do {
        r = f.warp.executeNext(c);
        if (r.isBranch && r.inst->predUsed)
            EXPECT_TRUE(r.branchDiverged);
        steps++;
        ASSERT_LT(steps, 20);
    } while (!r.exited);
    for (int lane = 0; lane < 32; ++lane)
        EXPECT_EQ(f.warp.reg(lane, 2), lane < 16 ? 1u : 2u);
    EXPECT_EQ(f.warp.state(), WarpState::Finished);
}

TEST(Warp, PartialWarpOnlyActiveLanesExecute)
{
    WarpFixture f;
    ProgramBuilder b;
    b.s2r(1, SpecialReg::LaneId);
    b.shlImm(2, 1, 2);
    b.movImm(3, 7);
    b.stGlobal(2, 3, 0x3000);
    b.exit();
    f.start(b.build(), /*active=*/10);
    auto c = f.ctx();
    ExecResult r;
    do {
        r = f.warp.executeNext(c);
        if (r.inst->isGlobal())
            EXPECT_EQ(r.laneAddrs->size(), 10u);
    } while (!r.exited);
    EXPECT_EQ(f.mem.read32(0x3000 + 4 * 9), 7u);
    EXPECT_EQ(f.mem.read32(0x3000 + 4 * 10), 0u);
}

TEST(Warp, BarrierSetsStateAndResumes)
{
    WarpFixture f;
    ProgramBuilder b;
    b.movImm(1, 5);
    b.bar();
    b.addImm(1, 1, 1);
    b.exit();
    f.start(b.build());
    auto c = f.ctx();
    f.warp.executeNext(c);
    const ExecResult r = f.warp.executeNext(c);
    EXPECT_TRUE(r.atBarrier);
    EXPECT_EQ(f.warp.state(), WarpState::AtBarrier);
    f.warp.setState(WarpState::Running);
    f.warp.executeNext(c);
    EXPECT_EQ(f.warp.reg(0, 1), 6u);
}

TEST(Warp, SelpUsesPredicatePerLane)
{
    WarpFixture f;
    ProgramBuilder b;
    b.s2r(1, SpecialReg::LaneId);
    b.setpImm(0, CmpOp::Lt, 1, 8);
    b.movImm(2, 100);
    b.movImm(3, 200);
    b.selp(4, 0, 2, 3);
    b.exit();
    f.start(b.build());
    auto c = f.ctx();
    for (int i = 0; i < 5; ++i)
        f.warp.executeNext(c);
    EXPECT_EQ(f.warp.reg(3, 4), 100u);
    EXPECT_EQ(f.warp.reg(20, 4), 200u);
}

TEST(Scoreboard, DependencyMasks)
{
    Instruction add;
    add.op = Opcode::Add;
    add.dst = 3;
    add.src0 = 1;
    add.src1 = 2;
    add.deriveMasks();
    EXPECT_EQ(add.readRegs, 0b110u);
    EXPECT_EQ(add.writeRegs, 0b1000u);

    Instruction mad;
    mad.op = Opcode::Mad;
    mad.dst = 0;
    mad.src0 = 1;
    mad.src1 = 2;
    mad.src2 = 3;
    mad.deriveMasks();
    EXPECT_EQ(mad.readRegs, 0b1110u);

    Instruction setp;
    setp.op = Opcode::Setp;
    setp.pdst = 2;
    setp.src0 = 4;
    setp.src1 = 5;
    setp.deriveMasks();
    EXPECT_EQ(setp.writePreds, 0b100u);
    EXPECT_EQ(setp.readRegs, 0b110000u);

    Instruction bra;
    bra.op = Opcode::Bra;
    bra.predUsed = true;
    bra.psrc = 1;
    bra.deriveMasks();
    EXPECT_EQ(bra.readPreds, 0b10u);
    Instruction ubra;
    ubra.op = Opcode::Bra;
    ubra.deriveMasks();
    EXPECT_EQ(ubra.readPreds, 0u);

    Instruction st;
    st.op = Opcode::StGlobal;
    st.src0 = 6;
    st.src1 = 7;
    st.deriveMasks();
    EXPECT_EQ(st.readRegs, 0b11000000u);
    EXPECT_EQ(st.writeRegs, 0u);
}

TEST(Scoreboard, BlocksOnPendingRegs)
{
    Scoreboard sb;
    Instruction add;
    add.op = Opcode::Add;
    add.dst = 3;
    add.src0 = 1;
    add.src1 = 2;
    add.deriveMasks();
    EXPECT_TRUE(sb.canIssue(add));
    sb.pendingRegs = 1u << 2; // src1 pending
    EXPECT_FALSE(sb.canIssue(add));
    sb.pendingRegs = 1u << 3; // WAW on dst
    EXPECT_FALSE(sb.canIssue(add));
    sb.pendingRegs = 1u << 5;
    EXPECT_TRUE(sb.canIssue(add));
    sb.pendingMemRegs = 1u << 2;
    sb.pendingRegs |= sb.pendingMemRegs;
    EXPECT_TRUE(sb.blockedByMemory(add));
}

TEST(Barrier, ArriveAndRelease)
{
    BarrierState bar;
    bar.reset(3);
    EXPECT_FALSE(bar.arrive());
    EXPECT_FALSE(bar.arrive());
    EXPECT_TRUE(bar.arrive());
    EXPECT_EQ(bar.arrived(), 0); // reset for the next phase
    // A warp exiting can release the rest.
    EXPECT_FALSE(bar.arrive());
    EXPECT_FALSE(bar.arrive());
    EXPECT_TRUE(bar.reduceExpected());
    EXPECT_EQ(bar.expected(), 2);
}

} // namespace
} // namespace cawa
