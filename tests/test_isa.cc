/**
 * @file
 * ISA unit tests: ALU/compare semantics, instruction classification,
 * the program builder's label patching, and program validation.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"

namespace cawa
{
namespace
{

TEST(EvalAlu, IntegerOps)
{
    EXPECT_EQ(evalAlu(Opcode::Add, 3, 4, 0, 0), 7u);
    EXPECT_EQ(evalAlu(Opcode::AddImm, 3, 0, 0, 10), 13u);
    EXPECT_EQ(evalAlu(Opcode::Sub, 3, 4, 0, 0),
              static_cast<RegValue>(-1));
    EXPECT_EQ(evalAlu(Opcode::Mul, 3, 4, 0, 0), 12u);
    EXPECT_EQ(evalAlu(Opcode::MulImm, 3, 0, 0, 5), 15u);
    EXPECT_EQ(evalAlu(Opcode::Mad, 3, 4, 5, 0), 17u);
    EXPECT_EQ(evalAlu(Opcode::And, 0b1100, 0b1010, 0, 0), 0b1000u);
    EXPECT_EQ(evalAlu(Opcode::Or, 0b1100, 0b1010, 0, 0), 0b1110u);
    EXPECT_EQ(evalAlu(Opcode::Xor, 0b1100, 0b1010, 0, 0), 0b0110u);
    EXPECT_EQ(evalAlu(Opcode::Shl, 1, 4, 0, 0), 16u);
    EXPECT_EQ(evalAlu(Opcode::Shr, 16, 2, 0, 0), 4u);
    EXPECT_EQ(evalAlu(Opcode::ShlImm, 1, 0, 0, 3), 8u);
    EXPECT_EQ(evalAlu(Opcode::ShrImm, 8, 0, 0, 3), 1u);
    EXPECT_EQ(evalAlu(Opcode::Mov, 99, 0, 0, 0), 99u);
    EXPECT_EQ(evalAlu(Opcode::MovImm, 0, 0, 0, -1),
              ~RegValue{0});
}

TEST(EvalAlu, MinMaxAreSigned)
{
    const RegValue neg1 = static_cast<RegValue>(-1);
    EXPECT_EQ(evalAlu(Opcode::Min, neg1, 1, 0, 0), neg1);
    EXPECT_EQ(evalAlu(Opcode::Max, neg1, 1, 0, 0), 1u);
}

TEST(EvalAlu, SfuIsDeterministicBijectiveMix)
{
    const RegValue a = evalAlu(Opcode::Sfu, 42, 0, 0, 0);
    const RegValue b = evalAlu(Opcode::Sfu, 42, 0, 0, 0);
    const RegValue c = evalAlu(Opcode::Sfu, 43, 0, 0, 0);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(EvalCmp, SignedSemantics)
{
    const RegValue neg = static_cast<RegValue>(-5);
    EXPECT_TRUE(evalCmp(CmpOp::Lt, neg, 3));
    EXPECT_FALSE(evalCmp(CmpOp::Gt, neg, 3));
    EXPECT_TRUE(evalCmp(CmpOp::Le, 3, 3));
    EXPECT_TRUE(evalCmp(CmpOp::Ge, 3, 3));
    EXPECT_TRUE(evalCmp(CmpOp::Eq, 7, 7));
    EXPECT_TRUE(evalCmp(CmpOp::Ne, 7, 8));
}

TEST(Instruction, Classification)
{
    Instruction ld;
    ld.op = Opcode::LdGlobal;
    EXPECT_TRUE(ld.isMem());
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isGlobal());
    EXPECT_TRUE(ld.writesReg());
    EXPECT_EQ(ld.funcUnit(), FuncUnit::Mem);

    Instruction st;
    st.op = Opcode::StShared;
    EXPECT_TRUE(st.isMem());
    EXPECT_FALSE(st.isLoad());
    EXPECT_FALSE(st.isGlobal());
    EXPECT_FALSE(st.writesReg());

    Instruction bra;
    bra.op = Opcode::Bra;
    EXPECT_EQ(bra.funcUnit(), FuncUnit::Control);
    EXPECT_FALSE(bra.writesReg());

    Instruction sfu;
    sfu.op = Opcode::Sfu;
    EXPECT_EQ(sfu.funcUnit(), FuncUnit::Sfu);

    Instruction setp;
    setp.op = Opcode::Setp;
    EXPECT_FALSE(setp.writesReg());
    EXPECT_EQ(setp.funcUnit(), FuncUnit::Alu);
}

TEST(ProgramBuilder, PatchesForwardAndBackwardLabels)
{
    ProgramBuilder b;
    b.movImm(1, 3);
    b.label("loop");                 // pc 1
    b.addImm(1, 1, -1);
    b.setpImm(0, CmpOp::Gt, 1, 0);
    b.braIf("loop", 0, "out");       // pc 3
    b.label("out");
    b.exit();
    const Program p = b.build();
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.at(3).op, Opcode::Bra);
    EXPECT_EQ(p.at(3).target, 1u);
    EXPECT_EQ(p.at(3).reconv, 4u);
    EXPECT_TRUE(p.at(3).predUsed);
}

TEST(ProgramBuilder, UnconditionalBranchHasNoPredicate)
{
    ProgramBuilder b;
    b.bra("end");
    b.nop();
    b.label("end");
    b.exit();
    const Program p = b.build();
    EXPECT_FALSE(p.at(0).predUsed);
    EXPECT_EQ(p.at(0).target, 2u);
}

TEST(ProgramBuilder, NegatedPredicate)
{
    ProgramBuilder b;
    b.setpImm(2, CmpOp::Eq, 1, 0);
    b.braIfNot("end", 2, "end");
    b.nop();
    b.label("end");
    b.exit();
    const Program p = b.build();
    EXPECT_TRUE(p.at(1).predUsed);
    EXPECT_TRUE(p.at(1).predNegate);
    EXPECT_EQ(p.at(1).psrc, 2);
}

TEST(Program, ValidateRejectsDefects)
{
    // Empty program.
    EXPECT_NE(Program(std::vector<Instruction>{}).validate(), "");

    // Missing exit.
    {
        Instruction nop;
        nop.op = Opcode::Nop;
        EXPECT_NE(Program({nop}).validate(), "");
    }

    // Branch target out of range.
    {
        Instruction bra;
        bra.op = Opcode::Bra;
        bra.target = 99;
        bra.reconv = 1;
        Instruction ex;
        ex.op = Opcode::Exit;
        EXPECT_NE(Program({bra, ex}).validate(), "");
    }

    // Forward branch reconverging before the branch.
    {
        Instruction nop;
        nop.op = Opcode::Nop;
        Instruction bra;
        bra.op = Opcode::Bra;
        bra.target = 3;
        bra.reconv = 0;
        Instruction ex;
        ex.op = Opcode::Exit;
        EXPECT_NE(Program({nop, bra, nop, ex}).validate(), "");
    }
}

TEST(Program, ValidProgramPassesAndDisassembles)
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.ldGlobal(2, 1, 0x1000);
    b.stGlobal(1, 2, 0x2000);
    b.exit();
    const Program p = b.build();
    EXPECT_EQ(p.validate(), "");
    const std::string dis = p.disassemble();
    EXPECT_NE(dis.find("ld.global"), std::string::npos);
    EXPECT_NE(dis.find("st.global"), std::string::npos);
    EXPECT_NE(dis.find("exit"), std::string::npos);
}

TEST(Program, OpcodeNamesAreUnique)
{
    // Spot check a few names used by the disassembler.
    EXPECT_EQ(opcodeName(Opcode::Add), "add");
    EXPECT_EQ(opcodeName(Opcode::Bar), "bar.sync");
    EXPECT_NE(opcodeName(Opcode::Shl), opcodeName(Opcode::ShlImm));
}

} // namespace
} // namespace cawa
