/**
 * @file
 * Behavioural regressions for the paper's qualitative claims at small
 * scale (fast enough for CI): divergence-driven instruction spread in
 * balanced bfs, kmeans scheduler sensitivity and CACP's critical-warp
 * hit-rate lift, needle's single-warp blocks, streamcluster-mid's
 * insensitivity, and the CPL accuracy edge cases.
 */

#include <gtest/gtest.h>

#include "sim/gpu.hh"
#include "workloads/registry.hh"

namespace cawa
{
namespace
{

GpuConfig
cfg4(SchedulerKind sched = SchedulerKind::Lrr,
     CachePolicyKind cache = CachePolicyKind::Lru)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 4;
    cfg.scheduler = sched;
    cfg.l1Policy = cache;
    return cfg;
}

SimReport
runW(const std::string &name, const GpuConfig &cfg, double scale,
     bool balanced = false)
{
    auto wl = makeWorkload(name);
    MemoryImage mem;
    WorkloadParams params;
    params.scale = scale;
    params.bfsBalanced = balanced;
    const KernelInfo kernel = wl->build(mem, params);
    SimReport r = runKernel(cfg, mem, kernel);
    EXPECT_TRUE(wl->verify(mem)) << name;
    return r;
}

double
instructionSpread(const SimReport &r)
{
    // Mean over blocks of (max - min)/min warp instruction counts.
    double sum = 0.0;
    int n = 0;
    for (const auto &b : r.blocks) {
        if (b.warps.size() < 2)
            continue;
        std::uint64_t lo = b.warps[0].instructions;
        std::uint64_t hi = lo;
        for (const auto &w : b.warps) {
            lo = std::min(lo, w.instructions);
            hi = std::max(hi, w.instructions);
        }
        if (lo == 0)
            continue;
        sum += static_cast<double>(hi - lo) / lo;
        n++;
    }
    return n ? sum / n : 0.0;
}

TEST(PaperShapes, BalancedBfsStillDivergesButLessImbalanced)
{
    const SimReport imb = runW("bfs", cfg4(), 0.3, false);
    const SimReport bal = runW("bfs", cfg4(), 0.3, true);
    // Fig 2(b): with the balanced input the instruction spread comes
    // only from the visited/not-visited divergence, so it shrinks --
    // but does not vanish.
    EXPECT_LT(instructionSpread(bal), instructionSpread(imb));
    EXPECT_GT(instructionSpread(bal), 0.0);
    // Disparity persists under the balanced input (Fig 2(b)'s point).
    EXPECT_GT(bal.avgDisparity(), 0.02);
}

TEST(PaperShapes, KmeansIsSchedulerSensitive)
{
    const SimReport rr = runW("kmeans", cfg4(), 0.3);
    const SimReport gto =
        runW("kmeans", cfg4(SchedulerKind::Gto), 0.3);
    EXPECT_GT(gto.ipc(), 1.3 * rr.ipc());
    // The win comes through the cache, as the paper argues.
    EXPECT_GT(gto.l1.hitRate(), rr.l1.hitRate() + 0.1);
}

TEST(PaperShapes, CacpLiftsCriticalHitRateOnKmeans)
{
    const SimReport lru =
        runW("kmeans", cfg4(SchedulerKind::Gcaws), 0.3);
    const SimReport cacp = runW(
        "kmeans", cfg4(SchedulerKind::Gcaws, CachePolicyKind::Cacp),
        0.3);
    // Fig 14's direction: criticality-aware retention raises the hit
    // rate seen by critical warps.
    EXPECT_GT(cacp.l1.criticalHitRate(), lru.l1.criticalHitRate());
}

TEST(PaperShapes, NeedleHasSingleWarpBlocksAndPerfectAccuracy)
{
    const SimReport r = runW("needle", cfg4(), 0.2);
    for (const auto &b : r.blocks)
        EXPECT_EQ(b.warps.size(), 1u);
    // Fig 11 footnote: accuracy is trivially 100%.
    EXPECT_DOUBLE_EQ(r.cplAccuracy(), 1.0);
}

TEST(PaperShapes, StreamclusterMidIsInsensitive)
{
    const SimReport rr = runW("strcltr_mid", cfg4(), 0.3);
    const SimReport gto =
        runW("strcltr_mid", cfg4(SchedulerKind::Gto), 0.3);
    // Table 2's Non-sens class: scheduling barely moves it.
    EXPECT_LT(std::abs(gto.ipc() / rr.ipc() - 1.0), 0.15);
}

TEST(PaperShapes, NonSensAppsHaveLowDisparity)
{
    for (const char *name : {"backprop", "particle", "pathfinder",
                             "tpacf"}) {
        const SimReport r = runW(name, cfg4(), 0.2);
        EXPECT_LT(r.avgDisparity(), 0.15) << name;
    }
}

TEST(PaperShapes, SensAppsHaveHighDisparity)
{
    for (const char *name : {"bfs", "srad_1", "kmeans"}) {
        const SimReport r = runW(name, cfg4(), 0.2);
        EXPECT_GT(r.avgDisparity(), 0.25) << name;
    }
}

TEST(PaperShapes, WriteThroughTrafficReachesDram)
{
    // Every store must show up as DRAM write traffic (write-through
    // at both levels).
    const SimReport r = runW("backprop", cfg4(), 0.2);
    EXPECT_GT(r.dramWrites, 0u);
}

TEST(PaperShapes, MemoryLatencyFloorsRespected)
{
    // A cold single-warp load can't return faster than the DRAM
    // floor; IPC of a pointer-chase-like kernel is bounded by it.
    const SimReport r = runW("b+tree", cfg4(), 0.2);
    EXPECT_GT(r.cycles, 0u);
    // Round trip floor: icnt 2x50 + dram 120 => cycles per block well
    // above the number of instructions per warp.
    EXPECT_LT(r.ipc(), 8.0 * 4 /* SMs */);
}

} // namespace
} // namespace cawa
