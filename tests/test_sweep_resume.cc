/**
 * @file
 * Crash-isolated sweep and journal/resume tests: one throwing job
 * must not take down the rest of the sweep; retries are counted and
 * bounded; the completion journal round-trips, tolerates a torn tail
 * (crash mid-append), and resume filtering re-runs exactly the
 * failed/missing jobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_error.hh"
#include "isa/program_builder.hh"
#include "sim/journal.hh"
#include "sim/report_json.hh"
#include "sim/sweep.hh"

namespace cawa
{
namespace
{

Program
trivialProgram()
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(2, 1, 2);
    b.movImm(3, 7);
    b.stGlobal(2, 3, 0x1000);
    b.exit();
    return b.build();
}

SweepJob
goodJob(const std::string &name)
{
    SweepJob job;
    job.name = name;
    job.cfg = GpuConfig::fermiGtx480();
    job.cfg.numSms = 1;
    job.build = [](MemoryImage &) {
        KernelInfo k;
        k.name = "t";
        k.program = trivialProgram();
        k.gridDim = 2;
        k.blockDim = 64;
        return k;
    };
    return job;
}

SweepJob
throwingJob(const std::string &name)
{
    SweepJob job = goodJob(name);
    job.build = [](MemoryImage &) -> KernelInfo {
        throw std::runtime_error("synthetic build failure");
    };
    return job;
}

/// A fresh path under gtest's per-test temp dir.
std::string
tempPath(const char *file)
{
    return ::testing::TempDir() + file;
}

TEST(SweepIsolation, ThrowingJobDoesNotSinkTheSweep)
{
    const std::vector<SweepJob> jobs = {goodJob("a"), throwingJob("b"),
                                        goodJob("c")};
    const SweepEngine engine(2);
    const auto results = engine.run(jobs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_FALSE(results[1].ok());
    EXPECT_NE(results[1].error.find("synthetic build failure"),
              std::string::npos);
    EXPECT_TRUE(results[2].ok());
}

TEST(SweepIsolation, BadConfigCapturedPerJob)
{
    SweepJob bad = goodJob("bad-cfg");
    bad.cfg.numSms = 0;
    const auto res = runSweepJob(bad);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("numSms"), std::string::npos)
        << res.error;
}

TEST(SweepIsolation, RetriesCountedAndBounded)
{
    // A deterministic thrower uses every allowed attempt.
    const auto failed = runSweepJob(throwingJob("t"), 3);
    EXPECT_FALSE(failed.error.empty());
    EXPECT_EQ(failed.attempts, 3);

    // A healthy job succeeds on the first attempt, retries unused.
    const auto okay = runSweepJob(goodJob("g"), 3);
    EXPECT_TRUE(okay.ok());
    EXPECT_EQ(okay.attempts, 1);
}

TEST(Journal, RoundTrip)
{
    const std::string path = tempPath("journal_roundtrip.jsonl");
    std::remove(path.c_str());

    SweepResult ok_result;
    ok_result.attempts = 1;
    SweepResult bad_result;
    bad_result.error = "boom: first line\nsecond line";
    bad_result.attempts = 2;

    {
        std::ofstream out(path);
        out << journalLine(makeJournalEntry("job-a", ok_result)) << "\n";
        out << journalLine(makeJournalEntry("job-b", bad_result))
            << "\n";
    }
    const auto entries = readJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].job, "job-a");
    EXPECT_EQ(entries[0].status, "ok");
    EXPECT_TRUE(entries[0].ok());
    EXPECT_EQ(entries[0].attempts, 1);
    EXPECT_EQ(entries[1].job, "job-b");
    EXPECT_EQ(entries[1].status, "error");
    EXPECT_FALSE(entries[1].ok());
    // Only the first line of a multi-line error is journaled.
    EXPECT_EQ(entries[1].error, "boom: first line");
    EXPECT_EQ(entries[1].attempts, 2);
}

TEST(Journal, StatusReflectsExitAndVerification)
{
    SweepResult timeout;
    timeout.report.exitStatus = ExitStatus::Timeout;
    EXPECT_EQ(entryStatus(timeout), "timeout");

    SweepResult unverified;
    unverified.verified = false;
    EXPECT_EQ(entryStatus(unverified), "verify-failed");

    SweepResult deadlock;
    deadlock.report.exitStatus = ExitStatus::Deadlock;
    EXPECT_EQ(makeJournalEntry("j", deadlock).status, "deadlock");
}

TEST(Journal, FirstClassFailureReasonsWinOverError)
{
    // A walltime/cancelled job also carries an error message; the
    // journal must record the machine-readable reason, not "error",
    // so resume logic can tell budget exhaustion from crashes.
    SweepResult walltime;
    walltime.error = "wall-clock limit exceeded";
    walltime.failureReason = "walltime";
    EXPECT_EQ(entryStatus(walltime), "walltime");

    SweepResult cancelled;
    cancelled.error = "cancelled by shutdown request";
    cancelled.failureReason = "cancelled";
    EXPECT_EQ(makeJournalEntry("j", cancelled).status, "cancelled");
}

TEST(Journal, TornTailIsSkippedNotFatal)
{
    const std::string path = tempPath("journal_torn.jsonl");
    {
        std::ofstream out(path);
        out << R"({"job":"a","status":"ok","attempts":1})" << "\n";
        out << R"({"job":"b","status":"error","attempts":1,"err)";
        // no newline: the classic crash-mid-append tail
    }
    const auto entries = readJournal(path);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].job, "a");
}

TEST(Journal, MissingFileReadsEmpty)
{
    const std::string path = tempPath("journal_never_written.jsonl");
    std::remove(path.c_str());
    EXPECT_TRUE(readJournal(path).empty());
}

TEST(Resume, OnlyFailedAndMissingJobsRemain)
{
    const std::vector<SweepJob> jobs = {goodJob("a"), goodJob("b"),
                                        goodJob("c")};
    std::vector<JournalEntry> journal;
    JournalEntry a;
    a.job = "a";
    a.status = "ok";
    JournalEntry b;
    b.job = "b";
    b.status = "error";
    b.error = "boom";
    journal = {a, b}; // c never ran
    const auto remaining = filterResumeJobs(jobs, journal);
    ASSERT_EQ(remaining.size(), 2u);
    EXPECT_EQ(remaining[0].name, "b");
    EXPECT_EQ(remaining[1].name, "c");
}

TEST(Resume, LaterEntryWins)
{
    // b failed on the first run and succeeded on the resumed one.
    const std::vector<SweepJob> jobs = {goodJob("a"), goodJob("b")};
    JournalEntry a_ok;
    a_ok.job = "a";
    a_ok.status = "ok";
    JournalEntry b_bad;
    b_bad.job = "b";
    b_bad.status = "error";
    JournalEntry b_ok;
    b_ok.job = "b";
    b_ok.status = "ok";
    b_ok.attempts = 2;
    const auto remaining =
        filterResumeJobs(jobs, {a_ok, b_bad, b_ok});
    EXPECT_TRUE(remaining.empty());
}

TEST(Resume, TornLastLineYieldsSamePlanAsIntactPrefix)
{
    // A crash mid-append leaves the journal as N intact lines plus a
    // partial final line. Resuming from the torn file must plan
    // exactly the same job set as resuming from the intact prefix,
    // at every possible tear point of the damaged line.
    const std::vector<SweepJob> jobs = {goodJob("a"), goodJob("b"),
                                        goodJob("c"), goodJob("d")};
    const std::string prefix_lines =
        R"({"job":"a","status":"ok","attempts":1})" "\n"
        R"({"job":"b","status":"walltime","error":"x","attempts":1})"
        "\n";
    const std::string last_line =
        R"({"job":"c","status":"ok","attempts":1})";

    const std::string intact = tempPath("journal_prefix.jsonl");
    {
        std::ofstream out(intact);
        out << prefix_lines;
    }
    const auto expected =
        filterResumeJobs(jobs, readJournal(intact));
    ASSERT_EQ(expected.size(), 3u); // b (failed), c, d (never ran)

    const std::string torn = tempPath("journal_torn_cut.jsonl");
    for (std::size_t cut = 0; cut < last_line.size(); ++cut) {
        std::ofstream out(torn);
        out << prefix_lines << last_line.substr(0, cut);
        out.close();
        const auto remaining =
            filterResumeJobs(jobs, readJournal(torn));
        ASSERT_EQ(remaining.size(), expected.size())
            << "tear after " << cut << " bytes of the last line";
        for (std::size_t i = 0; i < remaining.size(); ++i)
            EXPECT_EQ(remaining[i].name, expected[i].name);
    }
}

TEST(Resume, WalltimeAndCancelledJobsRerun)
{
    // Budget-killed and cancelled jobs are unfinished work: a resumed
    // sweep must run them again (from their checkpoints when those
    // exist, but the plan itself does not depend on that).
    const std::vector<SweepJob> jobs = {goodJob("a"), goodJob("b"),
                                        goodJob("c")};
    JournalEntry a;
    a.job = "a";
    a.status = "walltime";
    JournalEntry b;
    b.job = "b";
    b.status = "cancelled";
    JournalEntry c;
    c.job = "c";
    c.status = "ok";
    const auto remaining = filterResumeJobs(jobs, {a, b, c});
    ASSERT_EQ(remaining.size(), 2u);
    EXPECT_EQ(remaining[0].name, "a");
    EXPECT_EQ(remaining[1].name, "b");
}

TEST(Resume, EndToEndThroughJournalFile)
{
    // Run a sweep with one thrower and a live journal, then resume:
    // only the failed job comes back.
    const std::string path = tempPath("journal_e2e.jsonl");
    std::remove(path.c_str());

    const std::vector<SweepJob> jobs = {goodJob("a"), throwingJob("b"),
                                        goodJob("c")};
    std::ofstream out(path);
    SweepEngine::JobDone on_done = [&](std::size_t index,
                                       const SweepResult &res) {
        out << journalLine(makeJournalEntry(jobs[index].name, res))
            << "\n";
        out.flush();
    };
    const SweepEngine engine(2);
    engine.run(jobs, on_done);
    out.close();

    const auto remaining = filterResumeJobs(jobs, readJournal(path));
    ASSERT_EQ(remaining.size(), 1u);
    EXPECT_EQ(remaining[0].name, "b");
}

// Satellite of the process-isolation PR: a crash can leave BOTH a
// torn final journal line and a valid checkpoint for the job that was
// mid-run. --resume must plan the job exactly once (no double-count
// from the damaged line) and continue it from the checkpoint rather
// than from cycle 0.
TEST(Resume, TornFinalLinePlusCheckpointPrefersCheckpoint)
{
    const std::string ckpt = tempPath("resume_pref.ckpt");
    std::remove(ckpt.c_str());

    // A clean pass produces the checkpoint the "crashed" run would
    // have left behind, plus the reference report.
    SweepJob job = goodJob("c");
    job.cfg.checkpointPath = ckpt;
    job.cfg.checkpointInterval = 20;
    const SweepResult reference = runSweepJob(job);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(access(ckpt.c_str(), R_OK), 0)
        << "the run should have left a periodic checkpoint";

    // The journal the crash left: "a" finished, the entry for "c" was
    // torn mid-append.
    const std::string path = tempPath("journal_pref.jsonl");
    {
        std::ofstream out(path);
        out << R"({"job":"a","status":"ok","attempts":1})" << "\n";
        out << R"({"job":"c","status":"o)"; // torn, no newline
    }

    std::vector<SweepJob> jobs = {goodJob("a"), job};
    auto remaining = filterResumeJobs(jobs, readJournal(path));
    ASSERT_EQ(remaining.size(), 1u); // exactly once, never twice
    EXPECT_EQ(remaining[0].name, "c");

    EXPECT_EQ(attachResumeCheckpoints(remaining, ""), 1u);
    EXPECT_EQ(remaining[0].resumeFromCheckpoint, ckpt);

    const SweepResult resumed = runSweepJob(remaining[0]);
    ASSERT_TRUE(resumed.ok()) << resumed.error;
    EXPECT_TRUE(resumed.resumed)
        << "the job should continue from the checkpoint";
    JsonWriteOptions compact;
    compact.pretty = false;
    EXPECT_EQ(toJson(resumed.report, compact),
              toJson(reference.report, compact));
    std::remove(ckpt.c_str());
}

TEST(Journal, CompactEntriesLaterWinsOrderedByLastAppearance)
{
    JournalEntry a_bad;
    a_bad.job = "a";
    a_bad.status = "crashed";
    JournalEntry b_ok;
    b_ok.job = "b";
    b_ok.status = "ok";
    JournalEntry a_ok;
    a_ok.job = "a";
    a_ok.status = "ok";
    a_ok.attempts = 2;

    const auto compact = compactEntries({a_bad, b_ok, a_ok});
    ASSERT_EQ(compact.size(), 2u);
    // "a" last appeared after "b", so it sorts after it.
    EXPECT_EQ(compact[0].job, "b");
    EXPECT_EQ(compact[1].job, "a");
    EXPECT_EQ(compact[1].status, "ok");
    EXPECT_EQ(compact[1].attempts, 2);
}

// Unsharded entries serialize byte-identically to the pre-sharding
// format (no epoch/shard keys); sharded entries round-trip both.
TEST(Journal, EpochAndShardRoundTripAndStayElidedWhenUnsharded)
{
    JournalEntry legacy;
    legacy.job = "plain";
    legacy.status = "ok";
    const std::string line = journalLine(legacy);
    EXPECT_EQ(line.find("epoch"), std::string::npos) << line;
    EXPECT_EQ(line.find("shard"), std::string::npos) << line;

    JournalEntry sharded;
    sharded.job = "sharded";
    sharded.status = "ok";
    sharded.epoch = 3;
    sharded.shard = 2;

    const std::string path = tempPath("journal_epoch.jsonl");
    std::remove(path.c_str());
    {
        std::ofstream out(path);
        out << line << "\n" << journalLine(sharded) << "\n";
    }
    const auto entries = readJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].epoch, 0);
    EXPECT_EQ(entries[0].shard, -1);
    EXPECT_EQ(entries[1].epoch, 3);
    EXPECT_EQ(entries[1].shard, 2);
    std::remove(path.c_str());
}

// The fencing rule: a zombie shard's stale-epoch append can land
// AFTER the thief's entry and still must lose the compaction.
TEST(Journal, CompactEntriesHighestEpochWinsOverLaterStaleAppend)
{
    JournalEntry thief;
    thief.job = "stolen";
    thief.status = "ok";
    thief.epoch = 2;
    thief.shard = 1;
    JournalEntry zombie;
    zombie.job = "stolen";
    zombie.status = "crashed";
    zombie.epoch = 1;
    zombie.shard = 0;

    const auto compact = compactEntries({thief, zombie});
    ASSERT_EQ(compact.size(), 1u);
    EXPECT_EQ(compact[0].status, "ok");
    EXPECT_EQ(compact[0].epoch, 2);
    EXPECT_EQ(compact[0].shard, 1);

    // Equal epochs keep the legacy later-wins behaviour.
    zombie.epoch = 2;
    const auto tie = compactEntries({thief, zombie});
    ASSERT_EQ(tie.size(), 1u);
    EXPECT_EQ(tie[0].status, "crashed");
}

TEST(Journal, MergeJournalsFencesZombiesAndFollowsSubmissionOrder)
{
    // Master saw jobs a (epoch 1, shard 0) and b (epoch 2: stolen
    // from shard 0, finished on shard 1).
    JournalEntry masterA;
    masterA.job = "a";
    masterA.status = "ok";
    masterA.epoch = 1;
    masterA.shard = 0;
    JournalEntry masterB;
    masterB.job = "b";
    masterB.status = "ok";
    masterB.epoch = 2;
    masterB.shard = 1;

    // Shard 0's journal holds the zombie's stale entry for b plus an
    // entry for a job the master never finalized (c).
    JournalEntry zombieB;
    zombieB.job = "b";
    zombieB.status = "ok";
    zombieB.epoch = 1;
    zombieB.shard = 0;
    zombieB.attempts = 9; // distinguishable from the winner
    JournalEntry orphanC;
    orphanC.job = "c";
    orphanC.status = "crashed";
    orphanC.epoch = 1;
    orphanC.shard = 0;

    JournalEntry thiefB = masterB;
    thiefB.attempts = 1;

    const std::vector<std::string> order = {"b", "a"};
    const auto merged = mergeJournals(
        {{masterA, masterB}, {zombieB, orphanC}, {thiefB}}, &order);
    ASSERT_EQ(merged.size(), 3u);
    // Submission order first (b before a), unknown jobs after.
    EXPECT_EQ(merged[0].job, "b");
    EXPECT_EQ(merged[0].epoch, 2);
    EXPECT_NE(merged[0].attempts, 9) << "zombie entry must be fenced";
    EXPECT_EQ(merged[1].job, "a");
    EXPECT_EQ(merged[2].job, "c");
    EXPECT_EQ(merged[2].status, "crashed");

    // Without an order hint the merge is still one entry per job.
    EXPECT_EQ(mergeJournals({{masterA, masterB}, {zombieB, orphanC}})
                  .size(),
              3u);
}

TEST(Journal, ShardJournalPathAppendsSlotSuffix)
{
    EXPECT_EQ(shardJournalPath("/tmp/sweep.jsonl", 3),
              "/tmp/sweep.jsonl.shard3");
}

// The coordinator-observed checkpoint (the latest checkpoint-written
// frame) outranks the conventional <dir>/<name>.ckpt location.
TEST(Journal, AttachResumeCheckpointsPrefersObservedPath)
{
    const std::string dir = ::testing::TempDir();
    const std::string conventional = dir + "/pref.ckpt";
    const std::string observed = tempPath("pref_observed.ckpt");
    { std::ofstream(conventional) << "x"; }
    { std::ofstream(observed) << "x"; }

    std::vector<SweepJob> jobs = {goodJob("pref"), goodJob("gone")};
    const std::unordered_map<std::string, std::string> preferred = {
        {"pref", observed},
        {"gone", tempPath("does_not_exist.ckpt")},
    };
    EXPECT_EQ(attachResumeCheckpoints(jobs, dir, preferred), 1u);
    EXPECT_EQ(jobs[0].resumeFromCheckpoint, observed);
    // An unreadable preferred path falls back to the conventional
    // location -- which does not exist for "gone" either.
    EXPECT_TRUE(jobs[1].resumeFromCheckpoint.empty());
    std::remove(conventional.c_str());
    std::remove(observed.c_str());
}

TEST(Journal, AttachResumeCheckpointsUsesPathThenDirectory)
{
    const std::string explicitCkpt = tempPath("attach_explicit.ckpt");
    const std::string dir = ::testing::TempDir();
    const std::string derived = dir + "/derived.ckpt";
    { std::ofstream(explicitCkpt) << "x"; }
    { std::ofstream(derived) << "x"; }

    std::vector<SweepJob> jobs = {goodJob("explicit"),
                                  goodJob("derived"),
                                  goodJob("absent")};
    jobs[0].cfg.checkpointPath = explicitCkpt;

    EXPECT_EQ(attachResumeCheckpoints(jobs, dir), 2u);
    EXPECT_EQ(jobs[0].resumeFromCheckpoint, explicitCkpt);
    EXPECT_EQ(jobs[1].resumeFromCheckpoint, derived);
    EXPECT_TRUE(jobs[2].resumeFromCheckpoint.empty());
    std::remove(explicitCkpt.c_str());
    std::remove(derived.c_str());
}

TEST(JournalWriter, SecondWriterFailsFastFirstKeepsTheLock)
{
    const std::string path = tempPath("journal_lock.jsonl");
    std::remove(path.c_str());

    JournalWriter first;
    first.open(path);
    ASSERT_TRUE(first.isOpen());

    JournalWriter second;
    try {
        second.open(path);
        FAIL() << "second writer must not acquire the journal";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Journal);
        EXPECT_NE(std::string(e.what()).find("locked"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_FALSE(second.isOpen());

    // Releasing the lock hands the journal over cleanly.
    first.close();
    second.open(path);
    EXPECT_TRUE(second.isOpen());
    second.close();
}

TEST(JournalWriter, OpenRepairsTornTailSoAppendsNeverMerge)
{
    const std::string path = tempPath("journal_repair.jsonl");
    {
        std::ofstream out(path);
        out << R"({"job":"a","status":"ok","attempts":1})" << "\n";
        out << R"({"job":"b","status":)"; // crash mid-append
    }
    JournalWriter writer;
    writer.open(path);
    JournalEntry c;
    c.job = "c";
    c.status = "ok";
    writer.append(c);
    writer.close();

    // The torn line is skipped (with a warning); the new append is a
    // line of its own, not glued onto the damage.
    const auto entries = readJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].job, "a");
    EXPECT_EQ(entries[1].job, "c");
}

TEST(JournalWriter, RewriteCompactsAndStaysAppendable)
{
    const std::string path = tempPath("journal_rewrite.jsonl");
    std::remove(path.c_str());

    JournalWriter writer;
    writer.open(path);
    JournalEntry a_bad;
    a_bad.job = "a";
    a_bad.status = "crashed";
    JournalEntry a_ok;
    a_ok.job = "a";
    a_ok.status = "ok";
    a_ok.attempts = 2;
    JournalEntry b_ok;
    b_ok.job = "b";
    b_ok.status = "ok";
    writer.append(a_bad);
    writer.append(a_ok);
    writer.append(b_ok);

    writer.rewrite(compactEntries(readJournal(path)));
    auto entries = readJournal(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].job, "a");
    EXPECT_EQ(entries[0].attempts, 2);
    EXPECT_EQ(entries[1].job, "b");

    // The re-acquired lock still guards the renamed file, and appends
    // keep working on the new inode.
    JournalWriter other;
    EXPECT_THROW(other.open(path), SimError);
    JournalEntry c;
    c.job = "c";
    c.status = "ok";
    writer.append(c);
    writer.close();
    entries = readJournal(path);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[2].job, "c");
}

// Satellite: CAWA_SIM_THREADS is validated strictly -- garbage or
// out-of-range values raise a named SimError instead of being
// silently clamped to something the user did not ask for.
TEST(Config, SimThreadsEnvStrictlyValidated)
{
    const char *save = std::getenv("CAWA_SIM_THREADS");
    const std::string saved = save ? save : "";

    unsetenv("CAWA_SIM_THREADS");
    EXPECT_EQ(simThreadsFromEnv(3), 3); // unset: fallback

    setenv("CAWA_SIM_THREADS", "8", 1);
    EXPECT_EQ(simThreadsFromEnv(3), 8);

    for (const char *bad : {"banana", "0", "257", "-2", "4x", ""}) {
        setenv("CAWA_SIM_THREADS", bad, 1);
        if (*bad == '\0') {
            // Empty reads as unset, not as an error.
            EXPECT_EQ(simThreadsFromEnv(5), 5);
            continue;
        }
        try {
            simThreadsFromEnv(3);
            FAIL() << "CAWA_SIM_THREADS='" << bad
                   << "' should be rejected";
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), SimErrorKind::Config);
            EXPECT_NE(std::string(e.what()).find("[1, 256]"),
                      std::string::npos)
                << e.what();
        }
    }

    if (save)
        setenv("CAWA_SIM_THREADS", saved.c_str(), 1);
    else
        unsetenv("CAWA_SIM_THREADS");
}

} // namespace
} // namespace cawa
