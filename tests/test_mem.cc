/**
 * @file
 * Memory substrate unit tests: memory image, coalescer, tag array,
 * and the LRU/SRRIP/SHiP replacement policies.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/coalescer.hh"
#include "mem/memory_image.hh"
#include "mem/replacement.hh"
#include "mem/tag_array.hh"

namespace cawa
{
namespace
{

TEST(MemoryImage, ZeroInitialized)
{
    MemoryImage mem;
    EXPECT_EQ(mem.read32(0x1234), 0u);
    EXPECT_EQ(mem.read8(0), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(MemoryImage, ReadWriteRoundTrip)
{
    MemoryImage mem;
    mem.write32(0x1000, 0xdeadbeef);
    EXPECT_EQ(mem.read32(0x1000), 0xdeadbeefu);
    EXPECT_EQ(mem.read8(0x1000), 0xefu);
    EXPECT_EQ(mem.read8(0x1003), 0xdeu);
    mem.write64(0x2000, 0x0123456789abcdefull);
    EXPECT_EQ(mem.read64(0x2000), 0x0123456789abcdefull);
    EXPECT_EQ(mem.read32(0x2004), 0x01234567u);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage mem;
    const Addr addr = MemoryImage::kPageBytes - 2;
    mem.write32(addr, 0xa1b2c3d4);
    EXPECT_EQ(mem.read32(addr), 0xa1b2c3d4u);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Coalescer, SingleLineForCoalescedWarp)
{
    Coalescer c(128);
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x1000 + 4 * lane);
    const auto lines = c.coalesce(addrs);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u);
}

TEST(Coalescer, StraddlingTwoLines)
{
    Coalescer c(128);
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x1040 + 4 * lane);
    const auto lines = c.coalesce(addrs);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x1080u);
}

TEST(Coalescer, FullyScattered)
{
    Coalescer c(128);
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x10000 + 256ull * lane);
    EXPECT_EQ(c.coalesce(addrs).size(), 32u);
}

TEST(Coalescer, DuplicatesCollapse)
{
    Coalescer c(128);
    const std::vector<Addr> addrs(32, 0x5000);
    EXPECT_EQ(c.coalesce(addrs).size(), 1u);
}

TEST(TagArray, Geometry)
{
    TagArray t(8, 16, 128);
    EXPECT_EQ(t.sizeBytes(), 16 * 1024);
    // Consecutive lines land in consecutive sets.
    EXPECT_EQ(t.setIndex(0), 0u);
    EXPECT_EQ(t.setIndex(128), 1u);
    EXPECT_EQ(t.setIndex(128 * 8), 0u);
    // Offsets within a line share a set and tag.
    EXPECT_EQ(t.setIndex(130), t.setIndex(128));
    EXPECT_EQ(t.tagOf(130), t.tagOf(128));
    EXPECT_NE(t.tagOf(128), t.tagOf(128 + 128 * 8));
}

TEST(TagArray, ProbeFindsInstalledLine)
{
    TagArray t(8, 4, 128);
    EXPECT_EQ(t.probe(0x1000), -1);
    auto &line = t.line(t.setIndex(0x1000), 2);
    line.valid = true;
    line.tag = t.tagOf(0x1000);
    EXPECT_EQ(t.probe(0x1000), 2);
    EXPECT_EQ(t.probe(0x1000 + 128 * 8), -1); // same set, other tag
    EXPECT_EQ(t.validCount(t.setIndex(0x1000)), 1);
}

AccessInfo
mkAccess(Addr addr, std::uint32_t pc = 0)
{
    AccessInfo info;
    info.addr = addr;
    info.pc = pc;
    return info;
}

void
install(TagArray &t, ReplacementPolicy &p, Addr addr)
{
    const auto set = t.setIndex(addr);
    const int way = p.selectVictim(t, set, mkAccess(addr));
    auto &line = t.line(set, way);
    if (line.valid)
        p.onEvict(t, set, way);
    line.valid = true;
    line.tag = t.tagOf(addr);
    line.reuseCount = 0;
    p.onFill(t, set, way, mkAccess(addr));
}

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    TagArray t(1, 4, 128);
    LruPolicy p;
    for (int i = 0; i < 4; ++i)
        install(t, p, 128ull * i);
    // Touch line 0 so line 1 becomes LRU.
    p.onHit(t, 0, t.probe(0), mkAccess(0));
    install(t, p, 128ull * 10);
    EXPECT_EQ(t.probe(128ull * 1), -1);   // evicted
    EXPECT_NE(t.probe(0), -1);            // retained
    EXPECT_NE(t.probe(128ull * 10), -1);
}

TEST(LruPolicy, PrefersInvalidWays)
{
    TagArray t(1, 4, 128);
    LruPolicy p;
    install(t, p, 0);
    const int victim = p.selectVictim(t, 0, mkAccess(128));
    EXPECT_FALSE(t.line(0, victim).valid);
}

TEST(SrripPolicy, InsertsAtLongAndPromotesOnHit)
{
    TagArray t(1, 4, 128);
    SrripPolicy p;
    install(t, p, 0);
    EXPECT_EQ(t.line(0, t.probe(0)).rrpv, 2);
    p.onHit(t, 0, t.probe(0), mkAccess(0));
    EXPECT_EQ(t.line(0, t.probe(0)).rrpv, 0);
}

TEST(SrripPolicy, AgesUntilDistantVictimFound)
{
    TagArray t(1, 2, 128);
    SrripPolicy p;
    install(t, p, 0);
    install(t, p, 128);
    p.onHit(t, 0, t.probe(0), mkAccess(0)); // rrpv 0
    // Victim selection must age and pick the rrpv==2 line (way of
    // addr 128), not the freshly promoted one.
    const int victim = p.selectVictim(t, 0, mkAccess(256));
    EXPECT_EQ(victim, t.probe(128));
}

TEST(ShipPolicy, LearnsZeroReuseSignatures)
{
    TagArray t(1, 2, 128);
    ShipPolicy p(256, 7);
    const Addr a = 0x0; // all accesses share pc=0 -> same signature
    // Fill and evict without reuse twice: counter 1 -> 0.
    install(t, p, a);
    install(t, p, a + 128);
    install(t, p, a + 256);       // evicts an unreused line
    install(t, p, a + 384);       // evicts another unreused line
    // The evicted lines' signatures are now predicted dead.
    EXPECT_FALSE(p.table().predictReuse(makeSignature(0, a, 7)));
}

TEST(ShipPolicy, HitsTrainTowardReuse)
{
    TagArray t(1, 4, 128);
    ShipPolicy p(256, 7);
    install(t, p, 0);
    auto &line = t.line(0, t.probe(0));
    line.reuseCount = 1;
    p.onHit(t, 0, t.probe(0), mkAccess(0));
    EXPECT_TRUE(p.table().predictReuse(line.signature));
    EXPECT_EQ(line.rrpv, 0);
}

TEST(ShipInsertionProbe, RecoversDeadSignatures)
{
    ShipTable table(256);
    const CacheSignature sig = 5;
    table.decrement(sig); // counter 1 -> 0: predicted dead
    ASSERT_FALSE(table.predictReuse(sig));
    std::uint64_t fills = 0;
    int long_inserts = 0;
    for (int i = 0; i < 64; ++i)
        if (shipInsertionWithProbe(table, sig, fills) == 2)
            long_inserts++;
    // Exactly every 16th dead-signature fill probes at long RRPV.
    EXPECT_EQ(long_inserts, 4);
}

TEST(Signature, CombinesPcAndRegion)
{
    EXPECT_EQ(makeSignature(0, 0, 7), 0);
    EXPECT_EQ(makeSignature(0x12, 0, 7), 0x12);
    EXPECT_EQ(makeSignature(0, 0x80, 7), 0x1);
    EXPECT_EQ(makeSignature(0x12, 0x80, 7), 0x12 ^ 0x1);
    // Region granularity follows the shift.
    EXPECT_EQ(makeSignature(0, 0x800, 11), 0x1);
    EXPECT_NE(makeSignature(7, 0x100, 7), makeSignature(7, 0x200, 7));
}

} // namespace
} // namespace cawa
