/**
 * @file
 * Structural tests for the workload kernels themselves: opcode
 * composition (the properties each benchmark is supposed to have),
 * geometry/occupancy sanity, and input-shape checks (bfs degree
 * distributions, b+tree search-tree ordering).
 */

#include <map>

#include <gtest/gtest.h>

#include "sim/gpu_config.hh"
#include "workloads/registry.hh"

namespace cawa
{
namespace
{

std::map<Opcode, int>
histogram(const Program &p)
{
    std::map<Opcode, int> h;
    for (std::uint32_t pc = 0; pc < p.size(); ++pc)
        h[p.at(pc).op]++;
    return h;
}

KernelInfo
build(const std::string &name, MemoryImage &mem, double scale = 0.25)
{
    auto wl = makeWorkload(name);
    WorkloadParams params;
    params.scale = scale;
    return wl->build(mem, params);
}

TEST(WorkloadPrograms, BfsHasDivergentBranchAndLoop)
{
    MemoryImage mem;
    const KernelInfo k = build("bfs", mem);
    const auto h = histogram(k.program);
    EXPECT_GE(h.at(Opcode::Bra), 4); // loop + exit branch + if/else
    EXPECT_GE(h.at(Opcode::LdGlobal), 4);
    EXPECT_GE(h.at(Opcode::StGlobal), 3);
    // 16 warps per block, matching the Fig 12 experiment.
    EXPECT_EQ(k.blockDim, 512);
}

TEST(WorkloadPrograms, BfsDegreesRespectBalancedKnob)
{
    MemoryImage imb;
    MemoryImage bal;
    auto w1 = makeWorkload("bfs");
    auto w2 = makeWorkload("bfs");
    WorkloadParams p1;
    p1.scale = 0.25;
    WorkloadParams p2 = p1;
    p2.bfsBalanced = true;
    const KernelInfo k1 = w1->build(imb, p1);
    w2->build(bal, p2);
    const int n = k1.totalThreads();
    constexpr Addr kOff = 0x01000000;
    std::uint32_t min_deg = ~0u;
    std::uint32_t max_deg = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint32_t deg_i = imb.read32(kOff + 4ull * (i + 1)) -
                                    imb.read32(kOff + 4ull * i);
        min_deg = std::min(min_deg, deg_i);
        max_deg = std::max(max_deg, deg_i);
        const std::uint32_t deg_b = bal.read32(kOff + 4ull * (i + 1)) -
                                    bal.read32(kOff + 4ull * i);
        ASSERT_EQ(deg_b, 8u); // balanced input: uniform degree
    }
    EXPECT_LT(min_deg, 8u);
    EXPECT_GT(max_deg, 20u); // heavy tail present
}

TEST(WorkloadPrograms, BtreeKeysFormSearchTree)
{
    MemoryImage mem;
    build("b+tree", mem);
    // Root node boundaries must be increasing and cover the domain.
    constexpr Addr kRoot = 0x01000000;
    std::uint32_t prev = 0;
    for (int j = 0; j < 16; ++j) {
        const std::uint32_t key = mem.read32(kRoot + 4ull * j);
        EXPECT_GT(key, prev);
        prev = key;
    }
    EXPECT_EQ(prev, 1u << 20); // last boundary = domain size
}

TEST(WorkloadPrograms, KmeansIsBranchUniform)
{
    // kmeans must have loops but no data-divergent if/else: its Sens
    // quality is purely cache-driven (selp handles the min update).
    MemoryImage mem;
    const KernelInfo k = build("kmeans", mem);
    const auto h = histogram(k.program);
    EXPECT_EQ(h.at(Opcode::Bra), 2); // two loop back-edges only
    EXPECT_GE(h.at(Opcode::Selp), 2);
}

TEST(WorkloadPrograms, NeedleUsesBarriersAndShared)
{
    MemoryImage mem;
    const KernelInfo k = build("needle", mem);
    const auto h = histogram(k.program);
    EXPECT_GE(h.at(Opcode::Bar), 2);
    EXPECT_GE(h.at(Opcode::LdShared), 3);
    EXPECT_GE(h.at(Opcode::StShared), 3);
    EXPECT_EQ(k.blockDim, 32); // single warp per block
    EXPECT_GT(k.smemPerBlock, 0);
}

TEST(WorkloadPrograms, HeartwallHasLargeStaticProgram)
{
    MemoryImage mem;
    const KernelInfo k = build("heartwall", mem);
    // "Large kernel": the biggest static program in the suite.
    for (const auto &other :
         {"bfs", "kmeans", "needle", "pathfinder", "tpacf"}) {
        MemoryImage m2;
        EXPECT_GT(k.program.size(), build(other, m2).program.size())
            << other;
    }
    EXPECT_GT(k.program.size(), 150u);
}

TEST(WorkloadPrograms, BackpropHasNoBranches)
{
    MemoryImage mem;
    const KernelInfo k = build("backprop", mem);
    const auto h = histogram(k.program);
    EXPECT_EQ(h.count(Opcode::Bra), 0u);
    EXPECT_EQ(h.count(Opcode::Bar), 0u);
}

TEST(WorkloadPrograms, PathfinderBarriersPerRow)
{
    MemoryImage mem;
    const KernelInfo k = build("pathfinder", mem);
    const auto h = histogram(k.program);
    EXPECT_GE(h.at(Opcode::Bar), 2);
    EXPECT_GT(k.smemPerBlock, 0);
}

TEST(WorkloadPrograms, OccupancyFitsFermiLimits)
{
    const GpuConfig cfg = GpuConfig::fermiGtx480();
    for (const auto &name : allWorkloadNames()) {
        MemoryImage mem;
        const KernelInfo k = build(name, mem);
        EXPECT_LE(k.warpsPerBlock(cfg.warpSize), cfg.maxWarpsPerSm)
            << name;
        EXPECT_LE(k.blockDim * k.regsPerThread, cfg.regFileSize)
            << name;
        EXPECT_LE(k.smemPerBlock, cfg.sharedMemBytes) << name;
        // At least two blocks must fit per SM (tail hygiene).
        EXPECT_LE(2 * k.warpsPerBlock(cfg.warpSize), cfg.maxWarpsPerSm)
            << name;
    }
}

TEST(WorkloadPrograms, SeedChangesInputsNotStructure)
{
    for (const auto &name : {"bfs", "kmeans", "srad_1"}) {
        auto w1 = makeWorkload(name);
        auto w2 = makeWorkload(name);
        MemoryImage m1;
        MemoryImage m2;
        WorkloadParams p1;
        p1.scale = 0.25;
        p1.seed = 1;
        WorkloadParams p2 = p1;
        p2.seed = 99;
        const KernelInfo k1 = w1->build(m1, p1);
        const KernelInfo k2 = w2->build(m2, p2);
        EXPECT_EQ(k1.program.size(), k2.program.size());
        EXPECT_EQ(k1.gridDim, k2.gridDim);
        // Inputs differ somewhere.
        bool differs = false;
        for (Addr a = 0x01000000; a < 0x01000400 && !differs; a += 4)
            differs = m1.read32(a) != m2.read32(a);
        EXPECT_TRUE(differs) << name;
    }
}

} // namespace
} // namespace cawa
