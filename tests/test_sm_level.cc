/**
 * @file
 * SM-level behaviour tests driven through the Gpu top level:
 * occupancy limits (warps / blocks / registers / shared memory),
 * block dispatch and retirement, stall accounting consistency, and
 * report metric derivations.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "sim/gpu.hh"

namespace cawa
{
namespace
{

Program
trivialProgram()
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(2, 1, 2);
    b.mulImm(3, 1, 3);
    b.stGlobal(2, 3, 0x1000);
    b.exit();
    return b.build();
}

Program
spinProgram(int iterations)
{
    ProgramBuilder b;
    b.movImm(1, iterations);
    b.label("loop");
    b.setpImm(0, CmpOp::Le, 1, 0);
    b.braIf("done", 0, "done");
    b.addImm(1, 1, -1);
    b.bra("loop");
    b.label("done");
    b.s2r(2, SpecialReg::GlobalTid);
    b.shlImm(2, 2, 2);
    b.movImm(3, 1);
    b.stGlobal(2, 3, 0x1000);
    b.exit();
    return b.build();
}

KernelInfo
kernel(Program p, int grid, int block, int regs = 16, int smem = 0)
{
    KernelInfo k;
    k.name = "t";
    k.program = std::move(p);
    k.gridDim = grid;
    k.blockDim = block;
    k.regsPerThread = regs;
    k.smemPerBlock = smem;
    return k;
}

GpuConfig
oneSm()
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1;
    return cfg;
}

TEST(SmLevel, AllBlocksRetire)
{
    MemoryImage mem;
    const SimReport r = runKernel(oneSm(), mem, kernel(trivialProgram(),
                                                       20, 128));
    EXPECT_EQ(r.blocks.size(), 20u);
    for (int t = 0; t < 20 * 128; ++t)
        EXPECT_EQ(mem.read32(0x1000 + 4ull * t),
                  static_cast<std::uint32_t>(3 * t));
}

TEST(SmLevel, WarpSlotLimitThrottlesConcurrency)
{
    // 512-thread blocks = 16 warps; 48 slots => at most 3 resident.
    // With a long spin the first wave's blocks all retire before the
    // second wave starts, visible as start-cycle clustering.
    MemoryImage mem;
    const SimReport r =
        runKernel(oneSm(), mem, kernel(spinProgram(50), 6, 512));
    ASSERT_EQ(r.blocks.size(), 6u);
    std::vector<Cycle> starts;
    for (const auto &b : r.blocks)
        starts.push_back(b.startCycle);
    std::sort(starts.begin(), starts.end());
    // First three start immediately (dispatch ramps one per cycle).
    EXPECT_LE(starts[2], 3u);
    // The fourth can only start after some block retired.
    EXPECT_GT(starts[3], 50u);
}

TEST(SmLevel, RegisterFileLimitsOccupancy)
{
    // 256 threads x 64 regs = 16384 regs per block; the 32768-entry
    // register file holds only 2 such blocks.
    GpuConfig cfg = oneSm();
    MemoryImage mem;
    const SimReport r = runKernel(
        cfg, mem, kernel(spinProgram(50), 4, 256, /*regs=*/64));
    std::vector<Cycle> starts;
    for (const auto &b : r.blocks)
        starts.push_back(b.startCycle);
    std::sort(starts.begin(), starts.end());
    EXPECT_LE(starts[1], 2u);
    EXPECT_GT(starts[2], 50u);
}

TEST(SmLevel, SharedMemoryLimitsOccupancy)
{
    // 20KB of shared memory per block: only 2 blocks fit in 48KB.
    GpuConfig cfg = oneSm();
    MemoryImage mem;
    const SimReport r = runKernel(
        cfg, mem,
        kernel(spinProgram(50), 4, 64, 16, /*smem=*/20 * 1024));
    std::vector<Cycle> starts;
    for (const auto &b : r.blocks)
        starts.push_back(b.startCycle);
    std::sort(starts.begin(), starts.end());
    EXPECT_GT(starts[2], 50u);
}

TEST(SmLevel, BlocksSpreadAcrossSms)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 4;
    MemoryImage mem;
    const SimReport r =
        runKernel(cfg, mem, kernel(trivialProgram(), 8, 128));
    std::vector<int> per_sm(4, 0);
    for (const auto &b : r.blocks)
        per_sm[b.smId]++;
    for (int n : per_sm)
        EXPECT_EQ(n, 2);
}

TEST(SmLevel, StallAccountingCoversWarpLifetime)
{
    // instructions + all stall categories must equal each warp's
    // execution time (every cycle is classified exactly once).
    GpuConfig cfg = oneSm();
    MemoryImage mem;
    auto wlk = kernel(spinProgram(30), 4, 256);
    const SimReport r = runKernel(cfg, mem, wlk);
    for (const auto &b : r.blocks) {
        for (const auto &w : b.warps) {
            const std::uint64_t accounted =
                w.instructions + w.memStallCycles + w.aluStallCycles +
                w.structStallCycles + w.schedWaitCycles +
                w.barrierCycles + w.finishedWaitCycles;
            // Finished warps keep waiting until block retirement, so
            // account against the block's end.
            const std::uint64_t lifetime =
                b.endCycle - w.startCycle;
            EXPECT_LE(accounted, lifetime + 1);
            EXPECT_GE(accounted + 2, lifetime);
        }
    }
}

TEST(SmLevel, IpcNeverExceedsIssueWidth)
{
    GpuConfig cfg = oneSm();
    MemoryImage mem;
    const SimReport r =
        runKernel(cfg, mem, kernel(trivialProgram(), 40, 256));
    // One SM with two schedulers can issue at most 2 instr/cycle.
    EXPECT_LE(r.ipc(), 2.0 * cfg.numSms);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(SmLevel, ReportDerivedMetrics)
{
    SimReport r;
    r.cycles = 1000;
    r.instructions = 2500;
    r.l1.accesses = 100;
    r.l1.hits = 60;
    r.l1.misses = 40;
    EXPECT_DOUBLE_EQ(r.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(r.mpki(), 16.0);

    BlockRecord block;
    block.startCycle = 0;
    block.endCycle = 100;
    WarpRecord w0;
    w0.startCycle = 0;
    w0.endCycle = 50;
    WarpRecord w1;
    w1.startCycle = 0;
    w1.endCycle = 100;
    block.warps = {w0, w1};
    r.blocks.push_back(block);
    EXPECT_EQ(r.blocks[0].criticalWarp(), 1);
    EXPECT_DOUBLE_EQ(r.blocks[0].disparity(), 1.0);
    EXPECT_DOUBLE_EQ(r.maxDisparity(), 1.0);
}

TEST(SmLevel, MaxCyclesGuardFires)
{
    GpuConfig cfg = oneSm();
    cfg.maxCycles = 100; // way too few
    MemoryImage mem;
    const SimReport r =
        runKernel(cfg, mem, kernel(spinProgram(100000), 1, 256));
    EXPECT_TRUE(r.timedOut);
    EXPECT_EQ(r.cycles, 100u);
}

TEST(SmLevel, ConfigDescribeMentionsKeyParameters)
{
    const GpuConfig cfg = GpuConfig::fermiGtx480();
    const std::string d = cfg.describe();
    EXPECT_NE(d.find("15"), std::string::npos);   // SMs
    EXPECT_NE(d.find("16KB"), std::string::npos); // L1D
    EXPECT_NE(d.find("768KB"), std::string::npos);
    EXPECT_NE(d.find("120"), std::string::npos);  // L2 latency floor
    EXPECT_NE(d.find("32"), std::string::npos);   // warp size
}

} // namespace
} // namespace cawa
