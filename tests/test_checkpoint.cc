/**
 * @file
 * Locks in the checkpoint/restore contract: a checkpoint taken at ANY
 * cycle restores into a simulation that finishes with a SimReport
 * serializing byte-for-byte identically to an uninterrupted run --
 * cycles, stall breakdowns, cache counters, per-warp block records
 * and criticality traces included. Covered per workload for the
 * paper's three headline configurations (GTO baseline, gCAWS, full
 * CAWA = gCAWS + CACP), with fast-forward on and off, at fixed and
 * seed-randomized checkpoint cycles, restoring twice from the same
 * file and restoring into a completely fresh Gpu + MemoryImage.
 *
 * The negative half pins the rejection contract: corrupt, truncated,
 * wrong-config and wrong-kernel checkpoints raise SimError of kind
 * Checkpoint (never a silent restore), and the sweep layer falls
 * back to a from-scratch run when handed an unusable checkpoint.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/sim_error.hh"
#include "sim/gpu.hh"
#include "sim/report_json.hh"
#include "sim/sweep.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

WorkloadParams
tinyParams()
{
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 1;
    return params;
}

/** The paper's three headline configurations. */
std::vector<std::pair<std::string, GpuConfig>>
headlineConfigs()
{
    std::vector<std::pair<std::string, GpuConfig>> configs;
    GpuConfig gto = GpuConfig::fermiGtx480();
    configs.emplace_back("gto", gto);
    GpuConfig gcaws = gto;
    gcaws.scheduler = SchedulerKind::Gcaws;
    configs.emplace_back("gcaws", gcaws);
    GpuConfig cawa = gcaws;
    cawa.l1Policy = CachePolicyKind::Cacp;
    configs.emplace_back("cawa", cawa);
    return configs;
}

std::string
tmpPath(const std::string &stem)
{
    return (std::filesystem::path(::testing::TempDir()) /
            (stem + ".ckpt"))
        .string();
}

std::string
fullJson(const SimReport &report)
{
    JsonWriteOptions opt;
    opt.includeBlocks = true;
    opt.includeTrace = true;
    opt.includeDerived = true;
    return toJson(report, opt);
}

/** Uninterrupted run of @p spec's job through the direct Gpu API. */
SimReport
referenceRun(const WorkloadJobSpec &spec)
{
    const SweepJob job = makeWorkloadJob(spec);
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    gpu.launch(kernel);
    gpu.runToCompletion();
    return gpu.finish();
}

/**
 * Run @p spec to @p stop, checkpoint, restore into a completely
 * fresh Gpu + MemoryImage and finish from there. The report must be
 * byte-identical to @p reference_json.
 */
void
expectRestoredIdentical(const WorkloadJobSpec &spec, Cycle stop,
                        const std::string &reference_json,
                        const std::string &path)
{
    const SweepJob job = makeWorkloadJob(spec);
    {
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        Gpu gpu(job.cfg, mem);
        gpu.launch(kernel);
        gpu.stepUntil(stop);
        gpu.saveCheckpoint(path);
    }
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    gpu.restoreCheckpoint(path, kernel);
    gpu.runToCompletion();
    EXPECT_EQ(reference_json, fullJson(gpu.finish()))
        << workloadJobName(spec) << " diverged after restore at cycle "
        << stop;
    std::filesystem::remove(path);
}

std::string
sanitized(std::string name)
{
    for (char &c : name)
        if (c == '+' || c == '.')
            c = 'p';
    return name;
}

} // namespace

class CheckpointIdentity : public ::testing::TestWithParam<std::string>
{
};

/**
 * Every workload under GTO, gCAWS and CAWA: checkpoint at a fixed
 * early cycle and at a seed-randomized cycle anywhere in the run
 * (including possibly after completion), restore into a fresh
 * machine, compare full serialized reports.
 */
TEST_P(CheckpointIdentity, RestoreMatchesUninterruptedRun)
{
    Rng rng(std::hash<std::string>{}(GetParam()));
    for (const auto &[cfg_name, cfg] : headlineConfigs()) {
        WorkloadJobSpec spec;
        spec.workload = GetParam();
        spec.cfg = cfg;
        spec.params = tinyParams();

        const SimReport reference = referenceRun(spec);
        const std::string reference_json = fullJson(reference);
        const std::string path =
            tmpPath("ckpt_" + sanitized(GetParam()) + "_" + cfg_name);

        expectRestoredIdentical(spec, 1'000, reference_json, path);
        const Cycle random_stop =
            1 + rng.nextBounded(reference.cycles + 100);
        expectRestoredIdentical(spec, random_stop, reference_json,
                                path);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CheckpointIdentity,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return sanitized(info.param);
    });

/** Same contract with the fast-forward core disabled on both sides. */
TEST(CheckpointConfigs, FlatTicking)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.fastForward = false;
    spec.params = tinyParams();
    const std::string reference_json = fullJson(referenceRun(spec));
    expectRestoredIdentical(spec, 2'000, reference_json,
                            tmpPath("ckpt_flat"));
}

/**
 * fastForward is a pure speed knob, deliberately excluded from the
 * config signature: a checkpoint written by a fast-forwarding run
 * must restore under flat ticking (and vice versa) with identical
 * results.
 */
TEST(CheckpointConfigs, CrossFastForwardRestore)
{
    WorkloadJobSpec spec;
    spec.workload = "backprop";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();
    const std::string reference_json = fullJson(referenceRun(spec));
    const std::string path = tmpPath("ckpt_crossff");

    const SweepJob job = makeWorkloadJob(spec);
    {
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        GpuConfig ff_cfg = job.cfg;
        ff_cfg.fastForward = true;
        Gpu gpu(ff_cfg, mem);
        gpu.launch(kernel);
        gpu.stepUntil(3'000);
        gpu.saveCheckpoint(path);
    }
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    GpuConfig flat_cfg = job.cfg;
    flat_cfg.fastForward = false;
    Gpu gpu(flat_cfg, mem);
    gpu.restoreCheckpoint(path, kernel);
    gpu.runToCompletion();
    EXPECT_EQ(reference_json, fullJson(gpu.finish()));
    std::filesystem::remove(path);
}

/**
 * The trace sampler records at fixed cycle boundaries; a restore
 * that misplaced the clock would shift or drop samples.
 */
TEST(CheckpointConfigs, TraceSampling)
{
    WorkloadJobSpec spec;
    spec.workload = "pathfinder";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.traceBlockId = 0;
    spec.params = tinyParams();
    const std::string reference_json = fullJson(referenceRun(spec));
    expectRestoredIdentical(spec, 1'500, reference_json,
                            tmpPath("ckpt_trace"));
}

/** One checkpoint file restores any number of times, identically. */
TEST(CheckpointConfigs, DoubleRestore)
{
    WorkloadJobSpec spec;
    spec.workload = "kmeans";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::Gcaws;
    spec.cfg.l1Policy = CachePolicyKind::Cacp;
    spec.params = tinyParams();
    const std::string path = tmpPath("ckpt_double");

    const SweepJob job = makeWorkloadJob(spec);
    {
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        Gpu gpu(job.cfg, mem);
        gpu.launch(kernel);
        gpu.stepUntil(2'500);
        gpu.saveCheckpoint(path);
    }
    auto restoreAndFinish = [&]() {
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        Gpu gpu(job.cfg, mem);
        gpu.restoreCheckpoint(path, kernel);
        gpu.runToCompletion();
        return fullJson(gpu.finish());
    };
    const std::string first = restoreAndFinish();
    EXPECT_EQ(first, restoreAndFinish());
    EXPECT_EQ(first, fullJson(referenceRun(spec)));
    std::filesystem::remove(path);
}

/**
 * Restoring into a Gpu that already ran part of a DIFFERENT launch
 * must fully replace its state, not merge with it.
 */
TEST(CheckpointConfigs, RestoreReplacesRunningMachine)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();
    const std::string reference_json = fullJson(referenceRun(spec));
    const std::string path = tmpPath("ckpt_replace");

    const SweepJob job = makeWorkloadJob(spec);
    {
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        Gpu gpu(job.cfg, mem);
        gpu.launch(kernel);
        gpu.stepUntil(1'200);
        gpu.saveCheckpoint(path);
    }
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    gpu.launch(kernel);
    gpu.stepUntil(4'321); // deliberately out of sync with the file
    gpu.restoreCheckpoint(path, kernel);
    EXPECT_EQ(gpu.cycle(), Cycle{1'200});
    gpu.runToCompletion();
    EXPECT_EQ(reference_json, fullJson(gpu.finish()));
    std::filesystem::remove(path);
}

/**
 * Periodic checkpointing through GpuConfig::checkpointInterval: the
 * run completes normally, leaves a restorable file behind, and the
 * checkpoint machinery perturbs nothing.
 */
TEST(CheckpointConfigs, PeriodicCheckpointing)
{
    WorkloadJobSpec spec;
    spec.workload = "backprop";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();
    const std::string reference_json = fullJson(referenceRun(spec));
    const std::string path = tmpPath("ckpt_periodic");

    const SweepJob job = makeWorkloadJob(spec);
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    GpuConfig cfg = job.cfg;
    cfg.checkpointPath = path;
    cfg.checkpointInterval = 2'000;
    Gpu gpu(cfg, mem);
    gpu.launch(kernel);
    gpu.runToCompletion();
    EXPECT_EQ(reference_json, fullJson(gpu.finish()));
    ASSERT_TRUE(std::filesystem::exists(path));

    MemoryImage mem2;
    const KernelInfo kernel2 = job.build(mem2);
    Gpu resumed(job.cfg, mem2);
    resumed.restoreCheckpoint(path, kernel2);
    resumed.runToCompletion();
    EXPECT_EQ(reference_json, fullJson(resumed.finish()));
    std::filesystem::remove(path);
}

namespace
{

/** Write a checkpoint for @p spec at @p stop and return its path. */
std::string
writeCheckpoint(const WorkloadJobSpec &spec, Cycle stop,
                const std::string &stem)
{
    const std::string path = tmpPath(stem);
    const SweepJob job = makeWorkloadJob(spec);
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    gpu.launch(kernel);
    gpu.stepUntil(stop);
    gpu.saveCheckpoint(path);
    return path;
}

/** Restore @p path for @p spec; must throw SimError(Checkpoint). */
void
expectRejected(const WorkloadJobSpec &spec, const std::string &path,
               const char *why)
{
    const SweepJob job = makeWorkloadJob(spec);
    MemoryImage mem;
    const KernelInfo kernel = job.build(mem);
    Gpu gpu(job.cfg, mem);
    try {
        gpu.restoreCheckpoint(path, kernel);
        FAIL() << why << ": restore did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), SimErrorKind::Checkpoint)
            << why << ": wrong kind: " << e.what();
        EXPECT_FALSE(gpu.launched())
            << why << ": failed restore left a live machine";
    }
}

WorkloadJobSpec
rejectionSpec()
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();
    return spec;
}

} // namespace

TEST(CheckpointRejection, MissingFile)
{
    expectRejected(rejectionSpec(), tmpPath("ckpt_no_such_file"),
                   "missing file");
}

TEST(CheckpointRejection, GarbageMagic)
{
    const std::string path = tmpPath("ckpt_garbage");
    std::ofstream(path, std::ios::binary)
        << "definitely not a checkpoint";
    expectRejected(rejectionSpec(), path, "garbage magic");
    std::filesystem::remove(path);
}

TEST(CheckpointRejection, Truncated)
{
    const WorkloadJobSpec spec = rejectionSpec();
    const std::string path =
        writeCheckpoint(spec, 1'000, "ckpt_trunc");
    const auto size = std::filesystem::file_size(path);
    // Truncation points spanning magic, section table and payloads.
    for (const double frac : {0.0, 0.001, 0.3, 0.999}) {
        const auto keep = static_cast<std::uint64_t>(
            static_cast<double>(size) * frac);
        std::ifstream in(path, std::ios::binary);
        std::string bytes(static_cast<std::size_t>(keep), '\0');
        in.read(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        const std::string cut = tmpPath("ckpt_trunc_cut");
        std::ofstream(cut, std::ios::binary | std::ios::trunc)
            .write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
        expectRejected(spec, cut, "truncated file");
        std::filesystem::remove(cut);
    }
    std::filesystem::remove(path);
}

TEST(CheckpointRejection, CorruptedByteViaFaultHook)
{
    const WorkloadJobSpec spec = rejectionSpec();
    const SweepJob job = makeWorkloadJob(spec);
    // One flip in the payload region and one in the header.
    for (const std::int64_t bit : {std::int64_t{7},
                                   std::int64_t{999'983}}) {
        const std::string path = tmpPath("ckpt_corrupt");
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        GpuConfig cfg = job.cfg;
        cfg.faults.corruptCheckpointByte = bit;
        Gpu gpu(cfg, mem);
        gpu.launch(kernel);
        gpu.stepUntil(1'000);
        gpu.saveCheckpoint(path);
        expectRejected(spec, path, "corrupted byte");
        std::filesystem::remove(path);
    }
}

TEST(CheckpointRejection, ConfigMismatch)
{
    const WorkloadJobSpec spec = rejectionSpec();
    const std::string path =
        writeCheckpoint(spec, 1'000, "ckpt_cfgmismatch");
    WorkloadJobSpec other = spec;
    other.cfg.scheduler = SchedulerKind::Gcaws;
    expectRejected(other, path, "different scheduler");
    other = spec;
    other.cfg.l1d.numMshrs *= 2;
    expectRejected(other, path, "different L1 geometry");
    std::filesystem::remove(path);
}

TEST(CheckpointRejection, KernelMismatch)
{
    const WorkloadJobSpec spec = rejectionSpec();
    const std::string path =
        writeCheckpoint(spec, 1'000, "ckpt_kernmismatch");
    WorkloadJobSpec other = spec;
    other.workload = "backprop";
    expectRejected(other, path, "different kernel");
    std::filesystem::remove(path);
}

/**
 * Sweep-level resume: a valid checkpoint is picked up (resumed =
 * true, byte-identical report); an unusable one falls back to a
 * from-scratch run on rebuilt inputs instead of failing the job.
 */
TEST(CheckpointSweep, ResumeAndFallback)
{
    WorkloadJobSpec spec;
    spec.workload = "needle";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();

    SweepJob job = makeWorkloadJob(spec);
    const SweepResult reference = runSweepJob(job);
    ASSERT_TRUE(reference.ok()) << reference.error;
    const std::string reference_json = fullJson(reference.report);

    const std::string path =
        writeCheckpoint(spec, 2'000, "ckpt_sweep");
    job.resumeFromCheckpoint = path;
    const SweepResult resumed = runSweepJob(job);
    ASSERT_TRUE(resumed.ok()) << resumed.error;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(reference_json, fullJson(resumed.report));

    // Corrupt the file in place; the job must fall back cleanly.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(40);
        f.put('\xff');
    }
    const SweepResult fallback = runSweepJob(job);
    ASSERT_TRUE(fallback.ok()) << fallback.error;
    EXPECT_FALSE(fallback.resumed);
    EXPECT_EQ(reference_json, fullJson(fallback.report));
    std::filesystem::remove(path);
}

/**
 * CawsOracle jobs profile on a side image before the measured pass.
 * Periodic checkpoints must come only from the measured pass, and a
 * resume re-runs the (deterministic) profile to rebuild the oracle
 * before restoring.
 */
TEST(CheckpointSweep, CawsOracleResume)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler = SchedulerKind::CawsOracle;
    spec.params = tinyParams();

    SweepJob job = makeWorkloadJob(spec);
    const SweepResult reference = runSweepJob(job);
    ASSERT_TRUE(reference.ok()) << reference.error;
    const std::string reference_json = fullJson(reference.report);

    const std::string path = tmpPath("ckpt_oracle");
    job.cfg.checkpointPath = path;
    job.cfg.checkpointInterval = 1'500;
    const SweepResult checkpointed = runSweepJob(job);
    ASSERT_TRUE(checkpointed.ok()) << checkpointed.error;
    EXPECT_EQ(reference_json, fullJson(checkpointed.report));
    ASSERT_TRUE(std::filesystem::exists(path));

    job.resumeFromCheckpoint = path;
    const SweepResult resumed = runSweepJob(job);
    ASSERT_TRUE(resumed.ok()) << resumed.error;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(reference_json, fullJson(resumed.report));
    std::filesystem::remove(path);
}

/**
 * Wall-clock timeout: an impossible budget fails the job with
 * failureReason "walltime", writes a final checkpoint, and resuming
 * from that checkpoint without the limit completes byte-identically.
 */
TEST(CheckpointSweep, WalltimeSavesAndResumes)
{
    WorkloadJobSpec spec;
    spec.workload = "bfs";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();

    SweepJob job = makeWorkloadJob(spec);
    const SweepResult reference = runSweepJob(job);
    ASSERT_TRUE(reference.ok()) << reference.error;

    const std::string path = tmpPath("ckpt_walltime");
    job.cfg.checkpointPath = path;
    job.cfg.wallClockLimitSec = 1e-9;
    const SweepResult out = runSweepJob(job, /*max_attempts=*/3);
    EXPECT_FALSE(out.error.empty());
    EXPECT_EQ(out.failureReason, "walltime");
    EXPECT_EQ(out.attempts, 1) << "walltime failures must not retry";
    ASSERT_TRUE(std::filesystem::exists(path));

    job.cfg.wallClockLimitSec = 0.0;
    job.cfg.checkpointPath.clear();
    job.resumeFromCheckpoint = path;
    const SweepResult resumed = runSweepJob(job);
    ASSERT_TRUE(resumed.ok()) << resumed.error;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(fullJson(reference.report), fullJson(resumed.report));
    std::filesystem::remove(path);
}

/** Cooperative cancellation mirrors the walltime path. */
TEST(CheckpointSweep, CancelSavesAndResumes)
{
    WorkloadJobSpec spec;
    spec.workload = "backprop";
    spec.cfg = GpuConfig::fermiGtx480();
    spec.params = tinyParams();

    SweepJob job = makeWorkloadJob(spec);
    const SweepResult reference = runSweepJob(job);
    ASSERT_TRUE(reference.ok()) << reference.error;

    static std::atomic<bool> cancel{false};
    cancel.store(true);
    const std::string path = tmpPath("ckpt_cancel");
    job.cfg.checkpointPath = path;
    job.cfg.cancelFlag = &cancel;
    const SweepResult out = runSweepJob(job, /*max_attempts=*/3);
    EXPECT_FALSE(out.error.empty());
    EXPECT_EQ(out.failureReason, "cancelled");
    EXPECT_EQ(out.attempts, 1) << "cancelled jobs must not retry";
    ASSERT_TRUE(std::filesystem::exists(path));

    cancel.store(false);
    job.cfg.cancelFlag = nullptr;
    job.cfg.checkpointPath.clear();
    job.resumeFromCheckpoint = path;
    const SweepResult resumed = runSweepJob(job);
    ASSERT_TRUE(resumed.ok()) << resumed.error;
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(fullJson(reference.report), fullJson(resumed.report));
    std::filesystem::remove(path);
}
