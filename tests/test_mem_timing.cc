/**
 * @file
 * Timing-side memory tests: L1D hit/miss flow, MSHR merging and
 * rejection, write-through stores, fills and eviction statistics;
 * interconnect latency/width; DRAM bandwidth; L2 bank mapping,
 * hit/miss latency floors and MSHR merging.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l1d_cache.hh"
#include "mem/l2_cache.hh"

namespace cawa
{
namespace
{

L1DConfig
smallL1()
{
    L1DConfig cfg;
    cfg.sets = 4;
    cfg.ways = 2;
    cfg.lineBytes = 128;
    cfg.hitLatency = 10;
    cfg.numMshrs = 2;
    cfg.mshrTargets = 2;
    return cfg;
}

AccessInfo
load(Addr addr)
{
    AccessInfo info;
    info.addr = addr;
    return info;
}

AccessInfo
store(Addr addr)
{
    AccessInfo info;
    info.addr = addr;
    info.isStore = true;
    return info;
}

TEST(L1D, MissAllocatesMshrAndSendsRequest)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    EXPECT_EQ(l1.access(load(0x1000), 0, 1), L1DCache::Result::Miss);
    ASSERT_TRUE(l1.hasOutgoing());
    const MemMsg msg = l1.popOutgoing();
    EXPECT_EQ(msg.lineAddr, 0x1000u);
    EXPECT_FALSE(msg.isStore);
    EXPECT_EQ(l1.freeMshrs(), 1);
}

TEST(L1D, SameLineMissesMerge)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    EXPECT_EQ(l1.access(load(0x1000), 0, 1), L1DCache::Result::Miss);
    EXPECT_EQ(l1.access(load(0x1010), 1, 2), L1DCache::Result::Miss);
    // One outgoing request only.
    l1.popOutgoing();
    EXPECT_FALSE(l1.hasOutgoing());
    EXPECT_EQ(l1.stats().mshrMerges, 1u);
    // Fill completes both tokens.
    l1.fill(0x1000, 50);
    std::vector<L1DCache::Completion> done;
    l1.drainCompleted(51, done);
    ASSERT_EQ(done.size(), 2u);
}

TEST(L1D, MshrTargetLimitRejects)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    EXPECT_EQ(l1.access(load(0x1000), 0, 1), L1DCache::Result::Miss);
    EXPECT_EQ(l1.access(load(0x1000), 0, 2), L1DCache::Result::Miss);
    EXPECT_EQ(l1.access(load(0x1000), 0, 3),
              L1DCache::Result::RejectMshrFull);
}

TEST(L1D, MshrCapacityRejects)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    EXPECT_EQ(l1.access(load(0x1000), 0, 1), L1DCache::Result::Miss);
    EXPECT_EQ(l1.access(load(0x2000), 0, 2), L1DCache::Result::Miss);
    EXPECT_EQ(l1.access(load(0x3000), 0, 3),
              L1DCache::Result::RejectMshrFull);
    EXPECT_EQ(l1.stats().mshrRejects, 1u);
}

TEST(L1D, HitAfterFillWithLatency)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    l1.access(load(0x1000), 0, 1);
    l1.popOutgoing();
    l1.fill(0x1000, 100);
    std::vector<L1DCache::Completion> done;
    l1.drainCompleted(101, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done[0].wasMiss);

    // Subsequent access hits and completes after hitLatency.
    EXPECT_EQ(l1.access(load(0x1000), 200, 2), L1DCache::Result::Hit);
    done.clear();
    l1.drainCompleted(205, done);
    EXPECT_TRUE(done.empty()); // not yet: latency 10
    l1.drainCompleted(210, done);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_FALSE(done[0].wasMiss);
}

TEST(L1D, StoresWriteThroughWithoutAllocation)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    EXPECT_EQ(l1.access(store(0x1000), 0, 0), L1DCache::Result::Miss);
    ASSERT_TRUE(l1.hasOutgoing());
    EXPECT_TRUE(l1.popOutgoing().isStore);
    // No MSHR allocated, no line installed.
    EXPECT_EQ(l1.freeMshrs(), 2);
    EXPECT_EQ(l1.tags().probe(0x1000), -1);
}

TEST(L1D, StoreHitStaysCachedAndForwards)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    l1.access(load(0x1000), 0, 1);
    l1.popOutgoing();
    l1.fill(0x1000, 10);
    EXPECT_EQ(l1.access(store(0x1008), 20, 0), L1DCache::Result::Hit);
    ASSERT_TRUE(l1.hasOutgoing());
    EXPECT_TRUE(l1.popOutgoing().isStore);
}

TEST(L1D, EvictionStatsTrackZeroReuse)
{
    L1DCache l1(smallL1(), 0, std::make_unique<LruPolicy>());
    // Fill both ways of set 0 (4 sets x 128B: stride 512).
    auto fill_line = [&](Addr a, std::uint64_t tok) {
        l1.access(load(a), 0, tok);
        l1.popOutgoing();
        l1.fill(a, 1);
    };
    fill_line(0x0000, 1);
    fill_line(0x0200, 2);
    // Third line in the same set evicts an unreused one.
    fill_line(0x0400, 3);
    EXPECT_EQ(l1.stats().evictions, 1u);
    EXPECT_EQ(l1.stats().zeroReuseEvictions, 1u);
}

TEST(Interconnect, LatencyAndWidthRespected)
{
    Interconnect icnt(10, 2);
    for (int i = 0; i < 5; ++i)
        icnt.pushToL2({static_cast<Addr>(0x100 * i), 0, false, 0}, 0);
    EXPECT_TRUE(icnt.popToL2(9).empty());
    // The width caps each pop; the GPU top level calls pop once per
    // cycle, so width messages drain per cycle.
    EXPECT_EQ(icnt.popToL2(10).size(), 2u);
    EXPECT_EQ(icnt.popToL2(11).size(), 2u);
    EXPECT_EQ(icnt.popToL2(12).size(), 1u);
    EXPECT_TRUE(icnt.idle());
    EXPECT_EQ(icnt.messagesToL2, 5u);
}

TEST(Dram, BandwidthLimitsServiceRate)
{
    DramModel dram(100, 4);
    for (int i = 0; i < 3; ++i)
        dram.push({static_cast<Addr>(0x80 * i), 0, false, 0}, 0);
    // Requests are serviced one per 4 cycles.
    dram.tick(0);
    dram.tick(1);
    dram.tick(2);
    dram.tick(3);
    dram.tick(4);
    dram.tick(8);
    EXPECT_TRUE(dram.popResponses(99).empty());
    EXPECT_EQ(dram.popResponses(100).size(), 1u);
    EXPECT_EQ(dram.popResponses(104).size(), 1u);
    EXPECT_EQ(dram.popResponses(108).size(), 1u);
    EXPECT_EQ(dram.reads, 3u);
}

TEST(Dram, WritesConsumeBandwidthWithoutResponse)
{
    DramModel dram(100, 2);
    dram.push({0x0, 0, true, 0}, 0);
    dram.push({0x80, 0, false, 0}, 0);
    dram.tick(0); // serves the write
    dram.tick(2); // serves the read
    EXPECT_EQ(dram.popResponses(200).size(), 1u);
    EXPECT_EQ(dram.writes, 1u);
}

TEST(L2, BankMappingCoversAllBanks)
{
    L2Config cfg;
    L2Cache l2(cfg);
    std::vector<bool> seen(cfg.banks, false);
    for (int i = 0; i < cfg.banks; ++i)
        seen[l2.bankOf(static_cast<Addr>(i) * cfg.lineBytes)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(L2, MissGoesToDramThenHitIsFaster)
{
    L2Config cfg;
    cfg.latency = 20;
    L2Cache l2(cfg);
    DramModel dram(100, 1);

    const MemMsg req{0x1000, 3, false, 7};
    l2.pushRequest(req, 0);
    l2.tick(0, dram);
    EXPECT_EQ(dram.reads, 1u); // missed to DRAM
    dram.tick(0);
    for (const auto &msg : dram.popResponses(100))
        l2.handleDramResponse(msg, 100);
    const auto resp = l2.popResponses(101);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].smId, 3);
    EXPECT_EQ(resp[0].lineAddr, 0x1000u);

    // Second access: L2 hit, no extra DRAM read, latency 20.
    l2.pushRequest(req, 200);
    l2.tick(200, dram);
    EXPECT_EQ(dram.reads, 1u);
    EXPECT_TRUE(l2.popResponses(219).empty());
    EXPECT_EQ(l2.popResponses(220).size(), 1u);
    EXPECT_EQ(l2.stats().hits, 1u);
}

TEST(L2, SameLineMissesMergeAcrossSms)
{
    L2Config cfg;
    L2Cache l2(cfg);
    DramModel dram(100, 1);
    l2.pushRequest({0x1000, 0, false, 0}, 0);
    l2.pushRequest({0x1000, 1, false, 0}, 0);
    l2.tick(0, dram);
    l2.tick(1, dram);
    EXPECT_EQ(dram.reads, 1u); // merged
    dram.tick(1);
    for (const auto &msg : dram.popResponses(101))
        l2.handleDramResponse(msg, 101);
    const auto resp = l2.popResponses(102);
    EXPECT_EQ(resp.size(), 2u); // both SMs answered
}

TEST(L2, StoresForwardToDramNoAllocate)
{
    L2Config cfg;
    L2Cache l2(cfg);
    DramModel dram(100, 1);
    l2.pushRequest({0x2000, 0, true, 0}, 0);
    l2.tick(0, dram);
    EXPECT_EQ(dram.writes, 1u);
    EXPECT_TRUE(l2.popResponses(1000).empty());
}

} // namespace
} // namespace cawa
