/**
 * @file
 * Unit tests for the common utilities: deterministic RNG and the
 * table printer.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/table.hh"

namespace cawa
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.nextBounded(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool lo = false;
    bool hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo = lo || v == -3;
        hi = hi || v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, ParetoBounded)
{
    Rng rng(19);
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextPareto(1.2, 40);
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, 40u);
        max_seen = std::max(max_seen, v);
    }
    // A heavy tail should actually reach large values.
    EXPECT_GE(max_seen, 30u);
}

TEST(Rng, ParetoIsSkewedLow)
{
    Rng rng(23);
    int small = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        if (rng.nextPareto(1.5, 40) <= 4)
            small++;
    EXPECT_GT(small, n / 2);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(std::uint64_t{42});
    t.row().cell("b").cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss, "demo");
    const std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t({"a", "b"});
    t.row().cell(1).cell(2);
    t.row().cell(3).cell(4);
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(t.numRows(), 2u);
}

} // namespace
} // namespace cawa
