/**
 * @file
 * Golden-stats regression test: tiny-scale bfs and pathfinder runs
 * under GTO(+LRU) and gCAWS+CACP are compared field-by-field, with
 * exact integer equality, against a checked-in JSON baseline
 * (tests/golden/golden_stats.json). A scheduler or cache refactor
 * that shifts any counter fails loudly instead of silently bending
 * the paper's figures.
 *
 * To regenerate the baseline after an *intentional* behaviour change:
 *   CAWA_UPDATE_GOLDEN=1 ./test_golden_stats
 * and commit the rewritten file.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/report_json.hh"
#include "sim/sweep.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

#ifndef CAWA_GOLDEN_DIR
#error "build must define CAWA_GOLDEN_DIR"
#endif

namespace
{

std::string
goldenPath()
{
    return std::string(CAWA_GOLDEN_DIR) + "/golden_stats.json";
}

std::vector<WorkloadJobSpec>
goldenSpecs()
{
    WorkloadParams params;
    params.scale = 0.15; // tiny but non-degenerate; fixed, env-free
    params.seed = 1;

    GpuConfig gto = GpuConfig::fermiGtx480();
    gto.scheduler = SchedulerKind::Gto;
    gto.l1Policy = CachePolicyKind::Lru;

    GpuConfig cawa = GpuConfig::fermiGtx480();
    cawa.scheduler = SchedulerKind::Gcaws;
    cawa.l1Policy = CachePolicyKind::Cacp;

    std::vector<WorkloadJobSpec> specs;
    for (const char *workload : {"bfs", "pathfinder"}) {
        specs.push_back({workload, gto, params});
        specs.push_back({workload, cawa, params});
    }
    return specs;
}

/** The per-job counters pinned by the baseline. */
struct GoldenEntry
{
    std::string job;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t icntMessages = 0;
    std::uint64_t blocks = 0;
};

GoldenEntry
entryFromReport(const std::string &job, const SimReport &r)
{
    return {job,
            r.cycles,
            r.instructions,
            r.l1.accesses,
            r.l1.hits,
            r.l1.misses,
            r.l2.accesses,
            r.l2.hits,
            r.l2.misses,
            r.dramReads,
            r.dramWrites,
            r.icntMessages,
            r.blocks.size()};
}

std::string
serialize(const std::vector<GoldenEntry> &entries)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"cawa-golden-stats-v1\",\n"
        << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const GoldenEntry &e = entries[i];
        out << "    {\"job\": \"" << e.job << "\""
            << ", \"cycles\": " << e.cycles
            << ", \"instructions\": " << e.instructions
            << ", \"l1Accesses\": " << e.l1Accesses
            << ", \"l1Hits\": " << e.l1Hits
            << ", \"l1Misses\": " << e.l1Misses
            << ", \"l2Accesses\": " << e.l2Accesses
            << ", \"l2Hits\": " << e.l2Hits
            << ", \"l2Misses\": " << e.l2Misses
            << ", \"dramReads\": " << e.dramReads
            << ", \"dramWrites\": " << e.dramWrites
            << ", \"icntMessages\": " << e.icntMessages
            << ", \"blocks\": " << e.blocks << "}"
            << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

std::vector<GoldenEntry>
currentEntries()
{
    const auto specs = goldenSpecs();
    const SweepEngine engine(0); // thread count must not matter
    const auto results = engine.run(makeWorkloadJobs(specs));
    std::vector<GoldenEntry> entries;
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].ok()) << results[i].error;
        entries.push_back(entryFromReport(workloadJobName(specs[i]),
                                          results[i].report));
    }
    return entries;
}

} // namespace

TEST(GoldenStats, MatchesCheckedInBaseline)
{
    const std::vector<GoldenEntry> entries = currentEntries();

    if (std::getenv("CAWA_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << serialize(entries);
        GTEST_SKIP() << "baseline regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing baseline " << goldenPath()
                    << " (run with CAWA_UPDATE_GOLDEN=1 to create)";
    std::stringstream buf;
    buf << in.rdbuf();

    const JsonValue golden = parseJson(buf.str());
    ASSERT_EQ(golden.at("schema").asString(), "cawa-golden-stats-v1");
    const auto &baseline = golden.at("entries").items();
    ASSERT_EQ(baseline.size(), entries.size());

    for (std::size_t i = 0; i < entries.size(); ++i) {
        const GoldenEntry &now = entries[i];
        const JsonValue &want = baseline[i];
        SCOPED_TRACE(now.job);
        EXPECT_EQ(want.at("job").asString(), now.job);
        EXPECT_EQ(want.at("cycles").asU64(), now.cycles);
        EXPECT_EQ(want.at("instructions").asU64(), now.instructions);
        EXPECT_EQ(want.at("l1Accesses").asU64(), now.l1Accesses);
        EXPECT_EQ(want.at("l1Hits").asU64(), now.l1Hits);
        EXPECT_EQ(want.at("l1Misses").asU64(), now.l1Misses);
        EXPECT_EQ(want.at("l2Accesses").asU64(), now.l2Accesses);
        EXPECT_EQ(want.at("l2Hits").asU64(), now.l2Hits);
        EXPECT_EQ(want.at("l2Misses").asU64(), now.l2Misses);
        EXPECT_EQ(want.at("dramReads").asU64(), now.dramReads);
        EXPECT_EQ(want.at("dramWrites").asU64(), now.dramWrites);
        EXPECT_EQ(want.at("icntMessages").asU64(), now.icntMessages);
        EXPECT_EQ(want.at("blocks").asU64(), now.blocks);
    }
}
