/**
 * @file
 * SIMT reconvergence stack tests: uniform branches, if/else
 * divergence, nested divergence, loop back-edges (including the
 * depth-compression that keeps loop stacks bounded) and reconvergence
 * pops.
 */

#include <gtest/gtest.h>

#include "sm/simt_stack.hh"

namespace cawa
{
namespace
{

constexpr LaneMask kFull = 0xffffffffu;

TEST(SimtStack, ResetState)
{
    SimtStack s;
    s.reset(5, 0xff);
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask(), 0xffu);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, AdvanceMovesPc)
{
    SimtStack s;
    s.reset(0, kFull);
    s.advance(1);
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, UniformTakenBranch)
{
    SimtStack s;
    s.reset(4, kFull);
    EXPECT_FALSE(s.branch(4, 10, 12, kFull));
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1);
    EXPECT_EQ(s.activeMask(), kFull);
}

TEST(SimtStack, UniformNotTakenBranch)
{
    SimtStack s;
    s.reset(4, kFull);
    EXPECT_FALSE(s.branch(4, 10, 12, 0));
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, IfElseDivergenceAndReconvergence)
{
    // pc4: @p bra 10 (reconv 12); fall path 5..9 ends with bra 12,
    // taken path 10..11 falls into 12.
    SimtStack s;
    s.reset(4, 0xff);
    const LaneMask taken = 0x0f;
    EXPECT_TRUE(s.branch(4, 10, 12, taken));
    // Taken path executes first.
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), taken);
    EXPECT_EQ(s.depth(), 3);
    s.advance(11);
    s.advance(12); // reaches reconv -> pop to fall path
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask(), 0xf0u);
    // Fall path branches (uniformly) to the reconvergence point.
    EXPECT_FALSE(s.branch(5, 12, 12, 0xf0));
    EXPECT_EQ(s.pc(), 12u);
    EXPECT_EQ(s.activeMask(), 0xffu);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, BranchToReconvergenceSkipsPush)
{
    // if-without-else: taken lanes jump straight to the reconvergence
    // point, so only the fall-through side needs an entry.
    SimtStack s;
    s.reset(4, 0xff);
    EXPECT_TRUE(s.branch(4, 12, 12, 0x0f));
    EXPECT_EQ(s.depth(), 2);
    EXPECT_EQ(s.pc(), 5u);          // fall path runs
    EXPECT_EQ(s.activeMask(), 0xf0u);
    s.advance(12);                  // fall path reaches reconv
    EXPECT_EQ(s.depth(), 1);
    EXPECT_EQ(s.activeMask(), 0xffu);
    EXPECT_EQ(s.pc(), 12u);
}

TEST(SimtStack, LoopDivergenceBoundedDepth)
{
    // loop: body at 1..3, backward branch at 3 -> 1, reconv (exit) 4.
    SimtStack s;
    s.reset(1, 0xff);
    LaneMask continuing = 0xff;
    int max_depth = 0;
    // Each iteration one more lane leaves the loop.
    for (int iter = 0; iter < 8; ++iter) {
        s.advance(2);
        s.advance(3);
        continuing = static_cast<LaneMask>(continuing << 1) & 0xff;
        s.branch(3, 1, 4, continuing);
        max_depth = std::max(max_depth, s.depth());
        if (continuing == 0)
            break;
        EXPECT_EQ(s.pc(), 1u);
        EXPECT_EQ(s.activeMask(), continuing);
    }
    // Depth must not grow with iteration count.
    EXPECT_LE(max_depth, 2);
    EXPECT_EQ(s.pc(), 4u);
    EXPECT_EQ(s.activeMask(), 0xffu);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, NestedDivergence)
{
    // Outer branch at 0 (target 10, reconv 20), inner branch on the
    // taken path at 10 (target 15, reconv 18).
    SimtStack s;
    s.reset(0, 0xffff);
    s.branch(0, 10, 20, 0x00ff);
    EXPECT_EQ(s.pc(), 10u);
    s.branch(10, 15, 18, 0x000f);
    EXPECT_EQ(s.pc(), 15u);
    EXPECT_EQ(s.activeMask(), 0x000fu);
    // Inner taken side reconverges.
    s.advance(18);
    EXPECT_EQ(s.pc(), 11u);
    EXPECT_EQ(s.activeMask(), 0x00f0u);
    s.advance(18);
    // Inner reconverged: both inner sides merged at 18.
    EXPECT_EQ(s.pc(), 18u);
    EXPECT_EQ(s.activeMask(), 0x00ffu);
    s.advance(20);
    // Outer taken side reconverged: fall side (1) runs.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), 0xff00u);
    s.advance(20);
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.activeMask(), 0xffffu);
    EXPECT_EQ(s.depth(), 1);
}

TEST(SimtStack, PartialWarpMask)
{
    SimtStack s;
    s.reset(0, 0x7); // 3 active lanes
    s.branch(0, 5, 8, 0x1);
    EXPECT_EQ(s.activeMask(), 0x1u);
    s.advance(8);
    EXPECT_EQ(s.activeMask(), 0x6u);
    EXPECT_EQ(s.pc(), 1u);
    s.advance(8);
    EXPECT_EQ(s.activeMask(), 0x7u);
}

} // namespace
} // namespace cawa
