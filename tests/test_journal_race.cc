/**
 * @file
 * Journal compaction vs concurrent reader: rewrite() replaces the
 * journal via write-to-temp + fsync + atomic rename, so a reader that
 * opens the file at any instant -- including the temp->rename window
 * -- must see either the complete old journal or the complete new
 * one, never a torn or mixed file. This is the property --resume
 * relies on when a second process inspects a journal that the owning
 * sweep is compacting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/journal.hh"

namespace cawa
{
namespace
{

std::vector<JournalEntry>
entriesNamed(const std::string &prefix, int n, const char *status)
{
    std::vector<JournalEntry> entries;
    for (int i = 0; i < n; ++i) {
        JournalEntry e;
        e.job = prefix + std::to_string(i);
        e.status = status;
        e.attempts = 1 + i;
        entries.push_back(std::move(e));
    }
    return entries;
}

std::string
serialize(const std::vector<JournalEntry> &entries)
{
    std::string out;
    for (const auto &e : entries) {
        out += journalLine(e);
        out += '\n';
    }
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// A reader racing rewrite() across the temp->rename window sees the
// old file or the new file, byte-complete either way -- never torn.
TEST(JournalRace, CompactionNeverExposesATornFileToReaders)
{
    const std::string path =
        ::testing::TempDir() + "journal_race.jsonl";
    std::remove(path.c_str());

    const auto entriesA = entriesNamed("alpha", 24, "ok");
    const auto entriesB = entriesNamed("beta", 3, "crashed");
    const std::string bytesA = serialize(entriesA);
    const std::string bytesB = serialize(entriesB);
    ASSERT_NE(bytesA, bytesB);

    JournalWriter writer;
    writer.open(path);
    writer.rewrite(entriesA);

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::atomic<int> reads{0};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string bytes = slurp(path);
            ++reads;
            if (bytes != bytesA && bytes != bytesB)
                ++torn;
        }
    });

    // ~0.5s of rewrites racing the reader.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    bool flip = false;
    int rewrites = 0;
    while (std::chrono::steady_clock::now() < until) {
        writer.rewrite(flip ? entriesB : entriesA);
        flip = !flip;
        ++rewrites;
    }
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    writer.close();

    EXPECT_EQ(torn.load(), 0)
        << torn.load() << " torn reads out of " << reads.load();
    EXPECT_GT(reads.load(), 0);
    EXPECT_GT(rewrites, 1);

    // The readJournal() view of the final file parses cleanly too.
    const auto final = readJournal(path);
    EXPECT_EQ(final.size(), flip ? entriesA.size() : entriesB.size());
    std::remove(path.c_str());
}

} // namespace
} // namespace cawa
