#include "mem/l1d_cache.hh"

#include <algorithm>

#include "common/sim_assert.hh"
#include "sim/trace.hh"

namespace cawa
{

L1DCache::L1DCache(const L1DConfig &cfg, int sm_id,
                   std::unique_ptr<ReplacementPolicy> policy)
    : cfg_(cfg), smId_(sm_id),
      tags_(cfg.sets, cfg.ways, cfg.lineBytes),
      policy_(std::move(policy)), numMshrs_(cfg.numMshrs)
{
    sim_assert(policy_ != nullptr);
    mshrs_.reserve(static_cast<std::size_t>(cfg.numMshrs));
}

void
L1DCache::recordAccessStats(const AccessInfo &info, bool hit)
{
    stats_.accesses++;
    if (hit)
        stats_.hits++;
    else
        stats_.misses++;
    if (info.criticalWarp) {
        stats_.criticalAccesses++;
        if (hit)
            stats_.criticalHits++;
    } else {
        stats_.nonCriticalAccesses++;
        if (hit)
            stats_.nonCriticalHits++;
    }
}

L1DCache::Result
L1DCache::access(const AccessInfo &info, Cycle now, std::uint64_t token)
{
    const Addr line_addr =
        info.addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
    const std::uint32_t set = tags_.setIndex(line_addr);
    const int way = tags_.probe(line_addr);

    if (way >= 0) {
        recordAccessStats(info, true);
        const std::uint64_t seq = tags_.bumpSetSeq(set);
        auto &line = tags_.line(set, way);
        const std::uint64_t distance = seq - line.lastTouchSeq;
        const int bucket = CacheStats::distanceBucket(distance);
        stats_.reuseDistanceHist[bucket]++;
        if (line.fillByCritical)
            stats_.criticalReuseDistanceHist[bucket]++;
        line.lastTouchSeq = seq;
        line.reuseCount++;
        pcStats(line.fillPc).hits++;
        policy_->onHit(tags_, set, way, info);
        if (info.isStore) {
            // Write-through: the store still travels to L2/DRAM.
            outgoing_.push_back({line_addr, smId_, true, info.pc});
        } else {
            pushCompleted(now + cfg_.hitLatency, token, false);
        }
        return Result::Hit;
    }

    if (info.isStore) {
        // No-write-allocate: miss goes straight out, no MSHR needed.
        recordAccessStats(info, false);
        tags_.bumpSetSeq(set);
        outgoing_.push_back({line_addr, smId_, true, info.pc});
        CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::CacheBypass,
                         smId_, -1, static_cast<std::int64_t>(line_addr),
                         1);
        return Result::Miss;
    }

    if (Mshr *mshr = mshrs_.find(line_addr)) {
        if (static_cast<int>(mshr->tokens.size()) >=
            cfg_.mshrTargets) {
            stats_.mshrRejects++;
            return Result::RejectMshrFull;
        }
        recordAccessStats(info, false);
        tags_.bumpSetSeq(set);
        stats_.mshrMerges++;
        mshr->tokens.push_back(token);
        return Result::Miss;
    }

    if (static_cast<int>(mshrs_.size()) >= numMshrs_) {
        stats_.mshrRejects++;
        return Result::RejectMshrFull;
    }

    recordAccessStats(info, false);
    tags_.bumpSetSeq(set);
    // Pooled entry: reused, so reset every field we rely on.
    Mshr &entry = mshrs_.insert(line_addr);
    entry.primary = info;
    entry.primary.addr = line_addr;
    entry.tokens.clear();
    entry.tokens.push_back(token);
    outgoing_.push_back({line_addr, smId_, false, info.pc});
    return Result::Miss;
}

MemMsg
L1DCache::popOutgoing()
{
    sim_assert(!outgoing_.empty());
    MemMsg msg = outgoing_.front();
    outgoing_.pop_front();
    return msg;
}

void
L1DCache::fill(Addr line_addr, Cycle now)
{
    const Mshr *found = mshrs_.find(line_addr);
    sim_assert(found != nullptr);
    const Mshr &entry = *found;

    const std::uint32_t set = tags_.setIndex(line_addr);
    if (tags_.probe(line_addr) < 0) {
        const int victim =
            policy_->selectVictim(tags_, set, entry.primary);
        auto &line = tags_.line(set, victim);
        if (line.valid) {
            stats_.evictions++;
            CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::CacheEvict,
                             smId_, -1,
                             static_cast<std::int64_t>(line.fillPc),
                             line.reuseCount == 0 ? 1 : 0);
            auto &pc_stats = stats_.perPc[line.fillPc];
            if (line.reuseCount == 0) {
                stats_.zeroReuseEvictions++;
                if (line.fillByCritical)
                    stats_.zeroReuseCriticalEvictions++;
                pc_stats.zeroReuseEvictions++;
            } else {
                pc_stats.reusedEvictions++;
            }
            policy_->onEvict(tags_, set, victim);
        }
        line.valid = true;
        line.tag = tags_.tagOf(line_addr);
        line.reuseCount = 0;
        line.fillPc = entry.primary.pc;
        line.fillByCritical = entry.primary.criticalWarp;
        line.lastTouchSeq = tags_.setSeq(set);
        if (entry.primary.criticalWarp)
            stats_.criticalFills++;
        pcStats(entry.primary.pc).fills++;
        policy_->onFill(tags_, set, victim, entry.primary);
        CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::CacheFill,
                         smId_, -1, static_cast<std::int64_t>(line_addr),
                         entry.primary.criticalWarp ? 1 : 0);
    }

    for (std::uint64_t token : entry.tokens)
        pushCompleted(now + 1, token, true);
    mshrs_.erase(line_addr);
}

void
L1DCache::drainCompleted(Cycle now, std::vector<Completion> &out)
{
    if (now < minCompletedReady_)
        return;
    // Hit completions are ready-ordered, but fill completions are
    // interleaved; scan the queue, preserving the order of the
    // remaining entries, and re-derive the earliest ready cycle.
    minCompletedReady_ = kNoCycle;
    completed_.eraseIf([&](const Pending &p) {
        if (p.ready <= now) {
            out.push_back({p.token, p.wasMiss});
            return true;
        }
        minCompletedReady_ = std::min(minCompletedReady_, p.ready);
        return false;
    });
}

Cycle
L1DCache::nextEventCycle(Cycle now) const
{
    if (!outgoing_.empty())
        return now;
    if (minCompletedReady_ == kNoCycle)
        return kNoCycle;
    return std::max(now, minCompletedReady_);
}

bool
L1DCache::idle() const
{
    return mshrs_.empty() && completed_.empty() && outgoing_.empty();
}

void
L1DCache::save(OutArchive &ar) const
{
    tags_.save(ar);
    policy_->saveState(ar);

    std::vector<Addr> addrs(mshrs_.keys());
    std::sort(addrs.begin(), addrs.end());
    ar.putU32(static_cast<std::uint32_t>(addrs.size()));
    for (Addr addr : addrs) {
        const Mshr *mshr = mshrs_.find(addr);
        ar.putU64(addr);
        saveAccessInfo(ar, mshr->primary);
        ar.putU32(static_cast<std::uint32_t>(mshr->tokens.size()));
        for (std::uint64_t tok : mshr->tokens)
            ar.putU64(tok);
    }

    ar.putU32(static_cast<std::uint32_t>(completed_.size()));
    for (std::size_t i = 0; i < completed_.size(); ++i) {
        const Pending &p = completed_[i];
        ar.putU64(p.ready);
        ar.putU64(p.token);
        ar.putBool(p.wasMiss);
    }
    ar.putU64(minCompletedReady_);

    ar.putU32(static_cast<std::uint32_t>(outgoing_.size()));
    for (std::size_t i = 0; i < outgoing_.size(); ++i)
        saveMemMsg(ar, outgoing_[i]);

    stats_.save(ar);
}

void
L1DCache::load(InArchive &ar)
{
    tags_.load(ar);
    policy_->loadState(ar);

    mshrs_.clear();
    const std::uint32_t num_mshrs = ar.getU32();
    for (std::uint32_t i = 0; i < num_mshrs; ++i) {
        const Addr addr = ar.getU64();
        Mshr &mshr = mshrs_.insert(addr);
        mshr.primary = loadAccessInfo(ar);
        mshr.tokens.clear();
        const std::uint32_t num_tokens = ar.getU32();
        mshr.tokens.reserve(num_tokens);
        for (std::uint32_t t = 0; t < num_tokens; ++t)
            mshr.tokens.push_back(ar.getU64());
    }

    completed_.clear();
    const std::uint32_t num_completed = ar.getU32();
    for (std::uint32_t i = 0; i < num_completed; ++i) {
        Pending p;
        p.ready = ar.getU64();
        p.token = ar.getU64();
        p.wasMiss = ar.getBool();
        completed_.push_back(p);
    }
    minCompletedReady_ = ar.getU64();

    outgoing_.clear();
    const std::uint32_t num_outgoing = ar.getU32();
    for (std::uint32_t i = 0; i < num_outgoing; ++i)
        outgoing_.push_back(loadMemMsg(ar));

    // stats_ is replaced wholesale below; the memo pointer would
    // dangle into the old map.
    lastPc_ = 0;
    lastPcStats_ = nullptr;
    stats_.load(ar);
}

} // namespace cawa
