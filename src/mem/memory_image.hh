/**
 * @file
 * Sparse byte-addressable functional memory for the simulated GPU's
 * global address space.
 *
 * The simulator is functional-first: data values live here and are
 * read/written when an instruction issues; the timing caches track
 * tags only. This keeps functional correctness independent of the
 * timing model, as in GPGPU-Sim.
 */

#ifndef CAWA_MEM_MEMORY_IMAGE_HH
#define CAWA_MEM_MEMORY_IMAGE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace cawa
{

class MemoryImage
{
  public:
    static constexpr Addr kPageBytes = 4096;

    std::uint8_t read8(Addr addr) const;
    void write8(Addr addr, std::uint8_t value);

    std::uint32_t read32(Addr addr) const;
    void write32(Addr addr, std::uint32_t value);

    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t value);

    /** Number of allocated (touched) pages; for tests. */
    std::size_t numPages() const { return pages_.size(); }

    /**
     * Checkpoint the full sparse image. Pages are written sorted by
     * page id (map iteration order is incidental); load replaces the
     * current contents wholesale.
     */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);

  private:
    const std::vector<std::uint8_t> *findPage(Addr addr) const;
    std::vector<std::uint8_t> &touchPage(Addr addr);

    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
};

} // namespace cawa

#endif // CAWA_MEM_MEMORY_IMAGE_HH
