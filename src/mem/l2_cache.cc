#include "mem/l2_cache.hh"

#include <algorithm>

#include "common/sim_assert.hh"
#include "common/sim_error.hh"
#include "sim/trace.hh"

namespace cawa
{

L2Cache::L2Cache(const L2Config &cfg)
    : cfg_(cfg)
{
    sim_assert(cfg.banks > 0);
    banks_.resize(cfg.banks);
    for (auto &bank : banks_) {
        bank.tags = std::make_unique<TagArray>(cfg.setsPerBank, cfg.ways,
                                               cfg.lineBytes);
        bank.policy = std::make_unique<LruPolicy>();
        bank.mshrs.reserve(static_cast<std::size_t>(cfg.mshrsPerBank));
    }
}

int
L2Cache::bankOf(Addr line_addr) const
{
    return static_cast<int>((line_addr / cfg_.lineBytes) % cfg_.banks);
}

void
L2Cache::pushRequest(const MemMsg &msg, Cycle now)
{
    (void)now;
    banks_[bankOf(msg.lineAddr)].inQueue.push_back(msg);
}

void
L2Cache::service(Bank &bank, const MemMsg &msg, Cycle now,
                 DramModel &dram)
{
    TagArray &tags = *bank.tags;
    AccessInfo info;
    info.addr = msg.lineAddr;
    info.pc = msg.pc;
    info.isStore = msg.isStore;

    stats_.accesses++;
    const std::uint32_t set = tags.setIndex(msg.lineAddr);
    tags.bumpSetSeq(set);
    const int way = tags.probe(msg.lineAddr);

    if (way >= 0) {
        stats_.hits++;
        auto &line = tags.line(set, way);
        line.reuseCount++;
        line.lastTouchSeq = tags.setSeq(set);
        bank.policy->onHit(tags, set, way, info);
        if (!msg.isStore)
            pushResponse(now + cfg_.latency, msg);
        return;
    }

    stats_.misses++;
    if (msg.isStore) {
        // Write-through, no-allocate at L2 either: forward to DRAM.
        CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::CacheBypass,
                         -1, -1,
                         static_cast<std::int64_t>(msg.lineAddr), 1);
        dram.push(msg, now);
        return;
    }
    if (std::vector<MemMsg> *waiting = bank.mshrs.find(msg.lineAddr)) {
        stats_.mshrMerges++;
        waiting->push_back(msg);
        return;
    }
    // The L2 MSHR file is not a hard backpressure point in this
    // model: beyond the configured capacity, entries still allocate
    // (merging stays correct) and the overflow is only counted, so
    // the statistic flags configurations that would need a larger
    // file without deadlocking the simpler bank pipeline.
    if (static_cast<int>(bank.mshrs.size()) >= cfg_.mshrsPerBank)
        stats_.mshrRejects++;
    // Pooled entry: reused, so drop the previous tenant's wait list.
    std::vector<MemMsg> &waiting = bank.mshrs.insert(msg.lineAddr);
    waiting.clear();
    waiting.push_back(msg);
    MemMsg to_dram = msg;
    dram.push(to_dram, now);
}

void
L2Cache::tick(Cycle now, DramModel &dram)
{
    for (auto &bank : banks_) {
        if (bank.inQueue.empty())
            continue;
        const MemMsg msg = bank.inQueue.front();
        bank.inQueue.pop_front();
        service(bank, msg, now, dram);
    }
}

void
L2Cache::handleDramResponse(const MemMsg &msg, Cycle now)
{
    Bank &bank = banks_[bankOf(msg.lineAddr)];
    TagArray &tags = *bank.tags;

    AccessInfo info;
    info.addr = msg.lineAddr;
    info.pc = msg.pc;

    // Install the line unless a racing fill already brought it in.
    if (tags.probe(msg.lineAddr) < 0) {
        const std::uint32_t set = tags.setIndex(msg.lineAddr);
        const int victim = bank.policy->selectVictim(tags, set, info);
        auto &line = tags.line(set, victim);
        if (line.valid) {
            stats_.evictions++;
            CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::CacheEvict,
                             -1, -1,
                             static_cast<std::int64_t>(line.fillPc),
                             line.reuseCount == 0 ? 1 : 0);
            if (line.reuseCount == 0)
                stats_.zeroReuseEvictions++;
            bank.policy->onEvict(tags, set, victim);
        }
        line.valid = true;
        line.tag = tags.tagOf(msg.lineAddr);
        line.reuseCount = 0;
        line.fillPc = msg.pc;
        line.lastTouchSeq = tags.setSeq(set);
        bank.policy->onFill(tags, set, victim, info);
        CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::CacheFill,
                         -1, -1,
                         static_cast<std::int64_t>(msg.lineAddr), 0);
    }

    const std::vector<MemMsg> *waiting = bank.mshrs.find(msg.lineAddr);
    if (!waiting) {
        // An MSHR-bypassed duplicate fetch: respond to the original
        // requester directly.
        pushResponse(now + 1, msg);
        return;
    }
    for (const MemMsg &w : *waiting)
        pushResponse(now + 1, w);
    bank.mshrs.erase(msg.lineAddr);
}

std::vector<MemMsg>
L2Cache::popResponses(Cycle now)
{
    std::vector<MemMsg> out;
    if (now < minResponseReady_)
        return out;
    // Responses are not strictly ready-ordered (hit latency vs fill
    // wakeups), so scan the whole queue, preserving the order of the
    // remaining entries, and re-derive the earliest ready cycle.
    minResponseReady_ = kNoCycle;
    responses_.eraseIf([&](const PendingResponse &r) {
        if (r.ready <= now) {
            out.push_back(r.msg);
            return true;
        }
        minResponseReady_ = std::min(minResponseReady_, r.ready);
        return false;
    });
    return out;
}

Cycle
L2Cache::nextEventCycle(Cycle now) const
{
    for (const auto &bank : banks_)
        if (!bank.inQueue.empty())
            return now;
    if (minResponseReady_ == kNoCycle)
        return kNoCycle;
    return std::max(now, minResponseReady_);
}

bool
L2Cache::idle() const
{
    if (!responses_.empty())
        return false;
    for (const auto &bank : banks_)
        if (!bank.inQueue.empty() || !bank.mshrs.empty())
            return false;
    return true;
}

void
L2Cache::save(OutArchive &ar) const
{
    ar.putU32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &bank : banks_) {
        bank.tags->save(ar);
        bank.policy->saveState(ar);

        ar.putU32(static_cast<std::uint32_t>(bank.inQueue.size()));
        for (std::size_t i = 0; i < bank.inQueue.size(); ++i)
            saveMemMsg(ar, bank.inQueue[i]);

        std::vector<Addr> addrs(bank.mshrs.keys());
        std::sort(addrs.begin(), addrs.end());
        ar.putU32(static_cast<std::uint32_t>(addrs.size()));
        for (Addr addr : addrs) {
            const std::vector<MemMsg> *waiting = bank.mshrs.find(addr);
            ar.putU64(addr);
            ar.putU32(static_cast<std::uint32_t>(waiting->size()));
            for (const MemMsg &msg : *waiting)
                saveMemMsg(ar, msg);
        }
    }

    ar.putU32(static_cast<std::uint32_t>(responses_.size()));
    for (std::size_t i = 0; i < responses_.size(); ++i) {
        const PendingResponse &r = responses_[i];
        ar.putU64(r.ready);
        saveMemMsg(ar, r.msg);
    }
    ar.putU64(minResponseReady_);
    stats_.save(ar);
}

void
L2Cache::load(InArchive &ar)
{
    const std::uint32_t num_banks = ar.getU32();
    if (num_banks != banks_.size())
        throw SimError(SimErrorKind::Checkpoint,
                       "section '" + ar.section() +
                           "': L2 bank count mismatch (file " +
                           std::to_string(num_banks) + ", config " +
                           std::to_string(banks_.size()) + ")");
    for (Bank &bank : banks_) {
        bank.tags->load(ar);
        bank.policy->loadState(ar);

        bank.inQueue.clear();
        const std::uint32_t queued = ar.getU32();
        for (std::uint32_t i = 0; i < queued; ++i)
            bank.inQueue.push_back(loadMemMsg(ar));

        bank.mshrs.clear();
        const std::uint32_t num_mshrs = ar.getU32();
        for (std::uint32_t i = 0; i < num_mshrs; ++i) {
            const Addr addr = ar.getU64();
            std::vector<MemMsg> &waiting = bank.mshrs.insert(addr);
            waiting.clear();
            const std::uint32_t n = ar.getU32();
            waiting.reserve(n);
            for (std::uint32_t k = 0; k < n; ++k)
                waiting.push_back(loadMemMsg(ar));
        }
    }

    responses_.clear();
    const std::uint32_t num_responses = ar.getU32();
    for (std::uint32_t i = 0; i < num_responses; ++i) {
        PendingResponse r;
        r.ready = ar.getU64();
        r.msg = loadMemMsg(ar);
        responses_.push_back(r);
    }
    minResponseReady_ = ar.getU64();
    stats_.load(ar);
}

} // namespace cawa
