/**
 * @file
 * Unified, banked L2 cache shared by all SMs. Each bank owns a slice
 * of the tag array, an input queue serviced at one request per cycle,
 * and an MSHR file merging same-line read misses. Read hits respond
 * after the L2 latency; misses go to DRAM. Write-through stores probe
 * the tags (promotion on hit) and are forwarded to DRAM without
 * allocation or response.
 */

#ifndef CAWA_MEM_L2_CACHE_HH
#define CAWA_MEM_L2_CACHE_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "mem/cache_stats.hh"
#include "mem/dram.hh"
#include "mem/mem_msg.hh"
#include "mem/replacement.hh"
#include "mem/tag_array.hh"

namespace cawa
{

class TraceBuffer;

struct L2Config
{
    int banks = 6;
    int setsPerBank = 64;
    int ways = 16;
    int lineBytes = 128;
    Cycle latency = 20;         ///< service-to-response latency
    int mshrsPerBank = 32;
};

class L2Cache
{
  public:
    explicit L2Cache(const L2Config &cfg);

    /** Enqueue a request arriving from the interconnect. */
    void pushRequest(const MemMsg &msg, Cycle now);

    /** Service bank queues and DRAM responses; once per cycle. */
    void tick(Cycle now, DramModel &dram);

    /** Accept a DRAM read response: fill and wake waiting requests. */
    void handleDramResponse(const MemMsg &msg, Cycle now);

    /** Read responses ready to return toward the SMs. */
    std::vector<MemMsg> popResponses(Cycle now);

    bool idle() const;

    /**
     * Earliest cycle >= @p now at which a bank has a request to
     * service or a scheduled response becomes deliverable; kNoCycle
     * when nothing is queued. Outstanding MSHR entries alone produce
     * no event here -- they wait on a DRAM response, which the DRAM
     * model reports.
     */
    Cycle nextEventCycle(Cycle now) const;

    const CacheStats &stats() const { return stats_; }

    /**
     * Route fill/evict/bypass trace events into @p sink (nullptr
     * disables). Pure observer: never alters cache behavior.
     */
    void setTraceSink(TraceBuffer *sink) { traceSink_ = sink; }

    int bankOf(Addr line_addr) const;

    /**
     * Checkpoint every bank (tags, policy stamps, input queue, MSHR
     * wait lists) plus the response queue and statistics. MSHR keys
     * are written sorted by line address for deterministic bytes;
     * each wait list keeps its in-vector order, which is the wakeup
     * order and therefore observable.
     */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);

  private:
    struct Bank
    {
        std::unique_ptr<TagArray> tags;
        std::unique_ptr<ReplacementPolicy> policy;
        RingQueue<MemMsg> inQueue;
        // Line addr -> requests waiting on the DRAM fill. Pooled:
        // an erased entry's wait-list vector keeps its capacity for
        // the next same-bank miss.
        PooledMap<Addr, std::vector<MemMsg>> mshrs;
    };

    struct PendingResponse
    {
        Cycle ready;
        MemMsg msg;
    };

    void service(Bank &bank, const MemMsg &msg, Cycle now,
                 DramModel &dram);

    void pushResponse(Cycle ready, const MemMsg &msg)
    {
        responses_.push_back({ready, msg});
        minResponseReady_ = std::min(minResponseReady_, ready);
    }

    L2Config cfg_;
    std::vector<Bank> banks_;
    RingQueue<PendingResponse> responses_;
    /**
     * Earliest ready cycle over responses_ (kNoCycle when empty), so
     * the per-cycle popResponses()/nextEventCycle() calls only walk
     * the queue when something is actually deliverable.
     */
    Cycle minResponseReady_ = kNoCycle;
    CacheStats stats_;
    TraceBuffer *traceSink_ = nullptr;
};

} // namespace cawa

#endif // CAWA_MEM_L2_CACHE_HH
