#include "mem/replacement.hh"

#include "common/sim_assert.hh"

namespace cawa
{

// LruPolicy

int
LruPolicy::selectVictim(TagArray &tags, std::uint32_t set,
                        const AccessInfo &info)
{
    (void)info;
    int victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (int w = 0; w < tags.ways(); ++w) {
        const CacheLine &l = tags.line(set, w);
        if (!l.valid)
            return w;
        if (l.lruStamp < oldest) {
            oldest = l.lruStamp;
            victim = w;
        }
    }
    return victim;
}

void
LruPolicy::onFill(TagArray &tags, std::uint32_t set, int way,
                  const AccessInfo &info)
{
    (void)info;
    tags.line(set, way).lruStamp = ++stamp_;
}

void
LruPolicy::onHit(TagArray &tags, std::uint32_t set, int way,
                 const AccessInfo &info)
{
    (void)info;
    tags.line(set, way).lruStamp = ++stamp_;
}

void
LruPolicy::onEvict(TagArray &tags, std::uint32_t set, int way)
{
    (void)tags;
    (void)set;
    (void)way;
}

// SrripPolicy

int
SrripPolicy::rripVictim(TagArray &tags, std::uint32_t set, int begin,
                        int end)
{
    sim_assert(begin >= 0 && end <= tags.ways() && begin < end);
    for (int w = begin; w < end; ++w)
        if (!tags.line(set, w).valid)
            return w;
    for (;;) {
        for (int w = begin; w < end; ++w)
            if (tags.line(set, w).rrpv >= 3)
                return w;
        for (int w = begin; w < end; ++w) {
            auto &l = tags.line(set, w);
            if (l.rrpv < 3)
                l.rrpv++;
        }
    }
}

int
SrripPolicy::selectVictim(TagArray &tags, std::uint32_t set,
                          const AccessInfo &info)
{
    (void)info;
    return rripVictim(tags, set, 0, tags.ways());
}

void
SrripPolicy::onFill(TagArray &tags, std::uint32_t set, int way,
                    const AccessInfo &info)
{
    (void)info;
    tags.line(set, way).rrpv = 2;
}

void
SrripPolicy::onHit(TagArray &tags, std::uint32_t set, int way,
                   const AccessInfo &info)
{
    (void)info;
    tags.line(set, way).rrpv = 0;
}

void
SrripPolicy::onEvict(TagArray &tags, std::uint32_t set, int way)
{
    (void)tags;
    (void)set;
    (void)way;
}

// ShipPolicy

ShipPolicy::ShipPolicy(int table_entries, int region_shift)
    : ship_(table_entries), regionShift_(region_shift)
{
}

int
ShipPolicy::selectVictim(TagArray &tags, std::uint32_t set,
                         const AccessInfo &info)
{
    (void)info;
    return SrripPolicy::rripVictim(tags, set, 0, tags.ways());
}

std::uint8_t
shipInsertionWithProbe(const ShipTable &ship, CacheSignature sig,
                       std::uint64_t &fill_counter)
{
    if (ship.predictReuse(sig))
        return 2;
    return (fill_counter++ % 16 == 0) ? 2 : 3;
}

void
ShipPolicy::onFill(TagArray &tags, std::uint32_t set, int way,
                   const AccessInfo &info)
{
    auto &l = tags.line(set, way);
    l.signature = makeSignature(info.pc, info.addr, regionShift_);
    l.rrpv = shipInsertionWithProbe(ship_, l.signature, fills_);
}

void
ShipPolicy::onHit(TagArray &tags, std::uint32_t set, int way,
                  const AccessInfo &info)
{
    (void)info;
    auto &l = tags.line(set, way);
    l.rrpv = 0;
    ship_.increment(l.signature);
}

void
ShipPolicy::onEvict(TagArray &tags, std::uint32_t set, int way)
{
    const auto &l = tags.line(set, way);
    if (l.reuseCount == 0)
        ship_.decrement(l.signature);
}

} // namespace cawa
