#include "mem/coalescer.hh"

#include <algorithm>
#include <bit>

#include "common/sim_assert.hh"

namespace cawa
{

Coalescer::Coalescer(int line_bytes)
    : lineBytes_(line_bytes)
{
    sim_assert(line_bytes > 0 && std::has_single_bit(
        static_cast<unsigned>(line_bytes)));
}

std::vector<Addr>
Coalescer::coalesce(const std::vector<Addr> &lane_addrs) const
{
    std::vector<Addr> lines;
    lines.reserve(lane_addrs.size());
    const Addr mask = ~static_cast<Addr>(lineBytes_ - 1);
    for (Addr a : lane_addrs)
        lines.push_back(a & mask);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

} // namespace cawa
