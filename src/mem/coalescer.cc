#include "mem/coalescer.hh"

#include <algorithm>
#include <bit>

#include "common/sim_assert.hh"

namespace cawa
{

Coalescer::Coalescer(int line_bytes)
    : lineBytes_(line_bytes)
{
    sim_assert(line_bytes > 0 && std::has_single_bit(
        static_cast<unsigned>(line_bytes)));
}

std::vector<Addr>
Coalescer::coalesce(const std::vector<Addr> &lane_addrs) const
{
    std::vector<Addr> lines;
    coalesce(lane_addrs, lines);
    return lines;
}

void
Coalescer::coalesce(const std::vector<Addr> &lane_addrs,
                    std::vector<Addr> &out) const
{
    out.clear();
    out.reserve(lane_addrs.size());
    const Addr mask = ~static_cast<Addr>(lineBytes_ - 1);
    for (Addr a : lane_addrs)
        out.push_back(a & mask);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

} // namespace cawa
