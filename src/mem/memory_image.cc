#include "mem/memory_image.hh"

#include <algorithm>

namespace cawa
{

const std::vector<std::uint8_t> *
MemoryImage::findPage(Addr addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t> &
MemoryImage::touchPage(Addr addr)
{
    auto &page = pages_[addr / kPageBytes];
    if (page.empty())
        page.resize(kPageBytes, 0);
    return page;
}

std::uint8_t
MemoryImage::read8(Addr addr) const
{
    const auto *page = findPage(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

void
MemoryImage::write8(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr % kPageBytes] = value;
}

std::uint32_t
MemoryImage::read32(Addr addr) const
{
    // One page lookup for the whole word when it does not straddle a
    // page boundary (the overwhelmingly common case: every simulated
    // load/store funnels through here, and byte-at-a-time lookups
    // were the top line of the flat-path profile).
    const Addr off = addr % kPageBytes;
    if (off <= kPageBytes - 4) {
        const auto *page = findPage(addr);
        if (!page)
            return 0;
        const std::uint8_t *p = page->data() + off;
        return static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | read8(addr + i);
    return v;
}

void
MemoryImage::write32(Addr addr, std::uint32_t value)
{
    const Addr off = addr % kPageBytes;
    if (off <= kPageBytes - 4) {
        std::uint8_t *p = touchPage(addr).data() + off;
        p[0] = static_cast<std::uint8_t>(value);
        p[1] = static_cast<std::uint8_t>(value >> 8);
        p[2] = static_cast<std::uint8_t>(value >> 16);
        p[3] = static_cast<std::uint8_t>(value >> 24);
        return;
    }
    for (int i = 0; i < 4; ++i)
        write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint64_t
MemoryImage::read64(Addr addr) const
{
    const Addr off = addr % kPageBytes;
    if (off <= kPageBytes - 8) {
        const auto *page = findPage(addr);
        if (!page)
            return 0;
        const std::uint8_t *p = page->data() + off;
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | p[i];
        return v;
    }
    return static_cast<std::uint64_t>(read32(addr)) |
           (static_cast<std::uint64_t>(read32(addr + 4)) << 32);
}

void
MemoryImage::write64(Addr addr, std::uint64_t value)
{
    const Addr off = addr % kPageBytes;
    if (off <= kPageBytes - 8) {
        std::uint8_t *p = touchPage(addr).data() + off;
        for (int i = 0; i < 8; ++i)
            p[i] = static_cast<std::uint8_t>(value >> (8 * i));
        return;
    }
    write32(addr, static_cast<std::uint32_t>(value));
    write32(addr + 4, static_cast<std::uint32_t>(value >> 32));
}

void
MemoryImage::save(OutArchive &ar) const
{
    std::vector<Addr> ids;
    ids.reserve(pages_.size());
    for (const auto &[id, page] : pages_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    ar.putU32(static_cast<std::uint32_t>(ids.size()));
    for (Addr id : ids) {
        const auto &page = pages_.at(id);
        ar.putU64(id);
        ar.putBytes(page.data(), page.size());
    }
}

void
MemoryImage::load(InArchive &ar)
{
    pages_.clear();
    const std::uint32_t n = ar.getU32();
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr id = ar.getU64();
        pages_.emplace(id, ar.getBytes());
    }
}

} // namespace cawa
