/**
 * @file
 * Memory access coalescing: collapse the per-lane byte addresses of a
 * warp memory instruction into the minimal set of cache-line-sized
 * transactions, as Fermi's LD/ST unit does.
 */

#ifndef CAWA_MEM_COALESCER_HH
#define CAWA_MEM_COALESCER_HH

#include <vector>

#include "common/types.hh"

namespace cawa
{

class Coalescer
{
  public:
    explicit Coalescer(int line_bytes);

    /**
     * Coalesce the active lanes' addresses into unique line-aligned
     * transaction addresses, in ascending order.
     */
    std::vector<Addr> coalesce(const std::vector<Addr> &lane_addrs) const;

    /**
     * In-place variant for the per-issue hot path: @p out is cleared
     * and refilled, keeping its capacity across calls so steady-state
     * coalescing allocates nothing.
     */
    void coalesce(const std::vector<Addr> &lane_addrs,
                  std::vector<Addr> &out) const;

    int lineBytes() const { return lineBytes_; }

  private:
    int lineBytes_;
};

} // namespace cawa

#endif // CAWA_MEM_COALESCER_HH
