/**
 * @file
 * Per-SM front end for the functional MemoryImage: the commit-buffer
 * seam that makes phase-1 parallel SM ticking safe (sim/gpu.cc).
 *
 * MemoryImage is a sparse page map, so concurrent stores from two SMs
 * can rehash the map under a third SM's load. Each SM therefore owns
 * a MemPort. In serial mode (the default) it is a plain passthrough
 * and the seed simulator's behavior is untouched. With deferred
 * stores enabled, write32() appends to a thread-confined log instead
 * of touching the shared image, and the GPU tick loop calls commit()
 * serially in fixed SM order during phase 2 — the exact order the
 * serial loop's in-place writes would have happened, so the image
 * evolves identically at every cycle boundary.
 *
 * Loads issued while stores are deferred must still observe this
 * SM's own earlier stores from the same cycle (intra-warp RAW through
 * memory), so the port keeps a byte-granular overlay of the pending
 * log and forwards from it, handling partial/unaligned overlap
 * exactly. Same-cycle cross-SM RAW is the one case a deferred store
 * can change: no workload in the registry does inter-block
 * communication through global memory within a cycle (the ISA has no
 * atomics), and the byte-identity matrix in test_parallel_sm proves
 * the equivalence empirically for every workload.
 */

#ifndef CAWA_MEM_MEM_PORT_HH
#define CAWA_MEM_MEM_PORT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sim_assert.hh"
#include "common/types.hh"
#include "mem/memory_image.hh"

namespace cawa
{

class MemPort
{
  public:
    explicit MemPort(MemoryImage &image) : image_(&image) {}

    /**
     * Switch between passthrough (serial tick loop) and deferred
     * (parallel phase 1) stores. Only legal at a commit boundary.
     */
    void
    setDeferStores(bool defer)
    {
        sim_assert(log_.empty());
        defer_ = defer;
    }

    bool deferringStores() const { return defer_; }

    std::uint32_t
    read32(Addr addr) const
    {
        if (!defer_ || overlay_.empty())
            return image_->read32(addr);
        std::uint32_t value = 0;
        for (int i = 3; i >= 0; --i)
            value = (value << 8) | byteAt(addr + static_cast<Addr>(i));
        return value;
    }

    void
    write32(Addr addr, std::uint32_t value)
    {
        if (!defer_) {
            image_->write32(addr, value);
            return;
        }
        log_.push_back({addr, value});
        for (int i = 0; i < 4; ++i)
            overlay_[addr + static_cast<Addr>(i)] =
                static_cast<std::uint8_t>(value >> (8 * i));
    }

    /** Replay the store log in program order against the image. */
    void
    commit()
    {
        for (const Store &store : log_)
            image_->write32(store.addr, store.value);
        log_.clear();
        overlay_.clear();
    }

    /** Buffered stores awaiting commit; 0 at every cycle boundary. */
    std::size_t pendingStores() const { return log_.size(); }

  private:
    struct Store
    {
        Addr addr;
        std::uint32_t value;
    };

    std::uint8_t
    byteAt(Addr addr) const
    {
        const auto it = overlay_.find(addr);
        return it != overlay_.end() ? it->second : image_->read8(addr);
    }

    MemoryImage *image_;
    bool defer_ = false;
    std::vector<Store> log_;                      // commit order
    std::unordered_map<Addr, std::uint8_t> overlay_; // forwarding view
};

} // namespace cawa

#endif // CAWA_MEM_MEM_PORT_HH
