/**
 * @file
 * Cache statistics: aggregate hit/miss counters, criticality-class
 * breakdowns, reuse-distance histogram, zero-reuse eviction counts and
 * per-PC reuse classification. These feed Figures 3, 8, 10, 14, 15
 * and 16 of the paper.
 */

#ifndef CAWA_MEM_CACHE_STATS_HH
#define CAWA_MEM_CACHE_STATS_HH

#include <array>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cawa
{

struct PcReuseStats
{
    std::uint64_t fills = 0;
    std::uint64_t hits = 0;
    std::uint64_t zeroReuseEvictions = 0;
    std::uint64_t reusedEvictions = 0;
};

struct CacheStats
{
    // Aggregate demand traffic.
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t mshrRejects = 0;
    std::uint64_t evictions = 0;

    // Breakdown by whether the requesting warp was classified critical
    // at access time (Fig 14).
    std::uint64_t criticalAccesses = 0;
    std::uint64_t criticalHits = 0;
    std::uint64_t nonCriticalAccesses = 0;
    std::uint64_t nonCriticalHits = 0;

    // Zero-reuse eviction accounting (Fig 15): lines evicted without
    // any hit, split by whether a critical warp filled them.
    std::uint64_t zeroReuseEvictions = 0;
    std::uint64_t zeroReuseCriticalEvictions = 0;
    std::uint64_t criticalFills = 0;

    /**
     * Reuse-distance histogram (Fig 3): distance measured in accesses
     * to the same set between consecutive touches of a line. Buckets:
     * [0]=1-4, [1]=5-8, [2]=9-16, [3]=17-32, [4]=>32. Lines evicted
     * with no reuse at all land in zeroReuse*Evictions instead.
     */
    std::array<std::uint64_t, 5> reuseDistanceHist{};
    std::array<std::uint64_t, 5> criticalReuseDistanceHist{};

    /** Per-fill-PC reuse behaviour (Fig 8). */
    std::map<std::uint32_t, PcReuseStats> perPc;

    double hitRate() const
    {
        return accesses ? static_cast<double>(hits) / accesses : 0.0;
    }

    double criticalHitRate() const
    {
        return criticalAccesses
            ? static_cast<double>(criticalHits) / criticalAccesses : 0.0;
    }

    /** Misses per kilo-instruction given the committed count. */
    double mpki(std::uint64_t instructions) const
    {
        return instructions
            ? 1000.0 * static_cast<double>(misses) / instructions : 0.0;
    }

    static int
    distanceBucket(std::uint64_t distance)
    {
        if (distance <= 4)
            return 0;
        if (distance <= 8)
            return 1;
        if (distance <= 16)
            return 2;
        if (distance <= 32)
            return 3;
        return 4;
    }

    void merge(const CacheStats &other);

    /**
     * Register every counter and histogram under `prefix` ("l1",
     * "l2"), including the per-fill-PC breakdown as
     * "<prefix>.pc.<pc>.<field>". This is the cache's contribution to
     * the unified StatsRegistry behind cawa-simreport-v3.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Inverse of registerStats for one entry: `name` is the part
     * after "<prefix>." of a registry entry. Returns false when the
     * name does not belong to CacheStats.
     */
    bool applyStat(const std::string &name, const StatEntry &entry);

    /** Checkpoint all counters (perPc is ordered, so byte-stable). */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);
};

inline void
CacheStats::save(OutArchive &ar) const
{
    ar.putU64(accesses);
    ar.putU64(hits);
    ar.putU64(misses);
    ar.putU64(mshrMerges);
    ar.putU64(mshrRejects);
    ar.putU64(evictions);
    ar.putU64(criticalAccesses);
    ar.putU64(criticalHits);
    ar.putU64(nonCriticalAccesses);
    ar.putU64(nonCriticalHits);
    ar.putU64(zeroReuseEvictions);
    ar.putU64(zeroReuseCriticalEvictions);
    ar.putU64(criticalFills);
    for (std::uint64_t v : reuseDistanceHist)
        ar.putU64(v);
    for (std::uint64_t v : criticalReuseDistanceHist)
        ar.putU64(v);
    ar.putU32(static_cast<std::uint32_t>(perPc.size()));
    for (const auto &[pc, st] : perPc) {
        ar.putU32(pc);
        ar.putU64(st.fills);
        ar.putU64(st.hits);
        ar.putU64(st.zeroReuseEvictions);
        ar.putU64(st.reusedEvictions);
    }
}

inline void
CacheStats::load(InArchive &ar)
{
    accesses = ar.getU64();
    hits = ar.getU64();
    misses = ar.getU64();
    mshrMerges = ar.getU64();
    mshrRejects = ar.getU64();
    evictions = ar.getU64();
    criticalAccesses = ar.getU64();
    criticalHits = ar.getU64();
    nonCriticalAccesses = ar.getU64();
    nonCriticalHits = ar.getU64();
    zeroReuseEvictions = ar.getU64();
    zeroReuseCriticalEvictions = ar.getU64();
    criticalFills = ar.getU64();
    for (std::uint64_t &v : reuseDistanceHist)
        v = ar.getU64();
    for (std::uint64_t &v : criticalReuseDistanceHist)
        v = ar.getU64();
    perPc.clear();
    const std::uint32_t n = ar.getU32();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t pc = ar.getU32();
        PcReuseStats st;
        st.fills = ar.getU64();
        st.hits = ar.getU64();
        st.zeroReuseEvictions = ar.getU64();
        st.reusedEvictions = ar.getU64();
        perPc.emplace(pc, st);
    }
}

inline void
CacheStats::merge(const CacheStats &other)
{
    accesses += other.accesses;
    hits += other.hits;
    misses += other.misses;
    mshrMerges += other.mshrMerges;
    mshrRejects += other.mshrRejects;
    evictions += other.evictions;
    criticalAccesses += other.criticalAccesses;
    criticalHits += other.criticalHits;
    nonCriticalAccesses += other.nonCriticalAccesses;
    nonCriticalHits += other.nonCriticalHits;
    zeroReuseEvictions += other.zeroReuseEvictions;
    zeroReuseCriticalEvictions += other.zeroReuseCriticalEvictions;
    criticalFills += other.criticalFills;
    for (std::size_t i = 0; i < reuseDistanceHist.size(); ++i) {
        reuseDistanceHist[i] += other.reuseDistanceHist[i];
        criticalReuseDistanceHist[i] += other.criticalReuseDistanceHist[i];
    }
    for (const auto &[pc, st] : other.perPc) {
        auto &mine = perPc[pc];
        mine.fills += st.fills;
        mine.hits += st.hits;
        mine.zeroReuseEvictions += st.zeroReuseEvictions;
        mine.reusedEvictions += st.reusedEvictions;
    }
}

inline void
CacheStats::registerStats(StatsRegistry &reg,
                          const std::string &prefix) const
{
    auto key = [&](const char *field) { return prefix + "." + field; };
    reg.counter(key("accesses"), accesses);
    reg.counter(key("hits"), hits);
    reg.counter(key("misses"), misses);
    reg.counter(key("mshrMerges"), mshrMerges);
    reg.counter(key("mshrRejects"), mshrRejects);
    reg.counter(key("evictions"), evictions);
    reg.counter(key("criticalAccesses"), criticalAccesses);
    reg.counter(key("criticalHits"), criticalHits);
    reg.counter(key("nonCriticalAccesses"), nonCriticalAccesses);
    reg.counter(key("nonCriticalHits"), nonCriticalHits);
    reg.counter(key("zeroReuseEvictions"), zeroReuseEvictions);
    reg.counter(key("zeroReuseCriticalEvictions"),
                zeroReuseCriticalEvictions);
    reg.counter(key("criticalFills"), criticalFills);
    reg.histogramFrom(key("reuseDistanceHist"), reuseDistanceHist);
    reg.histogramFrom(key("criticalReuseDistanceHist"),
                      criticalReuseDistanceHist);
    for (const auto &[pc, st] : perPc) {
        const std::string p = prefix + ".pc." + std::to_string(pc);
        reg.counter(p + ".fills", st.fills);
        reg.counter(p + ".hits", st.hits);
        reg.counter(p + ".zeroReuseEvictions", st.zeroReuseEvictions);
        reg.counter(p + ".reusedEvictions", st.reusedEvictions);
    }
}

inline bool
CacheStats::applyStat(const std::string &name, const StatEntry &entry)
{
    auto scalar = [&](const char *field, std::uint64_t &dst) {
        if (name != field)
            return false;
        dst = entry.value;
        return true;
    };
    if (scalar("accesses", accesses) || scalar("hits", hits) ||
        scalar("misses", misses) ||
        scalar("mshrMerges", mshrMerges) ||
        scalar("mshrRejects", mshrRejects) ||
        scalar("evictions", evictions) ||
        scalar("criticalAccesses", criticalAccesses) ||
        scalar("criticalHits", criticalHits) ||
        scalar("nonCriticalAccesses", nonCriticalAccesses) ||
        scalar("nonCriticalHits", nonCriticalHits) ||
        scalar("zeroReuseEvictions", zeroReuseEvictions) ||
        scalar("zeroReuseCriticalEvictions",
               zeroReuseCriticalEvictions) ||
        scalar("criticalFills", criticalFills)) {
        return true;
    }
    auto hist = [&](const char *field,
                    std::array<std::uint64_t, 5> &dst) {
        if (name != field)
            return false;
        for (std::size_t i = 0;
             i < dst.size() && i < entry.values.size(); ++i) {
            dst[i] = entry.values[i];
        }
        return true;
    };
    if (hist("reuseDistanceHist", reuseDistanceHist) ||
        hist("criticalReuseDistanceHist", criticalReuseDistanceHist))
        return true;
    if (name.rfind("pc.", 0) == 0) {
        const std::size_t dot = name.find('.', 3);
        if (dot == std::string::npos)
            return false;
        const std::uint32_t pc = static_cast<std::uint32_t>(
            std::strtoul(name.substr(3, dot - 3).c_str(), nullptr,
                         10));
        const std::string field = name.substr(dot + 1);
        PcReuseStats &st = perPc[pc];
        if (field == "fills")
            st.fills = entry.value;
        else if (field == "hits")
            st.hits = entry.value;
        else if (field == "zeroReuseEvictions")
            st.zeroReuseEvictions = entry.value;
        else if (field == "reusedEvictions")
            st.reusedEvictions = entry.value;
        else
            return false;
        return true;
    }
    return false;
}

} // namespace cawa

#endif // CAWA_MEM_CACHE_STATS_HH
