/**
 * @file
 * DRAM model: a FIFO of line transactions served at a bounded rate
 * (one request per service interval) with a fixed access latency.
 * Captures bandwidth contention without modeling banks/rows.
 */

#ifndef CAWA_MEM_DRAM_HH
#define CAWA_MEM_DRAM_HH

#include <vector>

#include "common/arena.hh"
#include "mem/mem_msg.hh"

namespace cawa
{

class TraceBuffer;

class DramModel
{
  public:
    /**
     * @param latency access latency from service start to response
     * @param service_interval cycles between request service starts
     */
    DramModel(Cycle latency, int service_interval);

    void push(const MemMsg &msg, Cycle now);

    /** Advance the service pipeline; call once per cycle. */
    void tick(Cycle now);

    /** Responses (reads only) whose latency has elapsed. */
    std::vector<MemMsg> popResponses(Cycle now);

    bool idle() const { return requests_.empty() && responses_.empty(); }

    /**
     * Earliest cycle >= @p now at which a queued request can start
     * service or a response becomes deliverable; kNoCycle when idle.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Route read/write transaction trace events into @p sink (nullptr
     * disables). Pure observer: never alters DRAM behavior.
     */
    void setTraceSink(TraceBuffer *sink) { traceSink_ = sink; }

    /** Checkpoint queues, pipeline timing and traffic counters. */
    void save(OutArchive &ar) const
    {
        ar.putU64(nextFree_);
        ar.putU32(static_cast<std::uint32_t>(requests_.size()));
        for (std::size_t i = 0; i < requests_.size(); ++i)
            saveMemMsg(ar, requests_[i]);
        ar.putU32(static_cast<std::uint32_t>(responses_.size()));
        for (std::size_t i = 0; i < responses_.size(); ++i) {
            ar.putU64(responses_[i].ready);
            saveMemMsg(ar, responses_[i].msg);
        }
        ar.putU64(reads);
        ar.putU64(writes);
    }

    void load(InArchive &ar)
    {
        nextFree_ = ar.getU64();
        requests_.clear();
        const std::uint32_t num_requests = ar.getU32();
        for (std::uint32_t i = 0; i < num_requests; ++i)
            requests_.push_back(loadMemMsg(ar));
        responses_.clear();
        const std::uint32_t num_responses = ar.getU32();
        for (std::uint32_t i = 0; i < num_responses; ++i) {
            InFlight r;
            r.ready = ar.getU64();
            r.msg = loadMemMsg(ar);
            responses_.push_back(r);
        }
        reads = ar.getU64();
        writes = ar.getU64();
    }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

  private:
    struct InFlight
    {
        Cycle ready;
        MemMsg msg;
    };

    Cycle latency_;
    int serviceInterval_;
    Cycle nextFree_ = 0;
    RingQueue<MemMsg> requests_;
    RingQueue<InFlight> responses_;
    TraceBuffer *traceSink_ = nullptr;
};

} // namespace cawa

#endif // CAWA_MEM_DRAM_HH
