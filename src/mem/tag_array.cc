#include "mem/tag_array.hh"

#include <bit>

#include "common/sim_assert.hh"
#include "common/sim_error.hh"

namespace cawa
{

TagArray::TagArray(int sets, int ways, int line_bytes)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      setShift_(std::countr_zero(static_cast<unsigned>(line_bytes))),
      lines_(static_cast<std::size_t>(sets) * ways),
      setSeq_(sets, 0)
{
    sim_assert(sets > 0 && std::has_single_bit(
        static_cast<unsigned>(sets)));
    sim_assert(ways > 0);
    sim_assert(line_bytes > 0 && std::has_single_bit(
        static_cast<unsigned>(line_bytes)));
}

std::uint32_t
TagArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> setShift_) & (sets_ - 1));
}

Addr
TagArray::tagOf(Addr addr) const
{
    return addr >> setShift_;
}

int
TagArray::probe(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (int w = 0; w < ways_; ++w) {
        const CacheLine &l = line(set, w);
        if (l.valid && l.tag == tag)
            return w;
    }
    return -1;
}

CacheLine &
TagArray::line(std::uint32_t set, int way)
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    sim_assert(way >= 0 && way < ways_);
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

const CacheLine &
TagArray::line(std::uint32_t set, int way) const
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    sim_assert(way >= 0 && way < ways_);
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

std::uint64_t
TagArray::bumpSetSeq(std::uint32_t set)
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    return ++setSeq_[set];
}

std::uint64_t
TagArray::setSeq(std::uint32_t set) const
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    return setSeq_[set];
}

int
TagArray::validCount(std::uint32_t set) const
{
    int n = 0;
    for (int w = 0; w < ways_; ++w)
        if (line(set, w).valid)
            n++;
    return n;
}

void
TagArray::save(OutArchive &ar) const
{
    ar.putU32(static_cast<std::uint32_t>(sets_));
    ar.putU32(static_cast<std::uint32_t>(ways_));
    ar.putU32(static_cast<std::uint32_t>(lineBytes_));
    for (const CacheLine &l : lines_) {
        ar.putBool(l.valid);
        ar.putU64(l.tag);
        ar.putU8(l.rrpv);
        ar.putU64(l.lruStamp);
        ar.putU16(l.signature);
        ar.putBool(l.cReuse);
        ar.putBool(l.ncReuse);
        ar.putBool(l.inCriticalPartition);
        ar.putU32(l.fillPc);
        ar.putBool(l.fillByCritical);
        ar.putU64(l.lastTouchSeq);
        ar.putU32(l.reuseCount);
    }
    for (std::uint64_t seq : setSeq_)
        ar.putU64(seq);
}

void
TagArray::load(InArchive &ar)
{
    const auto sets = static_cast<int>(ar.getU32());
    const auto ways = static_cast<int>(ar.getU32());
    const auto line_bytes = static_cast<int>(ar.getU32());
    if (sets != sets_ || ways != ways_ || line_bytes != lineBytes_)
        throw SimError(SimErrorKind::Checkpoint,
                       "section '" + ar.section() +
                           "': cache geometry mismatch (file " +
                           std::to_string(sets) + "x" +
                           std::to_string(ways) + "x" +
                           std::to_string(line_bytes) + ", config " +
                           std::to_string(sets_) + "x" +
                           std::to_string(ways_) + "x" +
                           std::to_string(lineBytes_) + ")");
    for (CacheLine &l : lines_) {
        l.valid = ar.getBool();
        l.tag = ar.getU64();
        l.rrpv = ar.getU8();
        l.lruStamp = ar.getU64();
        l.signature = ar.getU16();
        l.cReuse = ar.getBool();
        l.ncReuse = ar.getBool();
        l.inCriticalPartition = ar.getBool();
        l.fillPc = ar.getU32();
        l.fillByCritical = ar.getBool();
        l.lastTouchSeq = ar.getU64();
        l.reuseCount = ar.getU32();
    }
    for (std::uint64_t &seq : setSeq_)
        seq = ar.getU64();
}

} // namespace cawa
