#include "mem/tag_array.hh"

#include <bit>

#include "common/sim_assert.hh"

namespace cawa
{

TagArray::TagArray(int sets, int ways, int line_bytes)
    : sets_(sets), ways_(ways), lineBytes_(line_bytes),
      setShift_(std::countr_zero(static_cast<unsigned>(line_bytes))),
      lines_(static_cast<std::size_t>(sets) * ways),
      setSeq_(sets, 0)
{
    sim_assert(sets > 0 && std::has_single_bit(
        static_cast<unsigned>(sets)));
    sim_assert(ways > 0);
    sim_assert(line_bytes > 0 && std::has_single_bit(
        static_cast<unsigned>(line_bytes)));
}

std::uint32_t
TagArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> setShift_) & (sets_ - 1));
}

Addr
TagArray::tagOf(Addr addr) const
{
    return addr >> setShift_;
}

int
TagArray::probe(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (int w = 0; w < ways_; ++w) {
        const CacheLine &l = line(set, w);
        if (l.valid && l.tag == tag)
            return w;
    }
    return -1;
}

CacheLine &
TagArray::line(std::uint32_t set, int way)
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    sim_assert(way >= 0 && way < ways_);
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

const CacheLine &
TagArray::line(std::uint32_t set, int way) const
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    sim_assert(way >= 0 && way < ways_);
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

std::uint64_t
TagArray::bumpSetSeq(std::uint32_t set)
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    return ++setSeq_[set];
}

std::uint64_t
TagArray::setSeq(std::uint32_t set) const
{
    sim_assert(set < static_cast<std::uint32_t>(sets_));
    return setSeq_[set];
}

int
TagArray::validCount(std::uint32_t set) const
{
    int n = 0;
    for (int w = 0; w < ways_; ++w)
        if (line(set, w).valid)
            n++;
    return n;
}

} // namespace cawa
