#include "mem/interconnect.hh"

#include <algorithm>

#include "common/sim_assert.hh"
#include "sim/trace.hh"

namespace cawa
{

Interconnect::Interconnect(Cycle latency, int width)
    : latency_(latency), width_(width)
{
    sim_assert(width > 0);
}

void
Interconnect::pushToL2(const MemMsg &msg, Cycle now)
{
    toL2_.push_back({now + latency_, msg});
    messagesToL2++;
    CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::IcntToL2,
                     msg.smId, -1,
                     static_cast<std::int64_t>(msg.lineAddr),
                     msg.isStore ? 1 : 0);
}

void
Interconnect::pushToSm(const MemMsg &msg, Cycle now)
{
    toSm_.push_back({now + latency_, msg});
    messagesToSm++;
    CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::IcntToSm,
                     msg.smId, -1,
                     static_cast<std::int64_t>(msg.lineAddr), 0);
}

std::vector<MemMsg>
Interconnect::pop(RingQueue<InFlight> &queue, Cycle now)
{
    std::vector<MemMsg> out;
    while (!queue.empty() && queue.front().ready <= now &&
           static_cast<int>(out.size()) < width_) {
        out.push_back(queue.front().msg);
        queue.pop_front();
    }
    return out;
}

std::vector<MemMsg>
Interconnect::popToL2(Cycle now)
{
    return pop(toL2_, now);
}

std::vector<MemMsg>
Interconnect::popToSm(Cycle now)
{
    return pop(toSm_, now);
}

Cycle
Interconnect::nextEventCycle(Cycle now) const
{
    // Fixed latency + FIFO order: each deque's front is its earliest
    // ready message.
    Cycle next = kNoCycle;
    if (!toL2_.empty())
        next = std::min(next, std::max(now, toL2_.front().ready));
    if (!toSm_.empty())
        next = std::min(next, std::max(now, toSm_.front().ready));
    return next;
}

} // namespace cawa
