#include "mem/cacp_policy.hh"

#include <algorithm>

#include "common/sim_assert.hh"

namespace cawa
{

CacpPolicy::CacpPolicy(const CacpConfig &cfg)
    : cfg_(cfg),
      ccbp_(cfg.tableEntries, cfg.ccbpThreshold, cfg.ccbpInitial),
      ship_(cfg.tableEntries),
      criticalWays_(cfg.criticalWays)
{
    sim_assert(cfg.criticalWays >= 0);
    sim_assert(cfg.minWays >= 0);
}

void
CacpPolicy::adaptPartition(int total_ways)
{
    // Grow the partition whose per-way hit density is higher. Epoch
    // length is measured in fills so the policy needs no clock.
    const int lo = std::min(cfg_.minWays, total_ways / 2);
    const int hi = total_ways - lo;
    const double crit_density = criticalWays_ > 0
        ? static_cast<double>(critHits_) / criticalWays_ : 0.0;
    const double nc_ways = total_ways - criticalWays_;
    const double nc_density = nc_ways > 0
        ? static_cast<double>(nonCritHits_) / nc_ways : 0.0;
    if (crit_density > nc_density && criticalWays_ < hi)
        criticalWays_++;
    else if (nc_density > crit_density && criticalWays_ > lo)
        criticalWays_--;
    critHits_ = 0;
    nonCritHits_ = 0;
    epochFills_ = 0;
}

int
CacpPolicy::selectVictim(TagArray &tags, std::uint32_t set,
                         const AccessInfo &info)
{
    sim_assert(criticalWays_ <= tags.ways());
    const CacheSignature sig =
        makeSignature(info.pc, info.addr, cfg_.regionShift);
    const bool critical = ccbp_.predictCritical(sig);
    // Degenerate partitions (0 or all ways critical) fall back to a
    // whole-set scan so the policy stays usable during sweeps.
    int begin = critical ? 0 : criticalWays_;
    int end = critical ? criticalWays_ : tags.ways();
    if (begin >= end) {
        begin = 0;
        end = tags.ways();
    }
    return SrripPolicy::rripVictim(tags, set, begin, end);
}

void
CacpPolicy::onFill(TagArray &tags, std::uint32_t set, int way,
                   const AccessInfo &info)
{
    auto &l = tags.line(set, way);
    l.signature = makeSignature(info.pc, info.addr, cfg_.regionShift);
    l.inCriticalPartition = criticalWays_ > 0 && inCriticalWays(way);
    l.cReuse = false;
    l.ncReuse = false;
    // The modified SHiP guides the insertion position (RRPV 2 vs 3),
    // with the deterministic recovery probe (see replacement.hh).
    l.rrpv = shipInsertionWithProbe(ship_, l.signature, fills_);
    if (cfg_.dynamicPartition &&
        ++epochFills_ >= cfg_.adaptEpochFills)
        adaptPartition(tags.ways());
}

void
CacpPolicy::onHit(TagArray &tags, std::uint32_t set, int way,
                  const AccessInfo &info)
{
    auto &l = tags.line(set, way);
    // Promotion position: most-recent re-reference prediction.
    l.rrpv = 0;
    if (cfg_.dynamicPartition) {
        if (way < criticalWays_)
            critHits_++;
        else
            nonCritHits_++;
    }
    if (info.criticalWarp) {
        // Correct (or newly learned) critical reuse: train CCBP up.
        l.cReuse = true;
        ccbp_.increment(l.signature);
        ship_.increment(l.signature);
    } else {
        l.ncReuse = true;
        ship_.increment(l.signature);
    }
}

void
CacpPolicy::onEvict(TagArray &tags, std::uint32_t set, int way)
{
    const auto &l = tags.line(set, way);
    if (!l.cReuse && l.ncReuse && l.inCriticalPartition) {
        // The line lived in the critical partition but was only ever
        // reused by non-critical warps: mispredicted as critical.
        ccbp_.decrement(l.signature);
    } else if (!l.cReuse && !l.ncReuse) {
        // No reuse from this signature at all.
        ship_.decrement(l.signature);
    }
}

} // namespace cawa
