/**
 * @file
 * Set-associative tag array shared by all cache models. Data values
 * are not stored (functional data lives in MemoryImage); lines carry
 * the replacement and CACP training state.
 */

#ifndef CAWA_MEM_TAG_ARRAY_HH
#define CAWA_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "cawa/ccbp.hh"
#include "common/types.hh"

namespace cawa
{

struct CacheLine
{
    bool valid = false;
    Addr tag = 0;

    // Replacement state.
    std::uint8_t rrpv = 3;          ///< RRIP re-reference value
    std::uint64_t lruStamp = 0;     ///< LRU recency stamp

    // CACP / SHiP training state (Algorithm 4).
    CacheSignature signature = 0;
    bool cReuse = false;            ///< hit by a critical warp
    bool ncReuse = false;           ///< hit by a non-critical warp
    bool inCriticalPartition = false;

    // Statistics bookkeeping.
    std::uint32_t fillPc = 0;
    bool fillByCritical = false;
    std::uint64_t lastTouchSeq = 0; ///< set access seq of last touch
    std::uint32_t reuseCount = 0;
};

class TagArray
{
  public:
    TagArray(int sets, int ways, int line_bytes);

    int sets() const { return sets_; }
    int ways() const { return ways_; }
    int lineBytes() const { return lineBytes_; }
    int sizeBytes() const { return sets_ * ways_ * lineBytes_; }

    std::uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /** Find the way holding @p addr, or -1. */
    int probe(Addr addr) const;

    CacheLine &line(std::uint32_t set, int way);
    const CacheLine &line(std::uint32_t set, int way) const;

    /** Per-set access sequence counter (for reuse distance). */
    std::uint64_t bumpSetSeq(std::uint32_t set);
    std::uint64_t setSeq(std::uint32_t set) const;

    /** Count valid lines in a set (tests/invariants). */
    int validCount(std::uint32_t set) const;

    /**
     * Checkpoint every line plus the per-set sequence counters.
     * Geometry (sets/ways/lineBytes) is config-derived and verified
     * on load rather than restored.
     */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);

  private:
    int sets_;
    int ways_;
    int lineBytes_;
    int setShift_;
    std::vector<CacheLine> lines_;
    std::vector<std::uint64_t> setSeq_;
};

} // namespace cawa

#endif // CAWA_MEM_TAG_ARRAY_HH
