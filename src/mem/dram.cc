#include "mem/dram.hh"

#include <algorithm>

#include "common/sim_assert.hh"
#include "sim/trace.hh"

namespace cawa
{

DramModel::DramModel(Cycle latency, int service_interval)
    : latency_(latency), serviceInterval_(service_interval)
{
    sim_assert(service_interval >= 1);
}

void
DramModel::push(const MemMsg &msg, Cycle now)
{
    requests_.push_back(msg);
    if (msg.isStore)
        writes++;
    else
        reads++;
    CAWA_TRACE_EVENT(traceSink_, now,
                     msg.isStore ? TraceEventKind::DramWrite
                                 : TraceEventKind::DramRead,
                     msg.smId, -1,
                     static_cast<std::int64_t>(msg.lineAddr), 0);
}

void
DramModel::tick(Cycle now)
{
    // Start at most one request per service interval. Writes consume
    // bandwidth but produce no response.
    while (!requests_.empty() && nextFree_ <= now) {
        const MemMsg msg = requests_.front();
        requests_.pop_front();
        nextFree_ = now + serviceInterval_;
        if (!msg.isStore)
            responses_.push_back({now + latency_, msg});
    }
}

Cycle
DramModel::nextEventCycle(Cycle now) const
{
    Cycle next = kNoCycle;
    if (!requests_.empty())
        next = std::max(now, nextFree_);
    // Responses enqueue in service order with a fixed latency, so the
    // front is the earliest.
    if (!responses_.empty())
        next = std::min(next, std::max(now, responses_.front().ready));
    return next;
}

std::vector<MemMsg>
DramModel::popResponses(Cycle now)
{
    std::vector<MemMsg> out;
    while (!responses_.empty() && responses_.front().ready <= now) {
        out.push_back(responses_.front().msg);
        responses_.pop_front();
    }
    return out;
}

} // namespace cawa
