/**
 * @file
 * Criticality-Aware Cache Prioritization (CACP) — the paper's L1D
 * management scheme (Section 3.3, Algorithm 4).
 *
 * The cache's ways are statically partitioned into a critical and a
 * non-critical region. On a fill, the CCBP predicts from the access
 * signature whether the incoming line will be reused by a critical
 * warp and steers it to the matching partition; the modified SHiP
 * predictor chooses the RRIP insertion position within the partition.
 * Hits train CCBP/SHiP using the requesting warp's CPL classification;
 * evictions roll back mispredictions.
 */

#ifndef CAWA_MEM_CACP_POLICY_HH
#define CAWA_MEM_CACP_POLICY_HH

#include "cawa/ccbp.hh"
#include "cawa/ship.hh"
#include "mem/replacement.hh"

namespace cawa
{

struct CacpConfig
{
    int criticalWays = 8;       ///< ways reserved for critical lines
    int tableEntries = 256;     ///< CCBP/SHiP table size
    int ccbpThreshold = 2;      ///< counter value predicting critical
    int ccbpInitial = 1;
    int regionShift = 9;        ///< address-region granularity (log2)

    /**
     * Dynamic partition tuning (the UCP-style extension Section 3.3
     * alludes to): every adaptEpochFills fills, grow the partition
     * with the higher per-way hit density by one way (within
     * [minWays, ways - minWays]). Off by default, matching the
     * paper's static 8/16 evaluation.
     */
    bool dynamicPartition = false;
    std::uint64_t adaptEpochFills = 4096;
    int minWays = 2;
};

class CacpPolicy : public ReplacementPolicy
{
  public:
    explicit CacpPolicy(const CacpConfig &cfg);

    int selectVictim(TagArray &tags, std::uint32_t set,
                     const AccessInfo &info) override;
    void onFill(TagArray &tags, std::uint32_t set, int way,
                const AccessInfo &info) override;
    void onHit(TagArray &tags, std::uint32_t set, int way,
               const AccessInfo &info) override;
    void onEvict(TagArray &tags, std::uint32_t set, int way) override;
    std::string name() const override { return "cacp"; }

    const CcbpTable &ccbp() const { return ccbp_; }
    const ShipTable &ship() const { return ship_; }
    const CacpConfig &config() const { return cfg_; }

    /** Current critical-partition size (moves when dynamic). */
    int criticalWays() const { return criticalWays_; }

    void saveState(OutArchive &ar) const override
    {
        ccbp_.save(ar);
        ship_.save(ar);
        ar.putU64(fills_);
        ar.putU32(static_cast<std::uint32_t>(criticalWays_));
        ar.putU64(epochFills_);
        ar.putU64(critHits_);
        ar.putU64(nonCritHits_);
    }

    void loadState(InArchive &ar) override
    {
        ccbp_.load(ar);
        ship_.load(ar);
        fills_ = ar.getU64();
        criticalWays_ = static_cast<int>(ar.getU32());
        epochFills_ = ar.getU64();
        critHits_ = ar.getU64();
        nonCritHits_ = ar.getU64();
    }

  private:
    /** Whether way index @p way belongs to the critical partition. */
    bool inCriticalWays(int way) const { return way < criticalWays_; }

    void adaptPartition(int total_ways);

    CacpConfig cfg_;
    CcbpTable ccbp_;
    ShipTable ship_;
    std::uint64_t fills_ = 0;
    int criticalWays_;
    // Per-epoch hit counters for dynamic tuning.
    std::uint64_t epochFills_ = 0;
    std::uint64_t critHits_ = 0;
    std::uint64_t nonCritHits_ = 0;
};

} // namespace cawa

#endif // CAWA_MEM_CACP_POLICY_HH
