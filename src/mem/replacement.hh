/**
 * @file
 * Cache replacement / insertion policies: the policy interface plus
 * LRU, SRRIP and SHiP implementations. The CACP policy (the paper's
 * contribution) lives in cacp_policy.hh and implements the same
 * interface, keeping the timing caches policy-agnostic.
 */

#ifndef CAWA_MEM_REPLACEMENT_HH
#define CAWA_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cawa/ship.hh"
#include "common/serialize.hh"
#include "mem/tag_array.hh"

namespace cawa
{

/** Per-access context handed to the policy hooks. */
struct AccessInfo
{
    Addr addr = 0;
    std::uint32_t pc = 0;
    WarpSlot warp = kNoWarp;
    bool criticalWarp = false;  ///< CPL classification at access time
    bool isStore = false;
};

inline void
saveAccessInfo(OutArchive &ar, const AccessInfo &info)
{
    ar.putU64(info.addr);
    ar.putU32(info.pc);
    ar.putU32(static_cast<std::uint32_t>(info.warp));
    ar.putBool(info.criticalWarp);
    ar.putBool(info.isStore);
}

inline AccessInfo
loadAccessInfo(InArchive &ar)
{
    AccessInfo info;
    info.addr = ar.getU64();
    info.pc = ar.getU32();
    info.warp = static_cast<WarpSlot>(ar.getU32());
    info.criticalWarp = ar.getBool();
    info.isStore = ar.getBool();
    return info;
}

/**
 * Victim selection and replacement-state maintenance for one cache.
 * Hooks are invoked by the cache model; the policy never sets line
 * validity or tags — only replacement/training state.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /**
     * Choose the way to fill for a miss in @p set. Invalid ways must
     * be preferred. Always returns a valid way index.
     */
    virtual int selectVictim(TagArray &tags, std::uint32_t set,
                             const AccessInfo &info) = 0;

    /** A new line was installed in (set, way). */
    virtual void onFill(TagArray &tags, std::uint32_t set, int way,
                        const AccessInfo &info) = 0;

    /** The line in (set, way) received a demand hit. */
    virtual void onHit(TagArray &tags, std::uint32_t set, int way,
                       const AccessInfo &info) = 0;

    /** The valid line in (set, way) is about to be evicted. */
    virtual void onEvict(TagArray &tags, std::uint32_t set, int way) = 0;

    virtual std::string name() const = 0;

    /**
     * Checkpoint the policy's own replacement/training state. Line
     * metadata (rrpv, lruStamp, signature, ...) lives in the
     * TagArray and is serialized there; these hooks cover only
     * policy-private counters. Stateless policies keep the no-op
     * defaults.
     */
    virtual void saveState(OutArchive &ar) const { (void)ar; }
    virtual void loadState(InArchive &ar) { (void)ar; }
};

/** Classic least-recently-used. */
class LruPolicy : public ReplacementPolicy
{
  public:
    int selectVictim(TagArray &tags, std::uint32_t set,
                     const AccessInfo &info) override;
    void onFill(TagArray &tags, std::uint32_t set, int way,
                const AccessInfo &info) override;
    void onHit(TagArray &tags, std::uint32_t set, int way,
               const AccessInfo &info) override;
    void onEvict(TagArray &tags, std::uint32_t set, int way) override;
    std::string name() const override { return "lru"; }

    void saveState(OutArchive &ar) const override
    {
        ar.putU64(stamp_);
    }
    void loadState(InArchive &ar) override { stamp_ = ar.getU64(); }

  private:
    std::uint64_t stamp_ = 0;
};

/**
 * Static RRIP (Jaleel et al., ISCA'10): 2-bit RRPV, insert at 2,
 * promote to 0 on hit, evict the first RRPV==3 line (aging all lines
 * when none found).
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    int selectVictim(TagArray &tags, std::uint32_t set,
                     const AccessInfo &info) override;
    void onFill(TagArray &tags, std::uint32_t set, int way,
                const AccessInfo &info) override;
    void onHit(TagArray &tags, std::uint32_t set, int way,
               const AccessInfo &info) override;
    void onEvict(TagArray &tags, std::uint32_t set, int way) override;
    std::string name() const override { return "srrip"; }

    /**
     * Shared RRIP victim scan over ways [begin, end): prefer invalid,
     * else age until an RRPV==3 line appears.
     */
    static int rripVictim(TagArray &tags, std::uint32_t set, int begin,
                          int end);
};

/** SHiP (Wu et al., MICRO'11): SRRIP + signature-trained insertion. */
class ShipPolicy : public ReplacementPolicy
{
  public:
    ShipPolicy(int table_entries, int region_shift);

    int selectVictim(TagArray &tags, std::uint32_t set,
                     const AccessInfo &info) override;
    void onFill(TagArray &tags, std::uint32_t set, int way,
                const AccessInfo &info) override;
    void onHit(TagArray &tags, std::uint32_t set, int way,
               const AccessInfo &info) override;
    void onEvict(TagArray &tags, std::uint32_t set, int way) override;
    std::string name() const override { return "ship"; }

    const ShipTable &table() const { return ship_; }

    void saveState(OutArchive &ar) const override
    {
        ship_.save(ar);
        ar.putU64(fills_);
    }
    void loadState(InArchive &ar) override
    {
        ship_.load(ar);
        fills_ = ar.getU64();
    }

  private:
    ShipTable ship_;
    int regionShift_;
    std::uint64_t fills_ = 0;
};

/**
 * SHiP insertion with a deterministic probe: signatures whose counter
 * has decayed to zero insert at distant RRPV, except every 16th such
 * fill which inserts at long RRPV. Without the probe a thrashing
 * phase drives counters to zero permanently (distant insertion means
 * the line is evicted before its first reuse, so nothing ever
 * increments the counter again); the probe lets genuinely-reused
 * signatures recover. Shared by ShipPolicy and CacpPolicy.
 */
std::uint8_t shipInsertionWithProbe(const ShipTable &ship,
                                    CacheSignature sig,
                                    std::uint64_t &fill_counter);

} // namespace cawa

#endif // CAWA_MEM_REPLACEMENT_HH
