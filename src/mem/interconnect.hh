/**
 * @file
 * SM <-> L2 interconnection network: a fixed-latency crossbar with a
 * bounded per-cycle throughput in each direction. Contention for the
 * width is one of the paper's sources of memory-subsystem delay.
 */

#ifndef CAWA_MEM_INTERCONNECT_HH
#define CAWA_MEM_INTERCONNECT_HH

#include <vector>

#include "common/arena.hh"
#include "mem/mem_msg.hh"

namespace cawa
{

class TraceBuffer;

class Interconnect
{
  public:
    /**
     * @param latency one-way traversal latency in cycles
     * @param width messages delivered per cycle per direction
     */
    Interconnect(Cycle latency, int width);

    void pushToL2(const MemMsg &msg, Cycle now);
    void pushToSm(const MemMsg &msg, Cycle now);

    /** Deliver up to width messages whose latency elapsed. */
    std::vector<MemMsg> popToL2(Cycle now);
    std::vector<MemMsg> popToSm(Cycle now);

    bool idle() const { return toL2_.empty() && toSm_.empty(); }

    /**
     * Earliest cycle >= @p now at which a queued message becomes (or
     * already is) deliverable, or kNoCycle when both directions are
     * empty. Used by the fast-forward engine.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Route per-message trace events into @p sink (nullptr disables).
     * Pure observer: never alters network behavior.
     */
    void setTraceSink(TraceBuffer *sink) { traceSink_ = sink; }

    /** Checkpoint both direction queues and traffic counters. */
    void save(OutArchive &ar) const
    {
        saveQueue(ar, toL2_);
        saveQueue(ar, toSm_);
        ar.putU64(messagesToL2);
        ar.putU64(messagesToSm);
    }

    void load(InArchive &ar)
    {
        loadQueue(ar, toL2_);
        loadQueue(ar, toSm_);
        messagesToL2 = ar.getU64();
        messagesToSm = ar.getU64();
    }

    std::uint64_t messagesToL2 = 0;
    std::uint64_t messagesToSm = 0;

  private:
    struct InFlight
    {
        Cycle ready;
        MemMsg msg;
    };

    std::vector<MemMsg> pop(RingQueue<InFlight> &queue, Cycle now);

    static void saveQueue(OutArchive &ar,
                          const RingQueue<InFlight> &queue)
    {
        ar.putU32(static_cast<std::uint32_t>(queue.size()));
        for (std::size_t i = 0; i < queue.size(); ++i) {
            ar.putU64(queue[i].ready);
            saveMemMsg(ar, queue[i].msg);
        }
    }

    static void loadQueue(InArchive &ar, RingQueue<InFlight> &queue)
    {
        queue.clear();
        const std::uint32_t n = ar.getU32();
        for (std::uint32_t i = 0; i < n; ++i) {
            InFlight f;
            f.ready = ar.getU64();
            f.msg = loadMemMsg(ar);
            queue.push_back(f);
        }
    }

    Cycle latency_;
    int width_;
    RingQueue<InFlight> toL2_;
    RingQueue<InFlight> toSm_;
    TraceBuffer *traceSink_ = nullptr;
};

} // namespace cawa

#endif // CAWA_MEM_INTERCONNECT_HH
