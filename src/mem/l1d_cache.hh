/**
 * @file
 * Per-SM L1 data cache: set-associative tag array with pluggable
 * replacement policy (LRU / SRRIP / SHiP / CACP), MSHR file with
 * same-line merging, hit-latency pipeline and a miss queue toward the
 * interconnect. Write-through, no-write-allocate (Fermi-style global
 * stores).
 */

#ifndef CAWA_MEM_L1D_CACHE_HH
#define CAWA_MEM_L1D_CACHE_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "mem/cache_stats.hh"
#include "mem/mem_msg.hh"
#include "mem/replacement.hh"
#include "mem/tag_array.hh"

namespace cawa
{

class TraceBuffer;

struct L1DConfig
{
    int sets = 8;
    int ways = 16;
    int lineBytes = 128;
    Cycle hitLatency = 28;
    int numMshrs = 32;
    int mshrTargets = 8;    ///< max merged requests per MSHR entry
};

class L1DCache
{
  public:
    enum class Result { Hit, Miss, RejectMshrFull };

    /** A completed load transaction, identified by the SM's token. */
    struct Completion
    {
        std::uint64_t token;
        bool wasMiss;
    };

    L1DCache(const L1DConfig &cfg, int sm_id,
             std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Probe for one line transaction. Loads carry a token that is
     * reported back through drainCompleted() when data is available;
     * stores complete immediately (write-through) and use no token.
     * RejectMshrFull means the SM must retry the transaction later.
     */
    Result access(const AccessInfo &info, Cycle now, std::uint64_t token);

    /** Collect load tokens whose data became available. */
    void drainCompleted(Cycle now, std::vector<Completion> &out);

    /** Miss/write-through traffic to push into the interconnect. */
    bool hasOutgoing() const { return !outgoing_.empty(); }
    MemMsg popOutgoing();

    /** A fill response for @p line_addr arrived from the L2 side. */
    void fill(Addr line_addr, Cycle now);

    /** True when no MSHR or queued traffic remains. */
    bool idle() const;

    /**
     * Earliest cycle >= @p now at which a queued completion matures
     * or outgoing traffic needs draining; kNoCycle when neither is
     * pending. Outstanding MSHRs wait on an external fill() and are
     * therefore not an event source of their own.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Route fill/evict/bypass trace events into @p sink (nullptr
     * disables). Pure observer: never alters cache behavior.
     */
    void setTraceSink(TraceBuffer *sink) { traceSink_ = sink; }

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }
    const TagArray &tags() const { return tags_; }
    ReplacementPolicy &policy() { return *policy_; }

    int freeMshrs() const
    {
        return numMshrs_ - static_cast<int>(mshrs_.size());
    }

    /**
     * Checkpoint tags, policy state, MSHRs, queued completions,
     * outgoing traffic and statistics. MSHRs are written sorted by
     * line address: their map iteration order is incidental and
     * never observable by the sim, so sorting keeps the checkpoint
     * bytes deterministic.
     */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);

    // --- Watchdog / invariant-audit introspection (read-only) ---

    /** MSHR entries still waiting on a fill from the L2 side. */
    std::size_t pendingMshrs() const { return mshrs_.size(); }

    /** Completions queued but not yet drained by the SM. */
    std::size_t pendingCompletions() const { return completed_.size(); }

    /** Miss/write-through messages not yet pushed into the icnt. */
    std::size_t outgoingQueued() const { return outgoing_.size(); }

    /**
     * Append every load token this cache still references (queued
     * completions plus MSHR merge lists). The auditor cross-checks
     * the set against the SM's live token pool: a live SM token that
     * no L1 structure references can never complete (a leak).
     */
    void collectReferencedTokens(std::vector<std::uint64_t> &out) const
    {
        for (std::size_t i = 0; i < completed_.size(); ++i)
            out.push_back(completed_[i].token);
        mshrs_.forEach([&](Addr, const Mshr &mshr) {
            for (std::uint64_t tok : mshr.tokens)
                out.push_back(tok);
        });
    }

  private:
    struct Mshr
    {
        AccessInfo primary;     ///< the access that allocated the entry
        std::vector<std::uint64_t> tokens;
    };

    struct Pending
    {
        Cycle ready;
        std::uint64_t token;
        bool wasMiss;
    };

    void recordAccessStats(const AccessInfo &info, bool hit);

    /**
     * Per-PC reuse statistics live in an ordered map (serialized and
     * reported in key order); consecutive accesses overwhelmingly hit
     * the same PC, so a one-entry memo skips the tree walk. std::map
     * references are stable, so the cached pointer survives inserts;
     * it is dropped whenever stats_ is reloaded wholesale.
     */
    PcReuseStats &pcStats(std::uint32_t pc)
    {
        if (!lastPcStats_ || lastPc_ != pc) {
            lastPc_ = pc;
            lastPcStats_ = &stats_.perPc[pc];
        }
        return *lastPcStats_;
    }

    void pushCompleted(Cycle ready, std::uint64_t token, bool was_miss)
    {
        completed_.push_back({ready, token, was_miss});
        minCompletedReady_ = std::min(minCompletedReady_, ready);
    }

    L1DConfig cfg_;
    int smId_;
    TagArray tags_;
    std::unique_ptr<ReplacementPolicy> policy_;
    PooledMap<Addr, Mshr> mshrs_;
    RingQueue<Pending> completed_;
    /**
     * Earliest ready cycle over completed_ (kNoCycle when empty):
     * lets the per-tick drainCompleted()/nextEventCycle() calls skip
     * walking the queue while nothing has matured.
     */
    Cycle minCompletedReady_ = kNoCycle;
    RingQueue<MemMsg> outgoing_;
    int numMshrs_;
    CacheStats stats_;
    std::uint32_t lastPc_ = 0;
    PcReuseStats *lastPcStats_ = nullptr;
    TraceBuffer *traceSink_ = nullptr;
};

} // namespace cawa

#endif // CAWA_MEM_L1D_CACHE_HH
