/**
 * @file
 * The message unit that travels between L1, interconnect, L2 and DRAM:
 * one cache-line-sized read or write-through transaction.
 */

#ifndef CAWA_MEM_MEM_MSG_HH
#define CAWA_MEM_MEM_MSG_HH

#include <cstdint>

#include "common/types.hh"

namespace cawa
{

struct MemMsg
{
    Addr lineAddr = 0;
    int smId = 0;
    bool isStore = false;
    std::uint32_t pc = 0;
};

} // namespace cawa

#endif // CAWA_MEM_MEM_MSG_HH
