/**
 * @file
 * The message unit that travels between L1, interconnect, L2 and DRAM:
 * one cache-line-sized read or write-through transaction.
 */

#ifndef CAWA_MEM_MEM_MSG_HH
#define CAWA_MEM_MEM_MSG_HH

#include <cstdint>

#include "common/serialize.hh"
#include "common/types.hh"

namespace cawa
{

struct MemMsg
{
    Addr lineAddr = 0;
    int smId = 0;
    bool isStore = false;
    std::uint32_t pc = 0;
};

inline void
saveMemMsg(OutArchive &ar, const MemMsg &m)
{
    ar.putU64(m.lineAddr);
    ar.putU32(static_cast<std::uint32_t>(m.smId));
    ar.putBool(m.isStore);
    ar.putU32(m.pc);
}

inline MemMsg
loadMemMsg(InArchive &ar)
{
    MemMsg m;
    m.lineAddr = ar.getU64();
    m.smId = static_cast<int>(ar.getU32());
    m.isStore = ar.getBool();
    m.pc = ar.getU32();
    return m;
}

} // namespace cawa

#endif // CAWA_MEM_MEM_MSG_HH
