#include "sched/caws_oracle.hh"

#include <limits>

namespace cawa
{

WarpSlot
CawsOracleScheduler::pick(const std::vector<WarpSlot> &ready,
                          const SchedCtx &ctx)
{
    if (ready.empty())
        return kNoWarp;
    // Branch-free lexicographic min over (-priority, age): highest
    // oracle execution time first, oldest on ties. Same reduction
    // shape as GcawsScheduler::pick, minus the greedy term.
    WarpSlot best = ready[0];
    std::int64_t best_rank = -ctx.priority[ready[0]];
    std::uint64_t best_age = ctx.age[ready[0]];
    for (std::size_t i = 1; i < ready.size(); ++i) {
        const WarpSlot s = ready[i];
        const std::int64_t rank = -ctx.priority[s];
        const std::uint64_t age = ctx.age[s];
        const bool better = rank < best_rank ||
                            (rank == best_rank && age < best_age);
        best = better ? s : best;
        best_rank = better ? rank : best_rank;
        best_age = better ? age : best_age;
    }
    return best;
}

} // namespace cawa
