#include "sched/caws_oracle.hh"

namespace cawa
{

WarpSlot
CawsOracleScheduler::pick(const std::vector<WarpSlot> &ready,
                          const SchedCtx &ctx)
{
    if (ready.empty())
        return kNoWarp;
    WarpSlot best = ready.front();
    for (WarpSlot s : ready) {
        if (ctx.priority[s] > ctx.priority[best] ||
            (ctx.priority[s] == ctx.priority[best] &&
             ctx.age[s] < ctx.age[best])) {
            best = s;
        }
    }
    return best;
}

} // namespace cawa
