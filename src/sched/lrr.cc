#include "sched/lrr.hh"

namespace cawa
{

LrrScheduler::LrrScheduler(int num_slots)
    : numSlots_(num_slots)
{
}

WarpSlot
LrrScheduler::pick(const std::vector<WarpSlot> &ready, const SchedCtx &ctx)
{
    (void)ctx;
    if (ready.empty())
        return kNoWarp;
    // First ready slot strictly after the last issued one (wrapping):
    // ready is sorted ascending.
    for (WarpSlot s : ready)
        if (s > last_)
            return s;
    return ready.front();
}

void
LrrScheduler::notifyIssued(WarpSlot slot)
{
    last_ = slot;
}

} // namespace cawa
