/**
 * @file
 * Warp scheduler policy interface and factory.
 *
 * Each SM instantiates one scheduler object per hardware scheduler
 * (two on Fermi), each managing an interleaved subset of the warp
 * slots. Every cycle the SM computes the set of *ready* warps (no
 * scoreboard/structural hazard, not at a barrier, not finished) for a
 * scheduler and asks it to pick one; the policy is pure selection.
 */

#ifndef CAWA_SCHED_SCHEDULER_HH
#define CAWA_SCHED_SCHEDULER_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace cawa
{

enum class SchedulerKind
{
    Lrr,        ///< loose round-robin (the paper's baseline "RR")
    Gto,        ///< greedy-then-oldest (Rogers et al.)
    TwoLevel,   ///< two-level active/pending sets (Narasiman et al.)
    CawsOracle, ///< CAWS with oracle criticality (Lee & Wu, PACT'14)
    Gcaws,      ///< greedy criticality-aware warp scheduler (this paper)
};

std::string schedulerKindName(SchedulerKind kind);

/** Per-cycle, SM-wide context handed to pick(). Indexed by slot. */
struct SchedCtx
{
    /** Dispatch age; smaller = older warp (GTO tie-break order). */
    std::span<const std::uint64_t> age;

    /**
     * Scheduling priority; CPL criticality for gCAWS, oracle warp
     * execution time for CAWS, ignored by criticality-oblivious
     * policies.
     */
    std::span<const std::int64_t> priority;
};

class WarpScheduler
{
  public:
    virtual ~WarpScheduler() = default;

    /**
     * Select one warp among @p ready (ascending slot ids, all
     * issuable this cycle), or kNoWarp when @p ready is empty.
     */
    virtual WarpSlot pick(const std::vector<WarpSlot> &ready,
                          const SchedCtx &ctx) = 0;

    /** The SM issued an instruction from @p slot. */
    virtual void notifyIssued(WarpSlot slot) { (void)slot; }

    /** @p slot blocked on a long-latency (L1-miss) load. */
    virtual void notifyLongStall(WarpSlot slot) { (void)slot; }

    /** A warp was bound to @p slot. */
    virtual void notifyActivated(WarpSlot slot) { (void)slot; }

    /** The warp in @p slot finished or was unbound. */
    virtual void notifyDeactivated(WarpSlot slot) { (void)slot; }

    virtual std::string name() const = 0;

    /**
     * Checkpoint policy-private selection state (greedy pointers,
     * active sets, ...). Stateless policies keep the no-op defaults.
     */
    virtual void saveState(OutArchive &ar) const { (void)ar; }
    virtual void loadState(InArchive &ar) { (void)ar; }
};

/**
 * Create a scheduler instance.
 *
 * @param kind policy
 * @param num_slots warp slots in the SM (upper bound on slot ids)
 */
std::unique_ptr<WarpScheduler> createScheduler(SchedulerKind kind,
                                               int num_slots);

} // namespace cawa

#endif // CAWA_SCHED_SCHEDULER_HH
