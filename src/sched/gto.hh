/**
 * @file
 * Greedy-then-oldest scheduler (Rogers et al., MICRO'12): keep issuing
 * from the current warp while it stays ready; on a stall switch to the
 * oldest ready warp.
 */

#ifndef CAWA_SCHED_GTO_HH
#define CAWA_SCHED_GTO_HH

#include "sched/scheduler.hh"

namespace cawa
{

class GtoScheduler : public WarpScheduler
{
  public:
    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const SchedCtx &ctx) override;
    void notifyIssued(WarpSlot slot) override;
    void notifyDeactivated(WarpSlot slot) override;
    std::string name() const override { return "gto"; }

    void saveState(OutArchive &ar) const override
    {
        ar.putU32(static_cast<std::uint32_t>(current_));
    }
    void loadState(InArchive &ar) override
    {
        current_ = static_cast<WarpSlot>(ar.getU32());
    }

  private:
    WarpSlot current_ = kNoWarp;
};

} // namespace cawa

#endif // CAWA_SCHED_GTO_HH
