/**
 * @file
 * Loose round-robin scheduler: the baseline "RR" policy of the paper.
 * Picks the first ready warp after the last issued one, wrapping.
 */

#ifndef CAWA_SCHED_LRR_HH
#define CAWA_SCHED_LRR_HH

#include "sched/scheduler.hh"

namespace cawa
{

class LrrScheduler : public WarpScheduler
{
  public:
    explicit LrrScheduler(int num_slots);

    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const SchedCtx &ctx) override;
    void notifyIssued(WarpSlot slot) override;
    std::string name() const override { return "rr"; }

    void saveState(OutArchive &ar) const override
    {
        ar.putU32(static_cast<std::uint32_t>(last_));
    }
    void loadState(InArchive &ar) override
    {
        last_ = static_cast<WarpSlot>(ar.getU32());
    }

  private:
    int numSlots_;
    WarpSlot last_ = kNoWarp;
};

} // namespace cawa

#endif // CAWA_SCHED_LRR_HH
