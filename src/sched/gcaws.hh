/**
 * @file
 * Greedy Criticality-Aware Warp Scheduler (gCAWS, Section 3.2).
 *
 * Selects the ready warp with the highest CPL criticality (ties
 * broken oldest-first, GTO-style) and then greedily keeps issuing
 * from that warp until it has no further issuable instruction. The
 * critical warp thus receives both a higher scheduling priority and a
 * larger time slice.
 */

#ifndef CAWA_SCHED_GCAWS_HH
#define CAWA_SCHED_GCAWS_HH

#include "sched/scheduler.hh"

namespace cawa
{

class GcawsScheduler : public WarpScheduler
{
  public:
    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const SchedCtx &ctx) override;
    void notifyIssued(WarpSlot slot) override;
    void notifyDeactivated(WarpSlot slot) override;
    std::string name() const override { return "gcaws"; }

    void saveState(OutArchive &ar) const override
    {
        ar.putU32(static_cast<std::uint32_t>(current_));
    }
    void loadState(InArchive &ar) override
    {
        current_ = static_cast<WarpSlot>(ar.getU32());
    }

  private:
    WarpSlot current_ = kNoWarp;
};

} // namespace cawa

#endif // CAWA_SCHED_GCAWS_HH
