#include "sched/two_level.hh"

#include <algorithm>

#include "common/sim_assert.hh"

namespace cawa
{

TwoLevelScheduler::TwoLevelScheduler(int num_slots, int active_size)
    : activeSize_(active_size)
{
    (void)num_slots;
    sim_assert(active_size > 0);
}

bool
TwoLevelScheduler::isActive(WarpSlot slot) const
{
    return std::find(active_.begin(), active_.end(), slot) !=
           active_.end();
}

void
TwoLevelScheduler::promoteFromPending()
{
    while (static_cast<int>(active_.size()) < activeSize_ &&
           !pending_.empty()) {
        active_.push_back(pending_.front());
        pending_.pop_front();
    }
}

void
TwoLevelScheduler::removeEverywhere(WarpSlot slot)
{
    active_.erase(std::remove(active_.begin(), active_.end(), slot),
                  active_.end());
    pending_.erase(std::remove(pending_.begin(), pending_.end(), slot),
                   pending_.end());
}

WarpSlot
TwoLevelScheduler::pick(const std::vector<WarpSlot> &ready,
                        const SchedCtx &ctx)
{
    (void)ctx;
    if (ready.empty())
        return kNoWarp;

    // Round-robin among the ready warps of the active set.
    WarpSlot wrap = kNoWarp;
    for (WarpSlot s : ready) {
        if (!isActive(s))
            continue;
        if (s > last_)
            return s;
        if (wrap == kNoWarp)
            wrap = s;
    }
    if (wrap != kNoWarp)
        return wrap;

    // No active warp is ready (e.g. all waiting at a barrier for a
    // pending peer): promote the first ready pending warp, demoting
    // nothing -- the active warps are stalled anyway. This keeps the
    // policy deadlock-free.
    for (WarpSlot s : ready) {
        auto it = std::find(pending_.begin(), pending_.end(), s);
        if (it != pending_.end()) {
            pending_.erase(it);
            if (static_cast<int>(active_.size()) >= activeSize_) {
                // Demote the oldest active (front) to make room.
                pending_.push_back(active_.front());
                active_.erase(active_.begin());
            }
            active_.push_back(s);
            return s;
        }
    }
    return kNoWarp;
}

void
TwoLevelScheduler::notifyIssued(WarpSlot slot)
{
    last_ = slot;
}

void
TwoLevelScheduler::notifyLongStall(WarpSlot slot)
{
    auto it = std::find(active_.begin(), active_.end(), slot);
    if (it == active_.end())
        return;
    active_.erase(it);
    pending_.push_back(slot);
    promoteFromPending();
}

void
TwoLevelScheduler::notifyActivated(WarpSlot slot)
{
    if (static_cast<int>(active_.size()) < activeSize_)
        active_.push_back(slot);
    else
        pending_.push_back(slot);
}

void
TwoLevelScheduler::notifyDeactivated(WarpSlot slot)
{
    removeEverywhere(slot);
    promoteFromPending();
    if (last_ == slot)
        last_ = kNoWarp;
}

} // namespace cawa
