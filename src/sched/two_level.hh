/**
 * @file
 * Two-level warp scheduler (Narasiman et al., MICRO'11): warps are
 * split into a small active set scheduled round-robin and a pending
 * set. A warp that blocks on a long-latency memory operation is
 * demoted to pending and a pending warp is promoted, so the active
 * set's warps tend not to stall together.
 */

#ifndef CAWA_SCHED_TWO_LEVEL_HH
#define CAWA_SCHED_TWO_LEVEL_HH

#include <deque>
#include <vector>

#include "sched/scheduler.hh"

namespace cawa
{

class TwoLevelScheduler : public WarpScheduler
{
  public:
    /**
     * @param num_slots SM warp-slot count
     * @param active_size capacity of the active set
     */
    TwoLevelScheduler(int num_slots, int active_size);

    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const SchedCtx &ctx) override;
    void notifyIssued(WarpSlot slot) override;
    void notifyLongStall(WarpSlot slot) override;
    void notifyActivated(WarpSlot slot) override;
    void notifyDeactivated(WarpSlot slot) override;
    std::string name() const override { return "2lvl"; }

    bool isActive(WarpSlot slot) const;
    int activeCount() const
    {
        return static_cast<int>(active_.size());
    }

    void saveState(OutArchive &ar) const override
    {
        ar.putU32(static_cast<std::uint32_t>(active_.size()));
        for (WarpSlot slot : active_)
            ar.putU32(static_cast<std::uint32_t>(slot));
        ar.putU32(static_cast<std::uint32_t>(pending_.size()));
        for (WarpSlot slot : pending_)
            ar.putU32(static_cast<std::uint32_t>(slot));
        ar.putU32(static_cast<std::uint32_t>(last_));
    }

    void loadState(InArchive &ar) override
    {
        active_.clear();
        const std::uint32_t num_active = ar.getU32();
        for (std::uint32_t i = 0; i < num_active; ++i)
            active_.push_back(static_cast<WarpSlot>(ar.getU32()));
        pending_.clear();
        const std::uint32_t num_pending = ar.getU32();
        for (std::uint32_t i = 0; i < num_pending; ++i)
            pending_.push_back(static_cast<WarpSlot>(ar.getU32()));
        last_ = static_cast<WarpSlot>(ar.getU32());
    }

  private:
    void promoteFromPending();
    void removeEverywhere(WarpSlot slot);

    int activeSize_;
    std::vector<WarpSlot> active_;
    std::deque<WarpSlot> pending_;
    WarpSlot last_ = kNoWarp;
};

} // namespace cawa

#endif // CAWA_SCHED_TWO_LEVEL_HH
