/**
 * @file
 * Two-level warp scheduler (Narasiman et al., MICRO'11): warps are
 * split into a small active set scheduled round-robin and a pending
 * set. A warp that blocks on a long-latency memory operation is
 * demoted to pending and a pending warp is promoted, so the active
 * set's warps tend not to stall together.
 */

#ifndef CAWA_SCHED_TWO_LEVEL_HH
#define CAWA_SCHED_TWO_LEVEL_HH

#include <deque>
#include <vector>

#include "sched/scheduler.hh"

namespace cawa
{

class TwoLevelScheduler : public WarpScheduler
{
  public:
    /**
     * @param num_slots SM warp-slot count
     * @param active_size capacity of the active set
     */
    TwoLevelScheduler(int num_slots, int active_size);

    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const SchedCtx &ctx) override;
    void notifyIssued(WarpSlot slot) override;
    void notifyLongStall(WarpSlot slot) override;
    void notifyActivated(WarpSlot slot) override;
    void notifyDeactivated(WarpSlot slot) override;
    std::string name() const override { return "2lvl"; }

    bool isActive(WarpSlot slot) const;
    int activeCount() const
    {
        return static_cast<int>(active_.size());
    }

  private:
    void promoteFromPending();
    void removeEverywhere(WarpSlot slot);

    int activeSize_;
    std::vector<WarpSlot> active_;
    std::deque<WarpSlot> pending_;
    WarpSlot last_ = kNoWarp;
};

} // namespace cawa

#endif // CAWA_SCHED_TWO_LEVEL_HH
