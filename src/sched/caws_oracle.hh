/**
 * @file
 * CAWS (Lee & Wu, PACT'14) with oracle criticality: always issue the
 * ready warp whose oracle-profiled execution time (the SchedCtx
 * priority) is largest, breaking ties oldest-first. Non-greedy.
 */

#ifndef CAWA_SCHED_CAWS_ORACLE_HH
#define CAWA_SCHED_CAWS_ORACLE_HH

#include "sched/scheduler.hh"

namespace cawa
{

class CawsOracleScheduler : public WarpScheduler
{
  public:
    WarpSlot pick(const std::vector<WarpSlot> &ready,
                  const SchedCtx &ctx) override;
    std::string name() const override { return "caws"; }
};

} // namespace cawa

#endif // CAWA_SCHED_CAWS_ORACLE_HH
