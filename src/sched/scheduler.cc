#include "sched/scheduler.hh"

#include "common/sim_assert.hh"
#include "sched/caws_oracle.hh"
#include "sched/gcaws.hh"
#include "sched/gto.hh"
#include "sched/lrr.hh"
#include "sched/two_level.hh"

namespace cawa
{

std::string
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Lrr: return "rr";
      case SchedulerKind::Gto: return "gto";
      case SchedulerKind::TwoLevel: return "2lvl";
      case SchedulerKind::CawsOracle: return "caws";
      case SchedulerKind::Gcaws: return "gcaws";
    }
    return "?";
}

std::unique_ptr<WarpScheduler>
createScheduler(SchedulerKind kind, int num_slots)
{
    sim_assert(num_slots > 0);
    switch (kind) {
      case SchedulerKind::Lrr:
        return std::make_unique<LrrScheduler>(num_slots);
      case SchedulerKind::Gto:
        return std::make_unique<GtoScheduler>();
      case SchedulerKind::TwoLevel:
        // The canonical fetch-group size is 8 warps per scheduler.
        return std::make_unique<TwoLevelScheduler>(num_slots, 8);
      case SchedulerKind::CawsOracle:
        return std::make_unique<CawsOracleScheduler>();
      case SchedulerKind::Gcaws:
        return std::make_unique<GcawsScheduler>();
    }
    sim_panic("unknown scheduler kind");
}

} // namespace cawa
