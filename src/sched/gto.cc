#include "sched/gto.hh"

namespace cawa
{

WarpSlot
GtoScheduler::pick(const std::vector<WarpSlot> &ready, const SchedCtx &ctx)
{
    if (ready.empty())
        return kNoWarp;
    // Single min-reduction over a composite key instead of a greedy
    // scan followed by an oldest scan: the current warp gets key 0,
    // every other slot age+1. Dispatch ages are unique (a strictly
    // increasing sequence number) and far below 2^64, so key 0 is
    // reserved for the greedy pick and the reduction is exactly
    // "current if ready, else oldest". The data-dependent selects
    // compile to conditional moves; ready-set scans branch-mispredict
    // badly because readiness flips cycle to cycle.
    WarpSlot best = ready[0];
    std::uint64_t best_key =
        ready[0] == current_ ? 0 : ctx.age[ready[0]] + 1;
    for (std::size_t i = 1; i < ready.size(); ++i) {
        const WarpSlot s = ready[i];
        const std::uint64_t key =
            s == current_ ? 0 : ctx.age[s] + 1;
        const bool better = key < best_key;
        best = better ? s : best;
        best_key = better ? key : best_key;
    }
    return best;
}

void
GtoScheduler::notifyIssued(WarpSlot slot)
{
    current_ = slot;
}

void
GtoScheduler::notifyDeactivated(WarpSlot slot)
{
    if (current_ == slot)
        current_ = kNoWarp;
}

} // namespace cawa
