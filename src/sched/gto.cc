#include "sched/gto.hh"

namespace cawa
{

WarpSlot
GtoScheduler::pick(const std::vector<WarpSlot> &ready, const SchedCtx &ctx)
{
    if (ready.empty())
        return kNoWarp;
    // Greedy: stick with the current warp while it remains ready.
    for (WarpSlot s : ready)
        if (s == current_)
            return s;
    // Then-oldest: smallest dispatch age.
    WarpSlot best = ready.front();
    for (WarpSlot s : ready)
        if (ctx.age[s] < ctx.age[best])
            best = s;
    return best;
}

void
GtoScheduler::notifyIssued(WarpSlot slot)
{
    current_ = slot;
}

void
GtoScheduler::notifyDeactivated(WarpSlot slot)
{
    if (current_ == slot)
        current_ = kNoWarp;
}

} // namespace cawa
