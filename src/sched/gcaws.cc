#include "sched/gcaws.hh"

namespace cawa
{

WarpSlot
GcawsScheduler::pick(const std::vector<WarpSlot> &ready,
                     const SchedCtx &ctx)
{
    if (ready.empty())
        return kNoWarp;
    // Greedy: the previously selected warp keeps its time slice while
    // it still has an issuable instruction.
    for (WarpSlot s : ready)
        if (s == current_)
            return s;
    // Otherwise pick by criticality, oldest-first on ties (GTO rule).
    WarpSlot best = ready.front();
    for (WarpSlot s : ready) {
        if (ctx.priority[s] > ctx.priority[best] ||
            (ctx.priority[s] == ctx.priority[best] &&
             ctx.age[s] < ctx.age[best])) {
            best = s;
        }
    }
    return best;
}

void
GcawsScheduler::notifyIssued(WarpSlot slot)
{
    current_ = slot;
}

void
GcawsScheduler::notifyDeactivated(WarpSlot slot)
{
    if (current_ == slot)
        current_ = kNoWarp;
}

} // namespace cawa
