#include "sched/gcaws.hh"

#include <limits>

namespace cawa
{

WarpSlot
GcawsScheduler::pick(const std::vector<WarpSlot> &ready,
                     const SchedCtx &ctx)
{
    if (ready.empty())
        return kNoWarp;
    // One lexicographic min-reduction over (rank, age): the greedy
    // current warp ranks below everything (INT64_MIN; priorities are
    // small counts, so -priority can never reach it), other slots
    // rank by negated criticality so the reduction finds the highest
    // priority, oldest-first on ties (GTO rule). Selects compile to
    // conditional moves -- see GtoScheduler::pick.
    WarpSlot best = ready[0];
    std::int64_t best_rank = ready[0] == current_
        ? std::numeric_limits<std::int64_t>::min()
        : -ctx.priority[ready[0]];
    std::uint64_t best_age = ctx.age[ready[0]];
    for (std::size_t i = 1; i < ready.size(); ++i) {
        const WarpSlot s = ready[i];
        const std::int64_t rank = s == current_
            ? std::numeric_limits<std::int64_t>::min()
            : -ctx.priority[s];
        const std::uint64_t age = ctx.age[s];
        const bool better = rank < best_rank ||
                            (rank == best_rank && age < best_age);
        best = better ? s : best;
        best_rank = better ? rank : best_rank;
        best_age = better ? age : best_age;
    }
    return best;
}

void
GcawsScheduler::notifyIssued(WarpSlot slot)
{
    current_ = slot;
}

void
GcawsScheduler::notifyDeactivated(WarpSlot slot)
{
    if (current_ == slot)
        current_ = kNoWarp;
}

} // namespace cawa
