/**
 * @file
 * Thread-block barrier bookkeeping (bar.sync). Tracks how many of the
 * block's still-running warps have arrived; releases when all have.
 * Warps that exit reduce the expected count (a structured kernel
 * never exits while peers wait, but the state machine stays safe).
 */

#ifndef CAWA_SM_BARRIER_HH
#define CAWA_SM_BARRIER_HH

#include "common/serialize.hh"

namespace cawa
{

class BarrierState
{
  public:
    /** Initialize for a block with @p expected participating warps. */
    void reset(int expected);

    /**
     * A warp arrived at the barrier.
     * @return true if this arrival releases the barrier.
     */
    bool arrive();

    /**
     * A participating warp exited the kernel.
     * @return true if the removal releases waiting warps.
     */
    bool reduceExpected();

    int arrived() const { return arrived_; }
    int expected() const { return expected_; }

    void save(OutArchive &ar) const
    {
        ar.putU32(static_cast<std::uint32_t>(expected_));
        ar.putU32(static_cast<std::uint32_t>(arrived_));
    }

    void load(InArchive &ar)
    {
        expected_ = static_cast<int>(ar.getU32());
        arrived_ = static_cast<int>(ar.getU32());
    }

  private:
    int expected_ = 0;
    int arrived_ = 0;
};

} // namespace cawa

#endif // CAWA_SM_BARRIER_HH
