#include "sm/dispatcher.hh"

#include "common/sim_assert.hh"
#include "sim/trace.hh"

namespace cawa
{

BlockDispatcher::BlockDispatcher(int grid_dim)
    : gridDim_(grid_dim)
{
    sim_assert(grid_dim > 0);
}

int
BlockDispatcher::dispatch(std::vector<std::unique_ptr<SmCore>> &sms,
                          Cycle now)
{
    int placed = 0;
    const std::size_t n = sms.size();
    // Visit SMs round-robin starting after the last one served; each
    // SM receives at most one block per cycle.
    for (std::size_t i = 0; i < n && !allDispatched(); ++i) {
        const std::size_t sm = (lastSm_ + 1 + i) % n;
        if (sms[sm]->canAcceptBlock()) {
            CAWA_TRACE_EVENT(traceSink_, now,
                             TraceEventKind::BlockDispatch,
                             static_cast<int>(sm), -1, next_, 0);
            sms[sm]->acceptBlock(next_++, now);
            lastSm_ = sm;
            placed++;
        }
    }
    return placed;
}

Cycle
BlockDispatcher::nextEventCycle(
    const std::vector<std::unique_ptr<SmCore>> &sms, Cycle now) const
{
    if (allDispatched())
        return kNoCycle;
    for (const auto &sm : sms)
        if (sm->canAcceptBlock())
            return now;
    return kNoCycle;
}

} // namespace cawa
