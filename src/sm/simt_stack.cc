#include "sm/simt_stack.hh"

#include "common/sim_assert.hh"

namespace cawa
{

void
SimtStack::reset(std::uint32_t start_pc, LaneMask active)
{
    sim_assert(active != 0);
    entries_.clear();
    entries_.push_back({kNoReconv, start_pc, active});
}

void
SimtStack::popReconverged()
{
    while (entries_.size() > 1 &&
           entries_.back().pc == entries_.back().reconvPc) {
        entries_.pop_back();
    }
}

void
SimtStack::advance(std::uint32_t next_pc)
{
    sim_assert(!entries_.empty());
    entries_.back().pc = next_pc;
    popReconverged();
}

bool
SimtStack::branch(std::uint32_t curr_pc, std::uint32_t target,
                  std::uint32_t reconv, LaneMask taken_mask)
{
    sim_assert(!entries_.empty());
    Entry &top = entries_.back();
    sim_assert(top.pc == curr_pc);
    const LaneMask active = top.mask;
    sim_assert((taken_mask & ~active) == 0);
    const LaneMask fall_mask = active & ~taken_mask;
    const std::uint32_t fall_pc = curr_pc + 1;

    if (taken_mask == 0) {
        advance(fall_pc);
        return false;
    }
    if (fall_mask == 0) {
        advance(target);
        return false;
    }

    // Divergence. The top entry becomes the reconvergence holder for
    // the union mask; compress it away when its parent already waits
    // at the same PC with a superset mask (loop back-edges would
    // otherwise grow the stack once per iteration).
    top.pc = reconv;
    if (entries_.size() > 1 &&
        entries_[entries_.size() - 2].pc == reconv) {
        entries_.pop_back();
    }
    // Execute the taken path first; push fall-through below it.
    // A side already at the reconvergence point needs no entry: its
    // threads simply wait in the reconvergence holder.
    if (fall_pc != reconv)
        entries_.push_back({reconv, fall_pc, fall_mask});
    if (target != reconv)
        entries_.push_back({reconv, target, taken_mask});
    popReconverged();
    return true;
}

} // namespace cawa
