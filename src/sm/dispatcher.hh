/**
 * @file
 * Grid-level thread-block dispatcher: hands out block ids to SMs in
 * round-robin order as their occupancy limits allow, one block per SM
 * per cycle (GPGPU-sim's GigaThread-engine approximation).
 */

#ifndef CAWA_SM_DISPATCHER_HH
#define CAWA_SM_DISPATCHER_HH

#include <memory>
#include <vector>

#include "sm/sm_core.hh"

namespace cawa
{

class TraceBuffer;

class BlockDispatcher
{
  public:
    explicit BlockDispatcher(int grid_dim);

    /** Try to place pending blocks; returns how many were placed. */
    int dispatch(std::vector<std::unique_ptr<SmCore>> &sms, Cycle now);

    /**
     * @p now when a pending block could be placed next cycle (blocks
     * remain and some SM has room), kNoCycle otherwise -- either all
     * blocks are out, or placement waits on a block retirement, which
     * is an SM event.
     */
    Cycle nextEventCycle(
        const std::vector<std::unique_ptr<SmCore>> &sms,
        Cycle now) const;

    bool
    allDispatched() const
    {
        return next_ >= static_cast<BlockId>(gridDim_);
    }
    BlockId nextBlock() const { return next_; }

    /**
     * Route block-dispatch trace events into @p sink (nullptr
     * disables). Pure observer: never alters placement.
     */
    void setTraceSink(TraceBuffer *sink) { traceSink_ = sink; }

    /** Checkpoint dispatch progress (gridDim is kernel-derived). */
    void save(OutArchive &ar) const
    {
        ar.putU32(next_);
        ar.putU64(static_cast<std::uint64_t>(lastSm_));
    }

    void load(InArchive &ar)
    {
        next_ = ar.getU32();
        lastSm_ = static_cast<std::size_t>(ar.getU64());
    }

  private:
    int gridDim_;
    BlockId next_ = 0;
    std::size_t lastSm_ = 0;
    TraceBuffer *traceSink_ = nullptr;
};

} // namespace cawa

#endif // CAWA_SM_DISPATCHER_HH
