/**
 * @file
 * Per-warp scoreboard. The SM blocks issue while an instruction's
 * dependency masks (precomputed into the Instruction by Program's
 * constructor, see Instruction::deriveMasks) overlap a warp's pending
 * sets (in-order issue with RAW/WAW interlocks; loads release their
 * destination when the memory system responds).
 */

#ifndef CAWA_SM_SCOREBOARD_HH
#define CAWA_SM_SCOREBOARD_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace cawa
{

/** Per-warp pending-register state. */
struct Scoreboard
{
    std::uint32_t pendingRegs = 0;
    std::uint32_t pendingMemRegs = 0; ///< subset owed to loads
    std::uint8_t pendingPreds = 0;

    void clear()
    {
        pendingRegs = 0;
        pendingMemRegs = 0;
        pendingPreds = 0;
    }

    bool
    canIssue(const Instruction &inst) const
    {
        return ((inst.readRegs | inst.writeRegs) & pendingRegs) == 0 &&
               ((inst.readPreds | inst.writePreds) & pendingPreds) == 0;
    }

    /** Whether the block on @p inst is due to an outstanding load. */
    bool
    blockedByMemory(const Instruction &inst) const
    {
        return ((inst.readRegs | inst.writeRegs) & pendingMemRegs) != 0;
    }

    bool clean() const
    {
        return pendingRegs == 0 && pendingPreds == 0;
    }
};

} // namespace cawa

#endif // CAWA_SM_SCOREBOARD_HH
