/**
 * @file
 * Dependency masks for the per-warp scoreboard: which general and
 * predicate registers an instruction reads and writes. The SM blocks
 * issue while any of these overlap a warp's pending sets (in-order
 * issue with RAW/WAW interlocks; loads release their destination when
 * the memory system responds).
 */

#ifndef CAWA_SM_SCOREBOARD_HH
#define CAWA_SM_SCOREBOARD_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace cawa
{

/** Bitmask of general registers read by @p inst. */
std::uint32_t regsRead(const Instruction &inst);

/** Bitmask of general registers written by @p inst. */
std::uint32_t regsWritten(const Instruction &inst);

/** Bitmask of predicate registers read by @p inst. */
std::uint8_t predsRead(const Instruction &inst);

/** Bitmask of predicate registers written by @p inst. */
std::uint8_t predsWritten(const Instruction &inst);

/** Per-warp pending-register state. */
struct Scoreboard
{
    std::uint32_t pendingRegs = 0;
    std::uint32_t pendingMemRegs = 0; ///< subset owed to loads
    std::uint8_t pendingPreds = 0;

    void clear()
    {
        pendingRegs = 0;
        pendingMemRegs = 0;
        pendingPreds = 0;
    }

    bool
    canIssue(const Instruction &inst) const
    {
        const std::uint32_t regs = regsRead(inst) | regsWritten(inst);
        const std::uint8_t preds = predsRead(inst) | predsWritten(inst);
        return (regs & pendingRegs) == 0 && (preds & pendingPreds) == 0;
    }

    /** Whether the block on @p inst is due to an outstanding load. */
    bool
    blockedByMemory(const Instruction &inst) const
    {
        const std::uint32_t regs = regsRead(inst) | regsWritten(inst);
        return (regs & pendingMemRegs) != 0;
    }

    bool clean() const
    {
        return pendingRegs == 0 && pendingPreds == 0;
    }
};

} // namespace cawa

#endif // CAWA_SM_SCOREBOARD_HH
