/**
 * @file
 * One warp slot: architectural state (per-lane registers and
 * predicates, SIMT stack) and the functional executor. The
 * scheduling-hot companion fields (scoreboard masks, stall timings)
 * live in the SM-owned WarpHotState (sm/warp_soa.hh).
 */

#ifndef CAWA_SM_WARP_HH
#define CAWA_SM_WARP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/kernel.hh"
#include "mem/mem_port.hh"
#include "sm/simt_stack.hh"

namespace cawa
{

struct WarpHotState;

enum class WarpState : std::uint8_t
{
    Inactive,
    Running,
    AtBarrier,
    Finished,
};

/** Stall/progress accounting for one warp's lifetime in a block. */
struct WarpTimings
{
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memStallCycles = 0;   ///< blocked on load data
    std::uint64_t aluStallCycles = 0;   ///< blocked on ALU/SFU results
    std::uint64_t structStallCycles = 0;///< LD/ST queue or MSHR full
    std::uint64_t schedWaitCycles = 0;  ///< ready but not selected
    std::uint64_t barrierCycles = 0;
    std::uint64_t finishedWaitCycles = 0;///< done, waiting for block
};

/** Everything the functional executor needs besides the warp. */
struct ExecContext
{
    /**
     * Global memory goes through the SM's MemPort so stores can be
     * deferred during the parallel tick phase (see mem/mem_port.hh).
     */
    MemPort *global = nullptr;
    std::vector<std::uint8_t> *shared = nullptr;
    int blockDim = 0;
    int gridDim = 0;
    int blockIdX = 0;
};

/** Outcome of functionally executing one instruction. */
struct ExecResult
{
    const Instruction *inst = nullptr;
    std::uint32_t pc = 0;
    /**
     * Per-active-lane byte addresses for global memory ops. Points
     * into a scratch buffer owned by the executing Warp, valid until
     * its next executeNext() call -- the hot path hands it straight
     * to the coalescer without copying.
     */
    const std::vector<Addr> *laneAddrs = nullptr;
    // Branch outcome (op == Bra).
    bool isBranch = false;
    bool branchTaken = false;   ///< any lane took the branch
    bool branchDiverged = false;
    bool exited = false;
    bool atBarrier = false;
};

class Warp
{
  public:
    explicit Warp(int warp_size);

    /** Bind this slot to warp @p warp_in_block of block @p block. */
    void activate(const Program *program, BlockId block,
                  int warp_in_block, int active_threads, Cycle now,
                  std::uint64_t dispatch_age);

    void deactivate();

    /**
     * Functionally execute the next instruction for all active lanes
     * and update the SIMT stack / warp state. The caller (SM core)
     * handles all timing.
     */
    ExecResult executeNext(ExecContext &ctx);

    /** The instruction the warp would issue next. */
    const Instruction &nextInstruction() const;

    WarpState state() const { return state_; }
    void setState(WarpState s) { state_ = s; }

    BlockId blockId() const { return blockId_; }
    int warpInBlock() const { return warpInBlock_; }
    std::uint64_t dispatchAge() const { return dispatchAge_; }
    int warpSize() const { return warpSize_; }

    const SimtStack &stack() const { return stack_; }

    RegValue reg(int lane, Reg r) const { return regs_[lane][r]; }
    void setReg(int lane, Reg r, RegValue v) { regs_[lane][r] = v; }
    bool pred(int lane, PredReg p) const { return preds_[lane][p]; }

    /**
     * Checkpoint the full architectural and accounting state. The
     * warp's scoreboard/timing fields live in the SM-owned
     * WarpHotState (see sm/warp_soa.hh) but serialize interleaved
     * here, slot by slot, to keep the cawa-ckpt-v1 byte order that
     * predates the split. Inactive slots skip the register/predicate
     * payload (activate() re-zeroes them); any non-inactive slot
     * (including Finished, which keeps its program until block
     * retirement) is rebound to @p program on load.
     */
    void save(OutArchive &ar, const WarpHotState &hot, int slot) const;
    void load(InArchive &ar, const Program *program, WarpHotState &hot,
              int slot);

  private:
    RegValue specialValue(SpecialReg sreg, int lane,
                          const ExecContext &ctx) const;

    int warpSize_;
    const Program *program_ = nullptr;
    WarpState state_ = WarpState::Inactive;
    BlockId blockId_ = 0;
    int warpInBlock_ = 0;
    int baseTid_ = 0;
    std::uint64_t dispatchAge_ = 0;
    SimtStack stack_;
    std::vector<std::array<RegValue, kNumRegs>> regs_;
    std::vector<std::array<bool, kNumPredRegs>> preds_;
    std::vector<Addr> laneAddrScratch_; ///< see ExecResult::laneAddrs
};

} // namespace cawa

#endif // CAWA_SM_WARP_HH
