/**
 * @file
 * Streaming multiprocessor timing model.
 *
 * Per cycle, each of the SM's hardware schedulers considers its
 * interleaved subset of warp slots, computes the ready set (no
 * scoreboard or structural hazard, not at a barrier, not finished)
 * and asks its scheduling policy to pick one warp; the selected
 * warp's next instruction executes functionally at issue while the
 * timing side tracks result latencies (ALU/SFU writeback queue, LD/ST
 * unit with coalescer, L1D with MSHRs). The SM also hosts the
 * criticality predictor (CPL), feeding both the gCAWS scheduler and
 * the CACP cache policy, and produces the per-warp/per-block records
 * the evaluation figures are built from.
 */

#ifndef CAWA_SM_SM_CORE_HH
#define CAWA_SM_SM_CORE_HH

#include <algorithm>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "cawa/criticality.hh"
#include "common/arena.hh"
#include "isa/kernel.hh"
#include "mem/coalescer.hh"
#include "mem/l1d_cache.hh"
#include "sched/scheduler.hh"
#include "sim/gpu_config.hh"
#include "sm/barrier.hh"
#include "sm/records.hh"
#include "sm/warp.hh"
#include "sm/warp_soa.hh"

namespace cawa
{

class SmCore
{
  public:
    /**
     * @param oracle optional CAWS oracle table (scheduler priorities
     *        become profiled warp execution times); may be null
     */
    SmCore(const GpuConfig &cfg, int sm_id, MemoryImage &global,
           const KernelInfo &kernel, const OracleTable *oracle);

    /** Occupancy check for one more block of the kernel. */
    bool canAcceptBlock() const;

    /** Bind block @p id to this SM. */
    void acceptBlock(BlockId id, Cycle now);

    /**
     * Advance one cycle. Ticks may be sparse: when cycles were
     * skipped since the last tick (fast-forward), the elapsed idle
     * span is first charged to the per-warp stall counters in bulk,
     * which is exact because a skipped cycle by definition had no SM
     * event that could change any warp's stall classification.
     */
    void tick(Cycle now);

    /**
     * Earliest cycle at which a tick of this SM does anything beyond
     * per-warp stall accounting: a warp can issue, the LD/ST unit has
     * queued transactions, a writeback or L1 completion matures, or a
     * CPL/trace sampling boundary is crossed while blocks are
     * resident. kNoCycle when only external events (L1 fills, block
     * dispatch) can wake the SM. Cached at the end of each tick and
     * pulled forward by fillResponse()/acceptBlock() wakes.
     */
    Cycle nextEventCycle() const { return cachedNextEvent_; }

    /** Whether the SM must tick at @p now (fast-forward gate). */
    bool dueAt(Cycle now) const { return cachedNextEvent_ <= now; }

    /**
     * Charge any still-unaccounted skipped cycles before the run's
     * final cycle @p end; call once after the simulation loop so
     * timed-out runs report exact stall totals.
     */
    void finalizeStallAccounting(Cycle end) { catchUpStalls(end); }

    // Memory-side interface (driven by the Gpu top level).
    bool hasOutgoing() const { return l1_->hasOutgoing(); }
    MemMsg popOutgoing() { return l1_->popOutgoing(); }
    void fillResponse(Addr line_addr, Cycle now)
    {
        // Fills run during the Gpu's serial drain phase, after the
        // (possibly parallel) SM ticks: their trace events belong to
        // the shared memory-system ring, not this SM's own ring, so
        // swap the L1 sink around the fill (see sim/trace.hh).
        if (fillTraceSink_)
            l1_->setTraceSink(fillTraceSink_);
        l1_->fill(line_addr, now);
        if (fillTraceSink_)
            l1_->setTraceSink(traceSink_);
        // The fill's completions mature next cycle: wake the SM.
        cachedNextEvent_ = std::min(cachedNextEvent_, now + 1);
    }

    // --- Parallel-tick commit interface (driven by Gpu::tick) ---

    /**
     * Buffer global-memory stores in the per-SM MemPort instead of
     * writing the shared MemoryImage; phase 2 commits them serially.
     */
    void setDeferStores(bool defer) { memPort_.setDeferStores(defer); }

    /** Apply this SM's buffered stores, in program order (phase 2). */
    void commitStores() { memPort_.commit(); }

    /** Uncommitted buffered stores; 0 at every cycle boundary. */
    std::size_t pendingDeferredStores() const
    {
        return memPort_.pendingStores();
    }

    /** True while any block is resident or memory work is pending. */
    bool busy() const;

    /** Retired blocks since the last call (moves them out). */
    std::vector<BlockRecord> takeRetiredBlocks();

    std::uint64_t issuedInstructions() const { return issued_; }
    const CacheStats &l1Stats() const { return l1_->stats(); }
    const CriticalityPredictor &cpl() const { return *cpl_; }
    const std::vector<TraceSample> &traceSamples() const
    {
        return trace_;
    }

    /** Issues per hardware scheduler (index < numSchedulersPerSm). */
    const std::vector<std::uint64_t> &schedIssues() const
    {
        return schedIssues_;
    }

    /**
     * Wall-clock seconds spent in each section of this SM's tick,
     * accumulated only while GpuConfig::profilePhases is set (all
     * zero otherwise). Pure observer for the bench's hot-path
     * breakdown; never serialized and absent from every report/
     * checkpoint format.
     */
    struct PhaseSeconds
    {
        double l1 = 0.0;      ///< L1 drain + writebacks + LD/ST unit
        double sched = 0.0;   ///< ready-set build + pick + issue
        double account = 0.0; ///< stall classification and charging
        double cpl = 0.0;     ///< CPL + trace sampling
    };

    const PhaseSeconds &phaseSeconds() const { return phaseSeconds_; }

    /**
     * Attach (or detach, nullptr) the structured-event trace sink;
     * forwarded to the L1D. Observational only: the SM's behaviour
     * is identical with or without a sink.
     */
    void setTraceSink(TraceBuffer *sink);

    /**
     * Separate sink for L1 events emitted from fillResponse() (cache
     * fills/evictions), which happen in the Gpu's serial drain phase
     * rather than inside this SM's tick. Null keeps fills on the
     * regular sink.
     */
    void setFillTraceSink(TraceBuffer *sink) { fillTraceSink_ = sink; }

    int residentBlocks() const { return residentBlocks_; }

    // --- Watchdog / invariant-audit interface (all read-only) ---

    /**
     * Aggregate stuck-state counters the top-level watchdog uses to
     * classify a wedged machine (barrier deadlock vs lost fill vs
     * token leak); see Gpu::recordDeadlock().
     */
    struct StuckSummary
    {
        int activeWarps = 0;    ///< Running or AtBarrier
        int atBarrier = 0;
        int finishedWaiting = 0;///< Finished, block not yet retired
        int withOutstandingLoads = 0;
        std::size_t l1Mshrs = 0;
        std::size_t ldstQueued = 0;
        int liveTokens = 0;
    };

    StuckSummary stuckSummary() const;

    /**
     * True when this SM, left alone, can never change state again: no
     * warp is ready, and the writeback queue, LD/ST queue and L1
     * completion/outgoing queues are all empty. Outstanding MSHRs do
     * not count -- they wait on an external fill, which the caller
     * rules out by also requiring an idle interconnect/L2/DRAM.
     */
    bool quiescent() const;

    /**
     * Append a structured human-readable dump of this SM's stuck
     * state to @p out: every active warp's PC/state/criticality and
     * pending masks, per-block barrier occupancy, queue depths and
     * the most recent scheduler picks.
     */
    void appendDeadlockDump(std::string &out, Cycle now) const;

    /**
     * Run the invariant audit at depth @p level (1 = conservation
     * checks, 2 = adds stall recount, scoreboard cross-check and
     * SIMT-stack sanity; see GpuConfig::checkLevel). Read-only;
     * throws SimError (kind Invariant) with cycle/SM/warp context on
     * the first violation found.
     */
    void audit(Cycle now, int level) const;

    /**
     * Checkpoint the SM's complete timing and architectural state:
     * warps, block bindings, schedulers, CPL, L1D, writeback and
     * LD/ST queues, token pool, accounting counters and the
     * fast-forward event cache. The writeback priority queue is
     * serialized by draining a copy; re-inserting in that order may
     * rebuild a different internal heap layout, which is fine
     * because drainWritebacks() only clears per-slot scoreboard
     * bits, so the pop order of equal-ready events is unobservable.
     */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);

  private:
    struct BlockState
    {
        bool valid = false;
        BlockId id = 0;
        Cycle start = 0;
        std::vector<WarpSlot> slots;
        std::vector<std::uint8_t> sharedMem;
        BarrierState barrier;
        int runningWarps = 0;
        std::uint64_t samples = 0;
        std::vector<std::uint64_t> slowSamples; ///< by warp-in-block
    };

    struct Token
    {
        WarpSlot slot = kNoWarp;
        std::uint32_t dstRegMask = 0;
        int remaining = 0;
        bool stallNotified = false;
    };

    struct Transaction
    {
        AccessInfo info;
        std::uint64_t token = 0; ///< 0 for stores
    };

    struct WbEvent
    {
        Cycle ready;
        WarpSlot slot;
        std::uint32_t regMask;
        std::uint8_t predMask;

        bool operator>(const WbEvent &o) const { return ready > o.ready; }
    };

    /** tick() body with per-section timers (profilePhases only). */
    void tickProfiled(Cycle now);
    void drainL1(Cycle now);
    void drainWritebacks(Cycle now);
    void serviceLdstQueue(Cycle now);
    void refreshSchedArrays();
    void schedule(Cycle now);

    /**
     * Whether @p slot can issue this cycle: running, no scoreboard
     * hazard, LD/ST queue space for a global access, and (for Exit)
     * no results or loads still in flight. Defined here so the
     * per-cycle ready scans (48 slots per SM per tick) inline it.
     */
    bool isReady(WarpSlot slot) const
    {
        if (hot_.state[slot] != WarpState::Running)
            return false;
        const Instruction &inst = *hot_.nextInst[slot];
        if (!hot_.canIssue(slot, inst))
            return false;
        if (inst.isGlobal() &&
            static_cast<int>(ldstQueue_.size()) >= cfg_.ldstQueueSize)
            return false;
        if (inst.op == Opcode::Exit &&
            (!hot_.clean(slot) || hot_.outstandingLoads[slot] > 0))
            return false;
        return true;
    }

    void issue(WarpSlot slot, Cycle now);
    void finishWarp(WarpSlot slot, Cycle now);
    void retireBlock(BlockState &block, Cycle now);
    void releaseBarrier(BlockState &block, Cycle now);
    /**
     * Re-derive hot_.state / hot_.nextInst for @p slot from the warp.
     * Must run after every state or PC transition: block accept,
     * instruction issue, barrier release, block retire, checkpoint
     * load. Idempotent.
     */
    void refreshSlot(WarpSlot slot);
    StallReason classifyStall(WarpSlot slot) const;
    void chargeStall(WarpSlot slot, std::uint64_t amount, Cycle at);
    void accountStalls(Cycle now);
    void accountIdleSpan(Cycle start, Cycle span);
    void catchUpStalls(Cycle now);
    Cycle computeNextEventCycle(Cycle now) const;
    Cycle cachedBoundary(Cycle now, Cycle interval, Cycle &cache) const;
    [[noreturn]] void auditFail(Cycle now, int warp,
                                const std::string &msg) const;
    void sampleCpl(Cycle now);
    void sampleTrace(Cycle now);
    BlockState &blockOf(WarpSlot slot);
    WarpScheduler &schedulerOf(WarpSlot slot);

    const GpuConfig &cfg_;
    int smId_;
    MemoryImage &global_;
    MemPort memPort_; ///< store-deferring view of global_ (parallel)
    const KernelInfo &kernel_;
    const OracleTable *oracle_;

    std::vector<Warp> warps_;
    WarpHotState hot_; ///< slot-indexed hot companion of warps_
    std::vector<int> slotBlock_;       ///< slot -> block-state index
    std::vector<BlockState> blocks_;
    std::vector<std::unique_ptr<WarpScheduler>> schedulers_;
    std::unique_ptr<CriticalityPredictor> cpl_;
    std::unique_ptr<L1DCache> l1_;
    Coalescer coalescer_;

    // Scheduling context arrays (slot-indexed).
    std::vector<std::uint64_t> age_;
    std::vector<std::int64_t> priority_;
    std::vector<std::int64_t> oraclePriority_;
    std::vector<bool> issuedThisCycle_;

    std::priority_queue<WbEvent, std::vector<WbEvent>,
                        std::greater<WbEvent>> wbQueue_;
    RingQueue<Transaction> ldstQueue_;

    // Outstanding-load tokens live in a slab pool indexed by
    // (token id - 1); freed indices are recycled LIFO. Token ids are
    // opaque handles to the L1/MSHR layer, so recycling does not
    // affect any observable ordering.
    std::uint64_t allocToken() { return tokenPool_.alloc() + 1; }
    Token &tokenAt(std::uint64_t id)
    {
        return tokenPool_.at(static_cast<std::uint32_t>(id - 1));
    }
    void freeToken(std::uint64_t id)
    {
        tokenPool_.free(static_cast<std::uint32_t>(id - 1));
    }
    SlabPool<Token> tokenPool_;

    std::uint64_t dispatchSeq_ = 0;

    // Fault-injection ordinals (see GpuConfig::faults): count every
    // barrier arrival / load completion this SM processes so a single
    // configured event can be corrupted deterministically.
    std::int64_t barrierArrivalSeq_ = 0;
    std::int64_t loadCompletionSeq_ = 0;

    /**
     * Ring of the most recent scheduler picks, kept purely for the
     * watchdog's diagnostic dump ("what was the machine doing when it
     * wedged"). Fixed capacity; one store per issue.
     */
    struct PickRecord
    {
        Cycle cycle = 0;
        int sched = 0;
        WarpSlot slot = kNoWarp;
    };
    static constexpr std::size_t kPickHistory = 16;
    std::vector<PickRecord> pickHistory_;
    std::size_t pickHead_ = 0;  ///< next write index once full
    void recordPick(Cycle now, int sched, WarpSlot slot);

    int residentBlocks_ = 0;
    int freeSlots_ = 0;
    int regsUsed_ = 0;
    int smemUsed_ = 0;
    std::uint64_t issued_ = 0;
    std::vector<std::uint64_t> schedIssues_; ///< per hw scheduler

    /** Structured-event sink; null unless GpuConfig::trace.enabled. */
    TraceBuffer *traceSink_ = nullptr;
    /** Sink for fill-side L1 events (see setFillTraceSink). */
    TraceBuffer *fillTraceSink_ = nullptr;

    /**
     * Set when warp/CPL state that feeds the scheduling context
     * arrays (age, priority) may have changed -- i.e. on block accept
     * and on every issue. While clear, refreshSchedArrays() is a
     * no-op because every input of the arrays is event-driven.
     */
    bool schedDirty_ = true;

    /**
     * Whether any scheduler's ready set was non-empty during the last
     * schedule() pass; feeds computeNextEventCycle() so the next-event
     * computation does not repeat the readiness scan.
     */
    bool anyReadySeen_ = false;

    /** Last cycle whose stall accounting has been charged. */
    Cycle lastTicked_ = 0;
    /** See nextEventCycle(); 0 forces the first tick. */
    Cycle cachedNextEvent_ = 0;

    /**
     * Derived round-up caches for the CPL/trace sampling boundaries
     * (see cachedBoundary()); deliberately not serialized -- the
     * stale value 0 self-corrects on first use.
     */
    mutable Cycle cplBoundaryCache_ = 0;
    mutable Cycle traceBoundaryCache_ = 0;

    PhaseSeconds phaseSeconds_; ///< see phaseSeconds()

    std::vector<BlockRecord> retired_;
    std::vector<TraceSample> trace_;
    std::vector<L1DCache::Completion> completionScratch_;
    std::vector<Addr> lineScratch_;     ///< coalescer output, reused
    std::vector<WarpSlot> readyScratch_;
    std::vector<std::int64_t> critScratch_;
    std::vector<std::int64_t> critSorted_;
};

} // namespace cawa

#endif // CAWA_SM_SM_CORE_HH
