/**
 * @file
 * Per-warp SIMT reconvergence stack (immediate post-dominator style).
 *
 * The top entry supplies the warp's current PC and active mask. A
 * divergent branch retargets the top entry to the reconvergence PC
 * (it keeps the union mask) and pushes one entry per executed path;
 * an entry whose PC reaches its reconvergence point pops. Entries
 * whose threads are already at the reconvergence point are never
 * pushed, and entries made redundant by an equal-PC parent are
 * compressed away, so stack depth is bounded by control-flow nesting
 * rather than loop trip count.
 */

#ifndef CAWA_SM_SIMT_STACK_HH
#define CAWA_SM_SIMT_STACK_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/sim_assert.hh"
#include "common/types.hh"

namespace cawa
{

/** 32-lane active mask (warp size <= 32 in this model). */
using LaneMask = std::uint32_t;

class SimtStack
{
  public:
    /** Sentinel: the bottom entry never reconverges. */
    static constexpr std::uint32_t kNoReconv = ~std::uint32_t{0};

    /** Reinitialize for a fresh warp at @p start_pc. */
    void reset(std::uint32_t start_pc, LaneMask active);

    // pc()/activeMask() are read on every scheduler consideration and
    // every executed instruction; defined here so they inline.
    std::uint32_t pc() const
    {
        sim_assert(!entries_.empty());
        return entries_.back().pc;
    }

    LaneMask activeMask() const
    {
        sim_assert(!entries_.empty());
        return entries_.back().mask;
    }

    int depth() const { return static_cast<int>(entries_.size()); }

    /**
     * Non-branch control flow: move the warp to @p next_pc, popping
     * reconverged entries.
     */
    void advance(std::uint32_t next_pc);

    /**
     * A branch at @p curr_pc resolved with @p taken_mask (subset of
     * the active mask) taking the branch to @p target; the rest fall
     * through to curr_pc+1; diverged paths reconverge at @p reconv.
     *
     * @return true if the warp diverged (both paths non-empty).
     */
    bool branch(std::uint32_t curr_pc, std::uint32_t target,
                std::uint32_t reconv, LaneMask taken_mask);

    /** Checkpoint the full stack, bottom entry first. */
    void save(OutArchive &ar) const
    {
        ar.putU32(static_cast<std::uint32_t>(entries_.size()));
        for (const Entry &e : entries_) {
            ar.putU32(e.reconvPc);
            ar.putU32(e.pc);
            ar.putU32(e.mask);
        }
    }

    void load(InArchive &ar)
    {
        entries_.clear();
        const std::uint32_t n = ar.getU32();
        entries_.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            Entry e;
            e.reconvPc = ar.getU32();
            e.pc = ar.getU32();
            e.mask = ar.getU32();
            entries_.push_back(e);
        }
    }

  private:
    struct Entry
    {
        std::uint32_t reconvPc;
        std::uint32_t pc;
        LaneMask mask;
    };

    void popReconverged();

    std::vector<Entry> entries_;
};

} // namespace cawa

#endif // CAWA_SM_SIMT_STACK_HH
