#include "sm/scoreboard.hh"

namespace cawa
{

namespace
{

std::uint32_t
bit(Reg r)
{
    return std::uint32_t{1} << r;
}

} // namespace

std::uint32_t
regsRead(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::MovImm:
      case Opcode::S2R:
      case Opcode::Bar:
      case Opcode::Exit:
        return 0;
      case Opcode::AddImm:
      case Opcode::MulImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::Mov:
      case Opcode::Sfu:
      case Opcode::SetpImm:
      case Opcode::LdGlobal:
      case Opcode::LdShared:
        return bit(inst.src0);
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Setp:
      case Opcode::Selp:
      case Opcode::StGlobal:
      case Opcode::StShared:
        return bit(inst.src0) | bit(inst.src1);
      case Opcode::Mad:
        return bit(inst.src0) | bit(inst.src1) | bit(inst.src2);
      case Opcode::Bra:
        return 0;
    }
    return 0;
}

std::uint32_t
regsWritten(const Instruction &inst)
{
    return inst.writesReg() ? bit(inst.dst) : 0;
}

std::uint8_t
predsRead(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Selp:
        return static_cast<std::uint8_t>(1u << inst.psrc);
      case Opcode::Bra:
        return inst.predUsed
            ? static_cast<std::uint8_t>(1u << inst.psrc) : 0;
      default:
        return 0;
    }
}

std::uint8_t
predsWritten(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Setp:
      case Opcode::SetpImm:
        return static_cast<std::uint8_t>(1u << inst.pdst);
      default:
        return 0;
    }
}

} // namespace cawa
