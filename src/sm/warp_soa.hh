/**
 * @file
 * Structure-of-arrays repacking of the per-warp state the SM touches
 * every cycle.
 *
 * A Warp object is dominated by its architectural payload (per-lane
 * registers and predicates, ~16 KB), so an array of Warps puts each
 * warp's scheduling-relevant fields a page apart: the per-cycle ready
 * scan, stall classification and scoreboard updates all walked
 * pointer-sized islands in a sea of cold register state. WarpHotState
 * pulls those fields into slot-indexed parallel arrays owned by the
 * SM, so the pick loops and the stall-accounting sweep stream through
 * a few contiguous cache lines instead.
 *
 * Two members are derived mirrors, not owners:
 *
 *  - state[slot] mirrors Warp::state(); SmCore refreshes it at every
 *    transition site (activate, post-execute, barrier release, block
 *    retire, checkpoint load).
 *  - nextInst[slot] caches &program->at(pc) for Running warps -- the
 *    decode the ready scan needs -- and is refreshed at the same
 *    sites, since the PC only moves inside executeNext()/activate().
 *
 * The owned fields (scoreboard masks, stall timings, issue
 * bookkeeping) serialize through saveSlot()/loadSlot() in exactly the
 * byte order Warp::save() used when it owned them, keeping the
 * cawa-ckpt-v1 format unchanged.
 */

#ifndef CAWA_SM_WARP_SOA_HH
#define CAWA_SM_WARP_SOA_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "isa/instruction.hh"
#include "sm/warp.hh"

namespace cawa
{

struct WarpHotState
{
    // --- Scoreboard pending sets (owned; SoA) ---
    std::vector<std::uint32_t> pendingRegs;
    std::vector<std::uint32_t> pendingMemRegs; ///< subset owed to loads
    std::vector<std::uint8_t> pendingPreds;

    // --- Issue/stall bookkeeping (owned) ---
    std::vector<int> outstandingLoads;
    std::vector<Cycle> lastIssueCycle;
    std::vector<WarpTimings> timings;

    // --- Derived mirrors (see file comment; never serialized) ---
    std::vector<WarpState> state;
    std::vector<const Instruction *> nextInst;

    void init(int slots)
    {
        const std::size_t n = static_cast<std::size_t>(slots);
        pendingRegs.assign(n, 0);
        pendingMemRegs.assign(n, 0);
        pendingPreds.assign(n, 0);
        outstandingLoads.assign(n, 0);
        lastIssueCycle.assign(n, 0);
        timings.assign(n, WarpTimings{});
        state.assign(n, WarpState::Inactive);
        nextInst.assign(n, nullptr);
    }

    /** What Warp::activate() used to do for these fields. */
    void resetSlot(int slot, Cycle now)
    {
        pendingRegs[slot] = 0;
        pendingMemRegs[slot] = 0;
        pendingPreds[slot] = 0;
        outstandingLoads[slot] = 0;
        lastIssueCycle[slot] = now;
        timings[slot] = WarpTimings{};
        timings[slot].startCycle = now;
    }

    bool canIssue(int slot, const Instruction &inst) const
    {
        return ((inst.readRegs | inst.writeRegs) &
                pendingRegs[slot]) == 0 &&
               ((inst.readPreds | inst.writePreds) &
                pendingPreds[slot]) == 0;
    }

    /** Whether the block on @p inst is due to an outstanding load. */
    bool blockedByMemory(int slot, const Instruction &inst) const
    {
        return ((inst.readRegs | inst.writeRegs) &
                pendingMemRegs[slot]) != 0;
    }

    bool clean(int slot) const
    {
        return pendingRegs[slot] == 0 && pendingPreds[slot] == 0;
    }

    /** Serialize one slot's owned fields (Warp::save's byte order). */
    void saveSlot(OutArchive &ar, int slot) const
    {
        ar.putU32(pendingRegs[slot]);
        ar.putU32(pendingMemRegs[slot]);
        ar.putU8(pendingPreds[slot]);

        const WarpTimings &t = timings[slot];
        ar.putU64(t.startCycle);
        ar.putU64(t.endCycle);
        ar.putU64(t.instructions);
        ar.putU64(t.memStallCycles);
        ar.putU64(t.aluStallCycles);
        ar.putU64(t.structStallCycles);
        ar.putU64(t.schedWaitCycles);
        ar.putU64(t.barrierCycles);
        ar.putU64(t.finishedWaitCycles);

        ar.putU64(lastIssueCycle[slot]);
        ar.putU32(static_cast<std::uint32_t>(outstandingLoads[slot]));
    }

    void loadSlot(InArchive &ar, int slot)
    {
        pendingRegs[slot] = ar.getU32();
        pendingMemRegs[slot] = ar.getU32();
        pendingPreds[slot] = ar.getU8();

        WarpTimings &t = timings[slot];
        t.startCycle = ar.getU64();
        t.endCycle = ar.getU64();
        t.instructions = ar.getU64();
        t.memStallCycles = ar.getU64();
        t.aluStallCycles = ar.getU64();
        t.structStallCycles = ar.getU64();
        t.schedWaitCycles = ar.getU64();
        t.barrierCycles = ar.getU64();
        t.finishedWaitCycles = ar.getU64();

        lastIssueCycle[slot] = ar.getU64();
        outstandingLoads[slot] = static_cast<int>(ar.getU32());
    }
};

} // namespace cawa

#endif // CAWA_SM_WARP_SOA_HH
