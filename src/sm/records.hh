/**
 * @file
 * Result records produced by the SM cores and consumed by the report
 * and benchmark layers: per-warp and per-block execution summaries,
 * criticality trace samples, and the oracle criticality table used by
 * the CAWS baseline.
 */

#ifndef CAWA_SM_RECORDS_HH
#define CAWA_SM_RECORDS_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace cawa
{

/** Final per-warp summary (one entry per warp of a retired block). */
struct WarpRecord
{
    int warpInBlock = 0;
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memStallCycles = 0;
    std::uint64_t aluStallCycles = 0;
    std::uint64_t structStallCycles = 0;
    std::uint64_t schedWaitCycles = 0;
    std::uint64_t barrierCycles = 0;
    std::uint64_t finishedWaitCycles = 0;
    /** Samples in which CPL classified this warp as slow (Fig 11). */
    std::uint64_t slowSamples = 0;

    Cycle execTime() const { return endCycle - startCycle; }
};

/** Summary of one retired thread block. */
struct BlockRecord
{
    BlockId id = 0;
    int smId = 0;
    Cycle startCycle = 0;
    Cycle endCycle = 0;
    std::uint64_t cplSamples = 0;
    std::vector<WarpRecord> warps;

    /** Index (warp-in-block) of the actual critical (slowest) warp. */
    int
    criticalWarp() const
    {
        int best = 0;
        for (std::size_t w = 1; w < warps.size(); ++w)
            if (warps[w].endCycle > warps[best].endCycle)
                best = static_cast<int>(w);
        return best;
    }

    /**
     * Warp execution-time disparity: (slowest - fastest) / fastest
     * (Figures 1 and 2's metric). Zero for single-warp blocks.
     */
    double
    disparity() const
    {
        if (warps.size() < 2)
            return 0.0;
        Cycle fastest = warps[0].execTime();
        Cycle slowest = warps[0].execTime();
        for (const auto &w : warps) {
            fastest = std::min(fastest, w.execTime());
            slowest = std::max(slowest, w.execTime());
        }
        if (fastest == 0)
            return 0.0;
        return static_cast<double>(slowest - fastest) /
               static_cast<double>(fastest);
    }
};

/** Fig 12 trace: per-sample criticality of one block's warps. */
struct TraceSample
{
    Cycle cycle = 0;
    std::vector<std::int64_t> criticality; ///< by warp-in-block
};

/**
 * Oracle criticality for the CAWS baseline: per block, the profiled
 * execution time of each warp from an earlier run.
 */
struct OracleTable
{
    std::unordered_map<BlockId, std::vector<std::int64_t>> values;

    std::int64_t
    lookup(BlockId block, int warp_in_block) const
    {
        auto it = values.find(block);
        if (it == values.end() ||
            warp_in_block >= static_cast<int>(it->second.size()))
            return 0;
        return it->second[warp_in_block];
    }
};

} // namespace cawa

#endif // CAWA_SM_RECORDS_HH
