#include "sm/warp.hh"

#include "common/sim_assert.hh"
#include "sm/warp_soa.hh"

namespace cawa
{

Warp::Warp(int warp_size)
    : warpSize_(warp_size), regs_(warp_size), preds_(warp_size)
{
    sim_assert(warp_size > 0 && warp_size <= 32);
}

void
Warp::activate(const Program *program, BlockId block, int warp_in_block,
               int active_threads, Cycle now, std::uint64_t dispatch_age)
{
    sim_assert(program && !program->empty());
    sim_assert(active_threads > 0 && active_threads <= warpSize_);
    program_ = program;
    state_ = WarpState::Running;
    blockId_ = block;
    warpInBlock_ = warp_in_block;
    baseTid_ = warp_in_block * warpSize_;
    dispatchAge_ = dispatch_age;
    const LaneMask mask = active_threads == 32
        ? ~LaneMask{0} : ((LaneMask{1} << active_threads) - 1);
    stack_.reset(0, mask);
    for (auto &lane_regs : regs_)
        lane_regs.fill(0);
    for (auto &lane_preds : preds_)
        lane_preds.fill(false);
    // The companion scoreboard/timing fields are reset by the SM via
    // WarpHotState::resetSlot().
}

void
Warp::deactivate()
{
    state_ = WarpState::Inactive;
    program_ = nullptr;
}

const Instruction &
Warp::nextInstruction() const
{
    sim_assert(program_ != nullptr);
    return program_->at(stack_.pc());
}

RegValue
Warp::specialValue(SpecialReg sreg, int lane, const ExecContext &ctx) const
{
    const int tid = baseTid_ + lane;
    switch (sreg) {
      case SpecialReg::TidX:
        return static_cast<RegValue>(tid);
      case SpecialReg::CtaIdX:
        return static_cast<RegValue>(ctx.blockIdX);
      case SpecialReg::NTidX:
        return static_cast<RegValue>(ctx.blockDim);
      case SpecialReg::NCtaIdX:
        return static_cast<RegValue>(ctx.gridDim);
      case SpecialReg::LaneId:
        return static_cast<RegValue>(lane);
      case SpecialReg::WarpIdInBlock:
        return static_cast<RegValue>(warpInBlock_);
      case SpecialReg::GlobalTid:
        return static_cast<RegValue>(ctx.blockIdX) * ctx.blockDim + tid;
    }
    sim_panic("bad special register");
}

ExecResult
Warp::executeNext(ExecContext &ctx)
{
    sim_assert(state_ == WarpState::Running);
    ExecResult res;
    const std::uint32_t pc = stack_.pc();
    const Instruction &inst = program_->at(pc);
    const LaneMask active = stack_.activeMask();
    res.inst = &inst;
    res.pc = pc;
    laneAddrScratch_.clear();
    res.laneAddrs = &laneAddrScratch_;

    auto for_each_lane = [&](auto &&fn) {
        for (int lane = 0; lane < warpSize_; ++lane)
            if (active & (LaneMask{1} << lane))
                fn(lane);
    };

    switch (inst.op) {
      case Opcode::Nop:
        stack_.advance(pc + 1);
        break;

      case Opcode::Setp:
        for_each_lane([&](int lane) {
            preds_[lane][inst.pdst] = evalCmp(
                inst.cmp, regs_[lane][inst.src0], regs_[lane][inst.src1]);
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::SetpImm:
        for_each_lane([&](int lane) {
            preds_[lane][inst.pdst] = evalCmp(
                inst.cmp, regs_[lane][inst.src0],
                static_cast<RegValue>(inst.imm));
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::Selp:
        for_each_lane([&](int lane) {
            regs_[lane][inst.dst] = preds_[lane][inst.psrc]
                ? regs_[lane][inst.src0] : regs_[lane][inst.src1];
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::S2R:
        for_each_lane([&](int lane) {
            regs_[lane][inst.dst] = specialValue(
                static_cast<SpecialReg>(inst.imm), lane, ctx);
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::LdGlobal:
        sim_assert(ctx.global != nullptr);
        for_each_lane([&](int lane) {
            const Addr addr = regs_[lane][inst.src0] +
                static_cast<RegValue>(inst.imm);
            regs_[lane][inst.dst] = ctx.global->read32(addr);
            laneAddrScratch_.push_back(addr);
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::StGlobal:
        sim_assert(ctx.global != nullptr);
        for_each_lane([&](int lane) {
            const Addr addr = regs_[lane][inst.src0] +
                static_cast<RegValue>(inst.imm);
            ctx.global->write32(addr, static_cast<std::uint32_t>(
                regs_[lane][inst.src1]));
            laneAddrScratch_.push_back(addr);
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::LdShared:
        sim_assert(ctx.shared != nullptr);
        for_each_lane([&](int lane) {
            const Addr addr = regs_[lane][inst.src0] +
                static_cast<RegValue>(inst.imm);
            sim_assert(addr + 4 <= ctx.shared->size());
            std::uint32_t v = 0;
            for (int i = 3; i >= 0; --i)
                v = (v << 8) | (*ctx.shared)[addr + i];
            regs_[lane][inst.dst] = v;
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::StShared:
        sim_assert(ctx.shared != nullptr);
        for_each_lane([&](int lane) {
            const Addr addr = regs_[lane][inst.src0] +
                static_cast<RegValue>(inst.imm);
            sim_assert(addr + 4 <= ctx.shared->size());
            const auto v = static_cast<std::uint32_t>(
                regs_[lane][inst.src1]);
            for (int i = 0; i < 4; ++i)
                (*ctx.shared)[addr + i] =
                    static_cast<std::uint8_t>(v >> (8 * i));
        });
        stack_.advance(pc + 1);
        break;

      case Opcode::Bra: {
        res.isBranch = true;
        LaneMask taken = 0;
        for_each_lane([&](int lane) {
            bool p = !inst.predUsed || preds_[lane][inst.psrc];
            if (inst.predUsed && inst.predNegate)
                p = !preds_[lane][inst.psrc];
            if (p)
                taken |= LaneMask{1} << lane;
        });
        res.branchTaken = taken != 0;
        res.branchDiverged =
            stack_.branch(pc, inst.target, inst.reconv, taken);
        break;
      }

      case Opcode::Bar:
        res.atBarrier = true;
        state_ = WarpState::AtBarrier;
        stack_.advance(pc + 1);
        break;

      case Opcode::Exit:
        res.exited = true;
        state_ = WarpState::Finished;
        break;

      default:
        // Plain ALU/SFU opcodes.
        for_each_lane([&](int lane) {
            regs_[lane][inst.dst] = evalAlu(
                inst.op, regs_[lane][inst.src0], regs_[lane][inst.src1],
                regs_[lane][inst.src2], inst.imm);
        });
        stack_.advance(pc + 1);
        break;
    }
    return res;
}

void
Warp::save(OutArchive &ar, const WarpHotState &hot, int slot) const
{
    ar.putU8(static_cast<std::uint8_t>(state_));
    ar.putU32(blockId_);
    ar.putU32(static_cast<std::uint32_t>(warpInBlock_));
    ar.putU32(static_cast<std::uint32_t>(baseTid_));
    ar.putU64(dispatchAge_);
    stack_.save(ar);

    hot.saveSlot(ar, slot);

    if (state_ == WarpState::Inactive)
        return;
    for (const auto &lane : regs_)
        for (RegValue v : lane)
            ar.putU64(v);
    for (const auto &lane : preds_)
        for (bool p : lane)
            ar.putBool(p);
}

void
Warp::load(InArchive &ar, const Program *program, WarpHotState &hot,
           int slot)
{
    state_ = static_cast<WarpState>(ar.getU8());
    blockId_ = ar.getU32();
    warpInBlock_ = static_cast<int>(ar.getU32());
    baseTid_ = static_cast<int>(ar.getU32());
    dispatchAge_ = ar.getU64();
    stack_.load(ar);

    hot.loadSlot(ar, slot);

    if (state_ == WarpState::Inactive) {
        program_ = nullptr;
        return;
    }
    program_ = program;
    for (auto &lane : regs_)
        for (RegValue &v : lane)
            v = ar.getU64();
    for (auto &lane : preds_)
        for (std::size_t i = 0; i < lane.size(); ++i)
            lane[i] = ar.getBool();
}

} // namespace cawa
