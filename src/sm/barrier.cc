#include "sm/barrier.hh"

#include "common/sim_assert.hh"

namespace cawa
{

void
BarrierState::reset(int expected)
{
    sim_assert(expected >= 0);
    expected_ = expected;
    arrived_ = 0;
}

bool
BarrierState::arrive()
{
    sim_assert(expected_ > 0);
    arrived_++;
    sim_assert(arrived_ <= expected_);
    if (arrived_ == expected_) {
        arrived_ = 0;
        return true;
    }
    return false;
}

bool
BarrierState::reduceExpected()
{
    sim_assert(expected_ > 0);
    expected_--;
    if (expected_ > 0 && arrived_ == expected_) {
        arrived_ = 0;
        return true;
    }
    return false;
}

} // namespace cawa
