#include "sm/sm_core.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <utility>

#include "common/sim_assert.hh"
#include "common/sim_error.hh"
#include "mem/cacp_policy.hh"

namespace cawa
{

namespace
{

std::unique_ptr<ReplacementPolicy>
makeL1Policy(const GpuConfig &cfg)
{
    switch (cfg.l1Policy) {
      case CachePolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case CachePolicyKind::Srrip:
        return std::make_unique<SrripPolicy>();
      case CachePolicyKind::Ship:
        return std::make_unique<ShipPolicy>(cfg.cacp.tableEntries,
                                            cfg.cacp.regionShift);
      case CachePolicyKind::Cacp:
        return std::make_unique<CacpPolicy>(cfg.cacp);
    }
    sim_panic("unknown cache policy kind");
}

} // namespace

SmCore::SmCore(const GpuConfig &cfg, int sm_id, MemoryImage &global,
               const KernelInfo &kernel, const OracleTable *oracle)
    : cfg_(cfg), smId_(sm_id), global_(global), memPort_(global),
      kernel_(kernel), oracle_(oracle),
      slotBlock_(cfg.maxWarpsPerSm, -1),
      blocks_(cfg.maxBlocksPerSm),
      coalescer_(cfg.l1d.lineBytes),
      age_(cfg.maxWarpsPerSm, 0),
      priority_(cfg.maxWarpsPerSm, 0),
      oraclePriority_(cfg.maxWarpsPerSm, 0),
      issuedThisCycle_(cfg.maxWarpsPerSm, false),
      freeSlots_(cfg.maxWarpsPerSm),
      schedIssues_(cfg.numSchedulersPerSm, 0)
{
    // Every warp can keep a couple of independent loads in flight;
    // the pool grows on demand beyond this.
    tokenPool_.reserve(static_cast<std::size_t>(cfg.maxWarpsPerSm) * 2);
    readyScratch_.reserve(cfg.maxWarpsPerSm);
    critScratch_.reserve(cfg.maxWarpsPerSm);
    critSorted_.reserve(cfg.maxWarpsPerSm);
    warps_.reserve(cfg.maxWarpsPerSm);
    for (int i = 0; i < cfg.maxWarpsPerSm; ++i)
        warps_.emplace_back(cfg.warpSize);
    hot_.init(cfg.maxWarpsPerSm);
    for (int i = 0; i < cfg.numSchedulersPerSm; ++i)
        schedulers_.push_back(
            createScheduler(cfg.scheduler, cfg.maxWarpsPerSm));
    cpl_ = std::make_unique<CriticalityPredictor>(cfg.maxWarpsPerSm,
                                                  cfg.criticalFraction);
    cpl_->setUseInstTerm(cfg.cplUseInstTerm);
    cpl_->setUseStallTerm(cfg.cplUseStallTerm);
    cpl_->setQuantShift(cfg.cplQuantShift);
    l1_ = std::make_unique<L1DCache>(cfg.l1d, sm_id, makeL1Policy(cfg));
}

void
SmCore::setTraceSink(TraceBuffer *sink)
{
    traceSink_ = sink;
    l1_->setTraceSink(sink);
}

SmCore::BlockState &
SmCore::blockOf(WarpSlot slot)
{
    const int idx = slotBlock_[slot];
    sim_assert(idx >= 0);
    return blocks_[idx];
}

WarpScheduler &
SmCore::schedulerOf(WarpSlot slot)
{
    return *schedulers_[slot % cfg_.numSchedulersPerSm];
}

bool
SmCore::canAcceptBlock() const
{
    if (residentBlocks_ >= cfg_.maxBlocksPerSm)
        return false;
    if (freeSlots_ < kernel_.warpsPerBlock(cfg_.warpSize))
        return false;
    if (regsUsed_ + kernel_.blockDim * kernel_.regsPerThread >
        cfg_.regFileSize)
        return false;
    if (smemUsed_ + kernel_.smemPerBlock > cfg_.sharedMemBytes)
        return false;
    return true;
}

void
SmCore::acceptBlock(BlockId id, Cycle now)
{
    sim_assert(canAcceptBlock());
    // Settle skipped-cycle accounting against the pre-accept warp
    // state before the new block's warps become active.
    catchUpStalls(now);
    cachedNextEvent_ = std::min(cachedNextEvent_, now);
    int block_idx = -1;
    for (int i = 0; i < static_cast<int>(blocks_.size()); ++i) {
        if (!blocks_[i].valid) {
            block_idx = i;
            break;
        }
    }
    sim_assert(block_idx >= 0);
    BlockState &block = blocks_[block_idx];
    block = BlockState{};
    block.valid = true;
    block.id = id;
    block.start = now;
    block.sharedMem.assign(
        static_cast<std::size_t>(std::max(kernel_.smemPerBlock, 4)), 0);

    const int warps_needed = kernel_.warpsPerBlock(cfg_.warpSize);
    block.barrier.reset(warps_needed);
    block.runningWarps = warps_needed;
    block.slowSamples.assign(warps_needed, 0);

    int assigned = 0;
    for (int slot = 0;
         slot < cfg_.maxWarpsPerSm && assigned < warps_needed; ++slot) {
        if (warps_[slot].state() != WarpState::Inactive)
            continue;
        int active_threads = cfg_.warpSize;
        if (assigned == warps_needed - 1) {
            const int rem = kernel_.blockDim % cfg_.warpSize;
            if (rem != 0)
                active_threads = rem;
        }
        warps_[slot].activate(&kernel_.program, id, assigned,
                              active_threads, now, dispatchSeq_++);
        hot_.resetSlot(slot, now);
        refreshSlot(slot);
        slotBlock_[slot] = block_idx;
        block.slots.push_back(slot);
        cpl_->reset(slot, now, id);
        oraclePriority_[slot] =
            oracle_ ? oracle_->lookup(id, assigned) : 0;
        schedulerOf(slot).notifyActivated(slot);
        assigned++;
    }
    sim_assert(assigned == warps_needed);
    residentBlocks_++;
    freeSlots_ -= warps_needed;
    sim_assert(freeSlots_ >= 0);
    regsUsed_ += kernel_.blockDim * kernel_.regsPerThread;
    smemUsed_ += kernel_.smemPerBlock;
    schedDirty_ = true;
}

void
SmCore::drainL1(Cycle now)
{
    completionScratch_.clear();
    l1_->drainCompleted(now, completionScratch_);
    for (const auto &c : completionScratch_) {
        // Fault hook: drop the Nth completion on the floor. The token
        // stays live with remaining > 0 but nothing references it any
        // more, so the owning warp blocks forever -- the shape of a
        // lost-completion bug the watchdog/auditor must catch.
        if (cfg_.faults.dropLoadCompletion == loadCompletionSeq_++)
            continue;
        Token &tok = tokenAt(c.token);
        tok.remaining--;
        sim_assert(tok.remaining >= 0);
        if (tok.remaining == 0) {
            hot_.pendingRegs[tok.slot] &= ~tok.dstRegMask;
            hot_.pendingMemRegs[tok.slot] &= ~tok.dstRegMask;
            hot_.outstandingLoads[tok.slot]--;
            sim_assert(hot_.outstandingLoads[tok.slot] >= 0);
            freeToken(c.token);
        }
    }
}

void
SmCore::drainWritebacks(Cycle now)
{
    while (!wbQueue_.empty() && wbQueue_.top().ready <= now) {
        const WbEvent ev = wbQueue_.top();
        wbQueue_.pop();
        hot_.pendingRegs[ev.slot] &= ~ev.regMask;
        hot_.pendingPreds[ev.slot] &= ~ev.predMask;
    }
}

void
SmCore::serviceLdstQueue(Cycle now)
{
    for (int port = 0; port < cfg_.l1PortsPerCycle; ++port) {
        if (ldstQueue_.empty())
            break;
        Transaction &tx = ldstQueue_.front();
        // Evaluate the criticality classification at access time.
        tx.info.criticalWarp = cpl_->isCriticalWarp(tx.info.warp);
        const auto result = l1_->access(tx.info, now, tx.token);
        if (result == L1DCache::Result::RejectMshrFull)
            break; // head-of-line retry next cycle
        if (result == L1DCache::Result::Miss && tx.token != 0) {
            Token &tok = tokenAt(tx.token);
            if (!tok.stallNotified) {
                tok.stallNotified = true;
                schedulerOf(tok.slot).notifyLongStall(tok.slot);
            }
        }
        ldstQueue_.pop_front();
    }
}

void
SmCore::refreshSchedArrays()
{
    // Every input of the context arrays (warp state, dispatch age,
    // CPL counters) changes only on block accept or instruction
    // issue; between such events the previous refresh is still exact.
    if (!schedDirty_)
        return;
    schedDirty_ = false;
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        if (hot_.state[slot] == WarpState::Inactive) {
            priority_[slot] = 0;
            continue;
        }
        age_[slot] = warps_[slot].dispatchAge();
        priority_[slot] = oracle_ ? oraclePriority_[slot]
                                  : cpl_->priority(slot);
    }
}

void
SmCore::refreshSlot(WarpSlot slot)
{
    const Warp &warp = warps_[slot];
    hot_.state[slot] = warp.state();
    hot_.nextInst[slot] = warp.state() == WarpState::Running
        ? &warp.nextInstruction() : nullptr;
}

void
SmCore::schedule(Cycle now)
{
    anyReadySeen_ = false;
    for (int k = 0; k < cfg_.numSchedulersPerSm; ++k) {
        readyScratch_.clear();
        for (int slot = k; slot < cfg_.maxWarpsPerSm;
             slot += cfg_.numSchedulersPerSm) {
            if (isReady(slot))
                readyScratch_.push_back(slot);
        }
        anyReadySeen_ = anyReadySeen_ || !readyScratch_.empty();
        SchedCtx ctx{age_, priority_};
        const WarpSlot pick = schedulers_[k]->pick(readyScratch_, ctx);
        if (pick == kNoWarp)
            continue;
        sim_assert(std::find(readyScratch_.begin(), readyScratch_.end(),
                             pick) != readyScratch_.end());
        recordPick(now, k, pick);
        schedIssues_[k]++;
        issue(pick, now);
        schedulers_[k]->notifyIssued(pick);
    }
}

void
SmCore::issue(WarpSlot slot, Cycle now)
{
    Warp &warp = warps_[slot];
    BlockState &block = blockOf(slot);

    ExecContext ctx;
    ctx.global = &memPort_;
    ctx.shared = &block.sharedMem;
    ctx.blockDim = kernel_.blockDim;
    ctx.gridDim = kernel_.gridDim;
    ctx.blockIdX = static_cast<int>(block.id);

    const ExecResult res = warp.executeNext(ctx);
    const Instruction &inst = *res.inst;

    cpl_->onIssue(slot, now);
    if (res.isBranch) {
        cpl_->onBranch(slot, res.pc, inst.target, inst.reconv,
                       res.branchTaken, res.branchDiverged);
    }
    if (traceSink_) {
        // Pure observation: criticality()/isCriticalWarp() are const
        // queries over already-updated CPL state.
        traceSink_->record(now, TraceEventKind::WarpIssue, smId_, slot,
                           res.pc, cpl_->isCriticalWarp(slot));
        traceSink_->record(now, TraceEventKind::CritUpdate, smId_,
                           slot, cpl_->criticality(slot),
                           cpl_->priority(slot));
    }

    hot_.timings[slot].instructions++;
    hot_.lastIssueCycle[slot] = now;
    issued_++;
    issuedThisCycle_[slot] = true;
    schedDirty_ = true;

    const std::uint32_t reg_mask = inst.writeRegs;
    const std::uint8_t pred_mask = inst.writePreds;

    switch (inst.funcUnit()) {
      case FuncUnit::Alu:
        if (reg_mask || pred_mask) {
            hot_.pendingRegs[slot] |= reg_mask;
            hot_.pendingPreds[slot] |= pred_mask;
            wbQueue_.push(
                {now + cfg_.aluLatency, slot, reg_mask, pred_mask});
        }
        break;

      case FuncUnit::Sfu:
        hot_.pendingRegs[slot] |= reg_mask;
        wbQueue_.push({now + cfg_.sfuLatency, slot, reg_mask, 0});
        break;

      case FuncUnit::Mem:
        if (inst.isGlobal()) {
            coalescer_.coalesce(*res.laneAddrs, lineScratch_);
            const std::vector<Addr> &lines = lineScratch_;
            std::uint64_t token = 0;
            if (inst.isLoad()) {
                token = allocToken();
                // Pool entries are recycled: reset every field.
                Token &tok = tokenAt(token);
                tok.slot = slot;
                tok.dstRegMask = reg_mask;
                tok.remaining = static_cast<int>(lines.size());
                tok.stallNotified = false;
                hot_.pendingRegs[slot] |= reg_mask;
                hot_.pendingMemRegs[slot] |= reg_mask;
                hot_.outstandingLoads[slot]++;
            }
            for (Addr line : lines) {
                Transaction tx;
                tx.info.addr = line;
                tx.info.pc = res.pc;
                tx.info.warp = slot;
                tx.info.isStore = !inst.isLoad();
                tx.token = token;
                ldstQueue_.push_back(tx);
            }
        } else if (inst.isLoad()) {
            // Shared-memory load: fixed latency writeback.
            hot_.pendingRegs[slot] |= reg_mask;
            wbQueue_.push(
                {now + cfg_.sharedMemLatency, slot, reg_mask, 0});
        }
        // Shared-memory stores complete at issue.
        break;

      case FuncUnit::Control:
        if (res.atBarrier) {
            // Fault hook: swallow the Nth barrier arrival. The warp
            // already moved to AtBarrier, so its block can never
            // release -- a guaranteed barrier deadlock for the
            // watchdog tests.
            if (cfg_.faults.dropBarrierArrival == barrierArrivalSeq_++)
                break;
            CAWA_TRACE_EVENT(traceSink_, now,
                             TraceEventKind::BarrierArrive, smId_,
                             slot, static_cast<std::int64_t>(block.id));
            if (block.barrier.arrive())
                releaseBarrier(block, now);
        } else if (res.exited) {
            finishWarp(slot, now);
        }
        break;
    }

    // The warp's PC (and possibly state) moved in executeNext, and a
    // barrier arrival / exit above may have moved it further: bring
    // the hot mirrors back in sync. Slots touched indirectly (barrier
    // release, block retire) were refreshed inside those helpers.
    refreshSlot(slot);
}

void
SmCore::releaseBarrier(BlockState &block, Cycle now)
{
    std::int64_t released = 0;
    for (WarpSlot s : block.slots) {
        Warp &w = warps_[s];
        if (w.state() == WarpState::AtBarrier) {
            w.setState(WarpState::Running);
            refreshSlot(s);
            cpl_->releaseBarrier(s, now);
            released++;
        }
    }
    CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::BarrierRelease,
                     smId_, -1, static_cast<std::int64_t>(block.id),
                     released);
}

void
SmCore::finishWarp(WarpSlot slot, Cycle now)
{
    BlockState &block = blockOf(slot);
    hot_.timings[slot].endCycle = now;
    cpl_->deactivate(slot);
    schedulerOf(slot).notifyDeactivated(slot);
    block.runningWarps--;
    sim_assert(block.runningWarps >= 0);
    if (block.runningWarps > 0) {
        if (block.barrier.reduceExpected())
            releaseBarrier(block, now);
    } else {
        retireBlock(block, now);
    }
}

void
SmCore::retireBlock(BlockState &block, Cycle now)
{
    BlockRecord rec;
    rec.id = block.id;
    rec.smId = smId_;
    rec.startCycle = block.start;
    rec.endCycle = now;
    rec.cplSamples = block.samples;
    for (std::size_t i = 0; i < block.slots.size(); ++i) {
        const WarpSlot slot = block.slots[i];
        const WarpTimings &t = hot_.timings[slot];
        WarpRecord wr;
        wr.warpInBlock = static_cast<int>(i);
        wr.startCycle = t.startCycle;
        wr.endCycle = t.endCycle;
        wr.instructions = t.instructions;
        wr.memStallCycles = t.memStallCycles;
        wr.aluStallCycles = t.aluStallCycles;
        wr.structStallCycles = t.structStallCycles;
        wr.schedWaitCycles = t.schedWaitCycles;
        wr.barrierCycles = t.barrierCycles;
        wr.finishedWaitCycles = t.finishedWaitCycles;
        wr.slowSamples = block.slowSamples[i];
        rec.warps.push_back(wr);
        warps_[slot].deactivate();
        refreshSlot(slot);
        slotBlock_[slot] = -1;
    }
    CAWA_TRACE_EVENT(traceSink_, now, TraceEventKind::BlockRetire,
                     smId_, -1, static_cast<std::int64_t>(block.id));
    retired_.push_back(std::move(rec));
    residentBlocks_--;
    freeSlots_ += static_cast<int>(block.slots.size());
    sim_assert(freeSlots_ <= cfg_.maxWarpsPerSm);
    regsUsed_ -= kernel_.blockDim * kernel_.regsPerThread;
    smemUsed_ -= kernel_.smemPerBlock;
    block.valid = false;
}

StallReason
SmCore::classifyStall(WarpSlot slot) const
{
    switch (hot_.state[slot]) {
      case WarpState::Finished:
        return StallReason::FinishedWait;
      case WarpState::AtBarrier:
        return StallReason::Barrier;
      default: {
        const Instruction &inst = *hot_.nextInst[slot];
        if (!hot_.canIssue(slot, inst)) {
            return hot_.blockedByMemory(slot, inst)
                ? StallReason::Mem : StallReason::Alu;
        }
        if (inst.isGlobal() &&
            static_cast<int>(ldstQueue_.size()) >=
                cfg_.ldstQueueSize) {
            return StallReason::Struct;
        }
        if (inst.op == Opcode::Exit &&
            (!hot_.clean(slot) || hot_.outstandingLoads[slot] > 0))
            return StallReason::Mem;
        return StallReason::SchedWait;
      }
    }
}

void
SmCore::chargeStall(WarpSlot slot, std::uint64_t amount, Cycle at)
{
    const StallReason reason = classifyStall(slot);
    WarpTimings &t = hot_.timings[slot];
    switch (reason) {
      case StallReason::Mem:
        t.memStallCycles += amount;
        break;
      case StallReason::Alu:
        t.aluStallCycles += amount;
        break;
      case StallReason::Struct:
        t.structStallCycles += amount;
        break;
      case StallReason::SchedWait:
        t.schedWaitCycles += amount;
        break;
      case StallReason::Barrier:
        t.barrierCycles += amount;
        break;
      case StallReason::FinishedWait:
        t.finishedWaitCycles += amount;
        break;
    }
    // One event covers the whole span (ts = first stalled cycle), so
    // bulk fast-forward charging and flat per-cycle charging produce
    // the same totals either way.
    CAWA_TRACE_EVENT(traceSink_, at, TraceEventKind::WarpStall, smId_,
                     slot, static_cast<std::int64_t>(reason),
                     static_cast<std::int64_t>(amount));
}

void
SmCore::accountStalls(Cycle now)
{
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        if (hot_.state[slot] == WarpState::Inactive ||
            issuedThisCycle_[slot])
            continue;
        chargeStall(slot, 1, now);
    }
}

void
SmCore::accountIdleSpan(Cycle start, Cycle span)
{
    // Over a span with no SM events no warp issues, so every active
    // warp's classification holds for each skipped cycle.
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        if (hot_.state[slot] == WarpState::Inactive)
            continue;
        chargeStall(slot, span, start);
    }
}

void
SmCore::catchUpStalls(Cycle now)
{
    // Charge the cycles in (lastTicked_, now) that fast-forward
    // skipped; by construction none of them had an SM event, so the
    // frozen classification is exact for the whole span.
    if (now <= lastTicked_ + 1)
        return;
    accountIdleSpan(lastTicked_ + 1, now - lastTicked_ - 1);
    lastTicked_ = now - 1;
}

void
SmCore::sampleCpl(Cycle now)
{
    // now is on a sampling boundary iff it equals its own round-up.
    if (cfg_.cplSampleInterval == 0 ||
        now != cachedBoundary(now, cfg_.cplSampleInterval,
                              cplBoundaryCache_))
        return;
    for (auto &block : blocks_) {
        if (!block.valid)
            continue;
        // Rank every warp of the block -- finished warps participate
        // with frozen counters (the paper's "larger than 50% of warps
        // in a thread-block" rule).
        const int n = static_cast<int>(block.slots.size());
        if (n < 2)
            continue;
        critScratch_.clear();
        for (WarpSlot slot : block.slots)
            critScratch_.push_back(cpl_->criticality(slot));
        block.samples++;
        // A warp is "slow" when its criticality exceeds that of at
        // least half of its peers (the paper's 50% rule). The number
        // of strictly-smaller peers is a rank lookup in the sorted
        // values (a warp is never strictly smaller than itself).
        critSorted_.assign(critScratch_.begin(), critScratch_.end());
        std::sort(critSorted_.begin(), critSorted_.end());
        for (int i = 0; i < n; ++i) {
            const auto below = std::lower_bound(critSorted_.begin(),
                                                critSorted_.end(),
                                                critScratch_[i]) -
                               critSorted_.begin();
            if (2 * below >= n - 1)
                block.slowSamples[i]++;
        }
    }
}

void
SmCore::sampleTrace(Cycle now)
{
    if (cfg_.traceBlockId < 0 ||
        now != cachedBoundary(now, cfg_.traceSampleInterval,
                              traceBoundaryCache_))
        return;
    for (const auto &block : blocks_) {
        if (!block.valid ||
            block.id != static_cast<BlockId>(cfg_.traceBlockId))
            continue;
        TraceSample sample;
        sample.cycle = now;
        for (WarpSlot s : block.slots)
            sample.criticality.push_back(cpl_->criticality(s));
        trace_.push_back(std::move(sample));
    }
}

void
SmCore::tick(Cycle now)
{
    // Keep assertion messages anchored: any sim_assert firing below
    // reports this cycle/SM (cheap: two thread-local stores).
    setSimAssertContext(now, smId_);
    if (cfg_.profilePhases) {
        // The timed twin lives in its own function so the common
        // path carries only this one predictable branch.
        tickProfiled(now);
        return;
    }
    catchUpStalls(now);
    std::fill(issuedThisCycle_.begin(), issuedThisCycle_.end(), false);
    drainL1(now);
    drainWritebacks(now);
    serviceLdstQueue(now);
    refreshSchedArrays();
    schedule(now);
    accountStalls(now);
    sampleCpl(now);
    sampleTrace(now);
    lastTicked_ = now;
    cachedNextEvent_ = computeNextEventCycle(now + 1);
}

void
SmCore::tickProfiled(Cycle now)
{
    // Same sequence as tick(), with a steady_clock read between
    // sections. Timing is observational: the simulated state after
    // this function is identical to tick()'s.
    using SteadyClock = std::chrono::steady_clock;
    const auto sec = [](SteadyClock::duration d) {
        return std::chrono::duration<double>(d).count();
    };
    const auto t0 = SteadyClock::now();
    catchUpStalls(now);
    std::fill(issuedThisCycle_.begin(), issuedThisCycle_.end(), false);
    const auto t1 = SteadyClock::now();
    drainL1(now);
    drainWritebacks(now);
    serviceLdstQueue(now);
    const auto t2 = SteadyClock::now();
    refreshSchedArrays();
    schedule(now);
    const auto t3 = SteadyClock::now();
    accountStalls(now);
    const auto t4 = SteadyClock::now();
    sampleCpl(now);
    sampleTrace(now);
    const auto t5 = SteadyClock::now();
    phaseSeconds_.account += sec(t1 - t0) + sec(t4 - t3);
    phaseSeconds_.l1 += sec(t2 - t1);
    phaseSeconds_.sched += sec(t3 - t2);
    phaseSeconds_.cpl += sec(t5 - t4);
    lastTicked_ = now;
    cachedNextEvent_ = computeNextEventCycle(now + 1);
}

Cycle
SmCore::cachedBoundary(Cycle now, Cycle interval, Cycle &cache) const
{
    // Smallest multiple of interval >= now, recomputed (one division)
    // only when now leaves the cached boundary's window
    // (cache - interval, cache]. Ticks advance monotonically, so in
    // steady state this is two compares per call instead of a 64-bit
    // divide; the window check keeps it correct for any call order
    // (including the stale cache=0 after a checkpoint load).
    if (now > cache || now + interval <= cache)
        cache = (now + interval - 1) / interval * interval;
    return cache;
}

Cycle
SmCore::computeNextEventCycle(Cycle now) const
{
    // Queued LD/ST transactions are serviced every cycle, and a ready
    // warp issues next tick: no skipping. Readiness is taken from the
    // scan schedule() just did; any warp turning ready mid-tick after
    // its scheduler's scan implies an issue happened (barrier
    // release), which also sets the flag. The flag may over-trigger
    // (e.g. the lone ready warp just issued its last instruction);
    // such a wake is a no-op tick with identical accounting.
    if (!ldstQueue_.empty() || anyReadySeen_)
        return now;

    Cycle next = kNoCycle;
    if (!wbQueue_.empty())
        next = std::min(next, std::max(now, wbQueue_.top().ready));
    next = std::min(next, l1_->nextEventCycle(now));
    if (residentBlocks_ > 0) {
        // Sampling mutates per-block counters even when the warps are
        // frozen, so a skip may not cross a boundary.
        if (cfg_.cplSampleInterval > 0)
            next = std::min(next,
                            cachedBoundary(now, cfg_.cplSampleInterval,
                                           cplBoundaryCache_));
        if (cfg_.traceBlockId >= 0 && cfg_.traceSampleInterval > 0)
            next = std::min(next,
                            cachedBoundary(now,
                                           cfg_.traceSampleInterval,
                                           traceBoundaryCache_));
    }
    return next;
}

bool
SmCore::busy() const
{
    if (residentBlocks_ > 0)
        return true;
    return !l1_->idle() || tokenPool_.live() > 0 || !ldstQueue_.empty();
}

std::vector<BlockRecord>
SmCore::takeRetiredBlocks()
{
    return std::exchange(retired_, {});
}

void
SmCore::recordPick(Cycle now, int sched, WarpSlot slot)
{
    if (pickHistory_.size() < kPickHistory) {
        pickHistory_.push_back({now, sched, slot});
        return;
    }
    pickHistory_[pickHead_] = {now, sched, slot};
    pickHead_ = (pickHead_ + 1) % kPickHistory;
}

SmCore::StuckSummary
SmCore::stuckSummary() const
{
    StuckSummary s;
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        switch (hot_.state[slot]) {
          case WarpState::Running:
            s.activeWarps++;
            break;
          case WarpState::AtBarrier:
            s.activeWarps++;
            s.atBarrier++;
            break;
          case WarpState::Finished:
            s.finishedWaiting++;
            break;
          default:
            break;
        }
        if (hot_.state[slot] != WarpState::Inactive &&
            hot_.outstandingLoads[slot] > 0)
            s.withOutstandingLoads++;
    }
    s.l1Mshrs = l1_->pendingMshrs();
    s.ldstQueued = ldstQueue_.size();
    s.liveTokens = tokenPool_.live();
    return s;
}

bool
SmCore::quiescent() const
{
    if (!wbQueue_.empty() || !ldstQueue_.empty())
        return false;
    if (l1_->pendingCompletions() > 0 || l1_->outgoingQueued() > 0)
        return false;
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot)
        if (isReady(slot))
            return false;
    return true;
}

namespace
{

const char *
warpStateName(WarpState s)
{
    switch (s) {
      case WarpState::Inactive: return "inactive";
      case WarpState::Running: return "running";
      case WarpState::AtBarrier: return "atBarrier";
      case WarpState::Finished: return "finished";
    }
    return "?";
}

} // namespace

void
SmCore::appendDeadlockDump(std::string &out, Cycle now) const
{
    std::ostringstream oss;
    oss << "sm " << smId_ << ": residentBlocks=" << residentBlocks_
        << " liveTokens=" << tokenPool_.live()
        << " wbQueue=" << wbQueue_.size()
        << " ldstQueue=" << ldstQueue_.size()
        << " l1.mshrs=" << l1_->pendingMshrs()
        << " l1.completions=" << l1_->pendingCompletions()
        << " l1.outgoing=" << l1_->outgoingQueued() << "\n";
    for (const auto &block : blocks_) {
        if (!block.valid)
            continue;
        oss << "  block " << block.id << ": barrier "
            << block.barrier.arrived() << "/"
            << block.barrier.expected() << " arrived, runningWarps="
            << block.runningWarps << "\n";
        for (std::size_t i = 0; i < block.slots.size(); ++i) {
            const WarpSlot slot = block.slots[i];
            const Warp &warp = warps_[slot];
            oss << "    warp slot " << slot << " (warp-in-block " << i
                << "): " << warpStateName(warp.state())
                << " pc=" << warp.stack().pc()
                << " criticality=" << cpl_->criticality(slot)
                << " outstandingLoads=" << hot_.outstandingLoads[slot]
                << std::hex << " pendingRegs=0x"
                << hot_.pendingRegs[slot] << " pendingMemRegs=0x"
                << hot_.pendingMemRegs[slot] << std::dec << "\n";
        }
    }
    if (!pickHistory_.empty()) {
        oss << "  recent picks (cycle/scheduler/slot):";
        // Ring order: oldest entry first once the ring has wrapped.
        const std::size_t n = pickHistory_.size();
        const std::size_t start = n < kPickHistory ? 0 : pickHead_;
        for (std::size_t i = 0; i < n; ++i) {
            const PickRecord &p = pickHistory_[(start + i) % n];
            oss << " " << p.cycle << "/" << p.sched << "/" << p.slot;
        }
        oss << "\n";
    }
    (void)now;
    out += oss.str();
}

void
SmCore::auditFail(Cycle now, int warp, const std::string &msg) const
{
    SimErrorContext ctx;
    ctx.cycle = now;
    ctx.smId = smId_;
    ctx.warp = warp;
    throw SimError(SimErrorKind::Invariant, msg, ctx);
}

void
SmCore::audit(Cycle now, int level) const
{
    if (level <= 0)
        return;

    // --- Level 1: cheap conservation checks ---

    // Hot-state mirrors: hot_.state / hot_.nextInst are derived caches
    // of the warp objects and must never drift from them.
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        const Warp &warp = warps_[slot];
        if (hot_.state[slot] != warp.state())
            auditFail(now, slot, "hot state mirror out of sync with "
                                 "warp state");
        const Instruction *expect = warp.state() == WarpState::Running
            ? &warp.nextInstruction() : nullptr;
        if (hot_.nextInst[slot] != expect)
            auditFail(now, slot, "hot next-instruction cache out of "
                                 "sync with SIMT stack PC");
    }

    // Token pool: the live counter must equal allocated-minus-freed.
    const int pool_live = static_cast<int>(tokenPool_.size()) -
                          static_cast<int>(tokenPool_.freeList().size());
    if (tokenPool_.live() != pool_live)
        auditFail(now, -1,
                  "token pool conservation: liveTokens=" +
                      std::to_string(tokenPool_.live()) +
                      " but pool holds " + std::to_string(pool_live) +
                      " unfreed entries");

    // Mark which pool entries are live (free-list complement).
    std::vector<bool> tokenLive(tokenPool_.size(), true);
    for (std::uint32_t idx : tokenPool_.freeList()) {
        if (idx >= tokenPool_.size() || !tokenLive[idx])
            auditFail(now, -1,
                      "token free list corrupt: index " +
                          std::to_string(idx) + " out of range or freed "
                          "twice (pool size " +
                          std::to_string(tokenPool_.size()) + ")");
        tokenLive[idx] = false;
    }

    // Warp-slot / register / shared-memory occupancy vs block state.
    int valid_blocks = 0;
    int bound_slots = 0;
    for (const auto &block : blocks_) {
        if (!block.valid)
            continue;
        valid_blocks++;
        bound_slots += static_cast<int>(block.slots.size());

        // Barrier accounting: expected tracks still-running warps,
        // arrived tracks warps actually parked at the barrier.
        if (block.barrier.expected() != block.runningWarps)
            auditFail(now, -1,
                      "barrier expected=" +
                          std::to_string(block.barrier.expected()) +
                          " != runningWarps=" +
                          std::to_string(block.runningWarps) +
                          " in block " + std::to_string(block.id));
        int at_barrier = 0;
        for (WarpSlot s : block.slots)
            if (warps_[s].state() == WarpState::AtBarrier)
                at_barrier++;
        if (block.barrier.arrived() != at_barrier)
            auditFail(now, -1,
                      "barrier arrived=" +
                          std::to_string(block.barrier.arrived()) +
                          " but " + std::to_string(at_barrier) +
                          " warps are AtBarrier in block " +
                          std::to_string(block.id) +
                          " (lost arrival?)");
    }
    if (valid_blocks != residentBlocks_)
        auditFail(now, -1,
                  "residentBlocks_=" + std::to_string(residentBlocks_) +
                      " but " + std::to_string(valid_blocks) +
                      " block slots are valid");
    if (freeSlots_ != cfg_.maxWarpsPerSm - bound_slots)
        auditFail(now, -1,
                  "freeSlots_=" + std::to_string(freeSlots_) +
                      " but blocks bind " + std::to_string(bound_slots) +
                      " of " + std::to_string(cfg_.maxWarpsPerSm) +
                      " warp slots");
    const int regs_expected =
        residentBlocks_ * kernel_.blockDim * kernel_.regsPerThread;
    if (regsUsed_ != regs_expected)
        auditFail(now, -1,
                  "regsUsed_=" + std::to_string(regsUsed_) + " != " +
                      std::to_string(regs_expected) + " for " +
                      std::to_string(residentBlocks_) +
                      " resident blocks");
    if (smemUsed_ != residentBlocks_ * kernel_.smemPerBlock)
        auditFail(now, -1,
                  "smemUsed_=" + std::to_string(smemUsed_) + " != " +
                      std::to_string(residentBlocks_ *
                                     kernel_.smemPerBlock) +
                      " for " + std::to_string(residentBlocks_) +
                      " resident blocks");

    // Per-warp outstandingLoads vs the live tokens that name the slot.
    std::vector<int> tokensPerSlot(cfg_.maxWarpsPerSm, 0);
    for (std::size_t i = 0; i < tokenPool_.size(); ++i) {
        if (!tokenLive[i])
            continue;
        const Token &tok = tokenPool_.at(static_cast<std::uint32_t>(i));
        if (tok.slot < 0 || tok.slot >= cfg_.maxWarpsPerSm)
            auditFail(now, -1,
                      "live token " + std::to_string(i + 1) +
                          " names invalid warp slot " +
                          std::to_string(tok.slot));
        tokensPerSlot[tok.slot]++;
    }
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        const int expect = hot_.state[slot] == WarpState::Inactive
            ? 0 : tokensPerSlot[slot];
        if (hot_.outstandingLoads[slot] != expect)
            auditFail(now, slot,
                      "outstandingLoads=" +
                          std::to_string(hot_.outstandingLoads[slot]) +
                          " but " + std::to_string(tokensPerSlot[slot]) +
                          " live tokens name this slot");
    }

    if (level < 2)
        return;

    // --- Level 2: full cross-checks ---

    // Every live token must still be referenced by exactly
    // tok.remaining pending line transactions (waiting in the LD/ST
    // queue, merged into an L1 MSHR, or queued as a completion). A
    // shortfall means a completion was lost: the token can never
    // retire and its warp is blocked for good.
    std::vector<std::uint64_t> referenced;
    l1_->collectReferencedTokens(referenced);
    std::vector<int> refCount(tokenPool_.size(), 0);
    auto countRef = [&](std::uint64_t id) {
        if (id == 0)
            return; // stores carry no token
        if (id > tokenPool_.size() || !tokenLive[id - 1])
            auditFail(now, -1,
                      "memory system references token " +
                          std::to_string(id) +
                          " which is not live (use after free)");
        refCount[id - 1]++;
    };
    for (std::uint64_t id : referenced)
        countRef(id);
    for (std::size_t i = 0; i < ldstQueue_.size(); ++i)
        countRef(ldstQueue_[i].token);
    for (std::size_t i = 0; i < tokenPool_.size(); ++i) {
        if (!tokenLive[i])
            continue;
        const Token &tok = tokenPool_.at(static_cast<std::uint32_t>(i));
        if (refCount[i] != tok.remaining)
            auditFail(now, tok.slot,
                      "token " + std::to_string(i + 1) + " expects " +
                          std::to_string(tok.remaining) +
                          " more completions but only " +
                          std::to_string(refCount[i]) +
                          " pending references exist (lost completion)");
    }

    // Scoreboard vs in-flight writebacks: a warp's pending masks must
    // equal the union of what the writeback queue and its live load
    // tokens still owe it.
    std::vector<std::uint32_t> owedRegs(cfg_.maxWarpsPerSm, 0);
    std::vector<std::uint32_t> owedMemRegs(cfg_.maxWarpsPerSm, 0);
    std::vector<std::uint8_t> owedPreds(cfg_.maxWarpsPerSm, 0);
    auto wbCopy = wbQueue_; // priority_queue: drain a copy to iterate
    while (!wbCopy.empty()) {
        const WbEvent &ev = wbCopy.top();
        owedRegs[ev.slot] |= ev.regMask;
        owedPreds[ev.slot] |= ev.predMask;
        wbCopy.pop();
    }
    for (std::size_t i = 0; i < tokenPool_.size(); ++i) {
        if (!tokenLive[i])
            continue;
        const Token &tok = tokenPool_.at(static_cast<std::uint32_t>(i));
        owedRegs[tok.slot] |= tok.dstRegMask;
        owedMemRegs[tok.slot] |= tok.dstRegMask;
    }
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        if (hot_.state[slot] == WarpState::Inactive)
            continue;
        if (hot_.pendingRegs[slot] != owedRegs[slot] ||
            hot_.pendingMemRegs[slot] != owedMemRegs[slot] ||
            hot_.pendingPreds[slot] != owedPreds[slot])
            auditFail(now, slot,
                      "scoreboard out of sync with in-flight "
                      "writebacks: pendingRegs=" +
                          std::to_string(hot_.pendingRegs[slot]) +
                          "/owed " + std::to_string(owedRegs[slot]) +
                          ", pendingMemRegs=" +
                          std::to_string(hot_.pendingMemRegs[slot]) +
                          "/owed " + std::to_string(owedMemRegs[slot]) +
                          ", pendingPreds=" +
                          std::to_string(hot_.pendingPreds[slot]) +
                          "/owed " + std::to_string(owedPreds[slot]));
    }

    // Lazy stall accounting: for every block-bound warp the charged
    // cycles (issues plus every stall class) must cover exactly the
    // cycles since activation, up to this SM's accounting horizon.
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        if (slotBlock_[slot] < 0)
            continue;
        const WarpTimings &t = hot_.timings[slot];
        if (lastTicked_ < t.startCycle)
            continue; // activated this very cycle, nothing charged yet
        const std::uint64_t charged =
            t.instructions + t.memStallCycles + t.aluStallCycles +
            t.structStallCycles + t.schedWaitCycles + t.barrierCycles +
            t.finishedWaitCycles;
        const std::uint64_t expect = lastTicked_ - t.startCycle + 1;
        if (charged != expect)
            auditFail(now, slot,
                      "stall accounting leak: " +
                          std::to_string(charged) +
                          " cycles charged over a lifetime of " +
                          std::to_string(expect) +
                          " (startCycle=" + std::to_string(t.startCycle) +
                          ", lastTicked=" + std::to_string(lastTicked_) +
                          ")");
    }

    // SIMT-stack sanity: an unfinished warp must have a live stack
    // with at least one active lane to ever make progress.
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        const Warp &warp = warps_[slot];
        if (warp.state() != WarpState::Running &&
            warp.state() != WarpState::AtBarrier)
            continue;
        if (warp.stack().depth() < 1)
            auditFail(now, slot, "SIMT stack empty on an active warp");
        if (warp.stack().activeMask() == 0)
            auditFail(now, slot,
                      "SIMT stack top has no active lanes on an "
                      "active warp");
    }
}

void
SmCore::save(OutArchive &ar) const
{
    ar.putU32(static_cast<std::uint32_t>(warps_.size()));
    for (std::size_t i = 0; i < warps_.size(); ++i)
        warps_[i].save(ar, hot_, static_cast<int>(i));

    for (int block_index : slotBlock_)
        ar.putU32(static_cast<std::uint32_t>(block_index));

    ar.putU32(static_cast<std::uint32_t>(blocks_.size()));
    for (const BlockState &block : blocks_) {
        ar.putBool(block.valid);
        ar.putU32(block.id);
        ar.putU64(block.start);
        ar.putU32(static_cast<std::uint32_t>(block.slots.size()));
        for (WarpSlot slot : block.slots)
            ar.putU32(static_cast<std::uint32_t>(slot));
        ar.putBytes(block.sharedMem.data(), block.sharedMem.size());
        block.barrier.save(ar);
        ar.putU32(static_cast<std::uint32_t>(block.runningWarps));
        ar.putU64(block.samples);
        ar.putU32(static_cast<std::uint32_t>(block.slowSamples.size()));
        for (std::uint64_t v : block.slowSamples)
            ar.putU64(v);
    }

    for (const auto &sched : schedulers_)
        sched->saveState(ar);
    cpl_->save(ar);
    l1_->save(ar);

    for (std::uint64_t v : age_)
        ar.putU64(v);
    for (std::int64_t v : priority_)
        ar.putI64(v);
    for (std::int64_t v : oraclePriority_)
        ar.putI64(v);
    for (bool v : issuedThisCycle_)
        ar.putBool(v);

    // Drain a copy of the writeback heap (see the header comment on
    // why the resulting equal-ready order is behavior-neutral).
    auto wb_copy = wbQueue_;
    ar.putU32(static_cast<std::uint32_t>(wb_copy.size()));
    while (!wb_copy.empty()) {
        const WbEvent &ev = wb_copy.top();
        ar.putU64(ev.ready);
        ar.putU32(static_cast<std::uint32_t>(ev.slot));
        ar.putU32(ev.regMask);
        ar.putU8(ev.predMask);
        wb_copy.pop();
    }

    ar.putU32(static_cast<std::uint32_t>(ldstQueue_.size()));
    for (std::size_t i = 0; i < ldstQueue_.size(); ++i) {
        saveAccessInfo(ar, ldstQueue_[i].info);
        ar.putU64(ldstQueue_[i].token);
    }

    // The token pool must round-trip exactly (indices are live ids
    // and the free-list order decides future id assignment).
    tokenPool_.save(ar, [](OutArchive &a, const Token &t) {
        a.putU32(static_cast<std::uint32_t>(t.slot));
        a.putU32(t.dstRegMask);
        a.putU32(static_cast<std::uint32_t>(t.remaining));
        a.putBool(t.stallNotified);
    });
    ar.putU32(static_cast<std::uint32_t>(tokenPool_.live()));

    ar.putU64(dispatchSeq_);
    ar.putI64(barrierArrivalSeq_);
    ar.putI64(loadCompletionSeq_);

    ar.putU32(static_cast<std::uint32_t>(pickHistory_.size()));
    for (const PickRecord &p : pickHistory_) {
        ar.putU64(p.cycle);
        ar.putU32(static_cast<std::uint32_t>(p.sched));
        ar.putU32(static_cast<std::uint32_t>(p.slot));
    }
    ar.putU64(static_cast<std::uint64_t>(pickHead_));

    ar.putU32(static_cast<std::uint32_t>(residentBlocks_));
    ar.putU32(static_cast<std::uint32_t>(freeSlots_));
    ar.putU32(static_cast<std::uint32_t>(regsUsed_));
    ar.putU32(static_cast<std::uint32_t>(smemUsed_));
    ar.putU64(issued_);
    for (std::uint64_t v : schedIssues_)
        ar.putU64(v);
    ar.putBool(schedDirty_);
    ar.putBool(anyReadySeen_);
    ar.putU64(lastTicked_);
    ar.putU64(cachedNextEvent_);

    ar.putU32(static_cast<std::uint32_t>(retired_.size()));
    for (const BlockRecord &rec : retired_) {
        ar.putU32(rec.id);
        ar.putU32(static_cast<std::uint32_t>(rec.smId));
        ar.putU64(rec.startCycle);
        ar.putU64(rec.endCycle);
        ar.putU64(rec.cplSamples);
        ar.putU32(static_cast<std::uint32_t>(rec.warps.size()));
        for (const WarpRecord &w : rec.warps) {
            ar.putU32(static_cast<std::uint32_t>(w.warpInBlock));
            ar.putU64(w.startCycle);
            ar.putU64(w.endCycle);
            ar.putU64(w.instructions);
            ar.putU64(w.memStallCycles);
            ar.putU64(w.aluStallCycles);
            ar.putU64(w.structStallCycles);
            ar.putU64(w.schedWaitCycles);
            ar.putU64(w.barrierCycles);
            ar.putU64(w.finishedWaitCycles);
            ar.putU64(w.slowSamples);
        }
    }

    ar.putU32(static_cast<std::uint32_t>(trace_.size()));
    for (const TraceSample &s : trace_) {
        ar.putU64(s.cycle);
        ar.putU32(static_cast<std::uint32_t>(s.criticality.size()));
        for (std::int64_t v : s.criticality)
            ar.putI64(v);
    }
}

void
SmCore::load(InArchive &ar)
{
    const std::uint32_t num_warps = ar.getU32();
    if (num_warps != warps_.size())
        throw SimError(SimErrorKind::Checkpoint,
                       "section '" + ar.section() +
                           "': warp slot count mismatch (file " +
                           std::to_string(num_warps) + ", config " +
                           std::to_string(warps_.size()) + ")");
    for (std::size_t i = 0; i < warps_.size(); ++i)
        warps_[i].load(ar, &kernel_.program, hot_,
                       static_cast<int>(i));
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot)
        refreshSlot(slot);

    for (int &block_index : slotBlock_)
        block_index = static_cast<int>(ar.getU32());

    const std::uint32_t num_blocks = ar.getU32();
    if (num_blocks != blocks_.size())
        throw SimError(SimErrorKind::Checkpoint,
                       "section '" + ar.section() +
                           "': block slot count mismatch (file " +
                           std::to_string(num_blocks) + ", config " +
                           std::to_string(blocks_.size()) + ")");
    for (BlockState &block : blocks_) {
        block.valid = ar.getBool();
        block.id = ar.getU32();
        block.start = ar.getU64();
        block.slots.clear();
        const std::uint32_t num_slots = ar.getU32();
        for (std::uint32_t i = 0; i < num_slots; ++i)
            block.slots.push_back(static_cast<WarpSlot>(ar.getU32()));
        block.sharedMem = ar.getBytes();
        block.barrier.load(ar);
        block.runningWarps = static_cast<int>(ar.getU32());
        block.samples = ar.getU64();
        block.slowSamples.clear();
        const std::uint32_t num_samples = ar.getU32();
        for (std::uint32_t i = 0; i < num_samples; ++i)
            block.slowSamples.push_back(ar.getU64());
    }

    for (auto &sched : schedulers_)
        sched->loadState(ar);
    cpl_->load(ar);
    l1_->load(ar);

    for (std::uint64_t &v : age_)
        v = ar.getU64();
    for (std::int64_t &v : priority_)
        v = ar.getI64();
    for (std::int64_t &v : oraclePriority_)
        v = ar.getI64();
    for (std::size_t i = 0; i < issuedThisCycle_.size(); ++i)
        issuedThisCycle_[i] = ar.getBool();

    wbQueue_ = {};
    const std::uint32_t num_wb = ar.getU32();
    for (std::uint32_t i = 0; i < num_wb; ++i) {
        WbEvent ev;
        ev.ready = ar.getU64();
        ev.slot = static_cast<WarpSlot>(ar.getU32());
        ev.regMask = ar.getU32();
        ev.predMask = ar.getU8();
        wbQueue_.push(ev);
    }

    ldstQueue_.clear();
    const std::uint32_t num_ldst = ar.getU32();
    for (std::uint32_t i = 0; i < num_ldst; ++i) {
        Transaction t;
        t.info = loadAccessInfo(ar);
        t.token = ar.getU64();
        ldstQueue_.push_back(t);
    }

    tokenPool_.load(ar, [](InArchive &a, Token &t) {
        t.slot = static_cast<WarpSlot>(a.getU32());
        t.dstRegMask = a.getU32();
        t.remaining = static_cast<int>(a.getU32());
        t.stallNotified = a.getBool();
    });
    // The live count is derivable from the pool; the archived copy
    // stays for format compatibility and as a consistency check.
    const int archived_live = static_cast<int>(ar.getU32());
    sim_assert(archived_live == tokenPool_.live());

    dispatchSeq_ = ar.getU64();
    barrierArrivalSeq_ = ar.getI64();
    loadCompletionSeq_ = ar.getI64();

    pickHistory_.clear();
    const std::uint32_t num_picks = ar.getU32();
    for (std::uint32_t i = 0; i < num_picks; ++i) {
        PickRecord p;
        p.cycle = ar.getU64();
        p.sched = static_cast<int>(ar.getU32());
        p.slot = static_cast<WarpSlot>(ar.getU32());
        pickHistory_.push_back(p);
    }
    pickHead_ = static_cast<std::size_t>(ar.getU64());

    residentBlocks_ = static_cast<int>(ar.getU32());
    freeSlots_ = static_cast<int>(ar.getU32());
    regsUsed_ = static_cast<int>(ar.getU32());
    smemUsed_ = static_cast<int>(ar.getU32());
    issued_ = ar.getU64();
    for (std::uint64_t &v : schedIssues_)
        v = ar.getU64();
    schedDirty_ = ar.getBool();
    anyReadySeen_ = ar.getBool();
    lastTicked_ = ar.getU64();
    cachedNextEvent_ = ar.getU64();

    retired_.clear();
    const std::uint32_t num_retired = ar.getU32();
    for (std::uint32_t i = 0; i < num_retired; ++i) {
        BlockRecord rec;
        rec.id = ar.getU32();
        rec.smId = static_cast<int>(ar.getU32());
        rec.startCycle = ar.getU64();
        rec.endCycle = ar.getU64();
        rec.cplSamples = ar.getU64();
        const std::uint32_t num_wrecs = ar.getU32();
        rec.warps.reserve(num_wrecs);
        for (std::uint32_t w = 0; w < num_wrecs; ++w) {
            WarpRecord wr;
            wr.warpInBlock = static_cast<int>(ar.getU32());
            wr.startCycle = ar.getU64();
            wr.endCycle = ar.getU64();
            wr.instructions = ar.getU64();
            wr.memStallCycles = ar.getU64();
            wr.aluStallCycles = ar.getU64();
            wr.structStallCycles = ar.getU64();
            wr.schedWaitCycles = ar.getU64();
            wr.barrierCycles = ar.getU64();
            wr.finishedWaitCycles = ar.getU64();
            wr.slowSamples = ar.getU64();
            rec.warps.push_back(wr);
        }
        retired_.push_back(std::move(rec));
    }

    trace_.clear();
    const std::uint32_t num_trace = ar.getU32();
    for (std::uint32_t i = 0; i < num_trace; ++i) {
        TraceSample s;
        s.cycle = ar.getU64();
        const std::uint32_t n = ar.getU32();
        s.criticality.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k)
            s.criticality.push_back(ar.getI64());
        trace_.push_back(std::move(s));
    }

    ar.expectEnd();
}

} // namespace cawa
