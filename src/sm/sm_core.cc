#include "sm/sm_core.hh"

#include <algorithm>
#include <utility>

#include "common/sim_assert.hh"
#include "mem/cacp_policy.hh"

namespace cawa
{

namespace
{

std::unique_ptr<ReplacementPolicy>
makeL1Policy(const GpuConfig &cfg)
{
    switch (cfg.l1Policy) {
      case CachePolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case CachePolicyKind::Srrip:
        return std::make_unique<SrripPolicy>();
      case CachePolicyKind::Ship:
        return std::make_unique<ShipPolicy>(cfg.cacp.tableEntries,
                                            cfg.cacp.regionShift);
      case CachePolicyKind::Cacp:
        return std::make_unique<CacpPolicy>(cfg.cacp);
    }
    sim_panic("unknown cache policy kind");
}

} // namespace

SmCore::SmCore(const GpuConfig &cfg, int sm_id, MemoryImage &global,
               const KernelInfo &kernel, const OracleTable *oracle)
    : cfg_(cfg), smId_(sm_id), global_(global), kernel_(kernel),
      oracle_(oracle),
      slotBlock_(cfg.maxWarpsPerSm, -1),
      blocks_(cfg.maxBlocksPerSm),
      coalescer_(cfg.l1d.lineBytes),
      age_(cfg.maxWarpsPerSm, 0),
      priority_(cfg.maxWarpsPerSm, 0),
      oraclePriority_(cfg.maxWarpsPerSm, 0),
      issuedThisCycle_(cfg.maxWarpsPerSm, false),
      freeSlots_(cfg.maxWarpsPerSm)
{
    // Every warp can keep a couple of independent loads in flight;
    // the pool grows on demand beyond this.
    tokenPool_.reserve(static_cast<std::size_t>(cfg.maxWarpsPerSm) * 2);
    readyScratch_.reserve(cfg.maxWarpsPerSm);
    critScratch_.reserve(cfg.maxWarpsPerSm);
    critSorted_.reserve(cfg.maxWarpsPerSm);
    warps_.reserve(cfg.maxWarpsPerSm);
    for (int i = 0; i < cfg.maxWarpsPerSm; ++i)
        warps_.emplace_back(cfg.warpSize);
    for (int i = 0; i < cfg.numSchedulersPerSm; ++i)
        schedulers_.push_back(
            createScheduler(cfg.scheduler, cfg.maxWarpsPerSm));
    cpl_ = std::make_unique<CriticalityPredictor>(cfg.maxWarpsPerSm,
                                                  cfg.criticalFraction);
    cpl_->setUseInstTerm(cfg.cplUseInstTerm);
    cpl_->setUseStallTerm(cfg.cplUseStallTerm);
    cpl_->setQuantShift(cfg.cplQuantShift);
    l1_ = std::make_unique<L1DCache>(cfg.l1d, sm_id, makeL1Policy(cfg));
}

SmCore::BlockState &
SmCore::blockOf(WarpSlot slot)
{
    const int idx = slotBlock_[slot];
    sim_assert(idx >= 0);
    return blocks_[idx];
}

WarpScheduler &
SmCore::schedulerOf(WarpSlot slot)
{
    return *schedulers_[slot % cfg_.numSchedulersPerSm];
}

std::uint64_t
SmCore::allocToken()
{
    std::uint32_t idx;
    if (tokenFreeList_.empty()) {
        idx = static_cast<std::uint32_t>(tokenPool_.size());
        tokenPool_.emplace_back();
    } else {
        idx = tokenFreeList_.back();
        tokenFreeList_.pop_back();
    }
    liveTokens_++;
    return idx + 1;
}

void
SmCore::freeToken(std::uint64_t id)
{
    tokenFreeList_.push_back(static_cast<std::uint32_t>(id - 1));
    liveTokens_--;
    sim_assert(liveTokens_ >= 0);
}

bool
SmCore::canAcceptBlock() const
{
    if (residentBlocks_ >= cfg_.maxBlocksPerSm)
        return false;
    if (freeSlots_ < kernel_.warpsPerBlock(cfg_.warpSize))
        return false;
    if (regsUsed_ + kernel_.blockDim * kernel_.regsPerThread >
        cfg_.regFileSize)
        return false;
    if (smemUsed_ + kernel_.smemPerBlock > cfg_.sharedMemBytes)
        return false;
    return true;
}

void
SmCore::acceptBlock(BlockId id, Cycle now)
{
    sim_assert(canAcceptBlock());
    // Settle skipped-cycle accounting against the pre-accept warp
    // state before the new block's warps become active.
    catchUpStalls(now);
    cachedNextEvent_ = std::min(cachedNextEvent_, now);
    int block_idx = -1;
    for (int i = 0; i < static_cast<int>(blocks_.size()); ++i) {
        if (!blocks_[i].valid) {
            block_idx = i;
            break;
        }
    }
    sim_assert(block_idx >= 0);
    BlockState &block = blocks_[block_idx];
    block = BlockState{};
    block.valid = true;
    block.id = id;
    block.start = now;
    block.sharedMem.assign(
        static_cast<std::size_t>(std::max(kernel_.smemPerBlock, 4)), 0);

    const int warps_needed = kernel_.warpsPerBlock(cfg_.warpSize);
    block.barrier.reset(warps_needed);
    block.runningWarps = warps_needed;
    block.slowSamples.assign(warps_needed, 0);

    int assigned = 0;
    for (int slot = 0;
         slot < cfg_.maxWarpsPerSm && assigned < warps_needed; ++slot) {
        if (warps_[slot].state() != WarpState::Inactive)
            continue;
        int active_threads = cfg_.warpSize;
        if (assigned == warps_needed - 1) {
            const int rem = kernel_.blockDim % cfg_.warpSize;
            if (rem != 0)
                active_threads = rem;
        }
        warps_[slot].activate(&kernel_.program, id, assigned,
                              active_threads, now, dispatchSeq_++);
        slotBlock_[slot] = block_idx;
        block.slots.push_back(slot);
        cpl_->reset(slot, now, id);
        oraclePriority_[slot] =
            oracle_ ? oracle_->lookup(id, assigned) : 0;
        schedulerOf(slot).notifyActivated(slot);
        assigned++;
    }
    sim_assert(assigned == warps_needed);
    residentBlocks_++;
    freeSlots_ -= warps_needed;
    sim_assert(freeSlots_ >= 0);
    regsUsed_ += kernel_.blockDim * kernel_.regsPerThread;
    smemUsed_ += kernel_.smemPerBlock;
    schedDirty_ = true;
}

void
SmCore::drainL1(Cycle now)
{
    completionScratch_.clear();
    l1_->drainCompleted(now, completionScratch_);
    for (const auto &c : completionScratch_) {
        Token &tok = tokenAt(c.token);
        tok.remaining--;
        sim_assert(tok.remaining >= 0);
        if (tok.remaining == 0) {
            Warp &warp = warps_[tok.slot];
            warp.scoreboard.pendingRegs &= ~tok.dstRegMask;
            warp.scoreboard.pendingMemRegs &= ~tok.dstRegMask;
            warp.outstandingLoads--;
            sim_assert(warp.outstandingLoads >= 0);
            freeToken(c.token);
        }
    }
}

void
SmCore::drainWritebacks(Cycle now)
{
    while (!wbQueue_.empty() && wbQueue_.top().ready <= now) {
        const WbEvent ev = wbQueue_.top();
        wbQueue_.pop();
        Warp &warp = warps_[ev.slot];
        warp.scoreboard.pendingRegs &= ~ev.regMask;
        warp.scoreboard.pendingPreds &= ~ev.predMask;
    }
}

void
SmCore::serviceLdstQueue(Cycle now)
{
    for (int port = 0; port < cfg_.l1PortsPerCycle; ++port) {
        if (ldstQueue_.empty())
            break;
        Transaction &tx = ldstQueue_.front();
        // Evaluate the criticality classification at access time.
        tx.info.criticalWarp = cpl_->isCriticalWarp(tx.info.warp);
        const auto result = l1_->access(tx.info, now, tx.token);
        if (result == L1DCache::Result::RejectMshrFull)
            break; // head-of-line retry next cycle
        if (result == L1DCache::Result::Miss && tx.token != 0) {
            Token &tok = tokenAt(tx.token);
            if (!tok.stallNotified) {
                tok.stallNotified = true;
                schedulerOf(tok.slot).notifyLongStall(tok.slot);
            }
        }
        ldstQueue_.pop_front();
    }
}

void
SmCore::refreshSchedArrays()
{
    // Every input of the context arrays (warp state, dispatch age,
    // CPL counters) changes only on block accept or instruction
    // issue; between such events the previous refresh is still exact.
    if (!schedDirty_)
        return;
    schedDirty_ = false;
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        const Warp &warp = warps_[slot];
        if (warp.state() == WarpState::Inactive) {
            priority_[slot] = 0;
            continue;
        }
        age_[slot] = warp.dispatchAge();
        priority_[slot] = oracle_ ? oraclePriority_[slot]
                                  : cpl_->priority(slot);
    }
}

bool
SmCore::isReady(WarpSlot slot) const
{
    const Warp &warp = warps_[slot];
    if (warp.state() != WarpState::Running)
        return false;
    const Instruction &inst = warp.nextInstruction();
    if (!warp.scoreboard.canIssue(inst))
        return false;
    if (inst.isGlobal() &&
        static_cast<int>(ldstQueue_.size()) >= cfg_.ldstQueueSize)
        return false;
    if (inst.op == Opcode::Exit &&
        (!warp.scoreboard.clean() || warp.outstandingLoads > 0))
        return false;
    return true;
}

void
SmCore::schedule(Cycle now)
{
    anyReadySeen_ = false;
    for (int k = 0; k < cfg_.numSchedulersPerSm; ++k) {
        readyScratch_.clear();
        for (int slot = k; slot < cfg_.maxWarpsPerSm;
             slot += cfg_.numSchedulersPerSm) {
            if (isReady(slot))
                readyScratch_.push_back(slot);
        }
        anyReadySeen_ = anyReadySeen_ || !readyScratch_.empty();
        SchedCtx ctx{age_, priority_};
        const WarpSlot pick = schedulers_[k]->pick(readyScratch_, ctx);
        if (pick == kNoWarp)
            continue;
        sim_assert(std::find(readyScratch_.begin(), readyScratch_.end(),
                             pick) != readyScratch_.end());
        issue(pick, now);
        schedulers_[k]->notifyIssued(pick);
    }
}

void
SmCore::issue(WarpSlot slot, Cycle now)
{
    Warp &warp = warps_[slot];
    BlockState &block = blockOf(slot);

    ExecContext ctx;
    ctx.global = &global_;
    ctx.shared = &block.sharedMem;
    ctx.blockDim = kernel_.blockDim;
    ctx.gridDim = kernel_.gridDim;
    ctx.blockIdX = static_cast<int>(block.id);

    const ExecResult res = warp.executeNext(ctx);
    const Instruction &inst = *res.inst;

    cpl_->onIssue(slot, now);
    if (res.isBranch) {
        cpl_->onBranch(slot, res.pc, inst.target, inst.reconv,
                       res.branchTaken, res.branchDiverged);
    }

    warp.timings.instructions++;
    warp.lastIssueCycle = now;
    issued_++;
    issuedThisCycle_[slot] = true;
    schedDirty_ = true;

    const std::uint32_t reg_mask = inst.writeRegs;
    const std::uint8_t pred_mask = inst.writePreds;

    switch (inst.funcUnit()) {
      case FuncUnit::Alu:
        if (reg_mask || pred_mask) {
            warp.scoreboard.pendingRegs |= reg_mask;
            warp.scoreboard.pendingPreds |= pred_mask;
            wbQueue_.push(
                {now + cfg_.aluLatency, slot, reg_mask, pred_mask});
        }
        break;

      case FuncUnit::Sfu:
        warp.scoreboard.pendingRegs |= reg_mask;
        wbQueue_.push({now + cfg_.sfuLatency, slot, reg_mask, 0});
        break;

      case FuncUnit::Mem:
        if (inst.isGlobal()) {
            const std::vector<Addr> lines =
                coalescer_.coalesce(res.laneAddrs);
            std::uint64_t token = 0;
            if (inst.isLoad()) {
                token = allocToken();
                // Pool entries are recycled: reset every field.
                Token &tok = tokenAt(token);
                tok.slot = slot;
                tok.dstRegMask = reg_mask;
                tok.remaining = static_cast<int>(lines.size());
                tok.stallNotified = false;
                warp.scoreboard.pendingRegs |= reg_mask;
                warp.scoreboard.pendingMemRegs |= reg_mask;
                warp.outstandingLoads++;
            }
            for (Addr line : lines) {
                Transaction tx;
                tx.info.addr = line;
                tx.info.pc = res.pc;
                tx.info.warp = slot;
                tx.info.isStore = !inst.isLoad();
                tx.token = token;
                ldstQueue_.push_back(tx);
            }
        } else if (inst.isLoad()) {
            // Shared-memory load: fixed latency writeback.
            warp.scoreboard.pendingRegs |= reg_mask;
            wbQueue_.push(
                {now + cfg_.sharedMemLatency, slot, reg_mask, 0});
        }
        // Shared-memory stores complete at issue.
        break;

      case FuncUnit::Control:
        if (res.atBarrier) {
            if (block.barrier.arrive())
                releaseBarrier(block, now);
        } else if (res.exited) {
            finishWarp(slot, now);
        }
        break;
    }
}

void
SmCore::releaseBarrier(BlockState &block, Cycle now)
{
    for (WarpSlot s : block.slots) {
        Warp &w = warps_[s];
        if (w.state() == WarpState::AtBarrier) {
            w.setState(WarpState::Running);
            cpl_->releaseBarrier(s, now);
        }
    }
}

void
SmCore::finishWarp(WarpSlot slot, Cycle now)
{
    Warp &warp = warps_[slot];
    BlockState &block = blockOf(slot);
    warp.timings.endCycle = now;
    cpl_->deactivate(slot);
    schedulerOf(slot).notifyDeactivated(slot);
    block.runningWarps--;
    sim_assert(block.runningWarps >= 0);
    if (block.runningWarps > 0) {
        if (block.barrier.reduceExpected())
            releaseBarrier(block, now);
    } else {
        retireBlock(block, now);
    }
}

void
SmCore::retireBlock(BlockState &block, Cycle now)
{
    BlockRecord rec;
    rec.id = block.id;
    rec.smId = smId_;
    rec.startCycle = block.start;
    rec.endCycle = now;
    rec.cplSamples = block.samples;
    for (std::size_t i = 0; i < block.slots.size(); ++i) {
        const WarpSlot slot = block.slots[i];
        Warp &warp = warps_[slot];
        WarpRecord wr;
        wr.warpInBlock = static_cast<int>(i);
        wr.startCycle = warp.timings.startCycle;
        wr.endCycle = warp.timings.endCycle;
        wr.instructions = warp.timings.instructions;
        wr.memStallCycles = warp.timings.memStallCycles;
        wr.aluStallCycles = warp.timings.aluStallCycles;
        wr.structStallCycles = warp.timings.structStallCycles;
        wr.schedWaitCycles = warp.timings.schedWaitCycles;
        wr.barrierCycles = warp.timings.barrierCycles;
        wr.finishedWaitCycles = warp.timings.finishedWaitCycles;
        wr.slowSamples = block.slowSamples[i];
        rec.warps.push_back(wr);
        warp.deactivate();
        slotBlock_[slot] = -1;
    }
    retired_.push_back(std::move(rec));
    residentBlocks_--;
    freeSlots_ += static_cast<int>(block.slots.size());
    sim_assert(freeSlots_ <= cfg_.maxWarpsPerSm);
    regsUsed_ -= kernel_.blockDim * kernel_.regsPerThread;
    smemUsed_ -= kernel_.smemPerBlock;
    block.valid = false;
}

void
SmCore::chargeStall(Warp &warp, std::uint64_t amount)
{
    switch (warp.state()) {
      case WarpState::Finished:
        warp.timings.finishedWaitCycles += amount;
        break;
      case WarpState::AtBarrier:
        warp.timings.barrierCycles += amount;
        break;
      case WarpState::Running: {
        const Instruction &inst = warp.nextInstruction();
        if (!warp.scoreboard.canIssue(inst)) {
            if (warp.scoreboard.blockedByMemory(inst))
                warp.timings.memStallCycles += amount;
            else
                warp.timings.aluStallCycles += amount;
        } else if (inst.isGlobal() &&
                   static_cast<int>(ldstQueue_.size()) >=
                       cfg_.ldstQueueSize) {
            warp.timings.structStallCycles += amount;
        } else if (inst.op == Opcode::Exit &&
                   (!warp.scoreboard.clean() ||
                    warp.outstandingLoads > 0)) {
            warp.timings.memStallCycles += amount;
        } else {
            warp.timings.schedWaitCycles += amount;
        }
        break;
      }
      default:
        break;
    }
}

void
SmCore::accountStalls(Cycle now)
{
    (void)now;
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        Warp &warp = warps_[slot];
        if (warp.state() == WarpState::Inactive ||
            issuedThisCycle_[slot])
            continue;
        chargeStall(warp, 1);
    }
}

void
SmCore::accountIdleSpan(Cycle span)
{
    // Over a span with no SM events no warp issues, so every active
    // warp's classification holds for each skipped cycle.
    for (int slot = 0; slot < cfg_.maxWarpsPerSm; ++slot) {
        Warp &warp = warps_[slot];
        if (warp.state() == WarpState::Inactive)
            continue;
        chargeStall(warp, span);
    }
}

void
SmCore::catchUpStalls(Cycle now)
{
    // Charge the cycles in (lastTicked_, now) that fast-forward
    // skipped; by construction none of them had an SM event, so the
    // frozen classification is exact for the whole span.
    if (now <= lastTicked_ + 1)
        return;
    accountIdleSpan(now - lastTicked_ - 1);
    lastTicked_ = now - 1;
}

void
SmCore::sampleCpl(Cycle now)
{
    if (cfg_.cplSampleInterval == 0 ||
        now % cfg_.cplSampleInterval != 0)
        return;
    for (auto &block : blocks_) {
        if (!block.valid)
            continue;
        // Rank every warp of the block -- finished warps participate
        // with frozen counters (the paper's "larger than 50% of warps
        // in a thread-block" rule).
        const int n = static_cast<int>(block.slots.size());
        if (n < 2)
            continue;
        critScratch_.clear();
        for (WarpSlot slot : block.slots)
            critScratch_.push_back(cpl_->criticality(slot));
        block.samples++;
        // A warp is "slow" when its criticality exceeds that of at
        // least half of its peers (the paper's 50% rule). The number
        // of strictly-smaller peers is a rank lookup in the sorted
        // values (a warp is never strictly smaller than itself).
        critSorted_.assign(critScratch_.begin(), critScratch_.end());
        std::sort(critSorted_.begin(), critSorted_.end());
        for (int i = 0; i < n; ++i) {
            const auto below = std::lower_bound(critSorted_.begin(),
                                                critSorted_.end(),
                                                critScratch_[i]) -
                               critSorted_.begin();
            if (2 * below >= n - 1)
                block.slowSamples[i]++;
        }
    }
}

void
SmCore::sampleTrace(Cycle now)
{
    if (cfg_.traceBlockId < 0 ||
        now % cfg_.traceSampleInterval != 0)
        return;
    for (const auto &block : blocks_) {
        if (!block.valid ||
            block.id != static_cast<BlockId>(cfg_.traceBlockId))
            continue;
        TraceSample sample;
        sample.cycle = now;
        for (WarpSlot s : block.slots)
            sample.criticality.push_back(cpl_->criticality(s));
        trace_.push_back(std::move(sample));
    }
}

void
SmCore::tick(Cycle now)
{
    catchUpStalls(now);
    std::fill(issuedThisCycle_.begin(), issuedThisCycle_.end(), false);
    drainL1(now);
    drainWritebacks(now);
    serviceLdstQueue(now);
    refreshSchedArrays();
    schedule(now);
    accountStalls(now);
    sampleCpl(now);
    sampleTrace(now);
    lastTicked_ = now;
    cachedNextEvent_ = computeNextEventCycle(now + 1);
}

namespace
{

/** Smallest multiple of @p interval that is >= @p now. */
Cycle
nextBoundary(Cycle now, Cycle interval)
{
    return (now + interval - 1) / interval * interval;
}

} // namespace

Cycle
SmCore::computeNextEventCycle(Cycle now) const
{
    // Queued LD/ST transactions are serviced every cycle, and a ready
    // warp issues next tick: no skipping. Readiness is taken from the
    // scan schedule() just did; any warp turning ready mid-tick after
    // its scheduler's scan implies an issue happened (barrier
    // release), which also sets the flag. The flag may over-trigger
    // (e.g. the lone ready warp just issued its last instruction);
    // such a wake is a no-op tick with identical accounting.
    if (!ldstQueue_.empty() || anyReadySeen_)
        return now;

    Cycle next = kNoCycle;
    if (!wbQueue_.empty())
        next = std::min(next, std::max(now, wbQueue_.top().ready));
    next = std::min(next, l1_->nextEventCycle(now));
    if (residentBlocks_ > 0) {
        // Sampling mutates per-block counters even when the warps are
        // frozen, so a skip may not cross a boundary.
        if (cfg_.cplSampleInterval > 0)
            next = std::min(next,
                            nextBoundary(now, cfg_.cplSampleInterval));
        if (cfg_.traceBlockId >= 0 && cfg_.traceSampleInterval > 0)
            next = std::min(next,
                            nextBoundary(now, cfg_.traceSampleInterval));
    }
    return next;
}

bool
SmCore::busy() const
{
    if (residentBlocks_ > 0)
        return true;
    return !l1_->idle() || liveTokens_ > 0 || !ldstQueue_.empty();
}

std::vector<BlockRecord>
SmCore::takeRetiredBlocks()
{
    return std::exchange(retired_, {});
}

} // namespace cawa
