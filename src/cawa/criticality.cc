#include "cawa/criticality.hh"

#include <algorithm>

#include "common/sim_assert.hh"

namespace cawa
{

CriticalityPredictor::CriticalityPredictor(int num_slots,
                                           double critical_fraction)
    : slots_(num_slots), criticalFraction_(critical_fraction)
{
    sim_assert(num_slots > 0);
    sim_assert(critical_fraction > 0.0 && critical_fraction <= 1.0);
}

void
CriticalityPredictor::reset(WarpSlot slot, Cycle now,
                            std::uint32_t block_tag)
{
    auto &st = slots_.at(slot);
    if (st.active) {
        // Slot is being rebound: retire its contribution to the old
        // block's aggregate.
        auto it = blockAggs_.find(st.blockTag);
        if (it != blockAggs_.end()) {
            it->second.sum -= st.pathInst;
            if (--it->second.count == 0)
                blockAggs_.erase(it);
        }
    }
    st = SlotState{};
    st.active = true;
    st.blockTag = block_tag;
    st.startCycle = now;
    st.lastIssue = now;
    auto &agg = blockAggs_[block_tag];
    agg.count++;
    mutationGen_++;
}

void
CriticalityPredictor::deactivate(WarpSlot slot)
{
    // The warp finished: its counters freeze but it stays ranked in
    // its block until the block retires, so still-running laggards
    // correctly classify as slow against their finished peers.
    auto &st = slots_.at(slot);
    st.finished = true;
    st.invalidateCache();
    mutationGen_++;
}

void
CriticalityPredictor::onIssue(WarpSlot slot, Cycle now)
{
    auto &st = slots_.at(slot);
    sim_assert(st.active);
    issueUpdates_++;
    // Algorithm 3: the stall time between two consecutive issues.
    if (now > st.lastIssue)
        st.nStall += now - st.lastIssue - 1;
    st.lastIssue = now;
    st.issued++;
    // Commit balancing: each committed instruction pays back one unit
    // of the inferred instruction-count disparity. The cumulative
    // path length (pathInst = issued + nInst) is unchanged by an
    // issue, so the block aggregate needs no update here.
    st.nInst -= 1;
    st.invalidateCache();
    mutationGen_++;
}

std::int64_t
CriticalityPredictor::branchDelta(std::uint32_t curr_pc,
                                  std::uint32_t target_pc,
                                  std::uint32_t reconv_pc, bool taken,
                                  bool diverged)
{
    if (target_pc > curr_pc) {
        // Forward branch: an if/else-style split that reconverges at
        // reconv_pc. The fall-through path holds (target - curr - 1)
        // instructions, the taken path (reconv - target).
        const auto fall_len =
            static_cast<std::int64_t>(target_pc) - curr_pc - 1;
        const auto taken_len = reconv_pc >= target_pc
            ? static_cast<std::int64_t>(reconv_pc) - target_pc : 0;
        if (diverged)
            return fall_len + taken_len;
        return taken ? taken_len : fall_len;
    }
    // Backward branch: a loop back-edge. Taking it means another
    // iteration of (curr - target + 1) instructions is coming.
    const auto body_len =
        static_cast<std::int64_t>(curr_pc) - target_pc + 1;
    if (diverged || taken)
        return body_len;
    return 0;
}

void
CriticalityPredictor::onBranch(WarpSlot slot, std::uint32_t curr_pc,
                               std::uint32_t target_pc,
                               std::uint32_t reconv_pc, bool taken,
                               bool diverged)
{
    auto &st = slots_.at(slot);
    sim_assert(st.active);
    branchUpdates_++;
    const std::int64_t delta =
        branchDelta(curr_pc, target_pc, reconv_pc, taken, diverged);
    st.nInst += delta;
    st.pathInst += delta;
    blockAggs_[st.blockTag].sum += delta;
    st.invalidateCache();
    mutationGen_++;
}

void
CriticalityPredictor::releaseBarrier(WarpSlot slot, Cycle now)
{
    barrierReleases_++;
    auto &st = slots_.at(slot);
    if (st.active && now > st.lastIssue) {
        st.lastIssue = now;
        st.invalidateCache();
        mutationGen_++;
    }
}

double
CriticalityPredictor::cpiAvg(const SlotState &st) const
{
    if (st.issued == 0)
        return 1.0;
    const double elapsed =
        static_cast<double>(st.lastIssue - st.startCycle) + 1.0;
    const double cpi = elapsed / static_cast<double>(st.issued);
    return std::clamp(cpi, 1.0, 64.0);
}

std::int64_t
CriticalityPredictor::criticality(WarpSlot slot) const
{
    const auto &st = slots_.at(slot);
    if (!st.active)
        return 0;
    if (st.critValid)
        return st.critCache;
    // Finished warps return their frozen value (no further issues or
    // stalls ever accrue).
    std::int64_t value = 0;
    if (useInstTerm_) {
        // Eq. (1)'s instruction term: the instructions this warp has
        // been charged for (inferred basic-block sizes at branches,
        // Algorithm 2) but not yet committed, converted to cycles by
        // the warp's average CPI -- an estimate of the extra time the
        // warp still needs for path-length disparity (e.g. a diverged
        // warp owes both sides of the branch).
        value += static_cast<std::int64_t>(
            static_cast<double>(st.nInst) * cpiAvg(st));
    }
    if (useStallTerm_)
        value += static_cast<std::int64_t>(st.nStall);
    st.critCache = value;
    st.critValid = true;
    return value;
}

bool
CriticalityPredictor::isCriticalWarp(WarpSlot slot) const
{
    const auto &st = slots_.at(slot);
    if (!st.active || st.finished)
        return false;
    if (st.rankGen == mutationGen_)
        return st.rankCache;
    // Rank the warp among the active warps of its own thread block:
    // it is critical when it falls in the top criticalFraction_.
    const std::int64_t mine = criticality(slot);
    int peers = 0;
    int above = 0;
    for (int s = 0; s < static_cast<int>(slots_.size()); ++s) {
        const auto &other = slots_[s];
        if (!other.active || other.blockTag != st.blockTag)
            continue;
        peers++;
        if (criticality(s) > mine)
            above++;
    }
    sim_assert(peers >= 1);
    const int allowed = std::max(
        1, static_cast<int>(criticalFraction_ * peers));
    st.rankCache = above < allowed;
    st.rankGen = mutationGen_;
    return st.rankCache;
}

std::int64_t
CriticalityPredictor::priority(WarpSlot slot) const
{
    const auto &st = slots_.at(slot);
    if (!st.active)
        return 0;
    if (st.prioValid)
        return st.prioCache;
    const double cpi = cpiAvg(st);
    const auto insts = static_cast<std::int64_t>(
        static_cast<double>(criticality(slot)) / cpi);
    st.prioCache = insts >> quantShift_;
    st.prioValid = true;
    return st.prioCache;
}

std::int64_t
CriticalityPredictor::instDisparity(WarpSlot slot) const
{
    return slots_.at(slot).nInst;
}

std::uint64_t
CriticalityPredictor::stallCycles(WarpSlot slot) const
{
    return slots_.at(slot).nStall;
}

void
CriticalityPredictor::save(OutArchive &ar) const
{
    ar.putU32(static_cast<std::uint32_t>(slots_.size()));
    for (const SlotState &st : slots_) {
        ar.putBool(st.active);
        ar.putBool(st.finished);
        ar.putU32(st.blockTag);
        ar.putI64(st.nInst);
        ar.putI64(st.pathInst);
        ar.putU64(st.nStall);
        ar.putU64(st.issued);
        ar.putU64(st.startCycle);
        ar.putU64(st.lastIssue);
    }
    std::vector<std::uint32_t> tags;
    tags.reserve(blockAggs_.size());
    for (const auto &[tag, agg] : blockAggs_)
        tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    ar.putU32(static_cast<std::uint32_t>(tags.size()));
    for (std::uint32_t tag : tags) {
        const BlockAgg &agg = blockAggs_.at(tag);
        ar.putU32(tag);
        ar.putI64(agg.sum);
        ar.putU32(static_cast<std::uint32_t>(agg.count));
    }
    ar.putU64(issueUpdates_);
    ar.putU64(branchUpdates_);
    ar.putU64(barrierReleases_);
}

void
CriticalityPredictor::load(InArchive &ar)
{
    const std::uint32_t num_slots = ar.getU32();
    sim_assert(num_slots == slots_.size());
    for (SlotState &st : slots_) {
        st.active = ar.getBool();
        st.finished = ar.getBool();
        st.blockTag = ar.getU32();
        st.nInst = ar.getI64();
        st.pathInst = ar.getI64();
        st.nStall = ar.getU64();
        st.issued = ar.getU64();
        st.startCycle = ar.getU64();
        st.lastIssue = ar.getU64();
        st.invalidateCache();
    }
    blockAggs_.clear();
    const std::uint32_t num_aggs = ar.getU32();
    for (std::uint32_t i = 0; i < num_aggs; ++i) {
        const std::uint32_t tag = ar.getU32();
        BlockAgg agg;
        agg.sum = ar.getI64();
        agg.count = static_cast<int>(ar.getU32());
        blockAggs_.emplace(tag, agg);
    }
    issueUpdates_ = ar.getU64();
    branchUpdates_ = ar.getU64();
    barrierReleases_ = ar.getU64();
    mutationGen_++; // every rank memo is stale now
}

} // namespace cawa
