#include "cawa/ship.hh"

#include <bit>

#include "common/sim_assert.hh"

namespace cawa
{

ShipTable::ShipTable(int entries, int initial)
    : table_(entries, static_cast<std::uint8_t>(initial))
{
    sim_assert(entries > 0 && std::has_single_bit(
        static_cast<unsigned>(entries)));
    sim_assert(initial >= 0 && initial <= 3);
}

bool
ShipTable::predictReuse(CacheSignature sig) const
{
    return table_[index(sig)] > 0;
}

std::uint8_t
ShipTable::insertionRrpv(CacheSignature sig) const
{
    return predictReuse(sig) ? 2 : 3;
}

void
ShipTable::increment(CacheSignature sig)
{
    auto &ctr = table_[index(sig)];
    if (ctr < 3)
        ctr++;
}

void
ShipTable::decrement(CacheSignature sig)
{
    auto &ctr = table_[index(sig)];
    if (ctr > 0)
        ctr--;
}

std::uint8_t
ShipTable::counter(CacheSignature sig) const
{
    return table_[index(sig)];
}

} // namespace cawa
