#include "cawa/ccbp.hh"

#include <bit>

#include "common/sim_assert.hh"

namespace cawa
{

CacheSignature
makeSignature(std::uint32_t pc, Addr addr, int region_shift)
{
    const auto pc_bits = static_cast<CacheSignature>(pc & 0xff);
    const auto region_bits =
        static_cast<CacheSignature>((addr >> region_shift) & 0xff);
    return pc_bits ^ region_bits;
}

CcbpTable::CcbpTable(int entries, int threshold, int initial)
    : table_(entries, static_cast<std::uint8_t>(initial)),
      threshold_(threshold)
{
    sim_assert(entries > 0 && std::has_single_bit(
        static_cast<unsigned>(entries)));
    sim_assert(threshold >= 0 && threshold <= 3);
    sim_assert(initial >= 0 && initial <= 3);
}

bool
CcbpTable::predictCritical(CacheSignature sig) const
{
    return table_[index(sig)] >= threshold_;
}

void
CcbpTable::increment(CacheSignature sig)
{
    auto &ctr = table_[index(sig)];
    if (ctr < 3)
        ctr++;
}

void
CcbpTable::decrement(CacheSignature sig)
{
    auto &ctr = table_[index(sig)];
    if (ctr > 0)
        ctr--;
}

std::uint8_t
CcbpTable::counter(CacheSignature sig) const
{
    return table_[index(sig)];
}

} // namespace cawa
