/**
 * @file
 * Warp criticality prediction (the paper's CPL, Section 3.1).
 *
 * Each warp slot owns a criticality counter combining (1) dynamic
 * instruction-count disparity inferred from branch outcomes and (2)
 * stall cycles between consecutive issues, per the paper's Eq. (1):
 *
 *     nCriticality = nInst * CPI_avg + nStall
 *
 * The counter is consumed by the gCAWS scheduler (priority) and by the
 * CACP cache policy (IsCriticalWarp) through the read-only
 * CriticalityInfo interface, which is also implemented by the oracle
 * used for the CAWS baseline.
 */

#ifndef CAWA_CAWA_CRITICALITY_HH
#define CAWA_CAWA_CRITICALITY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/serialize.hh"
#include "common/types.hh"

namespace cawa
{

/**
 * Read-only view of per-warp-slot criticality used by schedulers,
 * the cache prioritization policy, and the statistics package.
 */
class CriticalityInfo
{
  public:
    virtual ~CriticalityInfo() = default;

    /** Criticality value of a warp slot (higher = more critical). */
    virtual std::int64_t criticality(WarpSlot slot) const = 0;

    /**
     * Whether the warp ranks within the critical fraction of its
     * thread block (used by CACP's IsCriticalWarp, Algorithm 4).
     */
    virtual bool isCriticalWarp(WarpSlot slot) const = 0;
};

/**
 * The runtime criticality prediction logic (CPL).
 *
 * The owning SM drives the predictor: reset() when a warp slot is
 * (re)bound to a block, onIssue() at every instruction issue,
 * onBranch() when a branch resolves, releaseBarrier() when a barrier
 * opens (so barrier wait is not charged as stall), deactivate() when
 * the warp finishes.
 */
class CriticalityPredictor : public CriticalityInfo
{
  public:
    /**
     * @param num_slots warp slots in the SM
     * @param critical_fraction top fraction of a block's warps
     *        classified critical for cache prioritization
     */
    CriticalityPredictor(int num_slots, double critical_fraction);

    /** Bind slot to a block (block_tag groups slots of one block). */
    void reset(WarpSlot slot, Cycle now, std::uint32_t block_tag);

    /** Warp finished; it no longer participates in ranking. */
    void deactivate(WarpSlot slot);

    /**
     * An instruction issued from @p slot at @p now. Decrements the
     * instruction-disparity term (commit balancing) and accrues the
     * stall cycles since the previous issue (Algorithm 3).
     */
    void onIssue(WarpSlot slot, Cycle now);

    /**
     * A branch at @p curr_pc resolved. @p diverged means both paths
     * execute; otherwise @p taken selects the path. The inferred
     * basic-block sizes between branch, target and reconvergence
     * update the instruction-disparity term (Algorithm 2).
     */
    void onBranch(WarpSlot slot, std::uint32_t curr_pc,
                  std::uint32_t target_pc, std::uint32_t reconv_pc,
                  bool taken, bool diverged);

    /** Barrier released at @p now; wait time is not a CPL stall. */
    void releaseBarrier(WarpSlot slot, Cycle now);

    std::int64_t criticality(WarpSlot slot) const override;
    bool isCriticalWarp(WarpSlot slot) const override;

    /** Expose the instruction-disparity term (tests, ablations). */
    std::int64_t instDisparity(WarpSlot slot) const;

    /** Expose the accumulated stall term (tests, ablations). */
    std::uint64_t stallCycles(WarpSlot slot) const;

    /** Ablation knobs: disable one of Eq. (1)'s terms. */
    void setUseInstTerm(bool v)
    {
        useInstTerm_ = v;
        invalidateAll();
        mutationGen_++;
    }
    void setUseStallTerm(bool v)
    {
        useStallTerm_ = v;
        invalidateAll();
        mutationGen_++;
    }

    /**
     * Quantization of the scheduling priority: priority() compares
     * criticality in 2^shift-cycle buckets, so warps whose progress
     * differs by less than a bucket fall back to the scheduler's
     * oldest-first tie-break (hardware would compare truncated
     * counters). criticality() itself stays full resolution.
     */
    void setQuantShift(int shift)
    {
        quantShift_ = shift;
        invalidateAll();
        mutationGen_++;
    }

    /**
     * Coarse-grained criticality used as scheduling priority. The
     * cycle-valued counter is first normalized by the warp's average
     * CPI into instruction-equivalent units (so the bucket size is
     * workload-independent), then truncated to 2^shift buckets.
     */
    std::int64_t priority(WarpSlot slot) const;

    /**
     * Lifetime update counters for the stats registry: how often each
     * of the predictor's inputs fired. Observational only -- never
     * read back by the prediction logic.
     */
    std::uint64_t issueUpdates() const { return issueUpdates_; }
    std::uint64_t branchUpdates() const { return branchUpdates_; }
    std::uint64_t barrierReleases() const { return barrierReleases_; }

    /**
     * Estimated inferred extra instructions for a resolved branch;
     * exposed for unit testing of the Algorithm 2 inference rule.
     */
    static std::int64_t branchDelta(std::uint32_t curr_pc,
                                    std::uint32_t target_pc,
                                    std::uint32_t reconv_pc, bool taken,
                                    bool diverged);

    /**
     * Checkpoint slot counters and block aggregates. The memoized
     * criticality/priority caches are recomputed lazily after load.
     * Block aggregates are written sorted by tag for deterministic
     * bytes (map iteration order is incidental).
     */
    void save(OutArchive &ar) const;
    void load(InArchive &ar);

  private:
    struct SlotState
    {
        bool active = false;    ///< bound to a live block
        bool finished = false;  ///< warp exited; counters frozen
        std::uint32_t blockTag = 0;
        std::int64_t nInst = 0;     ///< anticipated-minus-committed
        std::int64_t pathInst = 0;  ///< issued + nInst (see .cc)
        std::uint64_t nStall = 0;
        std::uint64_t issued = 0;
        Cycle startCycle = 0;
        Cycle lastIssue = 0;

        // criticality()/priority() are pure functions of the fields
        // above, queried far more often than those fields change
        // (every L1 access ranks a warp against all its peers):
        // memoize them, invalidated by every mutator.
        mutable std::int64_t critCache = 0;
        mutable std::int64_t prioCache = 0;
        mutable bool critValid = false;
        mutable bool prioValid = false;

        // isCriticalWarp() memo, keyed on the predictor-wide mutation
        // generation: the O(slots) block rank depends on every peer,
        // so per-slot invalidation is not enough, but a divergent
        // load enqueues up to 32 transactions for one warp in one
        // cycle and each used to pay the full rank scan.
        mutable bool rankCache = false;
        mutable std::uint64_t rankGen = 0; ///< 0 = never computed

        void invalidateCache() { critValid = prioValid = false; }
    };

    /** Per-block running sum of pathInst, for the relative term. */
    struct BlockAgg
    {
        std::int64_t sum = 0;
        int count = 0;
    };

    double cpiAvg(const SlotState &st) const;

    void invalidateAll()
    {
        for (auto &st : slots_)
            st.invalidateCache();
    }

    std::vector<SlotState> slots_;
    std::unordered_map<std::uint32_t, BlockAgg> blockAggs_;

    /**
     * Bumped by every mutator (slot rebind, issue, branch, barrier,
     * knob change, checkpoint load); a slot's rankCache is valid only
     * while its rankGen matches. Never serialized -- a loaded
     * predictor starts with every memo stale.
     */
    std::uint64_t mutationGen_ = 1;

    double criticalFraction_;
    int quantShift_ = 0;
    bool useInstTerm_ = true;
    bool useStallTerm_ = true;
    std::uint64_t issueUpdates_ = 0;
    std::uint64_t branchUpdates_ = 0;
    std::uint64_t barrierReleases_ = 0;
};

} // namespace cawa

#endif // CAWA_CAWA_CRITICALITY_HH
