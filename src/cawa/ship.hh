/**
 * @file
 * Modified Signature-based Hit Predictor (SHiP), Section 3.3.
 *
 * Learns, per signature, whether lines are re-referenced at all; the
 * prediction selects the RRIP insertion position (RRPV 2 "long" for
 * predicted-reused signatures vs RRPV 3 "distant" otherwise), exactly
 * as the paper's modified SHiP guides CACP insertions.
 */

#ifndef CAWA_CAWA_SHIP_HH
#define CAWA_CAWA_SHIP_HH

#include <cstdint>
#include <vector>

#include "cawa/ccbp.hh"

namespace cawa
{

class ShipTable
{
  public:
    explicit ShipTable(int entries = 256, int initial = 1);

    /** True if lines with this signature are expected to be reused. */
    bool predictReuse(CacheSignature sig) const;

    /** RRIP insertion value: 2 (long) if reuse predicted, else 3. */
    std::uint8_t insertionRrpv(CacheSignature sig) const;

    /** A line with this signature received a hit. */
    void increment(CacheSignature sig);

    /** A line with this signature was evicted without any reuse. */
    void decrement(CacheSignature sig);

    std::uint8_t counter(CacheSignature sig) const;

    int entries() const { return static_cast<int>(table_.size()); }

    /** Checkpoint the counter array (geometry is config-derived). */
    void save(OutArchive &ar) const { saveCounterTable(ar, table_); }
    void load(InArchive &ar) { loadCounterTable(ar, table_); }

  private:
    std::size_t index(CacheSignature sig) const
    {
        return sig & (table_.size() - 1);
    }

    std::vector<std::uint8_t> table_;
};

} // namespace cawa

#endif // CAWA_CAWA_SHIP_HH
