/**
 * @file
 * Critical Cache Block Predictor (CCBP), Section 3.3 / Algorithm 4.
 *
 * An array of 2-bit saturating counters indexed by a signature formed
 * from the low bits of the memory instruction's PC xor-ed with the low
 * bits of the accessed line's address region. A counter at or above
 * the threshold predicts that the incoming line will be reused by a
 * critical warp, steering it into the critical L1D partition.
 */

#ifndef CAWA_CAWA_CCBP_HH
#define CAWA_CAWA_CCBP_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/sim_error.hh"
#include "common/types.hh"

namespace cawa
{

/**
 * Checkpoint helpers for fixed-geometry counter tables (CCBP/SHiP).
 * The table size is config-derived, so loading verifies it instead
 * of resizing: a size mismatch means the checkpoint was written
 * under a different configuration.
 */
inline void
saveCounterTable(OutArchive &ar, const std::vector<std::uint8_t> &t)
{
    ar.putBytes(t.data(), t.size());
}

inline void
loadCounterTable(InArchive &ar, std::vector<std::uint8_t> &t)
{
    const std::vector<std::uint8_t> in = ar.getBytes();
    if (in.size() != t.size())
        throw SimError(SimErrorKind::Checkpoint,
                       "section '" + ar.section() +
                           "': counter table size mismatch (file " +
                           std::to_string(in.size()) + ", config " +
                           std::to_string(t.size()) + ")");
    t = in;
}

/** Signature used by both CCBP and SHiP tables. */
using CacheSignature = std::uint16_t;

/**
 * Form the 8-bit PC xor address-region signature. @p region_shift
 * selects the address-region granularity (the paper uses "memory
 * address regions"; we default to cache-line granularity, i.e. the
 * low 8 bits of the line address).
 */
CacheSignature makeSignature(std::uint32_t pc, Addr addr,
                             int region_shift);

/**
 * Table of 2-bit saturating counters with a criticality threshold.
 */
class CcbpTable
{
  public:
    /**
     * @param entries table size (signatures are masked to it)
     * @param threshold counter value at/above which a line is
     *        predicted critical
     * @param initial initial counter value
     */
    explicit CcbpTable(int entries = 256, int threshold = 2,
                       int initial = 1);

    bool predictCritical(CacheSignature sig) const;
    void increment(CacheSignature sig);
    void decrement(CacheSignature sig);
    std::uint8_t counter(CacheSignature sig) const;

    int entries() const { return static_cast<int>(table_.size()); }

    /** Checkpoint the counter array (geometry is config-derived). */
    void save(OutArchive &ar) const { saveCounterTable(ar, table_); }
    void load(InArchive &ar) { loadCounterTable(ar, table_); }

  private:
    std::size_t index(CacheSignature sig) const
    {
        return sig & (table_.size() - 1);
    }

    std::vector<std::uint8_t> table_;
    int threshold_;
};

} // namespace cawa

#endif // CAWA_CAWA_CCBP_HH
