/**
 * @file
 * Critical Cache Block Predictor (CCBP), Section 3.3 / Algorithm 4.
 *
 * An array of 2-bit saturating counters indexed by a signature formed
 * from the low bits of the memory instruction's PC xor-ed with the low
 * bits of the accessed line's address region. A counter at or above
 * the threshold predicts that the incoming line will be reused by a
 * critical warp, steering it into the critical L1D partition.
 */

#ifndef CAWA_CAWA_CCBP_HH
#define CAWA_CAWA_CCBP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cawa
{

/** Signature used by both CCBP and SHiP tables. */
using CacheSignature = std::uint16_t;

/**
 * Form the 8-bit PC xor address-region signature. @p region_shift
 * selects the address-region granularity (the paper uses "memory
 * address regions"; we default to cache-line granularity, i.e. the
 * low 8 bits of the line address).
 */
CacheSignature makeSignature(std::uint32_t pc, Addr addr,
                             int region_shift);

/**
 * Table of 2-bit saturating counters with a criticality threshold.
 */
class CcbpTable
{
  public:
    /**
     * @param entries table size (signatures are masked to it)
     * @param threshold counter value at/above which a line is
     *        predicted critical
     * @param initial initial counter value
     */
    explicit CcbpTable(int entries = 256, int threshold = 2,
                       int initial = 1);

    bool predictCritical(CacheSignature sig) const;
    void increment(CacheSignature sig);
    void decrement(CacheSignature sig);
    std::uint8_t counter(CacheSignature sig) const;

    int entries() const { return static_cast<int>(table_.size()); }

  private:
    std::size_t index(CacheSignature sig) const
    {
        return sig & (table_.size() - 1);
    }

    std::vector<std::uint8_t> table_;
    int threshold_;
};

} // namespace cawa

#endif // CAWA_CAWA_CCBP_HH
