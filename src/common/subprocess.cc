#include "common/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/sim_error.hh"

namespace cawa
{

bool
processIsolationAvailable()
{
#if defined(_WIN32)
    return false;
#else
    return true;
#endif
}

bool
memoryLimitSupported()
{
#if defined(__SANITIZE_ADDRESS__)
    return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    return false;
#else
    return true;
#endif
#else
    return true;
#endif
}

void
applyChildLimits(const ChildLimits &limits)
{
    if (limits.memoryBytes > 0 && memoryLimitSupported()) {
        struct rlimit rl;
        rl.rlim_cur = limits.memoryBytes;
        rl.rlim_max = limits.memoryBytes;
        setrlimit(RLIMIT_AS, &rl);
    }
    if (limits.cpuSeconds > 0) {
        struct rlimit rl;
        rl.rlim_cur = limits.cpuSeconds;
        // Leave one second of hard-limit headroom so the SIGXCPU the
        // soft limit delivers can be reported before SIGKILL lands.
        rl.rlim_max = limits.cpuSeconds + 1;
        setrlimit(RLIMIT_CPU, &rl);
    }
}

void
ChildProcess::closePipes()
{
    if (toChild >= 0) {
        close(toChild);
        toChild = -1;
    }
    if (fromChild >= 0) {
        close(fromChild);
        fromChild = -1;
    }
}

namespace
{

struct PipePair
{
    int readEnd = -1;
    int writeEnd = -1;
};

PipePair
makePipe()
{
    int fds[2];
    if (pipe(fds) != 0)
        throw SimError(SimErrorKind::Config,
                       std::string("cannot create worker pipe: ") +
                           std::strerror(errno));
    return PipePair{fds[0], fds[1]};
}

/**
 * Child-side reset run between fork and the body/exec: default
 * signal dispositions (the parent's SIGINT/SIGTERM handlers must not
 * leak into workers) and an unblocked signal mask.
 */
void
resetChildSignals()
{
    for (int signo : {SIGINT, SIGTERM, SIGHUP, SIGPIPE, SIGCHLD})
        std::signal(signo, SIG_DFL);
    sigset_t none;
    sigemptyset(&none);
    sigprocmask(SIG_SETMASK, &none, nullptr);
}

} // namespace

ChildProcess
forkWorker(const std::function<int(int inFd, int outFd)> &body,
           const ChildLimits &limits)
{
    PipePair toChild = makePipe();
    PipePair fromChild = makePipe();
    const pid_t pid = fork();
    if (pid < 0) {
        const int err = errno;
        close(toChild.readEnd);
        close(toChild.writeEnd);
        close(fromChild.readEnd);
        close(fromChild.writeEnd);
        throw SimError(SimErrorKind::Config,
                       std::string("cannot fork worker: ") +
                           std::strerror(err));
    }
    if (pid == 0) {
        // Child: keep only this worker's pipe ends.
        close(toChild.writeEnd);
        close(fromChild.readEnd);
        resetChildSignals();
        applyChildLimits(limits);
        int rc = 125;
        try {
            rc = body(toChild.readEnd, fromChild.writeEnd);
        } catch (...) {
            rc = 125;
        }
        // _exit: never run the parent's atexit handlers or flush its
        // inherited stdio buffers a second time.
        _exit(rc);
    }
    close(toChild.readEnd);
    close(fromChild.writeEnd);
    ChildProcess child;
    child.pid = pid;
    child.toChild = toChild.writeEnd;
    child.fromChild = fromChild.readEnd;
    return child;
}

ChildProcess
spawnWorker(const std::vector<std::string> &argv,
            const ChildLimits &limits)
{
    if (argv.empty())
        throw SimError(SimErrorKind::Config,
                       "spawnWorker: empty argv");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    return forkWorker(
        [&](int inFd, int outFd) {
            dup2(inFd, STDIN_FILENO);
            dup2(outFd, STDOUT_FILENO);
            if (inFd != STDIN_FILENO)
                close(inFd);
            if (outFd != STDOUT_FILENO)
                close(outFd);
            execv(cargv[0], cargv.data());
            // Conventional "command not runnable" status.
            return 127;
        },
        limits);
}

std::string
WaitStatus::describe() const
{
    if (signaled) {
        std::string name;
        if (const char *desc = strsignal(termSignal))
            name = std::string(" (") + desc + ")";
        return "signal " + std::to_string(termSignal) + name;
    }
    return "exit code " + std::to_string(exitCode);
}

namespace
{

WaitStatus
decodeWait(int raw)
{
    WaitStatus st;
    if (WIFEXITED(raw)) {
        st.exited = true;
        st.exitCode = WEXITSTATUS(raw);
    } else if (WIFSIGNALED(raw)) {
        st.signaled = true;
        st.termSignal = WTERMSIG(raw);
    }
    return st;
}

} // namespace

std::optional<WaitStatus>
pollChild(pid_t pid)
{
    int raw = 0;
    const pid_t got = waitpid(pid, &raw, WNOHANG);
    if (got == pid)
        return decodeWait(raw);
    return std::nullopt;
}

WaitStatus
waitChild(pid_t pid)
{
    int raw = 0;
    pid_t got;
    do {
        got = waitpid(pid, &raw, 0);
    } while (got < 0 && errno == EINTR);
    if (got != pid)
        throw SimError(SimErrorKind::Config,
                       "waitpid(" + std::to_string(pid) +
                           ") failed: " + std::strerror(errno));
    return decodeWait(raw);
}

void
signalChild(pid_t pid, int signo)
{
    if (pid <= 0)
        return;
    if (kill(pid, signo) != 0 && errno != ESRCH) {
        // Nothing actionable for the caller; the reap will tell the
        // real story. Losing a redundant signal is harmless.
    }
}

namespace
{

/**
 * MSG_NOSIGNAL for pipes: blocks SIGPIPE in the calling thread for
 * the guard's lifetime and, if a write inside raised one (it would be
 * pending, not delivered), consumes it with sigtimedwait() before
 * restoring the previous mask. A SIGPIPE that was already pending
 * before the guard is left untouched.
 */
class SigpipeGuard
{
  public:
    SigpipeGuard()
    {
        sigset_t pipeOnly;
        sigemptyset(&pipeOnly);
        sigaddset(&pipeOnly, SIGPIPE);
        sigset_t pending;
        sigemptyset(&pending);
        sigpending(&pending);
        preexisting_ = sigismember(&pending, SIGPIPE) == 1;
        if (pthread_sigmask(SIG_BLOCK, &pipeOnly, &old_) == 0)
            engaged_ = sigismember(&old_, SIGPIPE) == 0;
    }

    ~SigpipeGuard()
    {
        if (!engaged_)
            return;
        if (!preexisting_) {
            sigset_t pending;
            sigemptyset(&pending);
            sigpending(&pending);
            if (sigismember(&pending, SIGPIPE) == 1) {
                sigset_t pipeOnly;
                sigemptyset(&pipeOnly);
                sigaddset(&pipeOnly, SIGPIPE);
                const struct timespec zero = {0, 0};
                while (sigtimedwait(&pipeOnly, nullptr, &zero) < 0 &&
                       errno == EINTR) {
                }
            }
        }
        pthread_sigmask(SIG_SETMASK, &old_, nullptr);
    }

    SigpipeGuard(const SigpipeGuard &) = delete;
    SigpipeGuard &operator=(const SigpipeGuard &) = delete;

  private:
    sigset_t old_{};
    bool engaged_ = false;     ///< SIGPIPE was unblocked before us
    bool preexisting_ = false; ///< a SIGPIPE was pending before us
};

bool
writeAllRetry(int fd, const char *data, std::size_t n)
{
    std::size_t done = 0;
    while (done < n) {
        const ssize_t wrote = write(fd, data + done, n - done);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false; // EPIPE and friends: peer is gone
        }
        done += static_cast<std::size_t>(wrote);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    unsigned char header[4];
    const std::uint32_t size =
        static_cast<std::uint32_t>(payload.size());
    header[0] = static_cast<unsigned char>(size & 0xff);
    header[1] = static_cast<unsigned char>((size >> 8) & 0xff);
    header[2] = static_cast<unsigned char>((size >> 16) & 0xff);
    header[3] = static_cast<unsigned char>((size >> 24) & 0xff);

    SigpipeGuard guard;
    return writeAllRetry(fd, reinterpret_cast<const char *>(header),
                         4) &&
           writeAllRetry(fd, payload.data(), payload.size());
}

bool
readFrameBlocking(int fd, std::string &payload,
                  std::size_t maxFrameBytes)
{
    // Reads exactly the frame's bytes and not one more, so the caller
    // can hand the fd to another reader (the shard runner's control
    // thread) without losing buffered frames.
    auto readExactly = [fd](char *data, std::size_t n) -> bool {
        std::size_t done = 0;
        while (done < n) {
            const ssize_t got = read(fd, data + done, n - done);
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (got == 0)
                return false; // EOF mid-frame: torn tail
            done += static_cast<std::size_t>(got);
        }
        return true;
    };
    unsigned char header[4];
    if (!readExactly(reinterpret_cast<char *>(header), 4))
        return false;
    const std::uint32_t size =
        static_cast<std::uint32_t>(header[0]) |
        (static_cast<std::uint32_t>(header[1]) << 8) |
        (static_cast<std::uint32_t>(header[2]) << 16) |
        (static_cast<std::uint32_t>(header[3]) << 24);
    if (size > maxFrameBytes)
        return false; // oversized: protocol violation or garbage
    payload.resize(size);
    return size == 0 || readExactly(payload.data(), size);
}

void
FrameReader::feed(const char *data, std::size_t n)
{
    // Shift out consumed bytes occasionally so the buffer stays small
    // across a long frame stream.
    if (pos_ > 0 && pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > 4096) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, n);
}

bool
FrameReader::next(std::string &payload)
{
    if (corrupt_)
        return false;
    if (buf_.size() - pos_ < 4)
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(buf_.data() + pos_);
    const std::uint32_t size =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (size > maxFrame_) {
        corrupt_ = true;
        return false;
    }
    if (buf_.size() - pos_ - 4 < size)
        return false;
    payload.assign(buf_, pos_ + 4, size);
    pos_ += 4 + size;
    return true;
}

DrainStatus
drainAvailable(int fd, FrameReader &reader, std::size_t *bytesRead)
{
    char chunk[16384];
    std::size_t total = 0;
    if (bytesRead)
        *bytesRead = 0;
    for (;;) {
        const ssize_t got = read(fd, chunk, sizeof(chunk));
        if (got > 0) {
            reader.feed(chunk, static_cast<std::size_t>(got));
            total += static_cast<std::size_t>(got);
            if (bytesRead)
                *bytesRead = total;
            // A short read means the fd is drained for now; on a
            // socket the next read would block (or, on a blocking
            // fd, hang), so stop here instead of probing again.
            if (got < static_cast<ssize_t>(sizeof(chunk)))
                return DrainStatus::Data;
            continue;
        }
        if (got == 0)
            return total > 0 ? DrainStatus::Data : DrainStatus::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return total > 0 ? DrainStatus::Data
                             : DrainStatus::WouldBlock;
        if (errno == ECONNRESET || errno == ENOTCONN ||
            errno == ETIMEDOUT)
            return DrainStatus::Reset;
        // Remaining hard errors (EBADF, EIO, ...): nothing more will
        // ever arrive; report the stream over.
        return total > 0 ? DrainStatus::Data : DrainStatus::Eof;
    }
}

int
readAvailable(int fd, FrameReader &reader)
{
    std::size_t bytes = 0;
    switch (drainAvailable(fd, reader, &bytes)) {
      case DrainStatus::Data:
        return static_cast<int>(bytes);
      case DrainStatus::WouldBlock:
        return -1;
      case DrainStatus::Eof:
      case DrainStatus::Reset:
        // Pipe semantics: a reset peer reads as EOF -- for the worker
        // supervisors a dead worker is a dead worker either way.
        return 0;
    }
    return 0;
}

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// ---------------------------------------------------------------------
// Unix-domain socket transport
// ---------------------------------------------------------------------

namespace
{

void
setCloseOnExec(int fd)
{
    const int flags = fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void
fillUnixAddr(const std::string &path, struct sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw SimError(SimErrorKind::Config,
                       "unix socket path '" + path +
                           "' is empty or longer than " +
                           std::to_string(sizeof(addr.sun_path) - 1) +
                           " bytes");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

} // namespace

int
listenUnixSocket(const std::string &path, int backlog)
{
    struct sockaddr_un addr;
    fillUnixAddr(path, addr);
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw SimError(SimErrorKind::Config,
                       std::string("cannot create unix socket: ") +
                           std::strerror(errno));
    setCloseOnExec(fd);
    // A stale socket file from a dead server would make bind() fail
    // with EADDRINUSE even though nobody is listening; remove it.
    unlink(path.c_str());
    if (bind(fd, reinterpret_cast<const struct sockaddr *>(&addr),
             sizeof(addr)) != 0) {
        const int err = errno;
        close(fd);
        throw SimError(SimErrorKind::Config,
                       "cannot bind unix socket '" + path +
                           "': " + std::strerror(err));
    }
    if (listen(fd, backlog) != 0) {
        const int err = errno;
        close(fd);
        unlink(path.c_str());
        throw SimError(SimErrorKind::Config,
                       "cannot listen on unix socket '" + path +
                           "': " + std::strerror(err));
    }
    return fd;
}

int
connectUnixSocket(const std::string &path)
{
    struct sockaddr_un addr;
    fillUnixAddr(path, addr);
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw SimError(SimErrorKind::Config,
                       std::string("cannot create unix socket: ") +
                           std::strerror(errno));
    setCloseOnExec(fd);
    int rc;
    do {
        rc = connect(fd,
                     reinterpret_cast<const struct sockaddr *>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        const int err = errno;
        close(fd);
        throw SimError(SimErrorKind::Config,
                       "cannot connect to unix socket '" + path +
                           "': " + std::strerror(err));
    }
    return fd;
}

int
acceptConnection(int listenFd)
{
    for (;;) {
        const int fd = accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            setCloseOnExec(fd);
            return fd;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return -1;
        if (errno == EBADF || errno == EINVAL)
            throw SimError(SimErrorKind::Config,
                           std::string("accept on a dead listener: ") +
                               std::strerror(errno));
        // EMFILE/ENFILE and other transient resource failures: report
        // "none pending" and let the caller's next loop retry.
        return -1;
    }
}

} // namespace cawa
