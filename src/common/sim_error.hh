/**
 * @file
 * Structured simulator error hierarchy.
 *
 * A SimError carries, besides the human-readable message, the point
 * in simulated machine state where the failure was detected (cycle,
 * SM, warp slot) and a machine-checkable kind, so harness layers
 * (sweep engine, fuzzer, tools) can catch per-job failures, classify
 * them and keep going instead of letting one bad run abort a whole
 * matrix. The sim core raises these for invariant-auditor violations
 * and invalid configurations; sim_assert() raises them too when
 * throw-mode is on (see sim_assert.hh).
 */

#ifndef CAWA_COMMON_SIM_ERROR_HH
#define CAWA_COMMON_SIM_ERROR_HH

#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace cawa
{

enum class SimErrorKind
{
    Assertion,  ///< sim_assert()/sim_panic() in throw-mode
    Invariant,  ///< runtime invariant auditor violation (CAWA_CHECK)
    Config,     ///< GpuConfig::validate() rejected the configuration
    Deadlock,   ///< raised by harnesses for watchdog-classified hangs
    Checkpoint, ///< corrupt/truncated/mismatched checkpoint file
    Walltime,   ///< job exceeded its wall-clock budget
    Cancelled,  ///< job aborted by a cooperative cancel request
    Journal,    ///< sweep journal unusable (lock conflict, I/O failure)
};

const char *simErrorKindName(SimErrorKind kind);

/** Where in the simulated machine an error was detected. */
struct SimErrorContext
{
    Cycle cycle = kNoCycle; ///< kNoCycle: not tied to a sim cycle
    int smId = -1;          ///< -1: not tied to one SM
    int warp = -1;          ///< -1: not tied to one warp slot

    /** "cycle 123, sm 4, warp 7" (only the fields that are set). */
    std::string describe() const;
};

class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorKind kind, const std::string &message,
             SimErrorContext context = {});

    SimErrorKind kind() const { return kind_; }
    const SimErrorContext &context() const { return context_; }

    /** The message without the kind/context prefix. */
    const std::string &detail() const { return detail_; }

  private:
    SimErrorKind kind_;
    SimErrorContext context_;
    std::string detail_;
};

} // namespace cawa

#endif // CAWA_COMMON_SIM_ERROR_HH
