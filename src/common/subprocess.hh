/**
 * @file
 * POSIX subprocess helpers for the sweep supervisor: spawn a worker
 * child (fork-only or fork+exec) with its stdin/stdout wired to
 * pipes, apply per-child resource limits, signal/reap it, and frame
 * messages over the pipe as length-prefixed payloads.
 *
 * The framing is deliberately trivial -- a 4-byte little-endian
 * payload length followed by the payload bytes -- so a reader can
 * always tell a torn tail (killed writer) from a complete frame, and
 * a stream of JSON documents never needs in-band escaping. This wire
 * format is shared by the supervisor's worker protocol and is the
 * intended seed of the cawad job protocol.
 */

#ifndef CAWA_COMMON_SUBPROCESS_HH
#define CAWA_COMMON_SUBPROCESS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace cawa
{

/** True when fork/exec worker isolation is usable on this platform. */
bool processIsolationAvailable();

/**
 * Per-child resource caps, applied via setrlimit() in the child
 * before any job code runs. Zero fields are left unlimited.
 *
 * The address-space cap is skipped under AddressSanitizer: ASan
 * reserves terabytes of shadow address space up front, so RLIMIT_AS
 * would kill every instrumented child at startup.
 */
struct ChildLimits
{
    std::uint64_t memoryBytes = 0; ///< RLIMIT_AS (hard malloc ceiling)
    std::uint64_t cpuSeconds = 0;  ///< RLIMIT_CPU (SIGXCPU then SIGKILL)
};

/** Apply @p limits to the calling process (child side). */
void applyChildLimits(const ChildLimits &limits);

/** True when the build is ASan-instrumented (RLIMIT_AS unusable). */
bool memoryLimitSupported();

/**
 * A spawned worker as the parent sees it. Both pipe ends belong to
 * the caller and must be closed with closePipes() (or individually)
 * when the worker is gone.
 */
struct ChildProcess
{
    pid_t pid = -1;
    int toChild = -1;   ///< write end of the child's stdin
    int fromChild = -1; ///< read end of the child's stdout

    void closePipes();
};

/**
 * Fork a worker that runs @p body in the child and then _exit()s with
 * its return value. The body receives the child-side pipe fds (read
 * end of the job pipe, write end of the frame pipe); stderr is
 * inherited. @p limits are applied before the body runs, and default
 * signal dispositions are restored so the child does not inherit the
 * parent's handlers. Throws SimError on fork failure.
 */
ChildProcess forkWorker(const std::function<int(int inFd, int outFd)> &body,
                        const ChildLimits &limits = {});

/**
 * Fork and exec @p argv (argv[0] is the binary path) with stdin and
 * stdout wired to fresh pipes and stderr inherited. @p limits are
 * applied in the child before exec. Throws SimError when the fork or
 * the pipes fail; an exec failure surfaces as the child exiting 127.
 */
ChildProcess spawnWorker(const std::vector<std::string> &argv,
                         const ChildLimits &limits = {});

/** Decoded waitpid() status. */
struct WaitStatus
{
    bool exited = false;   ///< normal _exit/return
    int exitCode = 0;
    bool signaled = false; ///< killed by a signal
    int termSignal = 0;

    /** "exit code 3" / "signal 9 (SIGKILL)". */
    std::string describe() const;
};

/** Non-blocking reap: nullopt while the child is still running. */
std::optional<WaitStatus> pollChild(pid_t pid);

/** Blocking reap. */
WaitStatus waitChild(pid_t pid);

/** kill() wrapper; ESRCH (already gone) is not an error. */
void signalChild(pid_t pid, int signo);

/**
 * Length-prefixed frame writer: 4-byte LE payload size + payload.
 * Handles partial writes and EINTR; returns false once the pipe is
 * gone (EPIPE -- the reader died), which callers treat as a dead
 * peer, not an error to propagate.
 *
 * MSG_NOSIGNAL-equivalent: SIGPIPE is blocked around the write and
 * any SIGPIPE the write itself raised is consumed before the mask is
 * restored, so a peer dying mid-frame surfaces only as the false
 * return -- never as a fatal signal -- even when the caller left
 * SIGPIPE at SIG_DFL.
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Blocking read of exactly one frame from @p fd (EINTR retried).
 * Returns false on EOF, a torn tail or an oversized/corrupt frame.
 * For the worker side of the protocol, where the spec/control pipe
 * is the only input and blocking is the desired behaviour.
 */
bool readFrameBlocking(int fd, std::string &payload,
                       std::size_t maxFrameBytes = 64u << 20);

/**
 * Incremental frame decoder for the parent side. feed() raw bytes as
 * they arrive; next() yields complete payloads in order. A frame
 * whose declared size exceeds the cap marks the stream corrupt
 * (protocol violation or garbage on the pipe) and next() stops
 * yielding.
 */
class FrameReader
{
  public:
    /** @param maxFrameBytes largest acceptable payload (default 64 MB) */
    explicit FrameReader(std::size_t maxFrameBytes = 64u << 20)
        : maxFrame_(maxFrameBytes)
    {
    }

    void feed(const char *data, std::size_t n);
    bool next(std::string &payload);

    bool corrupt() const { return corrupt_; }
    /** Bytes buffered but not yet consumed (torn tail after EOF). */
    std::size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    std::size_t pos_ = 0;
    std::size_t maxFrame_;
    bool corrupt_ = false;
};

/**
 * Outcome of one drainAvailable() call. Pipes only ever produce the
 * first three; sockets add Reset, which pipe-era callers used to see
 * folded into Eof and which the service layer must distinguish (a
 * client that vanished with unread data is not a client that closed
 * cleanly).
 */
enum class DrainStatus
{
    Data,       ///< >= 1 byte was fed into the reader
    Eof,        ///< orderly end of stream (peer closed its end)
    WouldBlock, ///< nothing readable right now (non-blocking fd)
    Reset,      ///< connection reset by peer (ECONNRESET and kin)
};

/**
 * Drain whatever is currently readable from @p fd into @p reader and
 * report how the drain ended. Never busy-loops on a non-blocking fd:
 * EAGAIN returns immediately (as Data when bytes arrived first,
 * WouldBlock otherwise). EINTR is retried. Socket-correct: a read
 * that fails with ECONNRESET/ENOTCONN/ETIMEDOUT reports Reset so the
 * caller can tell a torn connection from an orderly close; any bytes
 * read before the failure are already in the reader.
 * @p bytesRead, when non-null, receives the byte count fed this call.
 */
DrainStatus drainAvailable(int fd, FrameReader &reader,
                           std::size_t *bytesRead = nullptr);

/**
 * Drain whatever is currently readable from @p fd into @p reader.
 * Returns the byte count read (> 0), 0 on EOF, or -1 when the read
 * would block (EAGAIN on a non-blocking fd). Legacy pipe-semantics
 * wrapper over drainAvailable(): a connection reset is folded into
 * the EOF return, which is what the worker-pipe supervisors want (a
 * dead worker is a dead worker either way).
 */
int readAvailable(int fd, FrameReader &reader);

/** Set O_NONBLOCK on @p fd. */
void setNonBlocking(int fd);

// ---------------------------------------------------------------------
// Unix-domain socket transport for the frame protocol (cawad).
// ---------------------------------------------------------------------

/**
 * Create, bind and listen on a Unix-domain stream socket at @p path.
 * A stale socket file left by a dead server is unlinked first. The fd
 * is close-on-exec so worker children never inherit the listener.
 * Throws SimError (kind Config) on failure, including a @p path too
 * long for sockaddr_un.
 */
int listenUnixSocket(const std::string &path, int backlog = 16);

/**
 * Connect a stream socket to the Unix-domain listener at @p path.
 * The fd is close-on-exec and blocking (callers that poll it should
 * setNonBlocking() it). Throws SimError (kind Config) when the
 * socket cannot be created or the connection is refused.
 */
int connectUnixSocket(const std::string &path);

/**
 * Accept one pending connection on @p listenFd (close-on-exec).
 * Returns -1 when no connection is pending (non-blocking listener)
 * or on a transient per-connection failure; throws SimError only for
 * listener-fatal errors (EBADF/EINVAL).
 */
int acceptConnection(int listenFd);

} // namespace cawa

#endif // CAWA_COMMON_SUBPROCESS_HH
