/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef CAWA_COMMON_TYPES_HH
#define CAWA_COMMON_TYPES_HH

#include <cstdint>

namespace cawa
{

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated global address space. */
using Addr = std::uint64_t;

/** Value held by one architectural register of one thread. */
using RegValue = std::uint64_t;

/** Index of a warp slot inside one SM's warp pool. */
using WarpSlot = int;

/** Globally unique id of a thread block within one kernel launch. */
using BlockId = std::uint32_t;

/** Sentinel for "no cycle scheduled". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/** Sentinel for "no warp selected". */
inline constexpr WarpSlot kNoWarp = -1;

} // namespace cawa

#endif // CAWA_COMMON_TYPES_HH
