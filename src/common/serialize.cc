#include "common/serialize.hh"

#include <array>
#include <cstring>

#include "common/sim_error.hh"

namespace cawa
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32(const std::string &s)
{
    return crc32(reinterpret_cast<const std::uint8_t *>(s.data()),
                 s.size());
}

void
OutArchive::putU16(std::uint16_t v)
{
    putU8(static_cast<std::uint8_t>(v));
    putU8(static_cast<std::uint8_t>(v >> 8));
}

void
OutArchive::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
OutArchive::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        putU8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
OutArchive::putDouble(double v)
{
    static_assert(sizeof(double) == 8);
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
OutArchive::putBytes(const std::uint8_t *data, std::size_t size)
{
    putU32(static_cast<std::uint32_t>(size));
    buf_.insert(buf_.end(), data, data + size);
}

void
OutArchive::putString(const std::string &s)
{
    putBytes(reinterpret_cast<const std::uint8_t *>(s.data()),
             s.size());
}

InArchive::InArchive(const std::uint8_t *data, std::size_t size,
                     std::string section)
    : data_(data), size_(size), section_(std::move(section))
{
}

void
InArchive::fail(const std::string &what) const
{
    throw SimError(SimErrorKind::Checkpoint,
                   "section '" + section_ + "' at byte offset " +
                       std::to_string(pos_) + ": " + what);
}

void
InArchive::need(std::size_t n) const
{
    if (size_ - pos_ < n)
        fail("truncated (need " + std::to_string(n) + " bytes, " +
             std::to_string(size_ - pos_) + " remain)");
}

std::uint8_t
InArchive::getU8()
{
    need(1);
    return data_[pos_++];
}

std::uint16_t
InArchive::getU16()
{
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
        v |= static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 2;
    return v;
}

std::uint32_t
InArchive::getU32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
InArchive::getU64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

double
InArchive::getDouble()
{
    const std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::vector<std::uint8_t>
InArchive::getBytes()
{
    const std::uint32_t n = getU32();
    need(n);
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
}

std::string
InArchive::getString()
{
    const std::uint32_t n = getU32();
    need(n);
    std::string out(reinterpret_cast<const char *>(data_ + pos_), n);
    pos_ += n;
    return out;
}

void
InArchive::expectEnd() const
{
    if (pos_ != size_)
        fail("trailing bytes (" + std::to_string(size_ - pos_) +
             " unread)");
}

} // namespace cawa
