/**
 * @file
 * Unified stats registry: a flat, insertion-ordered collection of
 * named counters and histograms that every simulator component
 * (SMs, schedulers, CPL, L1D/L2/DRAM/interconnect, dispatcher)
 * registers into at the end of a run. Names are dotted paths
 * ("l1.hits", "sched.0.issues", "l2.pc.1024.fills") so consumers can
 * treat the registry as a hierarchy without the registry itself
 * needing a tree. The registry is the single source of truth behind
 * the "stats" object of the cawa-simreport-v3 JSON schema: the
 * writer emits entries verbatim in registration order, which keeps
 * serialize -> parse -> serialize a byte-exact fixed point.
 */

#ifndef CAWA_COMMON_STATS_HH
#define CAWA_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cawa
{

enum class StatKind
{
    Counter,   ///< one monotonic 64-bit value
    Histogram, ///< a fixed vector of 64-bit bucket counts
};

struct StatEntry
{
    std::string name;
    StatKind kind = StatKind::Counter;
    std::uint64_t value = 0;           ///< Counter payload
    std::vector<std::uint64_t> values; ///< Histogram payload
};

class StatsRegistry
{
  public:
    /**
     * Register (or overwrite) a counter. Re-registering a name keeps
     * its original position so registration is idempotent.
     */
    void counter(const std::string &name, std::uint64_t value);

    /** Register (or overwrite) a histogram from explicit buckets. */
    void histogram(const std::string &name,
                   std::vector<std::uint64_t> buckets);

    /** Histogram from any random-access container (e.g. std::array). */
    template <typename Container>
    void
    histogramFrom(const std::string &name, const Container &buckets)
    {
        histogram(name, std::vector<std::uint64_t>(buckets.begin(),
                                                   buckets.end()));
    }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** All entries, in registration order. */
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Lookup by full dotted name; nullptr when absent. */
    const StatEntry *find(const std::string &name) const;

    /** Counter value by name, or `fallback` when absent. */
    std::uint64_t counterOr(const std::string &name,
                            std::uint64_t fallback = 0) const;

    void clear();

  private:
    StatEntry &add(const std::string &name, StatKind kind);

    std::vector<StatEntry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace cawa

#endif // CAWA_COMMON_STATS_HH
