/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic choices in the simulator and the workload generators go
 * through this class so that a given seed always reproduces the exact
 * same simulation, cycle for cycle.
 */

#ifndef CAWA_COMMON_RNG_HH
#define CAWA_COMMON_RNG_HH

#include <cstdint>

#include "common/serialize.hh"

namespace cawa
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * algorithm), seeded via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Sample from a bounded discrete Pareto-like (power law)
     * distribution over [1, max]; smaller alpha => heavier tail.
     * Used by workload generators to create imbalanced task sizes.
     */
    std::uint64_t nextPareto(double alpha, std::uint64_t max);

    /** Checkpoint the full generator state. */
    void save(OutArchive &ar) const
    {
        for (std::uint64_t word : s_)
            ar.putU64(word);
    }

    void load(InArchive &ar)
    {
        for (std::uint64_t &word : s_)
            word = ar.getU64();
    }

  private:
    std::uint64_t s_[4];
};

} // namespace cawa

#endif // CAWA_COMMON_RNG_HH
