#include "common/stats.hh"

#include <utility>

namespace cawa
{

StatEntry &
StatsRegistry::add(const std::string &name, StatKind kind)
{
    auto it = index_.find(name);
    if (it == index_.end()) {
        index_.emplace(name, entries_.size());
        entries_.push_back(StatEntry{});
        StatEntry &e = entries_.back();
        e.name = name;
        e.kind = kind;
        return e;
    }
    StatEntry &e = entries_[it->second];
    e.kind = kind;
    e.value = 0;
    e.values.clear();
    return e;
}

void
StatsRegistry::counter(const std::string &name, std::uint64_t value)
{
    add(name, StatKind::Counter).value = value;
}

void
StatsRegistry::histogram(const std::string &name,
                         std::vector<std::uint64_t> buckets)
{
    add(name, StatKind::Histogram).values = std::move(buckets);
}

const StatEntry *
StatsRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

std::uint64_t
StatsRegistry::counterOr(const std::string &name,
                         std::uint64_t fallback) const
{
    const StatEntry *e = find(name);
    return e && e->kind == StatKind::Counter ? e->value : fallback;
}

void
StatsRegistry::clear()
{
    entries_.clear();
    index_.clear();
}

} // namespace cawa
