/**
 * @file
 * Invariant checking helpers, in the spirit of gem5's panic()/fatal().
 *
 * sim_assert() guards internal invariants (a failure is a simulator
 * bug); sim_fatal() reports unusable user configuration. A failing
 * sim_assert()/sim_panic() prints the expression and source location
 * and aborts — unless the calling thread is in *throw-mode*, in which
 * case it raises a SimError (kind Assertion) tagged with the current
 * simulation context (cycle/SM, see setSimAssertContext) so harness
 * layers can contain the failure to one job.
 *
 * Throw-mode is per-thread. It defaults to the CAWA_ASSERT_THROW
 * environment variable (=1 enables) and is toggled programmatically
 * with SimAssertThrowGuard — the sweep engine enables it around every
 * job, while unit tests that want a hard stop keep abort semantics.
 */

#ifndef CAWA_COMMON_SIM_ASSERT_HH
#define CAWA_COMMON_SIM_ASSERT_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/sim_error.hh"

namespace cawa
{

namespace detail
{

/** CAWA_ASSERT_THROW=1 makes throw-mode the process default. */
inline bool
assertThrowEnvDefault()
{
    static const bool enabled = [] {
        const char *v = std::getenv("CAWA_ASSERT_THROW");
        return v && v[0] == '1' && v[1] == '\0';
    }();
    return enabled;
}

inline bool &
assertThrowFlag()
{
    thread_local bool throwing = assertThrowEnvDefault();
    return throwing;
}

/**
 * Best-effort simulation context for assertion messages, updated by
 * the sim core as it ticks (a plain thread-local, so concurrent sweep
 * jobs each see their own machine's position).
 */
inline SimErrorContext &
assertContext()
{
    thread_local SimErrorContext ctx;
    return ctx;
}

} // namespace detail

/** Whether sim_assert()/sim_panic() failures throw on this thread. */
inline bool
simAssertThrows()
{
    return detail::assertThrowFlag();
}

/** Set throw-mode for this thread; returns the previous setting. */
inline bool
setSimAssertThrow(bool enabled)
{
    bool &flag = detail::assertThrowFlag();
    const bool prev = flag;
    flag = enabled;
    return prev;
}

/** Scoped throw-mode toggle (restores the previous mode). */
class SimAssertThrowGuard
{
  public:
    explicit SimAssertThrowGuard(bool enabled)
        : prev_(setSimAssertThrow(enabled))
    {
    }
    ~SimAssertThrowGuard() { setSimAssertThrow(prev_); }
    SimAssertThrowGuard(const SimAssertThrowGuard &) = delete;
    SimAssertThrowGuard &operator=(const SimAssertThrowGuard &) = delete;

  private:
    bool prev_;
};

/** Record where the simulation currently is, for failure messages. */
inline void
setSimAssertContext(Cycle cycle, int sm_id)
{
    SimErrorContext &ctx = detail::assertContext();
    ctx.cycle = cycle;
    ctx.smId = sm_id;
}

/** Clear the recorded context (end of a run). */
inline void
clearSimAssertContext()
{
    detail::assertContext() = SimErrorContext{};
}

[[noreturn]] inline void
panicAt(const char *file, int line, const char *msg)
{
    if (simAssertThrows()) {
        std::string what = msg;
        what += " (";
        what += file;
        what += ":";
        what += std::to_string(line);
        what += ")";
        throw SimError(SimErrorKind::Assertion, what,
                       detail::assertContext());
    }
    const std::string where = detail::assertContext().describe();
    std::fprintf(stderr, "panic: %s:%d: %s%s%s\n", file, line, msg,
                 where.empty() ? "" : " at ", where.c_str());
    std::abort();
}

[[noreturn]] inline void
fatalAt(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace cawa

/**
 * Abort (or throw SimError in throw-mode) if an internal invariant
 * does not hold (simulator bug). The failing expression, source
 * location and current simulation context are captured.
 */
#define sim_assert(cond)                                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            ::cawa::panicAt(__FILE__, __LINE__,                             \
                            "assertion failed: " #cond);                    \
    } while (0)

/** Abort/throw with a message; for unreachable internal states. */
#define sim_panic(msg) ::cawa::panicAt(__FILE__, __LINE__, (msg))

/** Exit with a message; for invalid user-supplied configuration. */
#define sim_fatal(msg) ::cawa::fatalAt(__FILE__, __LINE__, (msg))

#endif // CAWA_COMMON_SIM_ASSERT_HH
