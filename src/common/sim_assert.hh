/**
 * @file
 * Invariant checking helpers, in the spirit of gem5's panic()/fatal().
 *
 * sim_assert() guards internal invariants (a failure is a simulator
 * bug); sim_fatal() reports unusable user configuration. Both print a
 * message with source location and abort/exit respectively.
 */

#ifndef CAWA_COMMON_SIM_ASSERT_HH
#define CAWA_COMMON_SIM_ASSERT_HH

#include <cstdio>
#include <cstdlib>

namespace cawa
{

[[noreturn]] inline void
panicAt(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

[[noreturn]] inline void
fatalAt(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace cawa

/** Abort if an internal invariant does not hold (simulator bug). */
#define sim_assert(cond)                                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            ::cawa::panicAt(__FILE__, __LINE__,                             \
                            "assertion failed: " #cond);                    \
    } while (0)

/** Abort with a message; for unreachable internal states. */
#define sim_panic(msg) ::cawa::panicAt(__FILE__, __LINE__, (msg))

/** Exit with a message; for invalid user-supplied configuration. */
#define sim_fatal(msg) ::cawa::fatalAt(__FILE__, __LINE__, (msg))

#endif // CAWA_COMMON_SIM_ASSERT_HH
