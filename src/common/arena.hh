/**
 * @file
 * Hot-path allocation primitives for the per-cycle simulation loop.
 *
 * The single-simulation hot path used to churn the general-purpose
 * heap on every memory instruction: MSHR map nodes, transaction
 * deques and per-access token bookkeeping all allocated and freed at
 * cache-access rate. The three building blocks here replace that
 * traffic with index-based slabs and rings whose storage is acquired
 * once and recycled forever after:
 *
 *  - SlabPool<T>: contiguous slots plus a LIFO free list of indices.
 *    Freed slots are handed back most-recently-freed first, exactly
 *    like the LD/ST token pool it generalizes, so the allocation
 *    order (and therefore every observable id) is deterministic.
 *    Slots are NOT reset on reuse: callers reinitialize the fields
 *    they use, which lets pooled objects keep heap capacity (e.g. a
 *    merge list's vector) across generations.
 *
 *  - PooledMap<K, V>: a small open map over a SlabPool. Keys live in
 *    one compact array scanned linearly -- for the bounded MSHR
 *    files (<= 32 entries) a contiguous scan beats hashing, and
 *    erase is a swap-remove. Iteration order is unspecified; callers
 *    that serialize must order the keys themselves.
 *
 *  - RingQueue<T>: a power-of-two ring buffer with deque semantics
 *    (FIFO push/pop, stable element order, mid-queue compaction) and
 *    amortized zero allocation.
 *
 * All three are checkpoint-aware: the pools serialize their live set
 * and free-list order verbatim (future allocations depend on both),
 * and the byte format of the migrated structures is unchanged from
 * the containers they replaced.
 */

#ifndef CAWA_COMMON_ARENA_HH
#define CAWA_COMMON_ARENA_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/sim_assert.hh"

namespace cawa
{

template <typename T>
class SlabPool
{
  public:
    /** Pre-size the slab (no live slots). */
    void reserve(std::size_t n) { slots_.reserve(n); }

    /**
     * Allocate a slot and return its index. Recycles the most
     * recently freed slot first (LIFO), growing the slab only when
     * the free list is empty. The slot's previous contents are kept.
     */
    std::uint32_t alloc()
    {
        std::uint32_t idx;
        if (freeList_.empty()) {
            idx = static_cast<std::uint32_t>(slots_.size());
            slots_.emplace_back();
        } else {
            idx = freeList_.back();
            freeList_.pop_back();
        }
        live_++;
        return idx;
    }

    void free(std::uint32_t idx)
    {
        freeList_.push_back(idx);
        live_--;
        sim_assert(live_ >= 0);
    }

    T &at(std::uint32_t idx) { return slots_[idx]; }
    const T &at(std::uint32_t idx) const { return slots_[idx]; }

    /** Total slots ever created (live + free). */
    std::size_t size() const { return slots_.size(); }

    /** Currently allocated slots. */
    int live() const { return live_; }

    const std::vector<std::uint32_t> &freeList() const
    {
        return freeList_;
    }

    void clear()
    {
        slots_.clear();
        freeList_.clear();
        live_ = 0;
    }

    /**
     * Serialize every slot (live and free) by index, then the free
     * list in LIFO order. Both halves are needed for determinism:
     * the next alloc() after restore must hand out the same index
     * the un-checkpointed run would have.
     */
    template <typename SaveEntry>
    void save(OutArchive &ar, SaveEntry &&save_entry) const
    {
        ar.putU32(static_cast<std::uint32_t>(slots_.size()));
        for (const T &slot : slots_)
            save_entry(ar, slot);
        ar.putU32(static_cast<std::uint32_t>(freeList_.size()));
        for (std::uint32_t idx : freeList_)
            ar.putU32(idx);
    }

    template <typename LoadEntry>
    void load(InArchive &ar, LoadEntry &&load_entry)
    {
        slots_.clear();
        const std::uint32_t n = ar.getU32();
        slots_.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            slots_.emplace_back();
            load_entry(ar, slots_.back());
        }
        freeList_.clear();
        const std::uint32_t num_free = ar.getU32();
        freeList_.reserve(num_free);
        for (std::uint32_t i = 0; i < num_free; ++i)
            freeList_.push_back(ar.getU32());
        live_ = static_cast<int>(n) - static_cast<int>(num_free);
        sim_assert(live_ >= 0);
    }

  private:
    std::vector<T> slots_;
    std::vector<std::uint32_t> freeList_;
    int live_ = 0;
};

/**
 * Flat associative container for small, bounded key sets. find() is
 * a linear scan over a contiguous key array; values are pooled so an
 * erase/insert cycle reuses the old value's heap capacity.
 */
template <typename K, typename V>
class PooledMap
{
  public:
    void reserve(std::size_t n)
    {
        keys_.reserve(n);
        valueIdx_.reserve(n);
        pool_.reserve(n);
    }

    V *find(const K &key)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] == key)
                return &pool_.at(valueIdx_[i]);
        return nullptr;
    }

    const V *find(const K &key) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] == key)
                return &pool_.at(valueIdx_[i]);
        return nullptr;
    }

    /**
     * Insert @p key (must not be present) and return its value slot.
     * The slot is recycled, NOT reset: the caller reinitializes the
     * fields it uses and keeps any heap capacity.
     */
    V &insert(const K &key)
    {
        const std::uint32_t idx = pool_.alloc();
        keys_.push_back(key);
        valueIdx_.push_back(idx);
        return pool_.at(idx);
    }

    /** Erase @p key (must be present). Swap-remove; order changes. */
    void erase(const K &key)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key) {
                pool_.free(valueIdx_[i]);
                keys_[i] = keys_.back();
                valueIdx_[i] = valueIdx_.back();
                keys_.pop_back();
                valueIdx_.pop_back();
                return;
            }
        }
        sim_panic("PooledMap::erase: key not present");
    }

    std::size_t size() const { return keys_.size(); }
    bool empty() const { return keys_.empty(); }

    void clear()
    {
        keys_.clear();
        valueIdx_.clear();
        pool_.clear();
    }

    /** Visit every live entry as f(key, value); unspecified order. */
    template <typename F>
    void forEach(F &&f) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            f(keys_[i], pool_.at(valueIdx_[i]));
    }

    /** The live keys, in unspecified order (for sorted serializing). */
    const std::vector<K> &keys() const { return keys_; }

  private:
    std::vector<K> keys_;
    std::vector<std::uint32_t> valueIdx_;
    SlabPool<V> pool_;
};

/**
 * FIFO ring with deque semantics over power-of-two storage. Indexing
 * is front-relative: (*this)[0] is the oldest element.
 */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    T &operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[wrap(head_ + i)];
    }

    void push_back(const T &v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[wrap(head_ + size_)] = v;
        size_++;
    }

    void pop_front()
    {
        sim_assert(size_ > 0);
        head_ = wrap(head_ + 1);
        size_--;
    }

    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /**
     * Remove every element for which @p pred returns true, keeping
     * the relative order of the survivors. Single compacting pass.
     */
    template <typename Pred>
    void eraseIf(Pred &&pred)
    {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < size_; ++i) {
            T &elem = buf_[wrap(head_ + i)];
            if (pred(elem))
                continue;
            if (kept != i)
                buf_[wrap(head_ + kept)] = elem;
            kept++;
        }
        size_ = kept;
    }

  private:
    std::size_t wrap(std::size_t i) const
    {
        return i & (buf_.size() - 1);
    }

    void grow()
    {
        const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = buf_[wrap(head_ + i)];
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace cawa

#endif // CAWA_COMMON_ARENA_HH
