/**
 * @file
 * Binary archive layer for cycle-exact checkpoints.
 *
 * OutArchive appends fixed-width little-endian primitives to a byte
 * buffer; InArchive reads them back with bounds checking. Every
 * read failure throws a SimError of kind Checkpoint that names the
 * section being decoded and the byte offset where decoding fell off
 * the end, so a truncated or corrupt checkpoint file produces an
 * actionable diagnostic instead of garbage state.
 *
 * The encoding is deliberately boring: no varints, no alignment, no
 * endianness detection. Fixed-width little-endian everywhere makes
 * the format trivially stable across builds of the simulator on the
 * platforms we care about, and the per-section CRC32 (see
 * sim/checkpoint.hh) catches corruption that bounds checks cannot.
 */

#ifndef CAWA_COMMON_SERIALIZE_HH
#define CAWA_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cawa
{

/** CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** Convenience overload for strings (used for program hashes). */
std::uint32_t crc32(const std::string &s);

/** Append-only little-endian byte sink. */
class OutArchive
{
  public:
    void putU8(std::uint8_t v) { buf_.push_back(v); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putU16(std::uint16_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v)
    {
        putU64(static_cast<std::uint64_t>(v));
    }
    void putDouble(double v);
    /** Length-prefixed (u32) raw bytes. */
    void putBytes(const std::uint8_t *data, std::size_t size);
    /** Length-prefixed (u32) string. */
    void putString(const std::string &s);

    const std::uint8_t *data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked little-endian reader over a borrowed byte range.
 * The buffer must outlive the archive. All getters throw
 * SimError(Checkpoint) naming @p section and the current byte
 * offset when the requested read would run past the end.
 */
class InArchive
{
  public:
    InArchive(const std::uint8_t *data, std::size_t size,
              std::string section);

    std::uint8_t getU8();
    bool getBool() { return getU8() != 0; }
    std::uint16_t getU16();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64()
    {
        return static_cast<std::int64_t>(getU64());
    }
    double getDouble();
    /** Read a u32 length prefix, then that many raw bytes. */
    std::vector<std::uint8_t> getBytes();
    std::string getString();

    std::size_t offset() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }
    const std::string &section() const { return section_; }

    /**
     * Throw unless the archive has been consumed exactly. Called at
     * the end of every component's load so a format drift (extra or
     * missing fields) is caught at restore time, not as divergence
     * a million cycles later.
     */
    void expectEnd() const;

  private:
    [[noreturn]] void fail(const std::string &what) const;
    void need(std::size_t n) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string section_;
};

} // namespace cawa

#endif // CAWA_COMMON_SERIALIZE_HH
