/**
 * @file
 * Aligned text-table and CSV emission used by the benchmark harness to
 * print the paper's tables and figure series.
 */

#ifndef CAWA_COMMON_TABLE_HH
#define CAWA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace cawa
{

/**
 * A simple column-aligned table. Rows are built cell by cell; print()
 * pads each column to its widest cell. printCsv() emits the same data
 * as comma-separated values for downstream plotting.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted floating-point cell. */
    Table &cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(std::uint64_t value);
    Table &cell(int value);

    /** Emit as an aligned text table with a title line. */
    void print(std::ostream &os, const std::string &title) const;

    /** Emit as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cawa

#endif // CAWA_COMMON_TABLE_HH
