#include "common/sim_error.hh"

#include <sstream>

namespace cawa
{

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Assertion: return "assertion";
      case SimErrorKind::Invariant: return "invariant";
      case SimErrorKind::Config: return "config";
      case SimErrorKind::Deadlock: return "deadlock";
      case SimErrorKind::Checkpoint: return "checkpoint";
      case SimErrorKind::Walltime: return "walltime";
      case SimErrorKind::Cancelled: return "cancelled";
      case SimErrorKind::Journal: return "journal";
    }
    return "?";
}

std::string
SimErrorContext::describe() const
{
    std::ostringstream oss;
    bool first = true;
    auto sep = [&] {
        if (!first)
            oss << ", ";
        first = false;
    };
    if (cycle != kNoCycle) {
        sep();
        oss << "cycle " << cycle;
    }
    if (smId >= 0) {
        sep();
        oss << "sm " << smId;
    }
    if (warp >= 0) {
        sep();
        oss << "warp " << warp;
    }
    return oss.str();
}

namespace
{

std::string
formatSimError(SimErrorKind kind, const std::string &message,
               const SimErrorContext &context)
{
    std::string out = simErrorKindName(kind);
    const std::string where = context.describe();
    if (!where.empty()) {
        out += " [";
        out += where;
        out += "]";
    }
    out += ": ";
    out += message;
    return out;
}

} // namespace

SimError::SimError(SimErrorKind kind, const std::string &message,
                   SimErrorContext context)
    : std::runtime_error(formatSimError(kind, message, context)),
      kind_(kind), context_(context), detail_(message)
{
}

} // namespace cawa
