#include "common/table.hh"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/sim_assert.hh"

namespace cawa
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    sim_assert(!rows_.empty());
    sim_assert(rows_.back().size() < headers_.size());
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    os << "\n";
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace cawa
