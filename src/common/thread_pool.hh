/**
 * @file
 * Small fixed-size worker pool used by the sweep engine and the
 * benchmark harness. Tasks are arbitrary callables; submit() returns
 * a std::future so callers can collect results in submission order
 * (and re-raise exceptions) regardless of completion order.
 */

#ifndef CAWA_COMMON_THREAD_POOL_HH
#define CAWA_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cawa
{

class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 means defaultThreadCount(). */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0)
            threads = defaultThreadCount();
        workers_.reserve(threads);
        for (int i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue @p fn; the future delivers its result (or rethrows the
     * exception it raised) to the caller.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F fn)
    {
        using Result = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<Result()>>(std::move(fn));
        std::future<Result> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /** Hardware concurrency, falling back to 1 when unknown. */
    static int
    defaultThreadCount()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? static_cast<int>(hw) : 1;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Run fn(i) for every i in [0, n) on @p pool and wait for all of
 * them. Exceptions propagate to the caller (the first in index
 * order).
 */
template <typename F>
inline void
parallelFor(ThreadPool &pool, std::size_t n, F fn)
{
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pending.push_back(pool.submit([fn, i] { fn(i); }));
    for (auto &f : pending)
        f.get();
}

/**
 * Fixed-size fork-join team for tight per-cycle loops (the parallel-SM
 * tick in sim/gpu.cc). run(fn) invokes fn(index) once for every index
 * in [0, threads) concurrently — the calling thread executes index 0
 * itself — and returns only after all indices finish. Unlike
 * ThreadPool::submit there is no per-task queue, future or heap
 * allocation on the worker side: the team is woken by bumping an
 * atomic generation counter, so a fork/join round is cheap enough to
 * run every simulated cycle.
 *
 * Workers spin briefly on the generation counter and then park on a
 * condition variable, so an oversubscribed team (threads > cores)
 * degrades to ordinary blocking instead of burning whole scheduler
 * quanta. Exceptions are captured per index and rethrown in the
 * caller after the join, lowest index first, so a failing run() is
 * deterministic too.
 */
class ForkJoin
{
  public:
    explicit ForkJoin(int threads)
        : threads_(threads < 1 ? 1 : threads),
          errors_(static_cast<std::size_t>(threads_))
    {
        workers_.reserve(static_cast<std::size_t>(threads_ - 1));
        for (int i = 1; i < threads_; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ForkJoin()
    {
        if (threads_ > 1) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                stopping_.store(true, std::memory_order_relaxed);
                generation_.fetch_add(1, std::memory_order_release);
            }
            cv_.notify_all();
            for (auto &worker : workers_)
                worker.join();
        }
    }

    ForkJoin(const ForkJoin &) = delete;
    ForkJoin &operator=(const ForkJoin &) = delete;

    int threads() const { return threads_; }

    /** Run fn(0) .. fn(threads()-1) concurrently; join; rethrow. */
    void
    run(const std::function<void(int)> &fn)
    {
        if (threads_ == 1) {
            fn(0); // no team to coordinate with
            return;
        }
        task_ = &fn;
        pending_.store(threads_ - 1, std::memory_order_relaxed);
        {
            // The (empty) critical section pairs with the workers'
            // cv_.wait predicate: a worker that checked the counter
            // just before this bump is either still holding the lock
            // (we wait for it) or already parked (notify_all wakes
            // it) — no lost wakeup.
            std::lock_guard<std::mutex> lock(mutex_);
            generation_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
        runProtected(0);
        for (int spin = 0;
             pending_.load(std::memory_order_acquire) != 0; ++spin) {
            if (spin >= kJoinSpins) {
                std::unique_lock<std::mutex> lock(doneMutex_);
                doneCv_.wait(lock, [this] {
                    return pending_.load(std::memory_order_acquire) == 0;
                });
                break;
            }
        }
        task_ = nullptr;
        rethrowFirstError();
    }

  private:
    // Spin budgets before parking; kept small because the team may
    // have more threads than the machine has cores.
    static constexpr int kForkSpins = 256;
    static constexpr int kJoinSpins = 1024;

    void
    runProtected(int index)
    {
        try {
            (*task_)(index);
        } catch (...) {
            errors_[static_cast<std::size_t>(index)] =
                std::current_exception();
        }
    }

    void
    rethrowFirstError()
    {
        for (std::size_t i = 0; i < errors_.size(); ++i) {
            if (errors_[i]) {
                const std::exception_ptr first = errors_[i];
                for (auto &err : errors_)
                    err = nullptr;
                std::rethrow_exception(first);
            }
        }
    }

    void
    workerLoop(int index)
    {
        // Baseline is the construction-time generation (0), NOT the
        // first observed value: a worker that gets scheduled late
        // could otherwise first see the generation of an already
        // in-flight run() and skip its share of it — deadlocking the
        // caller's join.
        std::uint64_t seen = 0;
        for (;;) {
            std::uint64_t gen = generation_.load(std::memory_order_acquire);
            for (int spin = 0; gen == seen && spin < kForkSpins; ++spin)
                gen = generation_.load(std::memory_order_acquire);
            if (gen == seen) {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this, seen] {
                    return generation_.load(std::memory_order_acquire) !=
                           seen;
                });
                gen = generation_.load(std::memory_order_acquire);
            }
            seen = gen;
            if (stopping_.load(std::memory_order_relaxed))
                return;
            runProtected(index);
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(doneMutex_);
                doneCv_.notify_one();
            }
        }
    }

    const int threads_;
    // Written by run() before the generation bump (release) and read
    // by workers after observing it (acquire), so the plain pointer
    // accesses are ordered.
    const std::function<void(int)> *task_ = nullptr;
    std::vector<std::exception_ptr> errors_; // slot i owned by index i
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<int> pending_{0};
    std::atomic<bool> stopping_{false};
    std::mutex mutex_;
    std::condition_variable cv_;
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
};

} // namespace cawa

#endif // CAWA_COMMON_THREAD_POOL_HH
