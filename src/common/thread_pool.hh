/**
 * @file
 * Small fixed-size worker pool used by the sweep engine and the
 * benchmark harness. Tasks are arbitrary callables; submit() returns
 * a std::future so callers can collect results in submission order
 * (and re-raise exceptions) regardless of completion order.
 */

#ifndef CAWA_COMMON_THREAD_POOL_HH
#define CAWA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cawa
{

class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 means defaultThreadCount(). */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0)
            threads = defaultThreadCount();
        workers_.reserve(threads);
        for (int i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue @p fn; the future delivers its result (or rethrows the
     * exception it raised) to the caller.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F fn)
    {
        using Result = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<Result()>>(std::move(fn));
        std::future<Result> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /** Hardware concurrency, falling back to 1 when unknown. */
    static int
    defaultThreadCount()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? static_cast<int>(hw) : 1;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Run fn(i) for every i in [0, n) on @p pool and wait for all of
 * them. Exceptions propagate to the caller (the first in index
 * order).
 */
template <typename F>
inline void
parallelFor(ThreadPool &pool, std::size_t n, F fn)
{
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pending.push_back(pool.submit([fn, i] { fn(i); }));
    for (auto &f : pending)
        f.get();
}

} // namespace cawa

#endif // CAWA_COMMON_THREAD_POOL_HH
