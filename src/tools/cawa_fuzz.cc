/**
 * @file
 * cawa_fuzz: drive seeded random kernels and config perturbations
 * through the hardened-harness paths (deadlock watchdog, invariant
 * auditor, crash-isolated job execution) and check that every run
 * ends the way it should:
 *
 *  - clean seeds (no fault injected) must complete with exitStatus
 *    "completed" and no error, at any CAWA_CHECK level;
 *  - seeds with an injected fault (a swallowed barrier arrival or a
 *    dropped load completion) must be caught -- either classified by
 *    the watchdog as a deadlock or rejected by the auditor with a
 *    SimError -- never reported as a clean completion and never
 *    allowed to burn to the maxCycles timeout undetected.
 *
 * Examples:
 *   cawa_fuzz --seeds 50
 *   cawa_fuzz --seeds 200 --start 1000 --check 2 --verbose
 *
 * Exit status 0 when every seed behaves, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "sim/gpu_config.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"

using namespace cawa;

namespace
{

constexpr Addr kIn = 0x100000;
constexpr Addr kOut = 0x200000;

struct FuzzCase
{
    GpuConfig cfg;
    KernelInfo kernel;
    Program program;
    const char *fault = "none"; ///< which hook the case arms
};

/**
 * A small structured kernel: per-thread global loads feeding an ALU
 * mix, a few barrier rounds, one store. Barriers and loads are always
 * present so the armed fault hooks are guaranteed to fire.
 */
Program
buildProgram(Rng &rng)
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(4, 1, 2);
    b.ldGlobal(2, 4, kIn);
    b.movImm(3, static_cast<std::int64_t>(rng.nextBounded(64)));
    const int rounds = 1 + static_cast<int>(rng.nextBounded(3));
    for (int r = 0; r < rounds; ++r) {
        const int ops = 1 + static_cast<int>(rng.nextBounded(4));
        for (int i = 0; i < ops; ++i) {
            switch (rng.nextBounded(4)) {
              case 0: b.addImm(3, 3, rng.nextRange(-7, 7)); break;
              case 1: b.add(3, 3, 2); break;
              case 2: b.xor_(3, 3, 1); break;
              default: b.shrImm(3, 3, 1); break;
            }
        }
        if (rng.nextBounded(2))
            b.ldGlobal(5, 4, kIn + 0x1000 * (r + 1));
        b.bar();
    }
    b.shlImm(4, 1, 2);
    b.stGlobal(4, 3, kOut);
    b.exit();
    return b.build();
}

FuzzCase
buildCase(std::uint64_t seed, int check_level)
{
    Rng rng(seed);
    FuzzCase fc;
    fc.program = buildProgram(rng);

    GpuConfig &cfg = fc.cfg;
    cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1 + static_cast<int>(rng.nextBounded(2));
    cfg.maxWarpsPerSm = rng.nextBounded(2) ? 48 : 16;
    cfg.scheduler = rng.nextBounded(2) ? SchedulerKind::Gcaws
                                       : SchedulerKind::Lrr;
    cfg.l1Policy = rng.nextBounded(2) ? CachePolicyKind::Cacp
                                      : CachePolicyKind::Lru;
    cfg.l1d.numMshrs = rng.nextBounded(2) ? 4 : 32;
    cfg.ldstQueueSize = rng.nextBounded(2) ? 8 : 64;
    cfg.aluLatency = rng.nextBounded(2) ? 2 : 4;
    cfg.dramLatency = rng.nextBounded(2) ? 60 : 120;
    cfg.maxCycles = 2'000'000;
    // Tight harness cadences so detection happens within the run.
    cfg.watchdogInterval = 2'000;
    cfg.checkLevel = check_level;
    cfg.auditInterval = 128;

    fc.kernel.name = "fuzz" + std::to_string(seed);
    fc.kernel.program = fc.program;
    fc.kernel.gridDim = 2 * cfg.numSms +
                        static_cast<int>(rng.nextBounded(4));
    fc.kernel.blockDim =
        32 * (1 + static_cast<int>(rng.nextBounded(4)));
    fc.kernel.regsPerThread = 16;

    // Roughly half the seeds run clean; the rest arm one fault. The
    // ordinal is 0 so the first matching event on SM 0 is corrupted
    // (block 0 always lands there, so the hook always fires).
    switch (rng.nextBounded(4)) {
      case 0:
        cfg.faults.dropBarrierArrival = 0;
        fc.fault = "dropBarrierArrival";
        break;
      case 1:
        cfg.faults.dropLoadCompletion = 0;
        fc.fault = "dropLoadCompletion";
        break;
      default:
        break;
    }
    return fc;
}

[[noreturn]] void
usage(int status)
{
    std::fprintf(status ? stderr : stdout,
                 "usage: cawa_fuzz [options]\n"
                 "  --seeds N    number of seeds to run (default 20)\n"
                 "  --start S    first seed (default 1)\n"
                 "  --check L    invariant audit level 0/1/2"
                 " (default 2)\n"
                 "  --verbose    print every seed's outcome\n"
                 "  --help       this text\n");
    std::exit(status);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seeds = 20;
    std::uint64_t start = 1;
    int check_level = 2;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cawa_fuzz: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            seeds = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--start") {
            start = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--check") {
            check_level = std::atoi(next());
            if (check_level < 0 || check_level > 2) {
                std::fprintf(stderr,
                             "cawa_fuzz: --check wants 0, 1 or 2\n");
                std::exit(2);
            }
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "cawa_fuzz: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    int anomalies = 0;
    for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
        const FuzzCase fc = buildCase(seed, check_level);

        SweepJob job;
        job.name = fc.kernel.name;
        job.cfg = fc.cfg;
        // The kernel's program member references fc.program, which
        // outlives the job; loads read zeros, which is fine -- the
        // fuzzer checks failure handling, not data results.
        job.build = [&fc](MemoryImage &) { return fc.kernel; };

        const SweepResult res = runSweepJob(job);
        const char *outcome =
            !res.error.empty()
                ? "error"
                : exitStatusName(res.report.exitStatus);

        bool bad;
        if (std::strcmp(fc.fault, "none") == 0) {
            // Clean seeds must complete cleanly.
            bad = !res.ok();
        } else {
            // Faulted seeds must be *detected*: the watchdog names
            // the wedge or the auditor/an assertion throws. A clean
            // completion means the fault escaped; a plain timeout
            // means detection failed and the run burned to the
            // safety valve.
            bad = res.error.empty() &&
                  res.report.exitStatus != ExitStatus::Deadlock;
        }

        if (bad || verbose) {
            std::fprintf(stderr,
                         "cawa_fuzz: seed %llu fault=%s -> %s%s%s%s\n",
                         static_cast<unsigned long long>(seed),
                         fc.fault, outcome, bad ? " [ANOMALY]" : "",
                         res.error.empty() ? "" : ": ",
                         res.error.c_str());
        }
        if (bad)
            ++anomalies;
    }

    std::fprintf(stderr, "cawa_fuzz: %llu seeds, %d anomal%s\n",
                 static_cast<unsigned long long>(seeds), anomalies,
                 anomalies == 1 ? "y" : "ies");
    return anomalies ? 1 : 0;
}
