/**
 * @file
 * cawa_fuzz: drive seeded random kernels and config perturbations
 * through the hardened-harness paths (deadlock watchdog, invariant
 * auditor, crash-isolated job execution) and check that every run
 * ends the way it should:
 *
 *  - clean seeds (no fault injected) must complete with exitStatus
 *    "completed" and no error, at any CAWA_CHECK level;
 *  - seeds with an injected fault (a swallowed barrier arrival or a
 *    dropped load completion) must be caught -- either classified by
 *    the watchdog as a deadlock or rejected by the auditor with a
 *    SimError -- never reported as a clean completion and never
 *    allowed to burn to the maxCycles timeout undetected;
 *  - checkpoints written mid-run must restore cleanly, while any
 *    single-bit corruption (injected through
 *    faults.corruptCheckpointByte) or truncation must be rejected
 *    with a SimError of kind Checkpoint -- never silently restored;
 *  - a sweep whose isolated worker is SIGKILL'd mid-run (through
 *    faults.workerKillSignal) must still finish every job, and its
 *    journal must come out whole: every line parseable, exactly one
 *    entry per job, nothing lost, nothing double-counted;
 *  - a sharded sweep under coordinator chaos (a SIGKILL'd shard
 *    runner, a zombie shard sitting on a finished result until its
 *    jobs are stolen) must produce per-job reports byte-identical to
 *    an unfaulted in-process run, a master journal with exactly one
 *    ok entry per job, and shard journals that merge to the same set
 *    with every stale-epoch zombie entry fenced out.
 *
 * Examples:
 *   cawa_fuzz --seeds 50
 *   cawa_fuzz --seeds 200 --start 1000 --check 2 --verbose
 *   cawa_fuzz --seeds 0 --ckpt-seeds 20
 *   cawa_fuzz --seeds 0 --ckpt-seeds 0 --crash-seeds 10
 *   cawa_fuzz --seeds 0 --ckpt-seeds 0 --crash-seeds 0 --shard-chaos 3
 *
 * Exit status 0 when every seed behaves, 1 otherwise.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/rng.hh"
#include "common/sim_assert.hh"
#include "common/sim_error.hh"
#include "isa/program_builder.hh"
#include "sim/coordinator.hh"
#include "sim/gpu.hh"
#include "sim/gpu_config.hh"
#include "sim/journal.hh"
#include "sim/report.hh"
#include "sim/report_json.hh"
#include "sim/supervisor.hh"
#include "sim/sweep.hh"

using namespace cawa;

namespace
{

constexpr Addr kIn = 0x100000;
constexpr Addr kOut = 0x200000;

struct FuzzCase
{
    GpuConfig cfg;
    KernelInfo kernel;
    Program program;
    const char *fault = "none"; ///< which hook the case arms
};

/**
 * A small structured kernel: per-thread global loads feeding an ALU
 * mix, a few barrier rounds, one store. Barriers and loads are always
 * present so the armed fault hooks are guaranteed to fire.
 */
Program
buildProgram(Rng &rng)
{
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(4, 1, 2);
    b.ldGlobal(2, 4, kIn);
    b.movImm(3, static_cast<std::int64_t>(rng.nextBounded(64)));
    const int rounds = 1 + static_cast<int>(rng.nextBounded(3));
    for (int r = 0; r < rounds; ++r) {
        const int ops = 1 + static_cast<int>(rng.nextBounded(4));
        for (int i = 0; i < ops; ++i) {
            switch (rng.nextBounded(4)) {
              case 0: b.addImm(3, 3, rng.nextRange(-7, 7)); break;
              case 1: b.add(3, 3, 2); break;
              case 2: b.xor_(3, 3, 1); break;
              default: b.shrImm(3, 3, 1); break;
            }
        }
        if (rng.nextBounded(2))
            b.ldGlobal(5, 4, kIn + 0x1000 * (r + 1));
        b.bar();
    }
    b.shlImm(4, 1, 2);
    b.stGlobal(4, 3, kOut);
    b.exit();
    return b.build();
}

FuzzCase
buildCase(std::uint64_t seed, int check_level)
{
    Rng rng(seed);
    FuzzCase fc;
    fc.program = buildProgram(rng);

    GpuConfig &cfg = fc.cfg;
    cfg = GpuConfig::fermiGtx480();
    cfg.numSms = 1 + static_cast<int>(rng.nextBounded(2));
    cfg.maxWarpsPerSm = rng.nextBounded(2) ? 48 : 16;
    cfg.scheduler = rng.nextBounded(2) ? SchedulerKind::Gcaws
                                       : SchedulerKind::Lrr;
    cfg.l1Policy = rng.nextBounded(2) ? CachePolicyKind::Cacp
                                      : CachePolicyKind::Lru;
    cfg.l1d.numMshrs = rng.nextBounded(2) ? 4 : 32;
    cfg.ldstQueueSize = rng.nextBounded(2) ? 8 : 64;
    cfg.aluLatency = rng.nextBounded(2) ? 2 : 4;
    cfg.dramLatency = rng.nextBounded(2) ? 60 : 120;
    cfg.maxCycles = 2'000'000;
    // Tight harness cadences so detection happens within the run.
    cfg.watchdogInterval = 2'000;
    cfg.checkLevel = check_level;
    cfg.auditInterval = 128;

    fc.kernel.name = "fuzz" + std::to_string(seed);
    fc.kernel.program = fc.program;
    fc.kernel.gridDim = 2 * cfg.numSms +
                        static_cast<int>(rng.nextBounded(4));
    fc.kernel.blockDim =
        32 * (1 + static_cast<int>(rng.nextBounded(4)));
    fc.kernel.regsPerThread = 16;

    // Roughly half the seeds run clean; the rest arm one fault. The
    // ordinal is 0 so the first matching event on SM 0 is corrupted
    // (block 0 always lands there, so the hook always fires).
    switch (rng.nextBounded(4)) {
      case 0:
        cfg.faults.dropBarrierArrival = 0;
        fc.fault = "dropBarrierArrival";
        break;
      case 1:
        cfg.faults.dropLoadCompletion = 0;
        fc.fault = "dropLoadCompletion";
        break;
      default:
        break;
    }
    return fc;
}

/**
 * Checkpoint robustness phase for one seed. Runs a clean case to a
 * seed-chosen cycle, writes a checkpoint, then checks three things:
 *
 *  1. the untouched checkpoint restores without error;
 *  2. re-writing it with faults.corruptCheckpointByte armed (one
 *     flipped bit at a seed-chosen position, plus position 0 so the
 *     magic is always covered) makes restoreCheckpoint() throw a
 *     SimError of kind Checkpoint -- any other outcome (clean
 *     restore, a different error kind) is an anomaly;
 *  3. a truncated copy of the checkpoint is likewise rejected.
 *
 * Returns the number of anomalies found (0 when the seed behaves).
 */
int
runCheckpointSeed(std::uint64_t seed, bool verbose)
{
    namespace fs = std::filesystem;

    FuzzCase fc = buildCase(seed, /*check_level=*/0);
    fc.cfg.faults = FaultInjection{}; // corruption only, no sim faults
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    const Cycle stop = 200 + rng.nextBounded(3'000);

    const std::string base =
        (fs::temp_directory_path() /
         ("cawa_fuzz_" + std::to_string(::getpid()) + "_" +
          std::to_string(seed)))
            .string();
    const std::string clean = base + ".ckpt";
    const std::string mangled = base + "_bad.ckpt";

    // Checkpoint loads assert internal invariants; surface any
    // failure as an exception instead of aborting the fuzzer.
    SimAssertThrowGuard assert_guard(true);

    int anomalies = 0;
    auto anomaly = [&](const char *what, const std::string &detail) {
        ++anomalies;
        std::fprintf(stderr,
                     "cawa_fuzz: ckpt seed %llu %s [ANOMALY]%s%s\n",
                     static_cast<unsigned long long>(seed), what,
                     detail.empty() ? "" : ": ", detail.c_str());
    };

    auto writeCheckpoint = [&](const GpuConfig &cfg,
                               const std::string &path) {
        MemoryImage mem;
        Gpu gpu(cfg, mem);
        gpu.launch(fc.kernel);
        gpu.stepUntil(stop);
        gpu.saveCheckpoint(path);
    };
    writeCheckpoint(fc.cfg, clean);

    // 1. A valid checkpoint must restore (and pass the post-restore
    //    level-2 audit) without complaint.
    try {
        MemoryImage mem;
        Gpu gpu(fc.cfg, mem);
        gpu.restoreCheckpoint(clean, fc.kernel);
    } catch (const std::exception &e) {
        anomaly("valid checkpoint rejected", e.what());
    }

    // 2. Single-bit corruption at several positions: always position
    //    0 (the magic), then seed-chosen byte/bit combinations across
    //    the whole file.
    const auto file_size =
        static_cast<std::uint64_t>(fs::file_size(clean));
    for (int trial = 0; trial < 4; ++trial) {
        const std::int64_t pos =
            trial == 0 ? 0
                       : static_cast<std::int64_t>(
                             rng.nextBounded(file_size * 8));
        GpuConfig cfg = fc.cfg;
        cfg.faults.corruptCheckpointByte = pos;
        writeCheckpoint(cfg, mangled);

        bool detected = false;
        std::string outcome = "restored cleanly";
        try {
            MemoryImage mem;
            Gpu gpu(fc.cfg, mem);
            gpu.restoreCheckpoint(mangled, fc.kernel);
        } catch (const SimError &e) {
            detected = e.kind() == SimErrorKind::Checkpoint;
            outcome = e.what();
        } catch (const std::exception &e) {
            outcome = e.what();
        }
        if (!detected) {
            anomaly("corrupt checkpoint not rejected as Checkpoint",
                    "bit position " + std::to_string(pos) + ": " +
                        outcome);
        } else if (verbose) {
            std::fprintf(stderr,
                         "cawa_fuzz: ckpt seed %llu bit %lld -> "
                         "rejected\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<long long>(pos));
        }
    }

    // 3. Truncation anywhere in the file must also be rejected.
    {
        const std::uint64_t keep = rng.nextBounded(file_size);
        std::ifstream in(clean, std::ios::binary);
        std::string bytes(static_cast<std::size_t>(keep), '\0');
        in.read(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        std::ofstream out(mangled,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();

        bool detected = false;
        std::string outcome = "restored cleanly";
        try {
            MemoryImage mem;
            Gpu gpu(fc.cfg, mem);
            gpu.restoreCheckpoint(mangled, fc.kernel);
        } catch (const SimError &e) {
            detected = e.kind() == SimErrorKind::Checkpoint;
            outcome = e.what();
        } catch (const std::exception &e) {
            outcome = e.what();
        }
        if (!detected)
            anomaly("truncated checkpoint not rejected",
                    "kept " + std::to_string(keep) + " of " +
                        std::to_string(file_size) + " bytes: " +
                        outcome);
    }

    std::error_code ec;
    fs::remove(clean, ec);
    fs::remove(mangled, ec);

    if (verbose && anomalies == 0)
        std::fprintf(stderr, "cawa_fuzz: ckpt seed %llu ok\n",
                     static_cast<unsigned long long>(seed));
    return anomalies;
}

/**
 * Worker-crash robustness phase for one seed: a four-job sweep runs
 * under the process-isolated supervisor with a journal attached, and
 * one seed-chosen victim job is SIGKILL'd at a seed-chosen cycle.
 * The sweep must still end with every job ok, and the journal must be
 * exactly consistent: every raw line parseable (a killed worker can
 * never tear the parent's appends), one entry per job, and a resume
 * plan with nothing left to do. Returns the number of anomalies.
 */
int
runCrashSeed(std::uint64_t seed, bool verbose)
{
    namespace fs = std::filesystem;

    Rng rng(seed ^ 0xc2b2ae3d27d4eb4full);

    int anomalies = 0;
    auto anomaly = [&](const char *what, const std::string &detail) {
        ++anomalies;
        std::fprintf(stderr,
                     "cawa_fuzz: crash seed %llu %s [ANOMALY]%s%s\n",
                     static_cast<unsigned long long>(seed), what,
                     detail.empty() ? "" : ": ", detail.c_str());
    };

    // Four clean cases (sim faults disarmed; this phase only injects
    // worker-process faults). The cases must outlive the sweep: the
    // jobs' build closures hand out kernels referencing them.
    std::vector<FuzzCase> cases;
    cases.reserve(4);
    std::vector<SweepJob> jobs;
    for (int i = 0; i < 4; ++i) {
        cases.push_back(
            buildCase(seed * 16 + static_cast<std::uint64_t>(i),
                      /*check_level=*/0));
        FuzzCase &fc = cases.back();
        fc.cfg.faults = FaultInjection{};
        SweepJob job;
        job.name = fc.kernel.name + "_c" + std::to_string(i);
        job.cfg = fc.cfg;
        job.build = [&fc](MemoryImage &) { return fc.kernel; };
        jobs.push_back(std::move(job));
    }
    const std::size_t victim = rng.nextBounded(4);
    jobs[victim].cfg.faults.workerKillSignal = SIGKILL;
    jobs[victim].cfg.faults.workerFaultCycle =
        1 + rng.nextBounded(500);

    const std::string journal_path =
        (fs::temp_directory_path() /
         ("cawa_fuzz_crash_" + std::to_string(::getpid()) + "_" +
          std::to_string(seed) + ".jsonl"))
            .string();
    std::remove(journal_path.c_str());

    SupervisorOptions opt;
    opt.workers = 2;
    opt.heartbeatIntervalSec = 0.05;
    opt.gracePeriodSec = 0.5;
    opt.maxAttemptsPerJob = 3;
    opt.backoffBaseSec = 0.005;
    opt.backoffCapSec = 0.02;
    opt.backoffSeed = seed;

    JournalWriter writer;
    writer.open(journal_path);
    SweepSupervisor supervisor(opt);
    const auto results = supervisor.run(
        jobs, [&](std::size_t index, const SweepResult &res) {
            writer.append(makeJournalEntry(jobs[index].name, res));
        });
    writer.close();

    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok())
            anomaly("job failed under worker crash",
                    jobs[i].name + ": " + results[i].error);
    }

    // Every raw journal line must parse: the dying worker shares no
    // fd with the journal, so its death can never tear an append.
    std::size_t raw_lines = 0;
    {
        std::ifstream in(journal_path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            ++raw_lines;
            try {
                parseJson(line);
            } catch (const std::exception &e) {
                anomaly("journal line unreadable",
                        line + " (" + e.what() + ")");
            }
        }
    }

    const auto entries = readJournal(journal_path);
    if (entries.size() != jobs.size() || raw_lines != jobs.size()) {
        anomaly("journal entry count off",
                std::to_string(raw_lines) + " lines, " +
                    std::to_string(entries.size()) + " entries for " +
                    std::to_string(jobs.size()) + " jobs");
    }
    for (const SweepJob &job : jobs) {
        int count = 0;
        for (const JournalEntry &entry : entries)
            count += entry.job == job.name;
        if (count != 1)
            anomaly("job journaled wrong number of times",
                    job.name + " x" + std::to_string(count));
    }
    if (!filterResumeJobs(jobs, entries).empty())
        anomaly("resume plan not empty after a completed sweep", "");

    std::remove(journal_path.c_str());
    if (verbose && anomalies == 0) {
        std::fprintf(
            stderr,
            "cawa_fuzz: crash seed %llu ok (victim %s attempts %d)\n",
            static_cast<unsigned long long>(seed),
            jobs[victim].name.c_str(), results[victim].attempts);
    }
    return anomalies;
}

/**
 * Sharded-sweep chaos phase for one seed: 8-12 clean fuzz jobs run
 * first through the in-process SweepEngine (the oracle), then across
 * three fork-mode shard runners under seed-chosen chaos -- always a
 * SIGKILL'd shard, and on half the seeds also a zombie shard that
 * sits on a finished result until the stall rule steals its jobs, so
 * the held result later arrives under a stale epoch and must be
 * fenced. Whatever the chaos did, the coordinator must deliver:
 *
 *  - every job ok, with a report byte-identical to the oracle's;
 *  - a master journal with exactly one ok entry per job;
 *  - shard journals that merge (fence-aware, submission order) to the
 *    same one-entry-per-job set;
 *  - an empty resume plan.
 *
 * Returns the number of anomalies found (0 when the seed behaves).
 */
int
runShardChaosSeed(std::uint64_t seed, bool verbose)
{
    namespace fs = std::filesystem;

    Rng rng(seed ^ 0xa0761d6478bd642full);
    constexpr int kShards = 3;

    int anomalies = 0;
    auto anomaly = [&](const char *what, const std::string &detail) {
        ++anomalies;
        std::fprintf(stderr,
                     "cawa_fuzz: shard seed %llu %s [ANOMALY]%s%s\n",
                     static_cast<unsigned long long>(seed), what,
                     detail.empty() ? "" : ": ", detail.c_str());
    };

    const std::string base =
        (fs::temp_directory_path() /
         ("cawa_fuzz_shard_" + std::to_string(::getpid()) + "_" +
          std::to_string(seed)))
            .string();

    // Clean cases only: this phase injects process-level chaos, not
    // sim faults. Checkpoints are armed so a respawned or thieving
    // shard resumes mid-run instead of recomputing -- byte-identity
    // of the final report proves the resume path, too. The cases must
    // outlive the sweep (job closures reference them), and the vector
    // must never reallocate once closures are handed out.
    const int num_jobs = 8 + static_cast<int>(rng.nextBounded(5));
    std::vector<FuzzCase> cases;
    cases.reserve(static_cast<std::size_t>(num_jobs));
    std::vector<SweepJob> jobs;
    std::vector<std::string> ckpts;
    for (int i = 0; i < num_jobs; ++i) {
        cases.push_back(
            buildCase(seed * 32 + static_cast<std::uint64_t>(i),
                      /*check_level=*/0));
        FuzzCase &fc = cases.back();
        fc.cfg.faults = FaultInjection{};
        SweepJob job;
        job.name = fc.kernel.name + "_d" + std::to_string(i);
        job.cfg = fc.cfg;
        job.cfg.checkpointPath = base + "_" + std::to_string(i) +
                                 ".ckpt";
        job.cfg.checkpointInterval = 100;
        ckpts.push_back(job.cfg.checkpointPath);
        std::remove(job.cfg.checkpointPath.c_str());
        job.build = [&fc](MemoryImage &) { return fc.kernel; };
        jobs.push_back(std::move(job));
    }

    // The oracle: the same matrix, in process, no faults.
    const SweepEngine engine(kShards);
    const auto baseline = engine.run(jobs);
    JsonWriteOptions jopt;
    jopt.pretty = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        if (!baseline[i].ok())
            anomaly("oracle job failed",
                    jobs[i].name + ": " + baseline[i].error);
    }
    // Oracle checkpoints must not leak into the chaos run's resumes.
    for (const std::string &ckpt : ckpts)
        std::remove(ckpt.c_str());
    if (anomalies)
        return anomalies;

    CoordinatorOptions opt;
    opt.shards = kShards;
    opt.heartbeatIntervalSec = 0.04;
    opt.heartbeatMissLimit = 50;
    opt.gracePeriodSec = 0.5;
    opt.maxRespawnsPerShard = 2;
    opt.backoff.baseSec = 0.005;
    opt.backoff.capSec = 0.02;
    opt.backoff.seed = seed;
    opt.stealStallSec = 0.4;
    opt.stealFraction = 0.0; // the stall rule is the one under test
    opt.jobMaxAttempts = 1;

    // Always one SIGKILL'd shard (crash -> backoff -> respawn ->
    // checkpoint resume)...
    CoordinatorChaosAction kill;
    kill.shard = static_cast<int>(rng.nextBounded(kShards));
    kill.afterResults = static_cast<int>(rng.nextBounded(3));
    kill.kind = CoordinatorChaosAction::Kind::Kill;
    kill.signo = SIGKILL;
    opt.chaos.push_back(kill);
    // ...and on half the seeds a zombie on a *different* shard: it
    // finishes a job but holds the result, its progress freezes, the
    // stall rule steals its jobs, and the held result must arrive
    // later with a stale epoch and be fenced, never double-counted.
    const bool want_zombie = rng.nextBounded(2) != 0;
    const int hold_victim =
        (kill.shard + 1 +
         static_cast<int>(rng.nextBounded(kShards - 1))) %
        kShards;
    const int hold_after = static_cast<int>(rng.nextBounded(2));
    if (want_zombie) {
        opt.runnerChaos = [=](int slot, int) {
            ShardRunnerChaos chaos;
            if (slot == hold_victim) {
                chaos.holdAfterResults = hold_after;
                chaos.holdResultSec = 60.0;
            }
            return chaos;
        };
    }

    const std::string journal_path = base + ".jsonl";
    std::remove(journal_path.c_str());
    for (int k = 0; k < kShards; ++k)
        std::remove(shardJournalPath(journal_path, k).c_str());
    JournalWriter writer;
    writer.open(journal_path);
    opt.journal = &writer;
    opt.journalBasePath = journal_path;

    ShardCoordinator coordinator(opt);
    const auto results = coordinator.run(jobs);
    writer.close();

    // 1. Every job ok, every report byte-identical to the oracle's.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i >= results.size() || !results[i].ok()) {
            anomaly("job failed under shard chaos",
                    jobs[i].name + ": " +
                        (i < results.size() ? results[i].error
                                            : "missing result"));
        } else if (toJson(results[i].report, jopt) !=
                   toJson(baseline[i].report, jopt)) {
            anomaly("report diverged from in-process oracle",
                    jobs[i].name);
        }
    }

    // 2. The master journal holds exactly one ok entry per job.
    const auto master = readJournal(journal_path);
    if (master.size() != jobs.size())
        anomaly("master journal entry count off",
                std::to_string(master.size()) + " entries for " +
                    std::to_string(jobs.size()) + " jobs");
    for (const SweepJob &job : jobs) {
        int count = 0;
        bool all_ok = true;
        for (const JournalEntry &entry : master) {
            if (entry.job != job.name)
                continue;
            ++count;
            all_ok = all_ok && entry.ok();
        }
        if (count != 1 || !all_ok)
            anomaly("master journal entry wrong",
                    job.name + " x" + std::to_string(count));
    }
    if (!filterResumeJobs(jobs, master).empty())
        anomaly("resume plan not empty after a completed sweep", "");

    // 3. Master + shard journals merge (fence-aware) to the same set,
    //    in submission order, with no zombie entry surviving.
    std::vector<std::vector<JournalEntry>> journals;
    journals.push_back(master);
    for (int k = 0; k < kShards; ++k)
        journals.push_back(
            readJournal(shardJournalPath(journal_path, k)));
    std::vector<std::string> order;
    for (const SweepJob &job : jobs)
        order.push_back(job.name);
    const auto merged = mergeJournals(journals, &order);
    if (merged.size() != jobs.size()) {
        anomaly("merged journals entry count off",
                std::to_string(merged.size()) + " entries for " +
                    std::to_string(jobs.size()) + " jobs");
    } else {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (merged[i].job != jobs[i].name || !merged[i].ok())
                anomaly("merged journal out of order or not ok",
                        merged[i].job + " at slot " +
                            std::to_string(i));
        }
    }

    std::remove(journal_path.c_str());
    for (int k = 0; k < kShards; ++k)
        std::remove(shardJournalPath(journal_path, k).c_str());
    for (const std::string &ckpt : ckpts)
        std::remove(ckpt.c_str());

    if (verbose && anomalies == 0) {
        const CoordinatorStats &st = coordinator.stats();
        std::fprintf(stderr,
                     "cawa_fuzz: shard seed %llu ok (%d jobs, kill "
                     "s%d%s, %d respawns, %d steals, %d stolen, %d "
                     "fenced)\n",
                     static_cast<unsigned long long>(seed), num_jobs,
                     kill.shard,
                     want_zombie ? ", zombie hold" : "",
                     st.respawns, st.stallSteals + st.rateSteals,
                     st.stolenJobs, st.fenced);
    }
    return anomalies;
}

[[noreturn]] void
usage(int status)
{
    std::fprintf(status ? stderr : stdout,
                 "usage: cawa_fuzz [options]\n"
                 "  --seeds N       number of fault-injection seeds"
                 " (default 20)\n"
                 "  --ckpt-seeds N  number of checkpoint-corruption"
                 " seeds (default 5)\n"
                 "  --crash-seeds N number of worker-crash journal"
                 " seeds (default 3)\n"
                 "  --shard-chaos N number of sharded-sweep chaos"
                 " seeds (default 2)\n"
                 "  --start S       first seed (default 1)\n"
                 "  --check L       invariant audit level 0/1/2"
                 " (default 2)\n"
                 "  --verbose       print every seed's outcome\n"
                 "  --help          this text\n");
    std::exit(status);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seeds = 20;
    std::uint64_t ckpt_seeds = 5;
    std::uint64_t crash_seeds = 3;
    std::uint64_t shard_chaos = 2;
    std::uint64_t start = 1;
    int check_level = 2;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cawa_fuzz: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            seeds = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--ckpt-seeds") {
            ckpt_seeds = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--crash-seeds") {
            crash_seeds = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--shard-chaos") {
            shard_chaos = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--start") {
            start = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--check") {
            check_level = std::atoi(next());
            if (check_level < 0 || check_level > 2) {
                std::fprintf(stderr,
                             "cawa_fuzz: --check wants 0, 1 or 2\n");
                std::exit(2);
            }
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "cawa_fuzz: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    int anomalies = 0;
    for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
        const FuzzCase fc = buildCase(seed, check_level);

        SweepJob job;
        job.name = fc.kernel.name;
        job.cfg = fc.cfg;
        // The kernel's program member references fc.program, which
        // outlives the job; loads read zeros, which is fine -- the
        // fuzzer checks failure handling, not data results.
        job.build = [&fc](MemoryImage &) { return fc.kernel; };

        const SweepResult res = runSweepJob(job);
        const char *outcome =
            !res.error.empty()
                ? "error"
                : exitStatusName(res.report.exitStatus);

        bool bad;
        if (std::strcmp(fc.fault, "none") == 0) {
            // Clean seeds must complete cleanly.
            bad = !res.ok();
        } else {
            // Faulted seeds must be *detected*: the watchdog names
            // the wedge or the auditor/an assertion throws. A clean
            // completion means the fault escaped; a plain timeout
            // means detection failed and the run burned to the
            // safety valve.
            bad = res.error.empty() &&
                  res.report.exitStatus != ExitStatus::Deadlock;
        }

        if (bad || verbose) {
            std::fprintf(stderr,
                         "cawa_fuzz: seed %llu fault=%s -> %s%s%s%s\n",
                         static_cast<unsigned long long>(seed),
                         fc.fault, outcome, bad ? " [ANOMALY]" : "",
                         res.error.empty() ? "" : ": ",
                         res.error.c_str());
        }
        if (bad)
            ++anomalies;
    }

    for (std::uint64_t seed = start; seed < start + ckpt_seeds;
         ++seed)
        anomalies += runCheckpointSeed(seed, verbose);

    for (std::uint64_t seed = start; seed < start + crash_seeds;
         ++seed)
        anomalies += runCrashSeed(seed, verbose);

    if (shard_chaos > 0 && !processIsolationAvailable()) {
        std::fprintf(stderr, "cawa_fuzz: shard chaos skipped "
                             "(process isolation unavailable)\n");
        shard_chaos = 0;
    }
    for (std::uint64_t seed = start; seed < start + shard_chaos;
         ++seed)
        anomalies += runShardChaosSeed(seed, verbose);

    std::fprintf(stderr,
                 "cawa_fuzz: %llu fault seeds, %llu ckpt seeds, "
                 "%llu crash seeds, %llu shard seeds, %d anomal%s\n",
                 static_cast<unsigned long long>(seeds),
                 static_cast<unsigned long long>(ckpt_seeds),
                 static_cast<unsigned long long>(crash_seeds),
                 static_cast<unsigned long long>(shard_chaos),
                 anomalies, anomalies == 1 ? "y" : "ies");
    return anomalies ? 1 : 0;
}
