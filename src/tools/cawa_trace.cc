/**
 * @file
 * cawa_trace: run one workload with structured event tracing enabled
 * (sim/trace.hh) and export the recorded events for offline analysis.
 *
 * Export formats:
 *   chrome  Chrome trace_event JSON -- load into chrome://tracing or
 *           https://ui.perfetto.dev for a per-warp timeline (one
 *           process per SM, one thread lane per warp slot, stalls as
 *           duration slices). The default.
 *   jsonl   one compact JSON object per event line, for scripting.
 *
 * Analysis views (printed to stdout, no event dump):
 *   --summary  per-reason stall-cycle totals over the retained events
 *   --lanes    critical vs non-critical lane view: issues and stall
 *              cycles split by the issuing warp's CPL classification
 *
 * Examples:
 *   cawa_trace --workload bfs --out bfs.trace.json
 *   cawa_trace --workload kmeans --scheduler gto --format jsonl \
 *              --sm 0 --min-cycle 1000 --max-cycle 2000
 *   cawa_trace --workload bfs --summary --lanes
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/sim_assert.hh"
#include "sim/gpu.hh"
#include "sim/trace.hh"
#include "workloads/registry.hh"

using namespace cawa;

namespace
{

struct Options
{
    std::string workload;
    SchedulerKind scheduler = SchedulerKind::Gcaws;
    CachePolicyKind policy = CachePolicyKind::Cacp;
    double scale = 0.25;
    std::uint64_t seed = 1;
    std::uint64_t capacity = std::uint64_t{1} << 18;
    std::string format = "chrome";
    std::string outPath;
    TraceFilter filter;
    bool summary = false;
    bool lanes = false;
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        status ? stderr : stdout,
        "usage: cawa_trace --workload NAME [options]\n"
        "  --workload NAME    Table 2 workload name (required)\n"
        "  --scheduler KIND   rr|gto|2lvl|gcaws (default: gcaws;\n"
        "                     caws needs an oracle pass, use "
        "cawa_sweep)\n"
        "  --policy KIND      lru|srrip|ship|cacp (default: cacp)\n"
        "  --scale S          problem scale (default 0.25)\n"
        "  --seed N           workload input seed (default 1)\n"
        "  --capacity N       event ring capacity; oldest events drop\n"
        "                     beyond it (default 262144)\n"
        "  --format F         chrome|jsonl (default: chrome)\n"
        "  --out FILE         write the export there (default stdout)\n"
        "  --sm N             keep only events of SM N\n"
        "  --warp N           keep only events of warp slot N\n"
        "  --min-cycle N      drop events before cycle N\n"
        "  --max-cycle N      drop events after cycle N\n"
        "  --kinds LIST       comma list of event kind names\n"
        "                     (warpIssue,warpStall,cacheFill,...)\n"
        "  --summary          print a stall-reason summary instead of\n"
        "                     dumping events\n"
        "  --lanes            print the critical vs non-critical lane\n"
        "                     view instead of dumping events\n"
        "  -h, --help         this text\n");
    std::exit(status);
}

SchedulerKind
parseScheduler(const std::string &name)
{
    for (SchedulerKind kind :
         {SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::TwoLevel,
          SchedulerKind::Gcaws})
        if (name == schedulerKindName(kind))
            return kind;
    if (name == schedulerKindName(SchedulerKind::CawsOracle))
        std::fprintf(stderr,
                     "cawa_trace: 'caws' needs an oracle profiling "
                     "pass; use cawa_sweep, or gcaws here\n");
    else
        std::fprintf(stderr, "cawa_trace: unknown scheduler '%s'\n",
                     name.c_str());
    std::exit(2);
}

CachePolicyKind
parsePolicy(const std::string &name)
{
    for (CachePolicyKind kind :
         {CachePolicyKind::Lru, CachePolicyKind::Srrip,
          CachePolicyKind::Ship, CachePolicyKind::Cacp})
        if (name == cachePolicyKindName(kind))
            return kind;
    std::fprintf(stderr, "cawa_trace: unknown cache policy '%s'\n",
                 name.c_str());
    std::exit(2);
}

std::uint32_t
parseKindMask(const std::string &list)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(pos, comma - pos);
        bool found = false;
        for (int k = 0; k < kNumTraceEventKinds; ++k) {
            if (name == traceEventKindName(TraceEventKind(k))) {
                mask |= std::uint32_t{1} << k;
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "cawa_trace: unknown event kind '%s'\n",
                         name.c_str());
            std::exit(2);
        }
        pos = comma + 1;
    }
    return mask;
}

std::uint64_t
parseU64(const char *flag, const std::string &text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (!end || *end != '\0') {
        std::fprintf(stderr, "cawa_trace: bad value '%s' for %s\n",
                     text.c_str(), flag);
        std::exit(2);
    }
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "cawa_trace: %s needs a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help")
            usage(0);
        else if (arg == "--workload")
            opt.workload = next(i);
        else if (arg == "--scheduler")
            opt.scheduler = parseScheduler(next(i));
        else if (arg == "--policy")
            opt.policy = parsePolicy(next(i));
        else if (arg == "--scale")
            opt.scale = std::atof(next(i).c_str());
        else if (arg == "--seed")
            opt.seed = parseU64("--seed", next(i));
        else if (arg == "--capacity")
            opt.capacity = parseU64("--capacity", next(i));
        else if (arg == "--format")
            opt.format = next(i);
        else if (arg == "--out")
            opt.outPath = next(i);
        else if (arg == "--sm")
            opt.filter.sm =
                static_cast<int>(parseU64("--sm", next(i)));
        else if (arg == "--warp")
            opt.filter.warp =
                static_cast<int>(parseU64("--warp", next(i)));
        else if (arg == "--min-cycle")
            opt.filter.minCycle = parseU64("--min-cycle", next(i));
        else if (arg == "--max-cycle")
            opt.filter.maxCycle = parseU64("--max-cycle", next(i));
        else if (arg == "--kinds")
            opt.filter.kindMask = parseKindMask(next(i));
        else if (arg == "--summary")
            opt.summary = true;
        else if (arg == "--lanes")
            opt.lanes = true;
        else {
            std::fprintf(stderr, "cawa_trace: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.workload.empty()) {
        std::fprintf(stderr, "cawa_trace: --workload is required\n");
        usage(2);
    }
    if (opt.format != "chrome" && opt.format != "jsonl") {
        std::fprintf(stderr, "cawa_trace: unknown format '%s'\n",
                     opt.format.c_str());
        std::exit(2);
    }
    if (opt.scale <= 0.0) {
        std::fprintf(stderr, "cawa_trace: --scale must be > 0\n");
        std::exit(2);
    }
    return opt;
}

/** Per-reason stall-cycle totals over the retained events. */
void
printStallSummary(const TraceBuffer &buf, const TraceFilter &filter)
{
    std::uint64_t byReason[kNumStallReasons] = {};
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf.at(i);
        if (e.kind != TraceEventKind::WarpStall || !filter.pass(e))
            continue;
        const int r = static_cast<int>(e.a);
        if (r >= 0 && r < kNumStallReasons) {
            byReason[r] += static_cast<std::uint64_t>(e.b);
            total += static_cast<std::uint64_t>(e.b);
        }
    }
    std::printf("stall-reason summary (%llu stall cycles retained):\n",
                static_cast<unsigned long long>(total));
    for (int r = 0; r < kNumStallReasons; ++r) {
        const double pct =
            total ? 100.0 * static_cast<double>(byReason[r]) /
                        static_cast<double>(total)
                  : 0.0;
        std::printf("  %-14s %12llu  (%5.1f%%)\n",
                    stallReasonName(StallReason(r)),
                    static_cast<unsigned long long>(byReason[r]), pct);
    }
}

/**
 * Critical vs non-critical lane view: split issues and stall cycles
 * by the issuing warp's most recent CPL classification (the WarpIssue
 * payload carries it), attributing each stall to the lane its
 * (sm, warp) pair last issued on.
 */
void
printLaneView(const TraceBuffer &buf, const TraceFilter &filter)
{
    struct Lane
    {
        std::uint64_t issues = 0;
        std::uint64_t stallCycles = 0;
    };
    Lane lanes[2];
    // Last-known lane per (sm, warp); warps start non-critical.
    std::map<std::pair<int, int>, int> lastLane;
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf.at(i);
        if (!filter.pass(e))
            continue;
        if (e.kind == TraceEventKind::WarpIssue) {
            const int lane = e.b ? 1 : 0;
            lastLane[{e.sm, e.warp}] = lane;
            lanes[lane].issues++;
        } else if (e.kind == TraceEventKind::WarpStall) {
            const auto it = lastLane.find({e.sm, e.warp});
            const int lane = it == lastLane.end() ? 0 : it->second;
            lanes[lane].stallCycles +=
                static_cast<std::uint64_t>(e.b);
        }
    }
    std::printf("lane view (critical vs non-critical warps):\n");
    const char *names[2] = {"nonCritical", "critical"};
    for (int lane = 1; lane >= 0; --lane) {
        const double per = lanes[lane].issues
            ? static_cast<double>(lanes[lane].stallCycles) /
                static_cast<double>(lanes[lane].issues)
            : 0.0;
        std::printf("  %-12s issues=%12llu stallCycles=%12llu "
                    "stallPerIssue=%8.2f\n",
                    names[lane],
                    static_cast<unsigned long long>(lanes[lane].issues),
                    static_cast<unsigned long long>(
                        lanes[lane].stallCycles),
                    per);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.scheduler = opt.scheduler;
    cfg.l1Policy = opt.policy;
    cfg.trace.enabled = true;
    cfg.trace.bufferCapacity = opt.capacity;

    WorkloadParams params;
    params.seed = opt.seed;
    params.scale = opt.scale;

    try {
        auto workload = makeWorkload(opt.workload);
        MemoryImage mem;
        const KernelInfo kernel = workload->build(mem, params);

        Gpu gpu(cfg, mem);
        gpu.launch(kernel);
        gpu.runToCompletion();
        const SimReport report = gpu.finish();
        const TraceBuffer *buf = gpu.traceBuffer();
        sim_assert(buf != nullptr);

        std::fprintf(stderr,
                     "cawa_trace: %s ran %llu cycles, recorded %llu "
                     "events (%llu dropped, %zu retained)\n",
                     report.kernelName.c_str(),
                     static_cast<unsigned long long>(report.cycles),
                     static_cast<unsigned long long>(buf->recorded()),
                     static_cast<unsigned long long>(buf->dropped()),
                     buf->size());

        if (opt.summary)
            printStallSummary(*buf, opt.filter);
        if (opt.lanes)
            printLaneView(*buf, opt.filter);
        if (opt.summary || opt.lanes)
            return 0;

        const std::string doc = opt.format == "chrome"
            ? traceToChromeJson(*buf, opt.filter)
            : traceToJsonl(*buf, opt.filter);
        if (opt.outPath.empty()) {
            std::cout << doc;
            if (!doc.empty() && doc.back() != '\n')
                std::cout << '\n';
        } else {
            std::ofstream out(opt.outPath,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                std::fprintf(stderr,
                             "cawa_trace: cannot open '%s' for "
                             "writing\n",
                             opt.outPath.c_str());
                return 1;
            }
            out << doc;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cawa_trace: %s\n", e.what());
        return 1;
    }
    return 0;
}
