/**
 * @file
 * cawa_sweep: run a workload x scheduler x cache-policy matrix and
 * emit one JSON document per job (schema "cawa-simreport-v3") for
 * plotting and regression baselines. A job that crashes does not take
 * the sweep down: its failure is emitted as a first-class
 * "cawa-sweepfailure-v1" document and every other job still runs.
 *
 * By default (where fork() exists) every job runs in a sandboxed
 * worker subprocess under the sweep supervisor (sim/supervisor.hh):
 * the worker streams heartbeat / checkpoint-written / result frames
 * back over a pipe, the parent enforces resource caps and liveness,
 * and a worker that crashes, OOMs or hangs is killed, journaled under
 * that status and respawned with capped exponential backoff --
 * resuming from its last checkpoint when one exists. --no-isolate
 * (or a platform without fork) falls back to the in-process thread
 * pool, which behaves exactly as before.
 *
 * Examples:
 *   cawa_sweep --workloads sens --schedulers rr,gto,gcaws \
 *              --policies lru,cacp --scale 0.25 --out sweep/
 *   CAWA_BENCH_THREADS=8 cawa_sweep --workloads bfs --compact
 *   cawa_sweep --out sweep/ --journal sweep/runs.jsonl   # then, after
 *   cawa_sweep --out sweep/ --journal sweep/runs.jsonl --resume
 *
 * With --journal, one JSON line is appended (and fsync()ed) per
 * finished job; the journal is flock()ed so a second cawa_sweep on
 * the same file fails fast instead of interleaving appends. With
 * --resume, jobs already journaled as "ok" are skipped and the
 * journal is compacted (later entry per job wins). With
 * --checkpoint-dir, running jobs snapshot their full machine state
 * periodically (and on SIGINT/SIGTERM or --job-timeout expiry), and
 * --resume continues each re-run job cycle-exactly from its snapshot
 * instead of from cycle 0.
 *
 * Without --out, documents are printed to stdout one per line
 * (compact), in job order. Exit status is non-zero when any job
 * times out, deadlocks, fails functional verification, or throws.
 */

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "common/sim_error.hh"
#include "common/subprocess.hh"
#include "common/table.hh"
#include "sim/coordinator.hh"
#include "sim/journal.hh"
#include "sim/report_json.hh"
#include "sim/supervisor.hh"
#include "sim/sweep.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

/**
 * Graceful shutdown: the first SIGINT/SIGTERM sets the cancel flag
 * every running job polls (each writes a final checkpoint when
 * configured, then stops), started jobs drain, the journal and the
 * partial report are flushed, and cawa_sweep exits 130. A second
 * signal hard-exits immediately. Under --isolate the supervisor
 * forwards the shutdown to every worker as SIGTERM.
 */
std::atomic<bool> g_cancel{false};
std::atomic<int> g_signalCount{0};

extern "C" void
handleShutdownSignal(int)
{
    if (g_signalCount.fetch_add(1, std::memory_order_relaxed) >= 1)
        _exit(130);
    g_cancel.store(true, std::memory_order_relaxed);
    const char msg[] =
        "\ncawa_sweep: interrupted -- stopping jobs (final checkpoints "
        "+ journal are being written); interrupt again to hard-exit\n";
    // write() is async-signal-safe; fprintf is not.
    const ssize_t ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

struct Options
{
    std::vector<std::string> workloads;
    std::vector<SchedulerKind> schedulers{SchedulerKind::Gcaws};
    std::vector<CachePolicyKind> policies{CachePolicyKind::Cacp};
    double scale = 0.5;
    std::uint64_t seed = 1;
    int threads = 0; ///< 0 = CAWA_BENCH_THREADS or hardware default
    std::string outDir;
    std::string journalPath;
    std::string checkpointDir;
    std::uint64_t checkpointInterval = 1'000'000; ///< cycles
    double jobTimeout = 0.0; ///< per-job wall-clock budget (seconds)
    bool resume = false;
    int retries = 0; ///< extra in-worker attempts for jobs that throw
    bool isolate = true; ///< sandboxed worker subprocess per job
    int shards = 0; ///< >0: distribute over N shard-runner processes
    int maxRespawns = 2; ///< process respawns after a crash/oom/hang
    int retryBudget = -1; ///< sweep-wide respawn cap (-1 = unlimited)
    long heartbeatMs = 250;  ///< worker/shard heartbeat interval
    int heartbeatMisses = 20; ///< missed beats before "hung"
    double stealStallSec = 10.0; ///< shard stall-steal trigger, 0=off
    double stealFraction = 0.25; ///< rate-steal fraction, 0=off
    std::uint64_t workerMemMb = 0; ///< RLIMIT_AS per worker (MB)
    std::uint64_t workerCpuSec = 0; ///< RLIMIT_CPU per worker
    std::vector<std::size_t> faultKillNth;  ///< test-only
    std::vector<std::size_t> faultStallNth; ///< test-only
    std::uint64_t faultCycle = 20'000;      ///< test-only
    bool listOnly = false;
    bool compact = false;
    bool includeBlocks = true;
    bool includeTrace = true;
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        status ? stderr : stdout,
        "usage: cawa_sweep [options]\n"
        "  --workloads LIST   comma list of Table 2 names, or 'all'\n"
        "                     / 'sens' (default: all)\n"
        "  --schedulers LIST  rr,gto,2lvl,caws,gcaws (default: gcaws)\n"
        "  --policies LIST    lru,srrip,ship,cacp (default: cacp)\n"
        "  --scale S          problem scale (default 0.5)\n"
        "  --seed N           workload input seed (default 1)\n"
        "  --threads N        concurrent jobs, in [1, 256] (default:\n"
        "                     CAWA_BENCH_THREADS, else all cores)\n"
        "  --out DIR          write DIR/<job>.json instead of stdout\n"
        "  --journal FILE     append one JSON line per finished job;\n"
        "                     the file is locked against a second\n"
        "                     concurrent cawa_sweep\n"
        "  --checkpoint-dir D write DIR/<job>.ckpt snapshots while\n"
        "                     jobs run; with --resume, restore them\n"
        "  --checkpoint-interval N\n"
        "                     cycles between snapshots (default 1e6)\n"
        "  --job-timeout SEC  per-job wall-clock budget in (0, 86400];\n"
        "                     an exceeded job checkpoints (when\n"
        "                     configured) and fails with 'walltime'\n"
        "  --resume           skip jobs journaled as ok (needs\n"
        "                     --journal) and compact the journal; with\n"
        "                     --checkpoint-dir, re-run jobs continue\n"
        "                     from their latest valid checkpoint\n"
        "  --retries N        re-run a job that throws up to N extra\n"
        "                     times in-worker, N in [0, 100]\n"
        "                     (default 0)\n"
        "  --isolate          run each job in a sandboxed worker\n"
        "                     subprocess (default where supported)\n"
        "  --no-isolate       force the in-process thread pool\n"
        "  --shards N         distribute the sweep over N supervised\n"
        "                     shard-runner processes with checkpoint-\n"
        "                     based work stealing, N in [1, 256]\n"
        "                     (isolate mode; default: one worker per\n"
        "                     job instead)\n"
        "  --heartbeat-ms N   worker/shard heartbeat interval in\n"
        "                     milliseconds, N in [10, 600000]\n"
        "                     (default 250)\n"
        "  --heartbeat-misses N\n"
        "                     consecutive silent intervals before a\n"
        "                     worker is declared hung and killed,\n"
        "                     N in [1, 10000] (default 20)\n"
        "  --steal-stall-sec SEC\n"
        "                     steal a shard's jobs once its progress\n"
        "                     has stalled SEC seconds, in (0, 3600],\n"
        "                     or 0 = off (default 10; sharded mode)\n"
        "  --steal-fraction F steal unstarted jobs from a shard whose\n"
        "                     progress rate falls below F x the median\n"
        "                     rate, F in (0, 1], or 0 = off\n"
        "                     (default 0.25; sharded mode)\n"
        "  --max-respawns N   worker respawns per job after a\n"
        "                     crash/oom/hang, N in [0, 100]\n"
        "                     (default 2; isolate mode only)\n"
        "  --retry-budget N   sweep-wide respawn cap, N in [-1, 10000]\n"
        "                     (-1 = unlimited, the default)\n"
        "  --worker-mem-mb N  per-worker address-space cap in MB\n"
        "                     (0 = off; skipped under ASan)\n"
        "  --worker-cpu-sec N per-worker CPU-seconds cap (0 = off)\n"
        "  --fault-kill-nth L test-only: SIGKILL the listed jobs'\n"
        "                     workers mid-run (comma list of indices)\n"
        "  --fault-stall-nth L\n"
        "                     test-only: stall the listed jobs'\n"
        "                     heartbeats mid-run\n"
        "  --fault-cycle N    test-only: simulated cycle the injected\n"
        "                     faults fire at (default 20000)\n"
        "  --compact          single-line JSON (stdout default)\n"
        "  --no-blocks        omit per-block/per-warp records\n"
        "  --no-trace         omit the criticality trace\n"
        "  --list             print job names and exit\n"
        "  --help             this text\n");
    std::exit(status);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

SchedulerKind
parseScheduler(const std::string &name)
{
    try {
        return schedulerKindFromName(name);
    } catch (const SimError &e) {
        std::fprintf(stderr, "cawa_sweep: %s\n", e.detail().c_str());
        std::exit(2);
    }
}

CachePolicyKind
parsePolicy(const std::string &name)
{
    try {
        return cachePolicyKindFromName(name);
    } catch (const SimError &e) {
        std::fprintf(stderr, "cawa_sweep: %s\n", e.detail().c_str());
        std::exit(2);
    }
}

double
parsePositiveDouble(const std::string &text, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(v > 0.0)) {
        std::fprintf(stderr, "cawa_sweep: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

/**
 * Strict integer option parsing: anything non-numeric, with trailing
 * junk, or outside [lo, hi] is rejected with the accepted range named
 * -- never silently truncated or clamped (an out-of-range request is
 * a user error the user should hear about).
 */
long
parseIntInRange(const std::string &text, const char *what, long lo,
                long hi)
{
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "cawa_sweep: bad %s '%s': want an integer in "
                     "[%ld, %ld]\n",
                     what, text.c_str(), lo, hi);
        std::exit(2);
    }
    return v;
}

double
parseDoubleInRange(const std::string &text, const char *what,
                   double lo, double hi)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(v > lo) || v > hi) {
        std::fprintf(stderr,
                     "cawa_sweep: bad %s '%s': want a number in "
                     "(%g, %g]\n",
                     what, text.c_str(), lo, hi);
        std::exit(2);
    }
    return v;
}

std::vector<std::size_t>
parseIndexList(const std::string &text, const char *what)
{
    std::vector<std::size_t> out;
    for (const std::string &item : splitList(text))
        out.push_back(static_cast<std::size_t>(
            parseIntInRange(item, what, 0, 1'000'000)));
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.isolate = processIsolationAvailable();
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "cawa_sweep: %s needs a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workloads") {
            const std::string list = next(i);
            if (list == "all")
                opt.workloads = allWorkloadNames();
            else if (list == "sens")
                opt.workloads = sensitiveWorkloadNames();
            else
                opt.workloads = splitList(list);
        } else if (arg == "--schedulers") {
            opt.schedulers.clear();
            for (const auto &name : splitList(next(i)))
                opt.schedulers.push_back(parseScheduler(name));
        } else if (arg == "--policies") {
            opt.policies.clear();
            for (const auto &name : splitList(next(i)))
                opt.policies.push_back(parsePolicy(name));
        } else if (arg == "--scale") {
            opt.scale = parsePositiveDouble(next(i), "scale");
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(i).c_str(), nullptr, 10);
        } else if (arg == "--threads") {
            opt.threads = static_cast<int>(
                parseIntInRange(next(i), "--threads", 1, 256));
        } else if (arg == "--out") {
            opt.outDir = next(i);
        } else if (arg == "--journal") {
            opt.journalPath = next(i);
        } else if (arg == "--checkpoint-dir") {
            opt.checkpointDir = next(i);
        } else if (arg == "--checkpoint-interval") {
            opt.checkpointInterval = static_cast<std::uint64_t>(
                parsePositiveDouble(next(i), "checkpoint interval"));
        } else if (arg == "--job-timeout") {
            opt.jobTimeout = parseDoubleInRange(
                next(i), "--job-timeout", 0.0, 86400.0);
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--retries") {
            opt.retries = static_cast<int>(
                parseIntInRange(next(i), "--retries", 0, 100));
        } else if (arg == "--isolate") {
            if (!processIsolationAvailable()) {
                std::fprintf(stderr,
                             "cawa_sweep: --isolate is not supported "
                             "on this platform\n");
                std::exit(2);
            }
            opt.isolate = true;
        } else if (arg == "--no-isolate") {
            opt.isolate = false;
        } else if (arg == "--shards") {
            opt.shards = static_cast<int>(
                parseIntInRange(next(i), "--shards", 1, 256));
        } else if (arg == "--heartbeat-ms") {
            opt.heartbeatMs =
                parseIntInRange(next(i), "--heartbeat-ms", 10,
                                600'000);
        } else if (arg == "--heartbeat-misses") {
            opt.heartbeatMisses = static_cast<int>(parseIntInRange(
                next(i), "--heartbeat-misses", 1, 10'000));
        } else if (arg == "--steal-stall-sec") {
            const std::string v = next(i);
            opt.stealStallSec =
                v == "0" ? 0.0
                         : parseDoubleInRange(v, "--steal-stall-sec",
                                              0.0, 3600.0);
        } else if (arg == "--steal-fraction") {
            const std::string v = next(i);
            opt.stealFraction =
                v == "0" ? 0.0
                         : parseDoubleInRange(v, "--steal-fraction",
                                              0.0, 1.0);
        } else if (arg == "--max-respawns") {
            opt.maxRespawns = static_cast<int>(
                parseIntInRange(next(i), "--max-respawns", 0, 100));
        } else if (arg == "--retry-budget") {
            opt.retryBudget = static_cast<int>(
                parseIntInRange(next(i), "--retry-budget", -1, 10000));
        } else if (arg == "--worker-mem-mb") {
            opt.workerMemMb = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--worker-mem-mb", 0,
                                1'048'576));
        } else if (arg == "--worker-cpu-sec") {
            opt.workerCpuSec = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--worker-cpu-sec", 0,
                                86'400));
        } else if (arg == "--fault-kill-nth") {
            opt.faultKillNth =
                parseIndexList(next(i), "--fault-kill-nth index");
        } else if (arg == "--fault-stall-nth") {
            opt.faultStallNth =
                parseIndexList(next(i), "--fault-stall-nth index");
        } else if (arg == "--fault-cycle") {
            opt.faultCycle = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--fault-cycle", 1,
                                1'000'000'000));
        } else if (arg == "--compact") {
            opt.compact = true;
        } else if (arg == "--no-blocks") {
            opt.includeBlocks = false;
        } else if (arg == "--no-trace") {
            opt.includeTrace = false;
        } else if (arg == "--list") {
            opt.listOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "cawa_sweep: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.workloads.empty())
        opt.workloads = allWorkloadNames();
    if (opt.schedulers.empty() || opt.policies.empty())
        usage(2);
    if (opt.resume && opt.journalPath.empty()) {
        std::fprintf(stderr,
                     "cawa_sweep: --resume needs --journal FILE\n");
        std::exit(2);
    }
    if ((!opt.faultKillNth.empty() || !opt.faultStallNth.empty()) &&
        !opt.isolate) {
        std::fprintf(stderr,
                     "cawa_sweep: worker fault injection needs "
                     "--isolate\n");
        std::exit(2);
    }
    if (opt.shards > 0 && !opt.isolate) {
        std::fprintf(stderr,
                     "cawa_sweep: --shards needs process isolation "
                     "(drop --no-isolate)\n");
        std::exit(2);
    }
    if (opt.shards > 0 &&
        (!opt.faultKillNth.empty() || !opt.faultStallNth.empty())) {
        std::fprintf(stderr,
                     "cawa_sweep: per-worker fault injection is not "
                     "available with --shards (use cawa_fuzz "
                     "--shard-chaos for sharded chaos)\n");
        std::exit(2);
    }
    const auto known = allWorkloadNames();
    for (const auto &name : opt.workloads) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::fprintf(stderr, "cawa_sweep: unknown workload '%s'"
                         " (try --workloads all)\n", name.c_str());
            std::exit(2);
        }
    }
    return opt;
}

/** frameJsonQuote() in statement form, for the serializers below. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += frameJsonQuote(s);
}

/** Resolved path of this binary, for re-exec'ing worker children. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

// Worker-spec serialization and the hidden --worker entrypoint live
// in workloads/sweep_jobs (workerSpecJson / runWorkerModeFromFds),
// shared verbatim with the cawad daemon's worker children.

/**
 * Serialize one shard runner's spec frame: the FULL job matrix (the
 * runner must be able to honour assign frames for any stolen job, not
 * just its initial shard) plus the initial assignment and the runner
 * knobs. The coordinator ships this as the first frame on the
 * runner's stdin; assign/revoke/shutdown control frames follow on the
 * same fd.
 */
std::string
shardSpecJson(const std::vector<SweepJob> &jobs,
              const std::unordered_map<std::string, WorkloadJobSpec>
                  &specByName,
              int slot, const std::vector<ShardAssignment> &initial,
              double heartbeatSec, int jobAttempts,
              const std::string &journalBasePath)
{
    std::string out =
        "{\"type\":\"shard-spec\",\"shard\":" + std::to_string(slot);
    out += ",\"heartbeatSec\":" + std::to_string(heartbeatSec);
    out += ",\"jobAttempts\":" + std::to_string(jobAttempts);
    out += ",\"journalPath\":";
    appendJsonString(out,
                     journalBasePath.empty()
                         ? std::string()
                         : shardJournalPath(journalBasePath, slot));
    out += ",\"matrix\":[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &job = jobs[i];
        const WorkloadJobSpec &spec = specByName.at(job.name);
        if (i)
            out += ',';
        out += "{\"workload\":";
        appendJsonString(out, spec.workload);
        out += ",\"scheduler\":";
        appendJsonString(out, schedulerKindName(job.cfg.scheduler));
        out += ",\"policy\":";
        appendJsonString(out, cachePolicyKindName(job.cfg.l1Policy));
        out += ",\"seed\":" + std::to_string(spec.params.seed);
        out += ",\"scale\":" + std::to_string(spec.params.scale);
        out += ",\"jobTimeout\":" +
               std::to_string(job.cfg.wallClockLimitSec);
        out += ",\"checkpointPath\":";
        appendJsonString(out, job.cfg.checkpointPath);
        out += ",\"checkpointInterval\":" +
               std::to_string(job.cfg.checkpointInterval);
        out += "}";
    }
    out += "],\"assigned\":[";
    for (std::size_t i = 0; i < initial.size(); ++i) {
        if (i)
            out += ',';
        out += "{\"index\":" + std::to_string(initial[i].index);
        out += ",\"epoch\":" + std::to_string(initial[i].epoch);
        out += ",\"resume\":";
        appendJsonString(out, initial[i].resume);
        out += "}";
    }
    out += "]}";
    return out;
}

/**
 * Hidden `cawa_sweep --shard-worker` entrypoint: read exactly one
 * shard-spec frame from stdin (readFrameBlocking never over-reads, so
 * control frames queued behind the spec stay on the fd for the
 * runner's control thread), rebuild the matrix, and hand stdin/stdout
 * to runShardRunner().
 */
int
runShardWorkerMode()
{
    std::string payload;
    if (!readFrameBlocking(STDIN_FILENO, payload)) {
        std::fprintf(stderr,
                     "cawa_sweep --shard-worker: no shard spec on "
                     "stdin (this entrypoint is internal to the "
                     "sweep coordinator)\n");
        return 2;
    }
    try {
        const JsonValue spec = parseJson(payload);
        if (!spec.has("type") ||
            spec.at("type").asString() != "shard-spec")
            throw std::runtime_error("expected a shard-spec frame");

        std::vector<SweepJob> matrix;
        for (const JsonValue &j : spec.at("matrix").items()) {
            SweepJob job = makeWorkloadJob(workloadSpecFromJson(j));
            job.cfg.wallClockLimitSec = j.at("jobTimeout").asDouble();
            job.cfg.checkpointPath =
                j.at("checkpointPath").asString();
            job.cfg.checkpointInterval =
                j.at("checkpointInterval").asU64();
            matrix.push_back(std::move(job));
        }
        std::vector<ShardAssignment> initial;
        for (const JsonValue &j : spec.at("assigned").items()) {
            ShardAssignment a;
            a.index =
                static_cast<std::size_t>(j.at("index").asI64());
            a.epoch = static_cast<int>(j.at("epoch").asI64());
            a.resume = j.at("resume").asString();
            if (a.index >= matrix.size())
                throw std::runtime_error(
                    "assignment index out of range");
            initial.push_back(std::move(a));
        }

        ShardRunnerOptions ropt;
        ropt.heartbeatIntervalSec = spec.at("heartbeatSec").asDouble();
        ropt.jobMaxAttempts =
            static_cast<int>(spec.at("jobAttempts").asI64());
        ropt.shard = static_cast<int>(spec.at("shard").asI64());
        ropt.journalPath = spec.at("journalPath").asString();
        return runShardRunner(matrix, initial, STDIN_FILENO,
                              STDOUT_FILENO, ropt);
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "cawa_sweep --shard-worker: bad shard spec: %s\n",
                     e.what());
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0)
        return runWorkerModeFromFds(STDIN_FILENO, STDOUT_FILENO,
                                    "cawa_sweep --worker");
    if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
        return runShardWorkerMode();

    const Options opt = parseArgs(argc, argv);

    // Reject a malformed CAWA_SIM_THREADS up front, before any job
    // bakes it into a per-job error.
    try {
        simThreadsFromEnv(1);
    } catch (const SimError &e) {
        std::fprintf(stderr, "cawa_sweep: %s\n", e.what());
        return 2;
    }

    std::vector<WorkloadJobSpec> specs;
    for (const auto &workload : opt.workloads) {
        for (SchedulerKind sched : opt.schedulers) {
            for (CachePolicyKind policy : opt.policies) {
                WorkloadJobSpec spec;
                spec.workload = workload;
                spec.cfg = GpuConfig::fermiGtx480();
                spec.cfg.scheduler = sched;
                spec.cfg.l1Policy = policy;
                spec.params.seed = opt.seed;
                spec.params.scale = opt.scale;
                specs.push_back(spec);
            }
        }
    }

    if (opt.listOnly) {
        for (const auto &spec : specs)
            std::cout << workloadJobName(spec) << "\n";
        return 0;
    }

    std::unordered_map<std::string, WorkloadJobSpec> specByName;
    for (const auto &spec : specs)
        specByName.emplace(workloadJobName(spec), spec);

    std::vector<SweepJob> jobs = makeWorkloadJobs(specs);

    // The journal: locked, fsync-per-append, compacted on --resume.
    // A killed sharded sweep leaves per-shard journals next to the
    // master; --resume merges them all (the ownership epoch fences
    // any zombie shard's stale entries) into one deterministic,
    // submission-ordered master before planning the re-run.
    JournalWriter journal;
    std::vector<JournalEntry> journaled;
    if (!opt.journalPath.empty()) {
        try {
            std::vector<std::string> shardFiles;
            if (opt.resume) {
                std::vector<std::vector<JournalEntry>> journals;
                journals.push_back(readJournal(opt.journalPath));
                for (int k = 0; k < 1024; ++k) {
                    const std::string p =
                        shardJournalPath(opt.journalPath, k);
                    if (!std::filesystem::exists(p))
                        break;
                    journals.push_back(readJournal(p));
                    shardFiles.push_back(p);
                }
                std::vector<std::string> order;
                order.reserve(specs.size());
                for (const auto &spec : specs)
                    order.push_back(workloadJobName(spec));
                journaled = mergeJournals(journals, &order);
            }
            journal.open(opt.journalPath);
            if (opt.resume && !journaled.empty())
                journal.rewrite(journaled);
            // The shard journals are folded in; remove them so a
            // later resume cannot double-merge stale copies.
            for (const std::string &p : shardFiles)
                std::remove(p.c_str());
        } catch (const SimError &e) {
            std::fprintf(stderr, "cawa_sweep: %s\n", e.what());
            return 2;
        }
    }

    if (opt.resume) {
        const std::size_t total = jobs.size();
        jobs = filterResumeJobs(jobs, journaled);
        std::fprintf(stderr,
                     "cawa_sweep: resume: %zu of %zu jobs already ok\n",
                     total - jobs.size(), total);
    }

    // Checkpointing, per-job wall-clock budget and graceful shutdown.
    if (!opt.checkpointDir.empty())
        std::filesystem::create_directories(opt.checkpointDir);
    for (SweepJob &job : jobs) {
        job.cfg.cancelFlag = &g_cancel;
        job.cfg.wallClockLimitSec = opt.jobTimeout;
        if (opt.checkpointDir.empty())
            continue;
        const std::filesystem::path ckpt =
            std::filesystem::path(opt.checkpointDir) /
            (job.name + ".ckpt");
        job.cfg.checkpointPath = ckpt.string();
        job.cfg.checkpointInterval = opt.checkpointInterval;
    }
    // On resume, continue each re-run job from its snapshot; an
    // unusable file falls back to a from-scratch run inside
    // runSweepJob.
    if (opt.resume && !opt.checkpointDir.empty()) {
        const std::size_t resumable =
            attachResumeCheckpoints(jobs, opt.checkpointDir);
        if (resumable)
            std::fprintf(stderr,
                         "cawa_sweep: resume: %zu job%s continuing "
                         "from checkpoints\n",
                         resumable, resumable == 1 ? "" : "s");
    }

    // Test-only worker fault injection (supervised workers only).
    for (const std::size_t idx : opt.faultKillNth)
        if (idx < jobs.size()) {
            jobs[idx].cfg.faults.workerKillSignal = SIGKILL;
            jobs[idx].cfg.faults.workerFaultCycle =
                static_cast<std::int64_t>(opt.faultCycle);
        }
    for (const std::size_t idx : opt.faultStallNth)
        if (idx < jobs.size()) {
            jobs[idx].cfg.faults.workerStallHeartbeat = true;
            jobs[idx].cfg.faults.workerFaultCycle =
                static_cast<std::int64_t>(opt.faultCycle);
        }

    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);

    int threads = opt.threads;
    if (threads <= 0)
        threads = sweepThreadsFromEnv();

    const bool sharded =
        opt.shards > 0 && opt.isolate && processIsolationAvailable();

    // In sharded mode the coordinator owns journaling (its entries
    // carry the winning epoch and shard); everywhere else the sweep
    // appends from the completion callback.
    SweepEngine::JobDone on_done;
    if (journal.isOpen() && !sharded) {
        on_done = [&](std::size_t index, const SweepResult &res) {
            journal.append(makeJournalEntry(jobs[index].name, res));
        };
    }

    std::vector<SweepResult> results;
    if (sharded) {
        CoordinatorOptions co;
        co.shards = opt.shards;
        co.heartbeatIntervalSec =
            static_cast<double>(opt.heartbeatMs) / 1000.0;
        co.heartbeatMissLimit = opt.heartbeatMisses;
        co.maxRespawnsPerShard = opt.maxRespawns;
        co.retryBudget = opt.retryBudget;
        co.jobMaxAttempts = opt.retries + 1;
        co.stealStallSec = opt.stealStallSec;
        co.stealFraction = opt.stealFraction;
        co.limits.memoryBytes = opt.workerMemMb << 20;
        co.limits.cpuSeconds = opt.workerCpuSec;
        co.cancelFlag = &g_cancel;
        co.journal = journal.isOpen() ? &journal : nullptr;
        co.journalBasePath = opt.journalPath;
        co.checkpointDir = opt.checkpointDir;
        co.workerArgv0 = selfExePath(argv[0]);
        const double heartbeatSec = co.heartbeatIntervalSec;
        const int jobAttempts = co.jobMaxAttempts;
        co.shardSpec = [&jobs, &specByName, heartbeatSec, jobAttempts,
                        &opt](int slot,
                              const std::vector<ShardAssignment>
                                  &initial) {
            return shardSpecJson(jobs, specByName, slot, initial,
                                 heartbeatSec, jobAttempts,
                                 opt.journalPath);
        };
        co.onEvent = [](int shard, const std::string &event,
                        const std::string &detail) {
            if (event == "crashed" || event == "oom" ||
                event == "hung" || event == "walltime" ||
                event == "respawn" || event == "reshard" ||
                event == "steal-stall" || event == "steal-rate" ||
                event == "fenced")
                std::fprintf(stderr, "cawa_sweep: shard %d %s: %s\n",
                             shard, event.c_str(), detail.c_str());
        };
        ShardCoordinator coordinator(std::move(co));
        std::fprintf(stderr,
                     "cawa_sweep: %zu jobs on %d shard runners\n",
                     jobs.size(), opt.shards);
        results = coordinator.run(jobs, on_done);
        const CoordinatorStats &stats = coordinator.stats();
        if (stats.respawns || stats.stallSteals || stats.rateSteals ||
            stats.fenced)
            std::fprintf(stderr,
                         "cawa_sweep: shard recovery: %d respawns, "
                         "%d stall-steals, %d rate-steals, %d jobs "
                         "reassigned, %d stale results fenced\n",
                         stats.respawns, stats.stallSteals,
                         stats.rateSteals, stats.stolenJobs,
                         stats.fenced);
    } else if (opt.isolate && processIsolationAvailable()) {
        SupervisorOptions sup;
        sup.workers = threads;
        sup.heartbeatIntervalSec =
            static_cast<double>(opt.heartbeatMs) / 1000.0;
        sup.heartbeatMissLimit = opt.heartbeatMisses;
        sup.jobMaxAttempts = opt.retries + 1;
        sup.maxAttemptsPerJob = opt.maxRespawns + 1;
        sup.retryBudget = opt.retryBudget;
        sup.cancelFlag = &g_cancel;
        sup.limits.memoryBytes = opt.workerMemMb << 20;
        sup.limits.cpuSeconds = opt.workerCpuSec;
        // Backstop over the worker's own graceful walltime handling:
        // only a worker that fails to enforce its in-process budget
        // (wedged in a syscall, spinning) gets killed by the parent.
        if (opt.jobTimeout > 0.0)
            sup.workerDeadlineSec = opt.jobTimeout * 2.0 + 10.0;
        sup.workerArgv0 = selfExePath(argv[0]);
        const int jobAttempts = sup.jobMaxAttempts;
        const double heartbeatSec = sup.heartbeatIntervalSec;
        sup.jobSpec = [&specByName, jobAttempts,
                       heartbeatSec](std::size_t, const SweepJob &job,
                                     int attempt) {
            return workerSpecJson(specByName.at(job.name), job,
                                  jobAttempts, attempt, heartbeatSec);
        };
        sup.onEvent = [](std::size_t index, int attempt,
                         const std::string &event,
                         const std::string &detail, double delaySec) {
            if (event == "retry")
                std::fprintf(stderr,
                             "cawa_sweep: job %zu attempt %d %s; "
                             "respawning in %.2fs\n",
                             index, attempt, detail.c_str(), delaySec);
            else if (event == "crashed" || event == "oom" ||
                     event == "hung" || event == "walltime")
                std::fprintf(stderr, "cawa_sweep: job %zu attempt %d "
                             "%s: %s\n",
                             index, attempt, event.c_str(),
                             detail.c_str());
        };
        SweepSupervisor supervisor(std::move(sup));
        if (threads > 0)
            std::fprintf(stderr,
                         "cawa_sweep: %zu jobs on up to %d isolated "
                         "workers\n",
                         jobs.size(), threads);
        else
            std::fprintf(stderr,
                         "cawa_sweep: %zu jobs on isolated workers\n",
                         jobs.size());
        results = supervisor.run(jobs, on_done);
    } else {
        SweepEngine engine(threads);
        std::fprintf(stderr, "cawa_sweep: %zu jobs on %d threads\n",
                     jobs.size(), engine.threads());
        results = engine.run(jobs, on_done, opt.retries + 1);
    }

    JsonWriteOptions json_opt;
    json_opt.includeBlocks = opt.includeBlocks;
    json_opt.includeTrace = opt.includeTrace;
    json_opt.pretty = !opt.compact && !opt.outDir.empty();

    if (!opt.outDir.empty())
        std::filesystem::create_directories(opt.outDir);

    auto emitDoc = [&](const std::string &name,
                       const std::string &doc) -> bool {
        if (opt.outDir.empty()) {
            std::cout << doc << "\n";
            return true;
        }
        const std::filesystem::path path =
            std::filesystem::path(opt.outDir) / (name + ".json");
        std::ofstream out(path);
        out << doc << "\n";
        if (!out) {
            std::fprintf(stderr, "cawa_sweep: cannot write %s\n",
                         path.c_str());
            return false;
        }
        return true;
    };

    int failures = 0;
    Table summary({"job", "status", "attempts", "detail"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &res = results[i];
        const std::string &name = jobs[i].name;
        const JournalEntry entry = makeJournalEntry(name, res);
        summary.row()
            .cell(name)
            .cell(entry.status)
            .cell(std::max(entry.attempts, 1))
            .cell(entry.error);
        if (!res.error.empty()) {
            if (res.failureReason == "cancelled")
                std::fprintf(stderr, "cawa_sweep: %s CANCELLED: %s\n",
                             name.c_str(), res.error.c_str());
            else
                std::fprintf(stderr,
                             "cawa_sweep: %s FAILED (%d attempt%s): %s\n",
                             name.c_str(), res.attempts,
                             res.attempts == 1 ? "" : "s",
                             res.error.c_str());
            ++failures;
            // Failed jobs still get a document so the output
            // directory has one entry per job.
            emitDoc(name,
                    failureToJson(name, res.error, res.attempts,
                                  json_opt, res.failureReason));
            continue;
        }
        if (res.report.exitStatus != ExitStatus::Completed) {
            std::fprintf(stderr, "cawa_sweep: %s %s\n", name.c_str(),
                         res.report.exitStatus == ExitStatus::Timeout
                             ? "TIMED OUT"
                             : "DEADLOCKED");
            if (!res.report.diagnostic.empty())
                std::fprintf(stderr, "%s",
                             res.report.diagnostic.c_str());
            ++failures;
        } else if (!res.verified) {
            std::fprintf(stderr,
                         "cawa_sweep: %s FAILED VERIFICATION\n",
                         name.c_str());
            ++failures;
        }
        if (!emitDoc(name, toJson(res.report, json_opt)))
            ++failures;
    }
    if (summary.numRows() > 0)
        summary.print(std::cerr, "sweep summary");
    // Conventional fatal-signal exit status; the journal and
    // checkpoints written above make a later --resume pick up where
    // this run stopped.
    if (g_cancel.load(std::memory_order_relaxed))
        return 130;
    return failures ? 1 : 0;
}
