/**
 * @file
 * cawa_sweep: run a workload x scheduler x cache-policy matrix on the
 * parallel sweep engine and emit one JSON document per job
 * (schema "cawa-simreport-v3") for plotting and regression baselines.
 * A job that crashes does not take the sweep down: its failure is
 * emitted as a first-class "cawa-sweepfailure-v1" document and every
 * other job still runs.
 *
 * Examples:
 *   cawa_sweep --workloads sens --schedulers rr,gto,gcaws \
 *              --policies lru,cacp --scale 0.25 --out sweep/
 *   CAWA_BENCH_THREADS=8 cawa_sweep --workloads bfs --compact
 *   cawa_sweep --out sweep/ --journal sweep/runs.jsonl   # then, after
 *   cawa_sweep --out sweep/ --journal sweep/runs.jsonl --resume
 *
 * With --journal, one JSON line is appended per finished job; with
 * --resume, jobs already journaled as "ok" are skipped so a killed or
 * partially-failed sweep re-runs only the failed/missing jobs. With
 * --checkpoint-dir, running jobs snapshot their full machine state
 * periodically (and on SIGINT/SIGTERM or --job-timeout expiry), and
 * --resume continues each re-run job cycle-exactly from its snapshot
 * instead of from cycle 0.
 *
 * Without --out, documents are printed to stdout one per line
 * (compact), in job order. Exit status is non-zero when any job
 * times out, deadlocks, fails functional verification, or throws.
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/journal.hh"
#include "sim/report_json.hh"
#include "sim/sweep.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

/**
 * Graceful shutdown: the first SIGINT/SIGTERM sets the cancel flag
 * every running job polls (each writes a final checkpoint when
 * configured, then stops), started jobs drain, the journal and the
 * partial report are flushed, and cawa_sweep exits 130. A second
 * signal hard-exits immediately.
 */
std::atomic<bool> g_cancel{false};
std::atomic<int> g_signalCount{0};

extern "C" void
handleShutdownSignal(int)
{
    if (g_signalCount.fetch_add(1, std::memory_order_relaxed) >= 1)
        _exit(130);
    g_cancel.store(true, std::memory_order_relaxed);
    const char msg[] =
        "\ncawa_sweep: interrupted -- stopping jobs (final checkpoints "
        "+ journal are being written); interrupt again to hard-exit\n";
    // write() is async-signal-safe; fprintf is not.
    const ssize_t ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

struct Options
{
    std::vector<std::string> workloads;
    std::vector<SchedulerKind> schedulers{SchedulerKind::Gcaws};
    std::vector<CachePolicyKind> policies{CachePolicyKind::Cacp};
    double scale = 0.5;
    std::uint64_t seed = 1;
    int threads = 0; ///< 0 = CAWA_BENCH_THREADS or hardware default
    std::string outDir;
    std::string journalPath;
    std::string checkpointDir;
    std::uint64_t checkpointInterval = 1'000'000; ///< cycles
    double jobTimeout = 0.0; ///< per-job wall-clock budget (seconds)
    bool resume = false;
    int retries = 0; ///< extra attempts for jobs that throw
    bool listOnly = false;
    bool compact = false;
    bool includeBlocks = true;
    bool includeTrace = true;
};

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        status ? stderr : stdout,
        "usage: cawa_sweep [options]\n"
        "  --workloads LIST   comma list of Table 2 names, or 'all'\n"
        "                     / 'sens' (default: all)\n"
        "  --schedulers LIST  rr,gto,2lvl,caws,gcaws (default: gcaws)\n"
        "  --policies LIST    lru,srrip,ship,cacp (default: cacp)\n"
        "  --scale S          problem scale (default 0.5)\n"
        "  --seed N           workload input seed (default 1)\n"
        "  --threads N        worker threads (default:\n"
        "                     CAWA_BENCH_THREADS, else all cores)\n"
        "  --out DIR          write DIR/<job>.json instead of stdout\n"
        "  --journal FILE     append one JSON line per finished job\n"
        "  --checkpoint-dir D write DIR/<job>.ckpt snapshots while\n"
        "                     jobs run; with --resume, restore them\n"
        "  --checkpoint-interval N\n"
        "                     cycles between snapshots (default 1e6)\n"
        "  --job-timeout SEC  per-job wall-clock budget; an exceeded\n"
        "                     job checkpoints (when configured) and\n"
        "                     fails with reason 'walltime'\n"
        "  --resume           skip jobs journaled as ok (needs\n"
        "                     --journal); with --checkpoint-dir,\n"
        "                     re-run jobs continue from their latest\n"
        "                     valid checkpoint\n"
        "  --retries N        re-run a job that throws up to N extra\n"
        "                     times (default 0)\n"
        "  --compact          single-line JSON (stdout default)\n"
        "  --no-blocks        omit per-block/per-warp records\n"
        "  --no-trace         omit the criticality trace\n"
        "  --list             print job names and exit\n"
        "  --help             this text\n");
    std::exit(status);
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

SchedulerKind
parseScheduler(const std::string &name)
{
    for (SchedulerKind kind :
         {SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::TwoLevel,
          SchedulerKind::CawsOracle, SchedulerKind::Gcaws})
        if (name == schedulerKindName(kind))
            return kind;
    std::fprintf(stderr, "cawa_sweep: unknown scheduler '%s'\n",
                 name.c_str());
    std::exit(2);
}

CachePolicyKind
parsePolicy(const std::string &name)
{
    for (CachePolicyKind kind :
         {CachePolicyKind::Lru, CachePolicyKind::Srrip,
          CachePolicyKind::Ship, CachePolicyKind::Cacp})
        if (name == cachePolicyKindName(kind))
            return kind;
    std::fprintf(stderr, "cawa_sweep: unknown cache policy '%s'\n",
                 name.c_str());
    std::exit(2);
}

double
parsePositiveDouble(const std::string &text, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(v > 0.0)) {
        std::fprintf(stderr, "cawa_sweep: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "cawa_sweep: %s needs a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workloads") {
            const std::string list = next(i);
            if (list == "all")
                opt.workloads = allWorkloadNames();
            else if (list == "sens")
                opt.workloads = sensitiveWorkloadNames();
            else
                opt.workloads = splitList(list);
        } else if (arg == "--schedulers") {
            opt.schedulers.clear();
            for (const auto &name : splitList(next(i)))
                opt.schedulers.push_back(parseScheduler(name));
        } else if (arg == "--policies") {
            opt.policies.clear();
            for (const auto &name : splitList(next(i)))
                opt.policies.push_back(parsePolicy(name));
        } else if (arg == "--scale") {
            opt.scale = parsePositiveDouble(next(i), "scale");
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(i).c_str(), nullptr, 10);
        } else if (arg == "--threads") {
            opt.threads = static_cast<int>(
                parsePositiveDouble(next(i), "thread count"));
        } else if (arg == "--out") {
            opt.outDir = next(i);
        } else if (arg == "--journal") {
            opt.journalPath = next(i);
        } else if (arg == "--checkpoint-dir") {
            opt.checkpointDir = next(i);
        } else if (arg == "--checkpoint-interval") {
            opt.checkpointInterval = static_cast<std::uint64_t>(
                parsePositiveDouble(next(i), "checkpoint interval"));
        } else if (arg == "--job-timeout") {
            opt.jobTimeout =
                parsePositiveDouble(next(i), "job timeout");
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--retries") {
            opt.retries = static_cast<int>(
                parsePositiveDouble(next(i), "retry count"));
        } else if (arg == "--compact") {
            opt.compact = true;
        } else if (arg == "--no-blocks") {
            opt.includeBlocks = false;
        } else if (arg == "--no-trace") {
            opt.includeTrace = false;
        } else if (arg == "--list") {
            opt.listOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "cawa_sweep: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.workloads.empty())
        opt.workloads = allWorkloadNames();
    if (opt.schedulers.empty() || opt.policies.empty())
        usage(2);
    if (opt.resume && opt.journalPath.empty()) {
        std::fprintf(stderr,
                     "cawa_sweep: --resume needs --journal FILE\n");
        std::exit(2);
    }
    const auto known = allWorkloadNames();
    for (const auto &name : opt.workloads) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::fprintf(stderr, "cawa_sweep: unknown workload '%s'"
                         " (try --workloads all)\n", name.c_str());
            std::exit(2);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    std::vector<WorkloadJobSpec> specs;
    for (const auto &workload : opt.workloads) {
        for (SchedulerKind sched : opt.schedulers) {
            for (CachePolicyKind policy : opt.policies) {
                WorkloadJobSpec spec;
                spec.workload = workload;
                spec.cfg = GpuConfig::fermiGtx480();
                spec.cfg.scheduler = sched;
                spec.cfg.l1Policy = policy;
                spec.params.seed = opt.seed;
                spec.params.scale = opt.scale;
                specs.push_back(spec);
            }
        }
    }

    if (opt.listOnly) {
        for (const auto &spec : specs)
            std::cout << workloadJobName(spec) << "\n";
        return 0;
    }

    std::vector<SweepJob> jobs = makeWorkloadJobs(specs);

    if (opt.resume) {
        const auto journal = readJournal(opt.journalPath);
        const std::size_t total = jobs.size();
        jobs = filterResumeJobs(jobs, journal);
        std::fprintf(stderr,
                     "cawa_sweep: resume: %zu of %zu jobs already ok\n",
                     total - jobs.size(), total);
    }

    // Checkpointing, per-job wall-clock budget and graceful shutdown.
    if (!opt.checkpointDir.empty())
        std::filesystem::create_directories(opt.checkpointDir);
    std::size_t resumable = 0;
    for (SweepJob &job : jobs) {
        job.cfg.cancelFlag = &g_cancel;
        job.cfg.wallClockLimitSec = opt.jobTimeout;
        if (opt.checkpointDir.empty())
            continue;
        const std::filesystem::path ckpt =
            std::filesystem::path(opt.checkpointDir) /
            (job.name + ".ckpt");
        job.cfg.checkpointPath = ckpt.string();
        job.cfg.checkpointInterval = opt.checkpointInterval;
        // On resume, continue each re-run job from its snapshot; an
        // unusable file falls back to a from-scratch run inside
        // runSweepJob.
        if (opt.resume && std::filesystem::exists(ckpt)) {
            job.resumeFromCheckpoint = ckpt.string();
            ++resumable;
        }
    }
    if (resumable)
        std::fprintf(stderr,
                     "cawa_sweep: resume: %zu job%s continuing from "
                     "checkpoints\n",
                     resumable, resumable == 1 ? "" : "s");
    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);

    int threads = opt.threads;
    if (threads <= 0)
        threads = sweepThreadsFromEnv();
    SweepEngine engine(threads);
    std::fprintf(stderr, "cawa_sweep: %zu jobs on %d threads\n",
                 jobs.size(), engine.threads());

    // Journal as jobs finish (append + flush per line) so a killed
    // sweep leaves a usable record for --resume.
    std::ofstream journal_out;
    if (!opt.journalPath.empty()) {
        // A crash mid-append can leave the file without a trailing
        // newline; terminate that torn line first so new records
        // don't merge into it.
        bool needs_newline = false;
        if (std::ifstream prev(opt.journalPath,
                               std::ios::binary | std::ios::ate);
            prev && prev.tellg() > 0) {
            prev.seekg(-1, std::ios::end);
            needs_newline = prev.get() != '\n';
        }
        journal_out.open(opt.journalPath, std::ios::app);
        if (!journal_out) {
            std::fprintf(stderr, "cawa_sweep: cannot open journal %s\n",
                         opt.journalPath.c_str());
            return 2;
        }
        if (needs_newline)
            journal_out << "\n";
    }
    SweepEngine::JobDone on_done;
    if (journal_out.is_open()) {
        on_done = [&](std::size_t index, const SweepResult &res) {
            journal_out << journalLine(makeJournalEntry(
                               jobs[index].name, res))
                        << "\n";
            journal_out.flush();
        };
    }

    const auto results = engine.run(jobs, on_done, opt.retries + 1);

    JsonWriteOptions json_opt;
    json_opt.includeBlocks = opt.includeBlocks;
    json_opt.includeTrace = opt.includeTrace;
    json_opt.pretty = !opt.compact && !opt.outDir.empty();

    if (!opt.outDir.empty())
        std::filesystem::create_directories(opt.outDir);

    auto emitDoc = [&](const std::string &name,
                       const std::string &doc) -> bool {
        if (opt.outDir.empty()) {
            std::cout << doc << "\n";
            return true;
        }
        const std::filesystem::path path =
            std::filesystem::path(opt.outDir) / (name + ".json");
        std::ofstream out(path);
        out << doc << "\n";
        if (!out) {
            std::fprintf(stderr, "cawa_sweep: cannot write %s\n",
                         path.c_str());
            return false;
        }
        return true;
    };

    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SweepResult &res = results[i];
        const std::string &name = jobs[i].name;
        if (!res.error.empty()) {
            if (res.failureReason == "cancelled")
                std::fprintf(stderr, "cawa_sweep: %s CANCELLED: %s\n",
                             name.c_str(), res.error.c_str());
            else
                std::fprintf(stderr,
                             "cawa_sweep: %s FAILED (%d attempt%s): %s\n",
                             name.c_str(), res.attempts,
                             res.attempts == 1 ? "" : "s",
                             res.error.c_str());
            ++failures;
            // Failed jobs still get a document so the output
            // directory has one entry per job.
            emitDoc(name,
                    failureToJson(name, res.error, res.attempts,
                                  json_opt, res.failureReason));
            continue;
        }
        if (res.report.exitStatus != ExitStatus::Completed) {
            std::fprintf(stderr, "cawa_sweep: %s %s\n", name.c_str(),
                         res.report.exitStatus == ExitStatus::Timeout
                             ? "TIMED OUT"
                             : "DEADLOCKED");
            if (!res.report.diagnostic.empty())
                std::fprintf(stderr, "%s",
                             res.report.diagnostic.c_str());
            ++failures;
        } else if (!res.verified) {
            std::fprintf(stderr,
                         "cawa_sweep: %s FAILED VERIFICATION\n",
                         name.c_str());
            ++failures;
        }
        if (!emitDoc(name, toJson(res.report, json_opt)))
            ++failures;
    }
    // Conventional fatal-signal exit status; the journal and
    // checkpoints written above make a later --resume pick up where
    // this run stopped.
    if (g_cancel.load(std::memory_order_relaxed))
        return 130;
    return failures ? 1 : 0;
}
