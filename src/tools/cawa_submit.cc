/**
 * @file
 * cawa_submit: client CLI for the cawad simulation service. Submits
 * one job over the daemon's Unix-domain socket, awaits the result
 * (streaming progress frames as JSONL with --progress), and writes
 * the cawa-simreport-v3 document with --out -- byte-identical to
 * what a direct `cawa_sweep --out` run of the same job produces,
 * whether the daemon computed the result fresh or served it from
 * its cache.
 *
 * Examples:
 *   cawa_submit --socket /tmp/cawad.sock --workload bfs \
 *               --scheduler gcaws --policy cacp --scale 0.05 \
 *               --out results/
 *   cawa_submit --socket /tmp/cawad.sock --status
 *   cawa_submit --socket /tmp/cawad.sock --cancel 3
 *
 * stdout carries machine-readable output only: progress JSONL (with
 * --progress), one `cached=true|false` line per awaited result, and
 * the raw status/cancel reply JSON. Diagnostics go to stderr. Exit
 * status: 0 on a successful result, 1 when the job failed or the
 * daemon reported an error, 2 for usage errors.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/sim_error.hh"
#include "common/subprocess.hh"
#include "sim/report_json.hh"
#include "sim/service/protocol.hh"
#include "sim/supervisor.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        status ? stderr : stdout,
        "usage: cawa_submit --socket PATH [options]\n"
        "  --socket PATH      cawad Unix-domain socket\n"
        "  --workload NAME    Table 2 workload name (default bfs)\n"
        "  --scheduler S      rr|gto|2lvl|caws|gcaws (default gcaws)\n"
        "  --policy P         lru|srrip|ship|cacp (default cacp)\n"
        "  --seed N           workload input seed (default 1)\n"
        "  --scale S          problem scale (default 0.5)\n"
        "  --priority N       queue priority in [-100, 100], higher\n"
        "                     runs first (default 0)\n"
        "  --client NAME      fairness-quota bucket (default anon)\n"
        "  --out DIR          write DIR/<job>.json (pretty v3 doc,\n"
        "                     byte-identical to cawa_sweep --out)\n"
        "  --progress         stream progress frames to stdout as\n"
        "                     JSONL while waiting\n"
        "  --status           print the daemon's queue/cache status\n"
        "                     and exit\n"
        "  --cancel JOB       cancel job id JOB and exit\n"
        "  --help             this text\n");
    std::exit(status);
}

long
parseIntInRange(const std::string &text, const char *what, long lo,
                long hi)
{
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "cawa_submit: bad %s '%s': want an integer in "
                     "[%ld, %ld]\n",
                     what, text.c_str(), lo, hi);
        std::exit(2);
    }
    return v;
}

double
parsePositiveDouble(const std::string &text, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(v > 0.0)) {
        std::fprintf(stderr, "cawa_submit: bad %s '%s'\n", what,
                     text.c_str());
        std::exit(2);
    }
    return v;
}

struct Options
{
    std::string socketPath;
    WorkloadJobSpec spec;
    int priority = 0;
    std::string client = "anon";
    std::string outDir;
    bool progress = false;
    bool statusOnly = false;
    std::uint64_t cancelJob = 0;
    bool cancelOnly = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.spec.workload = "bfs";
    opt.spec.cfg = GpuConfig::fermiGtx480();
    opt.spec.cfg.scheduler = SchedulerKind::Gcaws;
    opt.spec.cfg.l1Policy = CachePolicyKind::Cacp;
    opt.spec.params.seed = 1;
    opt.spec.params.scale = 0.5;

    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "cawa_submit: %s needs a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            opt.socketPath = next(i);
        } else if (arg == "--workload") {
            opt.spec.workload = next(i);
        } else if (arg == "--scheduler") {
            try {
                opt.spec.cfg.scheduler =
                    schedulerKindFromName(next(i));
            } catch (const SimError &e) {
                std::fprintf(stderr, "cawa_submit: %s\n",
                             e.detail().c_str());
                std::exit(2);
            }
        } else if (arg == "--policy") {
            try {
                opt.spec.cfg.l1Policy =
                    cachePolicyKindFromName(next(i));
            } catch (const SimError &e) {
                std::fprintf(stderr, "cawa_submit: %s\n",
                             e.detail().c_str());
                std::exit(2);
            }
        } else if (arg == "--seed") {
            opt.spec.params.seed = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--seed", 0,
                                1'000'000'000));
        } else if (arg == "--scale") {
            opt.spec.params.scale =
                parsePositiveDouble(next(i), "scale");
        } else if (arg == "--priority") {
            opt.priority = static_cast<int>(
                parseIntInRange(next(i), "--priority", -100, 100));
        } else if (arg == "--client") {
            opt.client = next(i);
        } else if (arg == "--out") {
            opt.outDir = next(i);
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--status") {
            opt.statusOnly = true;
        } else if (arg == "--cancel") {
            opt.cancelJob = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--cancel", 1,
                                1'000'000'000));
            opt.cancelOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "cawa_submit: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.socketPath.empty()) {
        std::fprintf(stderr, "cawa_submit: --socket is required\n");
        usage(2);
    }
    const auto known = allWorkloadNames();
    bool found = false;
    for (const auto &name : known)
        found = found || name == opt.spec.workload;
    if (!found) {
        std::fprintf(stderr, "cawa_submit: unknown workload '%s'\n",
                     opt.spec.workload.c_str());
        std::exit(2);
    }
    return opt;
}

/** One blocking request/reply exchange (status, cancel). */
int
oneShot(const Options &opt, const std::string &request)
{
    const int fd = connectUnixSocket(opt.socketPath);
    if (!writeFrame(fd, request)) {
        std::fprintf(stderr, "cawa_submit: daemon closed the "
                             "connection\n");
        close(fd);
        return 1;
    }
    std::string reply;
    if (!readFrameBlocking(fd, reply)) {
        std::fprintf(stderr, "cawa_submit: no reply from daemon\n");
        close(fd);
        return 1;
    }
    close(fd);
    std::printf("%s\n", reply.c_str());
    try {
        const JsonValue doc = parseJson(reply);
        if (doc.at("type").asString() == "error")
            return 1;
    } catch (const std::exception &) {
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    try {
        if (opt.statusOnly)
            return oneShot(opt, "{\"type\":\"status\"}");
        if (opt.cancelOnly)
            return oneShot(opt, "{\"type\":\"cancel\",\"job\":" +
                                    std::to_string(opt.cancelJob) +
                                    "}");

        std::string submit = "{\"type\":\"submit\",\"spec\":";
        submit += serviceSpecJson(opt.spec);
        submit += ",\"priority\":" + std::to_string(opt.priority);
        submit += ",\"client\":" + frameJsonQuote(opt.client);
        submit += "}";

        const int fd = connectUnixSocket(opt.socketPath);
        if (!writeFrame(fd, submit)) {
            std::fprintf(stderr, "cawa_submit: daemon closed the "
                                 "connection\n");
            close(fd);
            return 1;
        }

        // Await frames until the terminal result envelope.
        std::string payload;
        while (readFrameBlocking(fd, payload)) {
            const JsonValue doc = parseJson(payload);
            const std::string type = doc.at("type").asString();
            if (type == "queued") {
                std::fprintf(stderr,
                             "cawa_submit: queued as job %llu (%s)%s\n",
                             static_cast<unsigned long long>(
                                 doc.at("job").asU64()),
                             doc.at("name").asString().c_str(),
                             doc.at("coalesced").asBool()
                                 ? " [coalesced]"
                                 : "");
                continue;
            }
            if (type == "progress") {
                if (opt.progress) {
                    std::printf("%s\n", payload.c_str());
                    std::fflush(stdout);
                }
                continue;
            }
            if (type == "error") {
                std::fprintf(stderr, "cawa_submit: daemon error: %s\n",
                             doc.at("message").asString().c_str());
                close(fd);
                return 1;
            }
            if (type != "result")
                continue;

            close(fd);
            const bool cached = doc.at("cached").asBool();
            const std::string name = doc.at("name").asString();
            const SweepResult res =
                resultFromFrameFields(doc.at("result"));
            std::printf("cached=%s\n", cached ? "true" : "false");

            if (!res.ok()) {
                std::fprintf(
                    stderr, "cawa_submit: %s FAILED: %s\n",
                    name.c_str(),
                    res.error.empty()
                        ? (res.verified ? "did not complete"
                                        : "failed verification")
                        : res.error.c_str());
                return 1;
            }
            if (!opt.outDir.empty()) {
                // Exactly the cawa_sweep --out emit path: pretty v3
                // document plus trailing newline, so the files are
                // byte-comparable.
                std::filesystem::create_directories(opt.outDir);
                const std::filesystem::path path =
                    std::filesystem::path(opt.outDir) /
                    (name + ".json");
                JsonWriteOptions json_opt;
                std::ofstream out(path);
                out << toJson(res.report, json_opt) << "\n";
                if (!out) {
                    std::fprintf(stderr,
                                 "cawa_submit: cannot write %s\n",
                                 path.c_str());
                    return 1;
                }
                std::fprintf(stderr, "cawa_submit: wrote %s\n",
                             path.c_str());
            }
            return 0;
        }
        std::fprintf(stderr,
                     "cawa_submit: connection closed before a "
                     "result arrived\n");
        close(fd);
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cawa_submit: %s\n", e.what());
        return 1;
    }
}
