/**
 * @file
 * cawad: the simulation-as-a-service daemon frontend. Serves the
 * frame protocol of sim/service/protocol.hh on a Unix-domain socket,
 * executing submitted jobs in sandboxed worker subprocesses (the
 * hidden `cawad --worker` entrypoint, identical to
 * `cawa_sweep --worker`) with a persistent journaled queue and an
 * on-disk result cache under --state-dir.
 *
 * Examples:
 *   cawad --socket /tmp/cawad.sock --state-dir /var/tmp/cawad &
 *   cawa_submit --socket /tmp/cawad.sock --workload bfs --out out/
 *
 * SIGTERM/SIGINT shut down gracefully: running workers checkpoint
 * and their jobs stay pending in the journal, so the next cawad on
 * the same state directory resumes them; finished results are
 * already durable in the cache. A second signal hard-exits.
 */

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/sim_error.hh"
#include "sim/service/daemon.hh"
#include "workloads/sweep_jobs.hh"

using namespace cawa;

namespace
{

std::atomic<bool> g_stop{false};
std::atomic<int> g_signalCount{0};

extern "C" void
handleShutdownSignal(int)
{
    if (g_signalCount.fetch_add(1, std::memory_order_relaxed) >= 1)
        _exit(130);
    g_stop.store(true, std::memory_order_relaxed);
    const char msg[] = "\ncawad: shutting down -- running workers are "
                       "checkpointing; signal again to hard-exit\n";
    const ssize_t ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

[[noreturn]] void
usage(int status)
{
    std::fprintf(
        status ? stderr : stdout,
        "usage: cawad --socket PATH --state-dir DIR [options]\n"
        "  --socket PATH      Unix-domain socket to serve on\n"
        "  --state-dir DIR    queue journal, result cache and\n"
        "                     checkpoints live here; a restart on the\n"
        "                     same directory resumes the queue\n"
        "  --workers N        concurrent worker subprocesses,\n"
        "                     N in [1, 256] (default 1)\n"
        "  --client-quota N   running jobs one client may hold,\n"
        "                     N in [0, 256], 0 = unlimited\n"
        "                     (default 2)\n"
        "  --job-timeout SEC  per-job wall-clock budget in\n"
        "                     (0, 86400]; 0 = off (default 0)\n"
        "  --checkpoint-interval N\n"
        "                     cycles between worker snapshots\n"
        "                     (default 200000)\n"
        "  --heartbeat-ms N   worker heartbeat interval in\n"
        "                     milliseconds, N in [10, 600000]\n"
        "                     (default 250)\n"
        "  --heartbeat-misses N\n"
        "                     silent intervals before a worker is\n"
        "                     declared hung, N in [1, 10000]\n"
        "                     (default 20)\n"
        "  --max-respawns N   worker respawns per job after a\n"
        "                     crash/oom/hang, N in [0, 100]\n"
        "                     (default 2)\n"
        "  --retries N        extra in-worker attempts for jobs that\n"
        "                     throw, N in [0, 100] (default 0)\n"
        "  --worker-mem-mb N  per-worker address-space cap in MB\n"
        "                     (0 = off; skipped under ASan)\n"
        "  --worker-cpu-sec N per-worker CPU-seconds cap (0 = off)\n"
        "  --quiet            suppress per-event logging\n"
        "  --help             this text\n");
    std::exit(status);
}

long
parseIntInRange(const std::string &text, const char *what, long lo,
                long hi)
{
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "cawad: bad %s '%s': want an integer in "
                     "[%ld, %ld]\n",
                     what, text.c_str(), lo, hi);
        std::exit(2);
    }
    return v;
}

double
parseDoubleInRange(const std::string &text, const char *what,
                   double lo, double hi)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !(v > lo) || v > hi) {
        std::fprintf(stderr,
                     "cawad: bad %s '%s': want a number in "
                     "(%g, %g]\n",
                     what, text.c_str(), lo, hi);
        std::exit(2);
    }
    return v;
}

/** Resolved path of this binary, for re-exec'ing worker children. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0)
        return runWorkerModeFromFds(STDIN_FILENO, STDOUT_FILENO,
                                    "cawad --worker");

    DaemonOptions opt;
    opt.workerArgv0 = selfExePath(argv[0]);
    opt.stopFlag = &g_stop;
    bool quiet = false;

    auto next = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "cawad: %s needs a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            opt.socketPath = next(i);
        } else if (arg == "--state-dir") {
            opt.stateDir = next(i);
        } else if (arg == "--workers") {
            opt.workers = static_cast<int>(
                parseIntInRange(next(i), "--workers", 1, 256));
        } else if (arg == "--client-quota") {
            opt.clientQuota = static_cast<int>(
                parseIntInRange(next(i), "--client-quota", 0, 256));
        } else if (arg == "--job-timeout") {
            const std::string v = next(i);
            opt.jobTimeoutSec =
                v == "0" ? 0.0
                         : parseDoubleInRange(v, "--job-timeout", 0.0,
                                              86400.0);
        } else if (arg == "--checkpoint-interval") {
            opt.checkpointInterval = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--checkpoint-interval", 1,
                                1'000'000'000));
        } else if (arg == "--heartbeat-ms") {
            opt.heartbeatIntervalSec =
                static_cast<double>(parseIntInRange(
                    next(i), "--heartbeat-ms", 10, 600'000)) /
                1000.0;
        } else if (arg == "--heartbeat-misses") {
            opt.heartbeatMissLimit = static_cast<int>(parseIntInRange(
                next(i), "--heartbeat-misses", 1, 10'000));
        } else if (arg == "--max-respawns") {
            opt.maxAttemptsPerJob =
                1 + static_cast<int>(parseIntInRange(
                        next(i), "--max-respawns", 0, 100));
        } else if (arg == "--retries") {
            opt.jobMaxAttempts =
                1 + static_cast<int>(parseIntInRange(
                        next(i), "--retries", 0, 100));
        } else if (arg == "--worker-mem-mb") {
            opt.limits.memoryBytes =
                static_cast<std::uint64_t>(parseIntInRange(
                    next(i), "--worker-mem-mb", 0, 1'048'576))
                << 20;
        } else if (arg == "--worker-cpu-sec") {
            opt.limits.cpuSeconds = static_cast<std::uint64_t>(
                parseIntInRange(next(i), "--worker-cpu-sec", 0,
                                86'400));
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "cawad: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (opt.socketPath.empty() || opt.stateDir.empty()) {
        std::fprintf(stderr,
                     "cawad: --socket and --state-dir are required\n");
        usage(2);
    }
    if (!processIsolationAvailable()) {
        std::fprintf(stderr,
                     "cawad: process isolation is not available on "
                     "this platform\n");
        return 2;
    }
    if (!quiet)
        opt.onEvent = [](const std::string &event,
                         const std::string &detail) {
            std::fprintf(stderr, "cawad: %s%s%s\n", event.c_str(),
                         detail.empty() ? "" : " ",
                         detail.c_str());
        };

    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);

    try {
        SimDaemon daemon(std::move(opt));
        return daemon.run();
    } catch (const SimError &e) {
        std::fprintf(stderr, "cawad: %s\n", e.what());
        return 1;
    }
}
