/**
 * @file
 * Text assembler for the mini ISA: parse a human-readable listing
 * into a Program, mirroring the ProgramBuilder API. Lets kernels be
 * written as .s files instead of C++ builder calls.
 *
 * Syntax (one instruction per line; ';' or '#' start a comment):
 *
 *   entry:                        ; label
 *       s2r   r1, %gtid           ; special regs: %tid %ctaid %ntid
 *                                 ;   %nctaid %lane %warpid %gtid
 *       mov   r2, 5               ; immediate form auto-selected
 *       add   r3, r1, r2          ; reg-reg
 *       add   r3, r3, 12          ; reg-imm (AddImm)
 *       shl   r4, r1, 2
 *       ld.global  r5, [r4 + 0x1000]
 *       st.global  [r4 + 0x2000], r5
 *       ld.shared  r6, [r4]
 *       setp.lt p0, r5, r6        ; cmp suffix: eq ne lt le gt ge
 *       @p0 bra target, reconv    ; predicated branch + reconv label
 *       @!p1 bra target, reconv   ; negated predicate
 *       bra somewhere             ; unconditional
 *       bar
 *       exit
 *
 * Register operands are r0..r31, predicates p0..p7; immediates are
 * decimal or 0x-hex, optionally negative.
 */

#ifndef CAWA_ISA_ASSEMBLER_HH
#define CAWA_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace cawa
{

/** Result of assembling a listing. */
struct AssembleResult
{
    Program program;
    /** Empty on success; else "line N: message". */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Assemble a full listing (multi-line string). */
AssembleResult assemble(const std::string &source);

} // namespace cawa

#endif // CAWA_ISA_ASSEMBLER_HH
