#include "isa/instruction.hh"

#include "common/sim_assert.hh"

namespace cawa
{

namespace
{

std::uint32_t
bit(Reg r)
{
    return std::uint32_t{1} << r;
}

} // namespace

void
Instruction::deriveMasks()
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::MovImm:
      case Opcode::S2R:
      case Opcode::Bar:
      case Opcode::Exit:
      case Opcode::Bra:
        readRegs = 0;
        break;
      case Opcode::AddImm:
      case Opcode::MulImm:
      case Opcode::ShlImm:
      case Opcode::ShrImm:
      case Opcode::Mov:
      case Opcode::Sfu:
      case Opcode::SetpImm:
      case Opcode::LdGlobal:
      case Opcode::LdShared:
        readRegs = bit(src0);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Setp:
      case Opcode::Selp:
      case Opcode::StGlobal:
      case Opcode::StShared:
        readRegs = bit(src0) | bit(src1);
        break;
      case Opcode::Mad:
        readRegs = bit(src0) | bit(src1) | bit(src2);
        break;
    }

    writeRegs = writesReg() ? bit(dst) : 0;

    switch (op) {
      case Opcode::Selp:
        readPreds = static_cast<std::uint8_t>(1u << psrc);
        break;
      case Opcode::Bra:
        readPreds = predUsed
            ? static_cast<std::uint8_t>(1u << psrc) : 0;
        break;
      default:
        readPreds = 0;
        break;
    }

    switch (op) {
      case Opcode::Setp:
      case Opcode::SetpImm:
        writePreds = static_cast<std::uint8_t>(1u << pdst);
        break;
      default:
        writePreds = 0;
        break;
    }
}

bool
evalCmp(CmpOp op, RegValue a, RegValue b)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case CmpOp::Eq: return sa == sb;
      case CmpOp::Ne: return sa != sb;
      case CmpOp::Lt: return sa < sb;
      case CmpOp::Le: return sa <= sb;
      case CmpOp::Gt: return sa > sb;
      case CmpOp::Ge: return sa >= sb;
    }
    sim_panic("bad CmpOp");
}

RegValue
evalAlu(Opcode op, RegValue a, RegValue b, RegValue c, std::int64_t imm)
{
    const auto ui = static_cast<RegValue>(imm);
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::AddImm: return a + ui;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::MulImm: return a * ui;
      case Opcode::Mad: return a * b + c;
      case Opcode::Min:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
            ? a : b;
      case Opcode::Max:
        return static_cast<std::int64_t>(a) > static_cast<std::int64_t>(b)
            ? a : b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return a << (b & 63);
      case Opcode::Shr: return a >> (b & 63);
      case Opcode::ShlImm: return a << (ui & 63);
      case Opcode::ShrImm: return a >> (ui & 63);
      case Opcode::Mov: return a;
      case Opcode::MovImm: return ui;
      case Opcode::Sfu:
        // A cheap bijective mixer standing in for a transcendental:
        // deterministic, value-dependent, and register-width preserving.
        {
            RegValue x = a + 0x9e3779b97f4a7c15ULL;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            return x ^ (x >> 31);
        }
      default:
        sim_panic("evalAlu: non-ALU opcode");
    }
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::AddImm: return "add.imm";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::MulImm: return "mul.imm";
      case Opcode::Mad: return "mad";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::ShlImm: return "shl.imm";
      case Opcode::ShrImm: return "shr.imm";
      case Opcode::Mov: return "mov";
      case Opcode::MovImm: return "mov.imm";
      case Opcode::Setp: return "setp";
      case Opcode::SetpImm: return "setp.imm";
      case Opcode::Selp: return "selp";
      case Opcode::S2R: return "s2r";
      case Opcode::Sfu: return "sfu";
      case Opcode::LdGlobal: return "ld.global";
      case Opcode::StGlobal: return "st.global";
      case Opcode::LdShared: return "ld.shared";
      case Opcode::StShared: return "st.shared";
      case Opcode::Bra: return "bra";
      case Opcode::Bar: return "bar.sync";
      case Opcode::Exit: return "exit";
    }
    return "?";
}

} // namespace cawa
