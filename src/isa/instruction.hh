/**
 * @file
 * The mini PTX-like instruction set interpreted by the SIMT core.
 *
 * The ISA is deliberately small but fully functional: real register
 * values flow through it, so per-thread control flow and memory
 * addresses are computed, not scripted. Values are 64-bit integers;
 * memory accesses move 4-byte words (zero-extended on load).
 */

#ifndef CAWA_ISA_INSTRUCTION_HH
#define CAWA_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace cawa
{

/** Architectural general-purpose register index (0..31). */
using Reg = std::uint8_t;

/** Predicate register index (0..7). */
using PredReg = std::uint8_t;

inline constexpr int kNumRegs = 32;
inline constexpr int kNumPredRegs = 8;

enum class Opcode : std::uint8_t
{
    Nop,
    // Integer ALU, 64-bit two's-complement semantics.
    Add,        ///< dst = src0 + src1
    AddImm,     ///< dst = src0 + imm
    Sub,        ///< dst = src0 - src1
    Mul,        ///< dst = src0 * src1
    MulImm,     ///< dst = src0 * imm
    Mad,        ///< dst = src0 * src1 + src2
    Min,        ///< dst = min(src0, src1), signed
    Max,        ///< dst = max(src0, src1), signed
    And,        ///< dst = src0 & src1
    Or,         ///< dst = src0 | src1
    Xor,        ///< dst = src0 ^ src1
    Shl,        ///< dst = src0 << (src1 & 63)
    Shr,        ///< dst = src0 >> (src1 & 63), logical
    ShlImm,     ///< dst = src0 << (imm & 63)
    ShrImm,     ///< dst = src0 >> (imm & 63), logical
    Mov,        ///< dst = src0
    MovImm,     ///< dst = imm
    Setp,       ///< pdst = cmp(src0, src1), signed compare
    SetpImm,    ///< pdst = cmp(src0, imm)
    Selp,       ///< dst = psrc ? src0 : src1
    S2R,        ///< dst = special register
    Sfu,        ///< dst = rotmix(src0); long-latency SFU placeholder
    // Memory. Addresses are per-thread byte addresses.
    LdGlobal,   ///< dst = global[src0 + imm]
    StGlobal,   ///< global[src0 + imm] = src1
    LdShared,   ///< dst = shared[src0 + imm]
    StShared,   ///< shared[src0 + imm] = src1
    // Control.
    Bra,        ///< (@[!]psrc) branch to target; reconverge at reconv
    Bar,        ///< barrier.sync across the thread block
    Exit,       ///< thread block warp terminates
};

/** Comparison operators for Setp, signed 64-bit semantics. */
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** Special (read-only) registers exposed through S2R. */
enum class SpecialReg : std::uint8_t
{
    TidX,           ///< thread index within the block
    CtaIdX,         ///< block index within the grid
    NTidX,          ///< threads per block
    NCtaIdX,        ///< blocks in the grid
    LaneId,         ///< lane within the warp
    WarpIdInBlock,  ///< warp index within the block
    GlobalTid,      ///< ctaid * ntid + tid
};

/** Functional-unit class used by the timing model. */
enum class FuncUnit : std::uint8_t { Alu, Sfu, Mem, Control };

/**
 * One decoded instruction. All fields are populated by the
 * ProgramBuilder; the SM core never mutates instructions.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg dst = 0;
    Reg src0 = 0;
    Reg src1 = 0;
    Reg src2 = 0;
    std::int64_t imm = 0;
    CmpOp cmp = CmpOp::Eq;
    PredReg pdst = 0;
    PredReg psrc = 0;
    bool predUsed = false;      ///< Bra: condition register is consulted
    bool predNegate = false;    ///< Bra: branch on !psrc
    std::uint32_t target = 0;   ///< Bra: taken-path PC
    std::uint32_t reconv = 0;   ///< Bra: immediate post-dominator PC

    // The opcode predicates below are queried on every executed
    // instruction (execute, stall classification, CPL accounting), so
    // they are defined here where they inline to a compare or a small
    // switch instead of a call.

    /** Functional unit this opcode issues to. */
    FuncUnit funcUnit() const
    {
        switch (op) {
          case Opcode::Sfu:
            return FuncUnit::Sfu;
          case Opcode::LdGlobal:
          case Opcode::StGlobal:
          case Opcode::LdShared:
          case Opcode::StShared:
            return FuncUnit::Mem;
          case Opcode::Bra:
          case Opcode::Bar:
          case Opcode::Exit:
            return FuncUnit::Control;
          default:
            return FuncUnit::Alu;
        }
    }

    /** True for LdGlobal/StGlobal/LdShared/StShared. */
    bool isMem() const { return funcUnit() == FuncUnit::Mem; }

    /** True for loads (global or shared). */
    bool isLoad() const
    {
        return op == Opcode::LdGlobal || op == Opcode::LdShared;
    }

    /** True if the instruction writes a general-purpose register. */
    bool writesReg() const
    {
        switch (op) {
          case Opcode::Nop:
          case Opcode::Setp:
          case Opcode::SetpImm:
          case Opcode::StGlobal:
          case Opcode::StShared:
          case Opcode::Bra:
          case Opcode::Bar:
          case Opcode::Exit:
            return false;
          default:
            return true;
        }
    }

    /** True if the instruction accesses the global address space. */
    bool isGlobal() const
    {
        return op == Opcode::LdGlobal || op == Opcode::StGlobal;
    }

    // Scoreboard dependency masks. Derived once from the operand
    // fields by Program's constructor so the per-cycle issue and
    // stall-classification paths read plain data instead of
    // re-decoding the opcode.
    std::uint32_t readRegs = 0;  ///< general registers read
    std::uint32_t writeRegs = 0; ///< general registers written
    std::uint8_t readPreds = 0;  ///< predicate registers read
    std::uint8_t writePreds = 0; ///< predicate registers written

    /** (Re)compute the dependency-mask fields from the operands. */
    void deriveMasks();
};

/** Evaluate a comparison with signed 64-bit semantics. */
bool evalCmp(CmpOp op, RegValue a, RegValue b);

/** Evaluate a two/three-operand ALU opcode. */
RegValue evalAlu(Opcode op, RegValue a, RegValue b, RegValue c,
                 std::int64_t imm);

/** Human-readable opcode mnemonic. */
std::string opcodeName(Opcode op);

} // namespace cawa

#endif // CAWA_ISA_INSTRUCTION_HH
