/**
 * @file
 * Fluent builder for kernel programs, with label patching.
 *
 * Branches name their target and reconvergence points by label; build()
 * resolves labels, fills in PCs, and validates the result. Typical use:
 *
 * @code
 *   ProgramBuilder b;
 *   b.s2r(1, SpecialReg::GlobalTid);
 *   b.movImm(2, 0);
 *   b.label("loop");
 *   b.addImm(2, 2, 1);
 *   b.setpImm(0, CmpOp::Lt, 2, 10);
 *   b.braIf("loop", 0, "done");
 *   b.label("done");
 *   b.exit();
 *   Program p = b.build();
 * @endcode
 */

#ifndef CAWA_ISA_PROGRAM_BUILDER_HH
#define CAWA_ISA_PROGRAM_BUILDER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace cawa
{

class ProgramBuilder
{
  public:
    /** Bind a label to the next emitted instruction's PC. */
    ProgramBuilder &label(const std::string &name);

    // ALU emitters.
    ProgramBuilder &nop();
    ProgramBuilder &add(Reg dst, Reg a, Reg b);
    ProgramBuilder &addImm(Reg dst, Reg a, std::int64_t imm);
    ProgramBuilder &sub(Reg dst, Reg a, Reg b);
    ProgramBuilder &mul(Reg dst, Reg a, Reg b);
    ProgramBuilder &mulImm(Reg dst, Reg a, std::int64_t imm);
    ProgramBuilder &mad(Reg dst, Reg a, Reg b, Reg c);
    ProgramBuilder &min(Reg dst, Reg a, Reg b);
    ProgramBuilder &max(Reg dst, Reg a, Reg b);
    ProgramBuilder &and_(Reg dst, Reg a, Reg b);
    ProgramBuilder &or_(Reg dst, Reg a, Reg b);
    ProgramBuilder &xor_(Reg dst, Reg a, Reg b);
    ProgramBuilder &shlImm(Reg dst, Reg a, std::int64_t imm);
    ProgramBuilder &shrImm(Reg dst, Reg a, std::int64_t imm);
    ProgramBuilder &mov(Reg dst, Reg src);
    ProgramBuilder &movImm(Reg dst, std::int64_t imm);
    ProgramBuilder &setp(PredReg pdst, CmpOp cmp, Reg a, Reg b);
    ProgramBuilder &setpImm(PredReg pdst, CmpOp cmp, Reg a,
                            std::int64_t imm);
    ProgramBuilder &selp(Reg dst, PredReg psrc, Reg a, Reg b);
    ProgramBuilder &s2r(Reg dst, SpecialReg sreg);
    ProgramBuilder &sfu(Reg dst, Reg a);

    // Memory emitters; address = reg[addr] + offset (bytes).
    ProgramBuilder &ldGlobal(Reg dst, Reg addr, std::int64_t offset = 0);
    ProgramBuilder &stGlobal(Reg addr, Reg value,
                             std::int64_t offset = 0);
    ProgramBuilder &ldShared(Reg dst, Reg addr, std::int64_t offset = 0);
    ProgramBuilder &stShared(Reg addr, Reg value,
                             std::int64_t offset = 0);

    // Control emitters.
    /** Unconditional branch; reconvergence is irrelevant (no split). */
    ProgramBuilder &bra(const std::string &target);
    /** Branch if pred is true; reconverge at @p reconv. */
    ProgramBuilder &braIf(const std::string &target, PredReg pred,
                          const std::string &reconv);
    /** Branch if pred is false; reconverge at @p reconv. */
    ProgramBuilder &braIfNot(const std::string &target, PredReg pred,
                             const std::string &reconv);
    ProgramBuilder &bar();
    ProgramBuilder &exit();

    /** Number of instructions emitted so far. */
    std::uint32_t pc() const
    {
        return static_cast<std::uint32_t>(code_.size());
    }

    /**
     * Resolve labels and validate. Panics (simulator-author bug) on
     * undefined labels or validation failure.
     */
    Program build();

    /**
     * Resolve labels and validate, reporting failures instead of
     * panicking (for user-supplied sources, e.g. the assembler).
     * On failure @p error is set and an empty Program returned.
     */
    Program tryBuild(std::string &error);

  private:
    struct Fixup
    {
        std::uint32_t pc;
        std::string target;
        std::string reconv; // empty for unconditional branches
    };

    Instruction &emit(Opcode op);

    std::vector<Instruction> code_;
    std::unordered_map<std::string, std::uint32_t> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace cawa

#endif // CAWA_ISA_PROGRAM_BUILDER_HH
