#include "isa/assembler.hh"

#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "isa/program_builder.hh"

namespace cawa
{

namespace
{

/** One parsed operand: a register, predicate, immediate, memory
 *  reference or bare identifier (label / special register). */
struct Operand
{
    enum class Kind { Reg, Pred, Imm, Mem, Ident };
    Kind kind;
    Reg reg = 0;
    PredReg pred = 0;
    std::int64_t imm = 0;
    Reg memBase = 0;        ///< Mem: base register
    std::int64_t memOff = 0;///< Mem: byte offset
    std::string ident;
};

struct ParsedLine
{
    std::string label;          ///< label defined on this line
    std::string mnemonic;
    bool predUsed = false;
    bool predNegate = false;
    PredReg psrc = 0;
    std::vector<Operand> operands;
};

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        b++;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        e--;
    return s.substr(b, e - b);
}

std::string
stripComment(const std::string &line)
{
    const auto pos = line.find_first_of(";#");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

bool
parseInt(const std::string &tok, std::int64_t &out)
{
    if (tok.empty())
        return false;
    std::size_t idx = 0;
    try {
        out = std::stoll(tok, &idx, 0);
    } catch (...) {
        return false;
    }
    return idx == tok.size();
}

bool
parseReg(const std::string &tok, Reg &out)
{
    if (tok.size() < 2 || tok[0] != 'r')
        return false;
    std::int64_t n = 0;
    if (!parseInt(tok.substr(1), n) || n < 0 || n >= kNumRegs)
        return false;
    out = static_cast<Reg>(n);
    return true;
}

bool
parsePred(const std::string &tok, PredReg &out)
{
    if (tok.size() < 2 || tok[0] != 'p')
        return false;
    std::int64_t n = 0;
    if (!parseInt(tok.substr(1), n) || n < 0 || n >= kNumPredRegs)
        return false;
    out = static_cast<PredReg>(n);
    return true;
}

std::optional<Operand>
parseOperand(const std::string &raw)
{
    const std::string tok = trim(raw);
    if (tok.empty())
        return std::nullopt;
    Operand op;
    if (tok.front() == '[') {
        if (tok.back() != ']')
            return std::nullopt;
        // [rN] or [rN + imm] or [rN - imm]
        const std::string inner = trim(tok.substr(1, tok.size() - 2));
        op.kind = Operand::Kind::Mem;
        const auto plus = inner.find_first_of("+-");
        std::string base = trim(
            plus == std::string::npos ? inner : inner.substr(0, plus));
        if (!parseReg(base, op.memBase))
            return std::nullopt;
        if (plus != std::string::npos) {
            std::string off = trim(inner.substr(plus + 1));
            if (!parseInt(off, op.memOff))
                return std::nullopt;
            if (inner[plus] == '-')
                op.memOff = -op.memOff;
        }
        return op;
    }
    if (parseReg(tok, op.reg)) {
        op.kind = Operand::Kind::Reg;
        return op;
    }
    if (parsePred(tok, op.pred)) {
        op.kind = Operand::Kind::Pred;
        return op;
    }
    if (parseInt(tok, op.imm)) {
        op.kind = Operand::Kind::Imm;
        return op;
    }
    op.kind = Operand::Kind::Ident;
    op.ident = tok;
    return op;
}

std::optional<SpecialReg>
parseSpecial(const std::string &name)
{
    static const std::unordered_map<std::string, SpecialReg> map = {
        {"%tid", SpecialReg::TidX},
        {"%ctaid", SpecialReg::CtaIdX},
        {"%ntid", SpecialReg::NTidX},
        {"%nctaid", SpecialReg::NCtaIdX},
        {"%lane", SpecialReg::LaneId},
        {"%warpid", SpecialReg::WarpIdInBlock},
        {"%gtid", SpecialReg::GlobalTid},
    };
    auto it = map.find(name);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

std::optional<CmpOp>
parseCmpSuffix(const std::string &suffix)
{
    static const std::unordered_map<std::string, CmpOp> map = {
        {"eq", CmpOp::Eq}, {"ne", CmpOp::Ne}, {"lt", CmpOp::Lt},
        {"le", CmpOp::Le}, {"gt", CmpOp::Gt}, {"ge", CmpOp::Ge},
    };
    auto it = map.find(suffix);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

bool
parseLine(const std::string &raw, ParsedLine &out, std::string &err)
{
    std::string line = trim(stripComment(raw));
    out = ParsedLine{};
    if (line.empty())
        return true;

    // Label definition.
    const auto colon = line.find(':');
    if (colon != std::string::npos) {
        out.label = trim(line.substr(0, colon));
        if (out.label.empty() ||
            out.label.find(' ') != std::string::npos) {
            err = "bad label";
            return false;
        }
        line = trim(line.substr(colon + 1));
        if (line.empty())
            return true;
    }

    // Predicate guard (@p0 / @!p1).
    if (line.front() == '@') {
        std::size_t i = 1;
        if (i < line.size() && line[i] == '!') {
            out.predNegate = true;
            i++;
        }
        const auto space = line.find(' ', i);
        if (space == std::string::npos) {
            err = "guard without instruction";
            return false;
        }
        if (!parsePred(line.substr(i, space - i), out.psrc)) {
            err = "bad guard predicate";
            return false;
        }
        out.predUsed = true;
        line = trim(line.substr(space));
    }

    // Mnemonic + comma-separated operands.
    const auto space = line.find_first_of(" \t");
    out.mnemonic = space == std::string::npos ? line
                                              : line.substr(0, space);
    if (space != std::string::npos) {
        std::string rest = trim(line.substr(space));
        std::size_t start = 0;
        while (start <= rest.size() && !rest.empty()) {
            // Split on commas outside brackets.
            int depth = 0;
            std::size_t i = start;
            for (; i < rest.size(); ++i) {
                if (rest[i] == '[')
                    depth++;
                else if (rest[i] == ']')
                    depth--;
                else if (rest[i] == ',' && depth == 0)
                    break;
            }
            const auto piece = rest.substr(start, i - start);
            auto op = parseOperand(piece);
            if (!op) {
                err = "bad operand '" + trim(piece) + "'";
                return false;
            }
            out.operands.push_back(*op);
            if (i >= rest.size())
                break;
            start = i + 1;
        }
    }
    return true;
}

struct Expect
{
    bool reg(const Operand &op) const
    {
        return op.kind == Operand::Kind::Reg;
    }
    bool imm(const Operand &op) const
    {
        return op.kind == Operand::Kind::Imm;
    }
    bool pred(const Operand &op) const
    {
        return op.kind == Operand::Kind::Pred;
    }
    bool mem(const Operand &op) const
    {
        return op.kind == Operand::Kind::Mem;
    }
    bool ident(const Operand &op) const
    {
        return op.kind == Operand::Kind::Ident;
    }
};

} // namespace

AssembleResult
assemble(const std::string &source)
{
    AssembleResult result;
    ProgramBuilder b;
    Expect is;
    std::vector<std::string> defined_labels;
    std::vector<std::pair<int, std::string>> referenced_labels;

    std::istringstream iss(source);
    std::string raw;
    int line_no = 0;
    auto fail = [&](const std::string &msg) {
        result.error = "line " + std::to_string(line_no) + ": " + msg;
        return result;
    };

    while (std::getline(iss, raw)) {
        line_no++;
        ParsedLine pl;
        std::string err;
        if (!parseLine(raw, pl, err))
            return fail(err);
        if (!pl.label.empty()) {
            for (const auto &l : defined_labels)
                if (l == pl.label)
                    return fail("duplicate label '" + pl.label + "'");
            defined_labels.push_back(pl.label);
            b.label(pl.label);
        }
        if (pl.mnemonic.empty())
            continue;

        const auto &ops = pl.operands;
        const std::string &m = pl.mnemonic;

        if (pl.predUsed && m != "bra")
            return fail("only bra may be predicated");

        auto bin_or_imm = [&](auto reg_emit, auto imm_emit) -> bool {
            if (ops.size() != 3 || !is.reg(ops[0]) || !is.reg(ops[1]))
                return false;
            if (is.reg(ops[2])) {
                reg_emit(ops[0].reg, ops[1].reg, ops[2].reg);
                return true;
            }
            if (is.imm(ops[2])) {
                imm_emit(ops[0].reg, ops[1].reg, ops[2].imm);
                return true;
            }
            return false;
        };
        auto bin_only = [&](auto reg_emit) -> bool {
            if (ops.size() != 3 || !is.reg(ops[0]) || !is.reg(ops[1]) ||
                !is.reg(ops[2]))
                return false;
            reg_emit(ops[0].reg, ops[1].reg, ops[2].reg);
            return true;
        };
        auto imm_only = [&](auto imm_emit) -> bool {
            if (ops.size() != 3 || !is.reg(ops[0]) || !is.reg(ops[1]) ||
                !is.imm(ops[2]))
                return false;
            imm_emit(ops[0].reg, ops[1].reg, ops[2].imm);
            return true;
        };

        bool ok = true;
        if (m == "nop" && ops.empty()) {
            b.nop();
        } else if (m == "add") {
            ok = bin_or_imm([&](Reg d, Reg a, Reg c) { b.add(d, a, c); },
                            [&](Reg d, Reg a, std::int64_t i) {
                                b.addImm(d, a, i);
                            });
        } else if (m == "sub") {
            ok = bin_only([&](Reg d, Reg a, Reg c) { b.sub(d, a, c); });
        } else if (m == "mul") {
            ok = bin_or_imm([&](Reg d, Reg a, Reg c) { b.mul(d, a, c); },
                            [&](Reg d, Reg a, std::int64_t i) {
                                b.mulImm(d, a, i);
                            });
        } else if (m == "mad") {
            ok = ops.size() == 4 && is.reg(ops[0]) && is.reg(ops[1]) &&
                 is.reg(ops[2]) && is.reg(ops[3]);
            if (ok)
                b.mad(ops[0].reg, ops[1].reg, ops[2].reg, ops[3].reg);
        } else if (m == "min") {
            ok = bin_only([&](Reg d, Reg a, Reg c) { b.min(d, a, c); });
        } else if (m == "max") {
            ok = bin_only([&](Reg d, Reg a, Reg c) { b.max(d, a, c); });
        } else if (m == "and") {
            ok = bin_only([&](Reg d, Reg a, Reg c) { b.and_(d, a, c); });
        } else if (m == "or") {
            ok = bin_only([&](Reg d, Reg a, Reg c) { b.or_(d, a, c); });
        } else if (m == "xor") {
            ok = bin_only([&](Reg d, Reg a, Reg c) { b.xor_(d, a, c); });
        } else if (m == "shl") {
            ok = imm_only([&](Reg d, Reg a, std::int64_t i) {
                b.shlImm(d, a, i);
            });
        } else if (m == "shr") {
            ok = imm_only([&](Reg d, Reg a, std::int64_t i) {
                b.shrImm(d, a, i);
            });
        } else if (m == "mov") {
            if (ops.size() == 2 && is.reg(ops[0]) && is.reg(ops[1])) {
                b.mov(ops[0].reg, ops[1].reg);
            } else if (ops.size() == 2 && is.reg(ops[0]) &&
                       is.imm(ops[1])) {
                b.movImm(ops[0].reg, ops[1].imm);
            } else {
                ok = false;
            }
        } else if (m == "sfu") {
            ok = ops.size() == 2 && is.reg(ops[0]) && is.reg(ops[1]);
            if (ok)
                b.sfu(ops[0].reg, ops[1].reg);
        } else if (m == "s2r") {
            ok = ops.size() == 2 && is.reg(ops[0]) && is.ident(ops[1]);
            if (ok) {
                const auto sreg = parseSpecial(ops[1].ident);
                if (!sreg)
                    return fail("unknown special register '" +
                                ops[1].ident + "'");
                b.s2r(ops[0].reg, *sreg);
            }
        } else if (m == "selp") {
            ok = ops.size() == 4 && is.reg(ops[0]) && is.pred(ops[1]) &&
                 is.reg(ops[2]) && is.reg(ops[3]);
            if (ok)
                b.selp(ops[0].reg, ops[1].pred, ops[2].reg,
                       ops[3].reg);
        } else if (m.rfind("setp.", 0) == 0) {
            const auto cmp = parseCmpSuffix(m.substr(5));
            if (!cmp)
                return fail("unknown compare '" + m + "'");
            if (ops.size() == 3 && is.pred(ops[0]) && is.reg(ops[1]) &&
                is.reg(ops[2])) {
                b.setp(ops[0].pred, *cmp, ops[1].reg, ops[2].reg);
            } else if (ops.size() == 3 && is.pred(ops[0]) &&
                       is.reg(ops[1]) && is.imm(ops[2])) {
                b.setpImm(ops[0].pred, *cmp, ops[1].reg, ops[2].imm);
            } else {
                ok = false;
            }
        } else if (m == "ld.global" || m == "ld.shared") {
            ok = ops.size() == 2 && is.reg(ops[0]) && is.mem(ops[1]);
            if (ok) {
                if (m == "ld.global")
                    b.ldGlobal(ops[0].reg, ops[1].memBase,
                               ops[1].memOff);
                else
                    b.ldShared(ops[0].reg, ops[1].memBase,
                               ops[1].memOff);
            }
        } else if (m == "st.global" || m == "st.shared") {
            ok = ops.size() == 2 && is.mem(ops[0]) && is.reg(ops[1]);
            if (ok) {
                if (m == "st.global")
                    b.stGlobal(ops[0].memBase, ops[1].reg,
                               ops[0].memOff);
                else
                    b.stShared(ops[0].memBase, ops[1].reg,
                               ops[0].memOff);
            }
        } else if (m == "bra") {
            if (pl.predUsed) {
                ok = ops.size() == 2 && is.ident(ops[0]) &&
                     is.ident(ops[1]);
                if (ok) {
                    if (pl.predNegate)
                        b.braIfNot(ops[0].ident, pl.psrc,
                                   ops[1].ident);
                    else
                        b.braIf(ops[0].ident, pl.psrc, ops[1].ident);
                }
            } else {
                ok = ops.size() == 1 && is.ident(ops[0]);
                if (ok)
                    b.bra(ops[0].ident);
            }
            for (const auto &op : ops)
                if (is.ident(op))
                    referenced_labels.emplace_back(line_no, op.ident);
        } else if (m == "bar" && ops.empty()) {
            b.bar();
        } else if (m == "exit" && ops.empty()) {
            b.exit();
        } else {
            return fail("unknown instruction '" + m + "'");
        }
        if (!ok)
            return fail("bad operands for '" + m + "'");
    }

    for (const auto &[ref_line, label] : referenced_labels) {
        bool found = false;
        for (const auto &l : defined_labels)
            found = found || l == label;
        if (!found) {
            line_no = ref_line;
            return fail("undefined label '" + label + "'");
        }
    }
    std::string build_error;
    result.program = b.tryBuild(build_error);
    if (!build_error.empty())
        result.error = build_error;
    return result;
}

} // namespace cawa
