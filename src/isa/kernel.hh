/**
 * @file
 * Kernel launch descriptor: a program plus its grid/block geometry
 * and per-thread resource usage (used for SM occupancy limits).
 */

#ifndef CAWA_ISA_KERNEL_HH
#define CAWA_ISA_KERNEL_HH

#include <string>

#include "isa/program.hh"

namespace cawa
{

struct KernelInfo
{
    std::string name;
    Program program;
    int gridDim = 1;        ///< thread blocks in the grid
    int blockDim = 32;      ///< threads per block
    int regsPerThread = 16; ///< occupancy: register file footprint
    int smemPerBlock = 0;   ///< occupancy: shared memory footprint

    int
    warpsPerBlock(int warp_size) const
    {
        return (blockDim + warp_size - 1) / warp_size;
    }

    int totalThreads() const { return gridDim * blockDim; }
};

} // namespace cawa

#endif // CAWA_ISA_KERNEL_HH
