/**
 * @file
 * A validated kernel program: the unit of code a warp executes.
 */

#ifndef CAWA_ISA_PROGRAM_HH
#define CAWA_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "common/sim_assert.hh"
#include "isa/instruction.hh"

namespace cawa
{

/**
 * An immutable sequence of instructions with control-flow metadata.
 * Construct through ProgramBuilder, which patches labels and runs
 * validate().
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::vector<Instruction> code);

    // Inline: this is the instruction fetch, executed once per
    // issued instruction and once per nextInst refresh.
    const Instruction &at(std::uint32_t pc) const
    {
        sim_assert(pc < code_.size());
        return code_[pc];
    }

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(code_.size());
    }
    bool empty() const { return code_.empty(); }

    /**
     * Check structural invariants: non-empty, ends in Exit, branch
     * targets and reconvergence points in range, reconvergence point
     * of a forward branch not before the branch.
     *
     * @return empty string if valid, else a description of the defect.
     */
    std::string validate() const;

    /** Multi-line disassembly listing. */
    std::string disassemble() const;

  private:
    std::vector<Instruction> code_;
};

} // namespace cawa

#endif // CAWA_ISA_PROGRAM_HH
