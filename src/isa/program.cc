#include "isa/program.hh"

#include <sstream>

#include "common/sim_assert.hh"

namespace cawa
{

Program::Program(std::vector<Instruction> code)
    : code_(std::move(code))
{
    for (Instruction &inst : code_)
        inst.deriveMasks();
}

std::string
Program::validate() const
{
    if (code_.empty())
        return "program is empty";
    if (code_.back().op != Opcode::Exit)
        return "program does not end in exit";
    for (std::uint32_t pc = 0; pc < code_.size(); ++pc) {
        const Instruction &inst = code_[pc];
        if (inst.op == Opcode::Bra) {
            if (inst.target >= code_.size())
                return "branch target out of range at pc " +
                       std::to_string(pc);
            if (inst.reconv > code_.size())
                return "reconvergence point out of range at pc " +
                       std::to_string(pc);
            const bool backward = inst.target <= pc;
            if (!backward && inst.reconv <= pc)
                return "forward branch reconverges before branch at pc " +
                       std::to_string(pc);
        }
        if (inst.writesReg() && inst.dst >= kNumRegs)
            return "register index out of range at pc " +
                   std::to_string(pc);
    }
    return "";
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::uint32_t pc = 0; pc < code_.size(); ++pc) {
        const Instruction &inst = code_[pc];
        oss << pc << ":\t" << opcodeName(inst.op);
        if (inst.op == Opcode::Bra) {
            if (inst.predUsed)
                oss << (inst.predNegate ? " @!p" : " @p")
                    << int{inst.psrc};
            oss << " -> " << inst.target << " (reconv " << inst.reconv
                << ")";
        } else if (inst.writesReg()) {
            oss << " r" << int{inst.dst};
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace cawa
