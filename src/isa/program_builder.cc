#include "isa/program_builder.hh"

#include "common/sim_assert.hh"

namespace cawa
{

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    sim_assert(!labels_.contains(name));
    labels_[name] = pc();
    return *this;
}

Instruction &
ProgramBuilder::emit(Opcode op)
{
    Instruction inst;
    inst.op = op;
    code_.push_back(inst);
    return code_.back();
}

ProgramBuilder &
ProgramBuilder::nop()
{
    emit(Opcode::Nop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::add(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Add);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::addImm(Reg dst, Reg a, std::int64_t imm)
{
    auto &i = emit(Opcode::AddImm);
    i.dst = dst; i.src0 = a; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::sub(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Sub);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::mul(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Mul);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::mulImm(Reg dst, Reg a, std::int64_t imm)
{
    auto &i = emit(Opcode::MulImm);
    i.dst = dst; i.src0 = a; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::mad(Reg dst, Reg a, Reg b, Reg c)
{
    auto &i = emit(Opcode::Mad);
    i.dst = dst; i.src0 = a; i.src1 = b; i.src2 = c;
    return *this;
}

ProgramBuilder &
ProgramBuilder::min(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Min);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::max(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Max);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::and_(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::And);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::or_(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Or);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::xor_(Reg dst, Reg a, Reg b)
{
    auto &i = emit(Opcode::Xor);
    i.dst = dst; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::shlImm(Reg dst, Reg a, std::int64_t imm)
{
    auto &i = emit(Opcode::ShlImm);
    i.dst = dst; i.src0 = a; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::shrImm(Reg dst, Reg a, std::int64_t imm)
{
    auto &i = emit(Opcode::ShrImm);
    i.dst = dst; i.src0 = a; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::mov(Reg dst, Reg src)
{
    auto &i = emit(Opcode::Mov);
    i.dst = dst; i.src0 = src;
    return *this;
}

ProgramBuilder &
ProgramBuilder::movImm(Reg dst, std::int64_t imm)
{
    auto &i = emit(Opcode::MovImm);
    i.dst = dst; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::setp(PredReg pdst, CmpOp cmp, Reg a, Reg b)
{
    auto &i = emit(Opcode::Setp);
    i.pdst = pdst; i.cmp = cmp; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::setpImm(PredReg pdst, CmpOp cmp, Reg a, std::int64_t imm)
{
    auto &i = emit(Opcode::SetpImm);
    i.pdst = pdst; i.cmp = cmp; i.src0 = a; i.imm = imm;
    return *this;
}

ProgramBuilder &
ProgramBuilder::selp(Reg dst, PredReg psrc, Reg a, Reg b)
{
    auto &i = emit(Opcode::Selp);
    i.dst = dst; i.psrc = psrc; i.src0 = a; i.src1 = b;
    return *this;
}

ProgramBuilder &
ProgramBuilder::s2r(Reg dst, SpecialReg sreg)
{
    auto &i = emit(Opcode::S2R);
    i.dst = dst;
    i.imm = static_cast<std::int64_t>(sreg);
    return *this;
}

ProgramBuilder &
ProgramBuilder::sfu(Reg dst, Reg a)
{
    auto &i = emit(Opcode::Sfu);
    i.dst = dst; i.src0 = a;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldGlobal(Reg dst, Reg addr, std::int64_t offset)
{
    auto &i = emit(Opcode::LdGlobal);
    i.dst = dst; i.src0 = addr; i.imm = offset;
    return *this;
}

ProgramBuilder &
ProgramBuilder::stGlobal(Reg addr, Reg value, std::int64_t offset)
{
    auto &i = emit(Opcode::StGlobal);
    i.src0 = addr; i.src1 = value; i.imm = offset;
    return *this;
}

ProgramBuilder &
ProgramBuilder::ldShared(Reg dst, Reg addr, std::int64_t offset)
{
    auto &i = emit(Opcode::LdShared);
    i.dst = dst; i.src0 = addr; i.imm = offset;
    return *this;
}

ProgramBuilder &
ProgramBuilder::stShared(Reg addr, Reg value, std::int64_t offset)
{
    auto &i = emit(Opcode::StShared);
    i.src0 = addr; i.src1 = value; i.imm = offset;
    return *this;
}

ProgramBuilder &
ProgramBuilder::bra(const std::string &target)
{
    emit(Opcode::Bra);
    fixups_.push_back({pc() - 1, target, ""});
    return *this;
}

ProgramBuilder &
ProgramBuilder::braIf(const std::string &target, PredReg pred,
                      const std::string &reconv)
{
    auto &i = emit(Opcode::Bra);
    i.predUsed = true;
    i.psrc = pred;
    fixups_.push_back({pc() - 1, target, reconv});
    return *this;
}

ProgramBuilder &
ProgramBuilder::braIfNot(const std::string &target, PredReg pred,
                         const std::string &reconv)
{
    auto &i = emit(Opcode::Bra);
    i.predUsed = true;
    i.predNegate = true;
    i.psrc = pred;
    fixups_.push_back({pc() - 1, target, reconv});
    return *this;
}

ProgramBuilder &
ProgramBuilder::bar()
{
    emit(Opcode::Bar);
    return *this;
}

ProgramBuilder &
ProgramBuilder::exit()
{
    emit(Opcode::Exit);
    return *this;
}

Program
ProgramBuilder::tryBuild(std::string &error)
{
    error.clear();
    for (const auto &fix : fixups_) {
        auto target_it = labels_.find(fix.target);
        if (target_it == labels_.end()) {
            error = "undefined branch target label '" + fix.target +
                    "'";
            return Program{};
        }
        code_[fix.pc].target = target_it->second;
        if (!fix.reconv.empty()) {
            auto reconv_it = labels_.find(fix.reconv);
            if (reconv_it == labels_.end()) {
                error = "undefined reconvergence label '" +
                        fix.reconv + "'";
                return Program{};
            }
            code_[fix.pc].reconv = reconv_it->second;
        } else {
            // Unconditional branch never splits the warp; record the
            // target itself so validate() stays happy.
            code_[fix.pc].reconv = target_it->second;
        }
    }
    Program prog(std::move(code_));
    error = prog.validate();
    if (!error.empty())
        return Program{};
    return prog;
}

Program
ProgramBuilder::build()
{
    std::string error;
    Program prog = tryBuild(error);
    if (!error.empty())
        sim_panic(error.c_str());
    return prog;
}

} // namespace cawa
