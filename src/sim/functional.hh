/**
 * @file
 * Functional (timing-free) reference interpreter for kernel programs.
 *
 * Executes every thread of every block scalar-style, interleaving
 * threads one instruction at a time with bar.sync acting as a phase
 * barrier. For race-free kernels (each thread writes only its own
 * cells between barriers) this produces the architecturally-defined
 * result, which workloads use as the verification reference and the
 * property tests use to cross-check the SIMT pipeline.
 */

#ifndef CAWA_SIM_FUNCTIONAL_HH
#define CAWA_SIM_FUNCTIONAL_HH

#include "isa/kernel.hh"
#include "mem/memory_image.hh"

namespace cawa
{

/**
 * Run @p kernel functionally over @p mem (blocks sequential, threads
 * interleaved). Panics on deadlock (a barrier no thread can reach) or
 * on a thread exceeding @p max_steps instructions.
 */
void runFunctional(const KernelInfo &kernel, MemoryImage &mem,
                   std::uint64_t max_steps = 10'000'000);

} // namespace cawa

#endif // CAWA_SIM_FUNCTIONAL_HH
