#include "sim/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include <poll.h>
#include <unistd.h>

#include "common/sim_error.hh"
#include "sim/report_json.hh"

namespace cawa
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

Clock::time_point
after(double seconds)
{
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(seconds));
}

bool
fileReadable(const std::string &path)
{
    return !path.empty() && access(path.c_str(), R_OK) == 0;
}

/**
 * The job-result frame is resultFrameJson() with index/epoch routing
 * fields spliced in, so the result payload round-trips through the
 * exact same serializer the per-job supervisor proved byte-exact.
 */
std::string
jobResultFrame(std::size_t index, int epoch, const SweepResult &result)
{
    static const char kResultHead[] = "{\"type\":\"result\"";
    const std::string base = resultFrameJson(result, 1);
    return "{\"type\":\"job-result\",\"index\":" +
           std::to_string(index) +
           ",\"epoch\":" + std::to_string(epoch) +
           base.substr(sizeof(kResultHead) - 1);
}

} // namespace

std::vector<std::vector<std::size_t>>
shardSplit(std::size_t numJobs, int shards)
{
    const int n = std::max(1, shards);
    std::vector<std::vector<std::size_t>> split(
        static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < numJobs; ++i)
        split[i % static_cast<std::size_t>(n)].push_back(i);
    return split;
}

// ---------------------------------------------------------------------
// Runner side
// ---------------------------------------------------------------------

namespace
{

/// Set by the runner's SIGTERM/SIGINT handler and by a shutdown
/// control frame; wired into each job's cancelFlag.
std::atomic<bool> g_runnerCancel{false};

extern "C" void
runnerShutdownSignal(int)
{
    g_runnerCancel.store(true, std::memory_order_relaxed);
}

/** Serialized frame writes: control/heartbeat thread vs job thread. */
struct RunnerSink
{
    int fd;
    std::mutex mutex;

    bool send(const std::string &payload)
    {
        std::lock_guard<std::mutex> lock(mutex);
        return writeFrame(fd, payload);
    }
};

/** Queue + control state shared between the two runner threads. */
struct RunnerState
{
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<ShardAssignment> queue;
    std::unordered_set<std::size_t> revoked;
    bool shutdown = false;
};

/** Sleep in 10 ms slices so cancel/shutdown stay prompt. Returns
 *  false when the sleep was interrupted. */
bool
chaosSleep(double seconds, RunnerState &state)
{
    const auto until = after(seconds);
    while (Clock::now() < until) {
        if (g_runnerCancel.load(std::memory_order_relaxed))
            return false;
        {
            std::lock_guard<std::mutex> lock(state.mutex);
            if (state.shutdown)
                return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
}

} // namespace

int
runShardRunner(const std::vector<SweepJob> &matrix,
               const std::vector<ShardAssignment> &initial, int inFd,
               int outFd, const ShardRunnerOptions &opt,
               const ShardRunnerChaos &chaos)
{
    g_runnerCancel.store(false, std::memory_order_relaxed);
    std::signal(SIGTERM, runnerShutdownSignal);
    std::signal(SIGINT, runnerShutdownSignal);
    // writeFrame() is SIGPIPE-safe on its own, but job code may write
    // elsewhere; a dead coordinator must surface as failed writes.
    std::signal(SIGPIPE, SIG_IGN);

    RunnerSink sink{outFd, {}};
    RunnerState state;
    for (const ShardAssignment &a : initial)
        state.queue.push_back(a);

    // Monotone progress counter the coordinator rates shards by:
    // completed jobs in the high half, the in-flight job's latest
    // checkpoint cycle (saturated) in the low half.
    std::atomic<std::uint64_t> progress{0};
    std::uint64_t completed = 0;

    // Shard journal: best-effort. The coordinator's master journal is
    // authoritative; this one only feeds the multi-journal merge.
    JournalWriter journal;
    if (!opt.journalPath.empty()) {
        try {
            journal.open(opt.journalPath);
        } catch (const std::exception &) {
            // Locked or unwritable: run without a shard journal.
        }
    }

    // Control + heartbeat thread: liveness on a timer plus
    // assign/revoke/shutdown frames from the coordinator.
    std::atomic<bool> ctrlStop{false};
    std::thread ctrl([&] {
        if (inFd >= 0)
            setNonBlocking(inFd);
        FrameReader reader;
        bool inOpen = inFd >= 0;
        const auto interval = std::chrono::duration<double>(
            std::max(0.01, opt.heartbeatIntervalSec));
        auto nextBeat = Clock::now();
        std::uint64_t seq = 0;
        while (!ctrlStop.load(std::memory_order_relaxed)) {
            if (inOpen) {
                pollfd pfd{inFd, POLLIN, 0};
                poll(&pfd, 1, 10);
                if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
                    const int got = readAvailable(inFd, reader);
                    std::string payload;
                    while (reader.next(payload)) {
                        try {
                            const JsonValue frame = parseJson(payload);
                            const std::string type =
                                frame.has("type")
                                    ? frame.at("type").asString()
                                    : std::string();
                            std::lock_guard<std::mutex> lock(
                                state.mutex);
                            if (type == "assign") {
                                for (const JsonValue &j :
                                     frame.at("jobs").items()) {
                                    ShardAssignment a;
                                    a.index = static_cast<std::size_t>(
                                        j.at("index").asI64());
                                    a.epoch = static_cast<int>(
                                        j.at("epoch").asI64());
                                    if (j.has("resume"))
                                        a.resume =
                                            j.at("resume").asString();
                                    state.revoked.erase(a.index);
                                    state.queue.push_back(a);
                                }
                            } else if (type == "revoke") {
                                for (const JsonValue &j :
                                     frame.at("jobs").items()) {
                                    const auto idx =
                                        static_cast<std::size_t>(
                                            j.asI64());
                                    state.revoked.insert(idx);
                                    state.queue.erase(
                                        std::remove_if(
                                            state.queue.begin(),
                                            state.queue.end(),
                                            [idx](
                                                const ShardAssignment
                                                    &a) {
                                                return a.index == idx;
                                            }),
                                        state.queue.end());
                                }
                            } else if (type == "shutdown") {
                                state.shutdown = true;
                                g_runnerCancel.store(
                                    true, std::memory_order_relaxed);
                            }
                        } catch (const std::exception &) {
                            // Garbage on the control pipe is the
                            // coordinator's bug; ignore the frame.
                        }
                    }
                    state.cv.notify_all();
                    if (got == 0) { // EOF: coordinator is gone
                        inOpen = false;
                        std::lock_guard<std::mutex> lock(state.mutex);
                        state.shutdown = true;
                        g_runnerCancel.store(
                            true, std::memory_order_relaxed);
                        state.cv.notify_all();
                    }
                }
            } else {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            const auto now = Clock::now();
            if (now >= nextBeat) {
                std::size_t depth;
                {
                    std::lock_guard<std::mutex> lock(state.mutex);
                    depth = state.queue.size();
                }
                sink.send(
                    "{\"type\":\"heartbeat\",\"seq\":" +
                    std::to_string(seq++) + ",\"progress\":" +
                    std::to_string(
                        progress.load(std::memory_order_relaxed)) +
                    ",\"queue\":" + std::to_string(depth) + "}");
                nextBeat =
                    now + std::chrono::duration_cast<Clock::duration>(
                              interval);
            }
        }
    });
    auto stopCtrl = [&] {
        ctrlStop.store(true, std::memory_order_relaxed);
        state.cv.notify_all();
        ctrl.join();
    };

    bool stalled = false;
    for (;;) {
        // Chaos: stall between jobs with the queue intact (and the
        // heartbeat thread alive), so the coordinator's stall rule --
        // not the hang detector -- is what fires.
        if (chaos.stallAfterResults >= 0 && !stalled &&
            completed ==
                static_cast<std::uint64_t>(chaos.stallAfterResults)) {
            stalled = true;
            chaosSleep(chaos.stallSec, state);
        }

        ShardAssignment a;
        {
            std::unique_lock<std::mutex> lock(state.mutex);
            while (state.queue.empty() && !state.shutdown &&
                   !g_runnerCancel.load(std::memory_order_relaxed))
                state.cv.wait_for(lock,
                                  std::chrono::milliseconds(50));
            if (state.shutdown ||
                g_runnerCancel.load(std::memory_order_relaxed))
                break;
            a = state.queue.front();
            state.queue.pop_front();
            if (state.revoked.count(a.index)) {
                state.revoked.erase(a.index);
                continue;
            }
        }

        if (chaos.slowPerJobSec > 0.0 &&
            !chaosSleep(chaos.slowPerJobSec, state))
            break;

        sink.send("{\"type\":\"job-start\",\"index\":" +
                  std::to_string(a.index) +
                  ",\"epoch\":" + std::to_string(a.epoch) + "}");

        SweepJob job = matrix[a.index];
        if (fileReadable(a.resume))
            job.resumeFromCheckpoint = a.resume;
        job.cfg.cancelFlag = &g_runnerCancel;
        const std::size_t index = a.index;
        const int epoch = a.epoch;
        const std::uint64_t base = completed << 32;
        job.cfg.checkpointWrittenHook = [&, index,
                                         epoch](const std::string &path,
                                                Cycle cycle) {
            const std::uint64_t low =
                std::min<std::uint64_t>(cycle, 0xffffffffull);
            progress.store(base | low, std::memory_order_relaxed);
            sink.send("{\"type\":\"checkpoint-written\",\"index\":" +
                      std::to_string(index) +
                      ",\"epoch\":" + std::to_string(epoch) +
                      ",\"path\":" + frameJsonQuote(path) +
                      ",\"cycle\":" + std::to_string(cycle) + "}");
        };

        SweepResult result;
        try {
            result = runSweepJob(job, opt.jobMaxAttempts);
        } catch (const std::exception &e) {
            result.error = e.what();
            result.attempts = std::max(result.attempts, 1);
        }
        // As in runSweepWorker: a bad_alloc under the RLIMIT_AS cap
        // is the first-class "oom", not an ordinary error.
        if (result.failureReason.empty() &&
            result.error.find("bad_alloc") != std::string::npos)
            result.failureReason = "oom";

        // Chaos: hold this result (the zombie scenario). A shutdown
        // frame releases the hold so the stale frame is still sent
        // and the coordinator can prove it fenced it.
        if (chaos.holdAfterResults >= 0 &&
            completed ==
                static_cast<std::uint64_t>(chaos.holdAfterResults))
            chaosSleep(chaos.holdResultSec, state);

        sink.send(jobResultFrame(a.index, a.epoch, result));
        if (journal.isOpen()) {
            try {
                JournalEntry entry =
                    makeJournalEntry(matrix[a.index].name, result);
                entry.epoch = a.epoch;
                entry.shard = opt.shard;
                journal.append(entry);
            } catch (const std::exception &) {
                // Best-effort: keep running without the journal.
            }
        }

        ++completed;
        progress.store(completed << 32, std::memory_order_relaxed);

        if (chaos.exitAfterResults >= 0 &&
            completed ==
                static_cast<std::uint64_t>(chaos.exitAfterResults)) {
            // Simulated crash: no shutdown handshake, no reaped
            // heartbeat thread -- just die with work on the queue.
            _exit(chaos.exitCode);
        }

        {
            std::lock_guard<std::mutex> lock(state.mutex);
            if (state.queue.empty())
                sink.send("{\"type\":\"shard-idle\"}");
        }
    }

    stopCtrl();
    return 0;
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

namespace
{

enum class ShardState { Unspawned, Running, Backoff, Dead };

struct JobState
{
    SweepJob job;
    int epoch = 1;
    int owner = -1;
    bool started = false;   ///< under the current epoch
    bool finalized = false;
    int priorAttempts = 0;  ///< executions lost to steals/deaths
    std::string lastCheckpoint;
    SweepResult result;
};

struct ShardSlot
{
    ShardState state = ShardState::Unspawned;
    std::vector<std::size_t> assigned; ///< owned, unfinalized indices

    pid_t pid = -1;
    int fromFd = -1;
    int toFd = -1;
    FrameReader reader;
    int spawnCount = 0;
    bool zombie = false; ///< stall-stolen: alive, ignored, fenced

    Clock::time_point startedAt, lastBeat, lastAdvance, readyAt,
        termAt;
    bool termSent = false;
    std::string killReason;
    std::string frameError;
    std::uint64_t lastProgress = 0;
    std::deque<std::pair<Clock::time_point, std::uint64_t>> samples;
    int finalizedCount = 0; ///< results finalized from this slot
    Clock::time_point lastSteal;
};

} // namespace

ShardCoordinator::ShardCoordinator(CoordinatorOptions opt)
    : opt_(std::move(opt))
{
    if (opt_.shards < 1)
        opt_.shards = 1;
    if (opt_.heartbeatIntervalSec <= 0.0)
        opt_.heartbeatIntervalSec = 0.25;
    if (opt_.heartbeatMissLimit < 1)
        opt_.heartbeatMissLimit = 1;
    if (opt_.maxRespawnsPerShard < 0)
        opt_.maxRespawnsPerShard = 0;
    if (opt_.jobMaxAttempts < 1)
        opt_.jobMaxAttempts = 1;
}

std::vector<SweepResult>
ShardCoordinator::run(std::vector<SweepJob> jobs,
                      const SweepEngine::JobDone &on_done)
{
    if (!processIsolationAvailable())
        throw SimError(SimErrorKind::Config,
                       "process isolation is not available on this "
                       "platform; run the in-process sweep path");
    stats_ = CoordinatorStats();

    const std::size_t numJobs = jobs.size();
    std::vector<JobState> js(numJobs);
    for (std::size_t i = 0; i < numJobs; ++i)
        js[i].job = std::move(jobs[i]);

    const int numShards = std::max(
        1, std::min<int>(opt_.shards, static_cast<int>(std::max<
                                          std::size_t>(1, numJobs))));
    std::vector<ShardSlot> slots(
        static_cast<std::size_t>(numShards));
    {
        const auto split = shardSplit(numJobs, numShards);
        for (int k = 0; k < numShards; ++k) {
            slots[k].assigned = split[k];
            for (const std::size_t i : split[k])
                js[i].owner = k;
        }
    }

    const double hungAfterSec =
        opt_.heartbeatIntervalSec * opt_.heartbeatMissLimit;

    auto emit = [&](int shard, const std::string &event,
                    const std::string &detail) {
        if (opt_.onEvent)
            opt_.onEvent(shard, event, detail);
    };

    std::size_t done = 0;
    int retriesUsed = 0;
    bool cancelled = false;
    std::vector<bool> chaosFired(opt_.chaos.size(), false);
    std::vector<std::pair<Clock::time_point, pid_t>> pendingConts;

    auto resumePathFor = [&](std::size_t i) -> std::string {
        if (fileReadable(js[i].lastCheckpoint))
            return js[i].lastCheckpoint;
        if (fileReadable(js[i].job.cfg.checkpointPath))
            return js[i].job.cfg.checkpointPath;
        if (!opt_.checkpointDir.empty()) {
            const std::string conventional =
                opt_.checkpointDir + "/" + js[i].job.name + ".ckpt";
            if (fileReadable(conventional))
                return conventional;
        }
        return {};
    };

    auto assignmentsFor =
        [&](const std::vector<std::size_t> &indices) {
            std::vector<ShardAssignment> out;
            out.reserve(indices.size());
            for (const std::size_t i : indices) {
                ShardAssignment a;
                a.index = i;
                a.epoch = js[i].epoch;
                a.resume = resumePathFor(i);
                out.push_back(std::move(a));
            }
            return out;
        };

    auto fireChaos = [&](int k) {
        ShardSlot &s = slots[k];
        if (s.state != ShardState::Running || s.pid < 0)
            return;
        for (std::size_t c = 0; c < opt_.chaos.size(); ++c) {
            const CoordinatorChaosAction &action = opt_.chaos[c];
            if (chaosFired[c] || action.shard != k ||
                s.finalizedCount < action.afterResults)
                continue;
            chaosFired[c] = true;
            if (action.kind == CoordinatorChaosAction::Kind::Kill) {
                signalChild(s.pid, action.signo);
                emit(k, "chaos-kill",
                     "signal " + std::to_string(action.signo));
            } else {
                signalChild(s.pid, SIGSTOP);
                emit(k, "chaos-stop", "");
                if (action.contAfterSec >= 0.0)
                    pendingConts.emplace_back(
                        after(action.contAfterSec), s.pid);
            }
        }
    };

    auto spawnShard = [&](int k) {
        ShardSlot &s = slots[k];
        if (s.assigned.empty()) {
            s.state = ShardState::Dead;
            return;
        }
        ++s.spawnCount;
        const std::vector<ShardAssignment> initial =
            assignmentsFor(s.assigned);

        ChildProcess child;
        if (!opt_.workerArgv0.empty()) {
            if (!opt_.shardSpec)
                throw SimError(SimErrorKind::Config,
                               "CoordinatorOptions.workerArgv0 set "
                               "without a shardSpec serializer");
            child = spawnWorker({opt_.workerArgv0, "--shard-worker"},
                                opt_.limits);
            writeFrame(child.toChild, opt_.shardSpec(k, initial));
        } else {
            ShardRunnerOptions ropt;
            ropt.heartbeatIntervalSec = opt_.heartbeatIntervalSec;
            ropt.jobMaxAttempts = opt_.jobMaxAttempts;
            ropt.shard = k;
            if (!opt_.journalBasePath.empty())
                ropt.journalPath =
                    shardJournalPath(opt_.journalBasePath, k);
            ShardRunnerChaos chaos;
            if (opt_.runnerChaos)
                chaos = opt_.runnerChaos(k, s.spawnCount);
            // The matrix closures are inherited by the fork; only
            // this shard's assignment list is passed explicitly.
            std::vector<SweepJob> matrix;
            matrix.reserve(numJobs);
            for (const JobState &j : js)
                matrix.push_back(j.job);
            child = forkWorker(
                [&matrix, &initial, ropt, chaos](int inFd, int outFd) {
                    return runShardRunner(matrix, initial, inFd,
                                          outFd, ropt, chaos);
                },
                opt_.limits);
        }
        setNonBlocking(child.fromChild);

        s.pid = child.pid;
        s.fromFd = child.fromChild;
        s.toFd = child.toChild;
        s.reader = FrameReader();
        s.zombie = false;
        s.startedAt = s.lastBeat = s.lastAdvance = Clock::now();
        s.termSent = false;
        s.killReason.clear();
        s.frameError.clear();
        s.lastProgress = 0;
        s.samples.clear();
        s.state = ShardState::Running;
        emit(k, "spawn",
             std::to_string(s.assigned.size()) + " jobs, attempt " +
                 std::to_string(s.spawnCount));
        fireChaos(k);
    };

    auto finalize = [&](std::size_t i, SweepResult r) {
        JobState &j = js[i];
        j.result = std::move(r);
        j.result.attempts += j.priorAttempts;
        j.finalized = true;
        ++done;
        const int owner = j.owner;
        if (owner >= 0) {
            auto &owned = slots[owner].assigned;
            owned.erase(std::remove(owned.begin(), owned.end(), i),
                        owned.end());
            ++slots[owner].finalizedCount;
        }
        if (opt_.journal) {
            JournalEntry entry =
                makeJournalEntry(j.job.name, j.result);
            entry.epoch = j.epoch;
            entry.shard = owner;
            opt_.journal->append(entry);
        }
        emit(owner, "result",
             j.job.name + ": " +
                 (j.result.ok() ? std::string("completed")
                                : (j.result.failureReason.empty()
                                       ? std::string("error")
                                       : j.result.failureReason)));
        if (on_done)
            on_done(i, j.result);
        if (owner >= 0)
            fireChaos(owner);
    };

    /** Move @p indices (bumping epochs) onto @p recipients, sending
     *  assign frames to the ones that are already running. */
    auto reassign = [&](const std::vector<std::size_t> &indices,
                        const std::vector<int> &recipients) {
        std::size_t r = 0;
        std::vector<std::vector<std::size_t>> perRecipient(
            recipients.size());
        for (const std::size_t i : indices) {
            JobState &j = js[i];
            ++j.epoch;
            if (j.started)
                ++j.priorAttempts;
            j.started = false;
            const int to = recipients[r % recipients.size()];
            perRecipient[r % recipients.size()].push_back(i);
            j.owner = to;
            ++r;
            ++stats_.stolenJobs;
        }
        for (std::size_t k = 0; k < recipients.size(); ++k) {
            if (perRecipient[k].empty())
                continue;
            ShardSlot &slot = slots[recipients[k]];
            for (const std::size_t i : perRecipient[k])
                slot.assigned.push_back(i);
            if (slot.state == ShardState::Running &&
                slot.toFd >= 0) {
                std::string frame = "{\"type\":\"assign\",\"jobs\":[";
                bool first = true;
                for (const ShardAssignment &a :
                     assignmentsFor(perRecipient[k])) {
                    if (!first)
                        frame += ',';
                    first = false;
                    frame += "{\"index\":" + std::to_string(a.index) +
                             ",\"epoch\":" + std::to_string(a.epoch) +
                             ",\"resume\":" +
                             frameJsonQuote(a.resume) + "}";
                }
                frame += "]}";
                writeFrame(slot.toFd, frame);
            }
            // Backoff/unspawned recipients pick the jobs up from
            // their assigned list at (re)spawn time.
        }
    };

    auto liveRecipients = [&](int except) {
        std::vector<int> out;
        for (int k = 0; k < numShards; ++k) {
            if (k == except || slots[k].zombie)
                continue;
            if (slots[k].state == ShardState::Running)
                out.push_back(k);
        }
        // Prefer idle and lightly loaded recipients.
        std::stable_sort(out.begin(), out.end(), [&](int a, int b) {
            return slots[a].assigned.size() <
                   slots[b].assigned.size();
        });
        return out;
    };

    auto respawnRecipients = [&](int except) {
        std::vector<int> out = liveRecipients(except);
        for (int k = 0; k < numShards; ++k)
            if (k != except && !slots[k].zombie &&
                slots[k].state == ShardState::Backoff)
                out.push_back(k);
        return out;
    };

    auto handleFrame = [&](int k, const std::string &payload) {
        ShardSlot &s = slots[k];
        s.lastBeat = Clock::now();
        try {
            const JsonValue frame = parseJson(payload);
            const std::string type = frame.has("type")
                                         ? frame.at("type").asString()
                                         : std::string();
            if (type == "heartbeat") {
                const std::uint64_t p =
                    frame.has("progress")
                        ? frame.at("progress").asU64()
                        : 0;
                if (p > s.lastProgress) {
                    s.lastProgress = p;
                    s.lastAdvance = s.lastBeat;
                }
                s.samples.emplace_back(s.lastBeat, s.lastProgress);
                while (s.samples.size() > 1 &&
                       std::chrono::duration<double>(
                           s.lastBeat - s.samples.front().first)
                               .count() > opt_.rateWindowSec)
                    s.samples.pop_front();
            } else if (type == "job-start") {
                const auto i = static_cast<std::size_t>(
                    frame.at("index").asI64());
                const int epoch =
                    static_cast<int>(frame.at("epoch").asI64());
                if (i < numJobs && !js[i].finalized &&
                    js[i].epoch == epoch && js[i].owner == k) {
                    js[i].started = true;
                    s.lastAdvance = s.lastBeat;
                }
            } else if (type == "checkpoint-written") {
                const auto i = static_cast<std::size_t>(
                    frame.at("index").asI64());
                const int epoch =
                    static_cast<int>(frame.at("epoch").asI64());
                if (i < numJobs && !js[i].finalized &&
                    js[i].epoch == epoch && js[i].owner == k) {
                    js[i].lastCheckpoint =
                        frame.at("path").asString();
                    s.lastAdvance = s.lastBeat;
                }
            } else if (type == "job-result") {
                const auto i = static_cast<std::size_t>(
                    frame.at("index").asI64());
                const int epoch =
                    static_cast<int>(frame.at("epoch").asI64());
                if (i < numJobs && !js[i].finalized &&
                    js[i].epoch == epoch) {
                    s.lastAdvance = s.lastBeat;
                    finalize(i, resultFromFrameFields(frame));
                } else {
                    // The fencing token at work: a stale epoch (or
                    // an already-finalized job) is a zombie's late
                    // result. Discard, never double-count.
                    ++stats_.fenced;
                    emit(k, "fenced",
                         i < numJobs ? js[i].job.name
                                     : std::to_string(i));
                }
            }
            // shard-idle: informational only
        } catch (const std::exception &e) {
            s.frameError = e.what();
        }
    };

    auto drainFrames = [&](int k) {
        ShardSlot &s = slots[k];
        if (s.fromFd < 0)
            return;
        for (;;) {
            const int got = readAvailable(s.fromFd, s.reader);
            std::string payload;
            while (s.reader.next(payload))
                handleFrame(k, payload);
            if (got == 0) { // EOF
                close(s.fromFd);
                s.fromFd = -1;
                return;
            }
            if (got < 0)
                return; // would block
        }
    };

    auto classifyShardExit = [&](ShardSlot &s, const WaitStatus &st) {
        if (!s.killReason.empty())
            return std::make_pair(
                s.killReason,
                s.killReason == "hung"
                    ? "shard missed " +
                          std::to_string(opt_.heartbeatMissLimit) +
                          " heartbeats and was killed (" +
                          st.describe() + ")"
                    : "shard killed (" + st.describe() + ")");
        if (st.signaled && st.termSignal == SIGXCPU)
            return std::make_pair(
                std::string("walltime"),
                "shard hit its RLIMIT_CPU cap (" + st.describe() +
                    ")");
        return std::make_pair(
            std::string("crashed"),
            "shard died with unfinished jobs (" + st.describe() +
                (s.frameError.empty()
                     ? std::string()
                     : "; last frame error: " + s.frameError) +
                ")");
    };

    auto reapShard = [&](int k, const WaitStatus &st) {
        ShardSlot &s = slots[k];
        drainFrames(k); // pull buffered frames (often results)
        if (s.fromFd >= 0) {
            close(s.fromFd);
            s.fromFd = -1;
        }
        if (s.toFd >= 0) {
            close(s.toFd);
            s.toFd = -1;
        }
        s.pid = -1;
        if (s.assigned.empty() || cancelled || s.zombie) {
            s.state = ShardState::Dead;
            return;
        }

        const auto [reason, detail] = classifyShardExit(s, st);
        emit(k, reason, detail);
        const bool retryable =
            reason == "crashed" || reason == "oom" ||
            reason == "hung";
        if (retryable && s.spawnCount - 1 < opt_.maxRespawnsPerShard &&
            (opt_.retryBudget < 0 || retriesUsed < opt_.retryBudget)) {
            ++retriesUsed;
            ++stats_.respawns;
            // Bump epochs: nothing the dead incarnation may have left
            // in flight can ever be accepted.
            for (const std::size_t i : s.assigned) {
                ++js[i].epoch;
                if (js[i].started)
                    ++js[i].priorAttempts;
                js[i].started = false;
            }
            const double delay = backoffDelaySec(
                opt_.backoff, "shard" + std::to_string(k),
                s.spawnCount);
            s.readyAt = after(delay);
            s.state = ShardState::Backoff;
            emit(k, "respawn",
                 reason + ", backoff " + std::to_string(delay) + "s");
            return;
        }

        // Past the respawn cap (or non-retryable): re-shard this
        // slot's jobs onto whoever is left.
        s.state = ShardState::Dead;
        const std::vector<std::size_t> orphans = s.assigned;
        s.assigned.clear();
        const std::vector<int> recipients = respawnRecipients(k);
        if (!recipients.empty()) {
            emit(k, "reshard",
                 std::to_string(orphans.size()) + " jobs");
            reassign(orphans, recipients);
            return;
        }
        // No healthy runner remains: these failures are final.
        for (const std::size_t i : orphans) {
            SweepResult r;
            r.attempts = js[i].started ? 1 : 0;
            r.failureReason = reason;
            r.error = detail;
            js[i].owner = k;
            finalize(i, std::move(r));
        }
    };

    auto killShard = [&](int k, const std::string &reason) {
        ShardSlot &s = slots[k];
        if (s.killReason.empty())
            s.killReason = reason;
        if (!s.termSent) {
            signalChild(s.pid, SIGTERM);
            s.termSent = true;
            s.termAt = Clock::now();
        }
    };

    auto checkSteals = [&] {
        const auto now = Clock::now();

        // Stall rule: progress frozen with live peers to take over.
        if (opt_.stealStallSec > 0.0) {
            for (int k = 0; k < numShards; ++k) {
                ShardSlot &s = slots[k];
                if (s.state != ShardState::Running || s.zombie ||
                    s.termSent || s.assigned.empty())
                    continue;
                if (secondsSince(s.lastAdvance) <=
                    opt_.stealStallSec)
                    continue;
                const std::vector<int> recipients =
                    liveRecipients(k);
                if (recipients.empty())
                    continue;
                ++stats_.stallSteals;
                emit(k, "steal-stall",
                     std::to_string(s.assigned.size()) + " jobs");
                const std::vector<std::size_t> victims = s.assigned;
                s.assigned.clear();
                // The victim stays alive: its late results for the
                // stolen (epoch-bumped) jobs must be fenced, not
                // blocked by a kill. Revoke what it has not started
                // so it stops early when it can.
                s.zombie = true;
                if (s.toFd >= 0) {
                    std::string frame =
                        "{\"type\":\"revoke\",\"jobs\":[";
                    for (std::size_t v = 0; v < victims.size(); ++v) {
                        if (v)
                            frame += ',';
                        frame += std::to_string(victims[v]);
                    }
                    frame += "]}";
                    writeFrame(s.toFd, frame);
                }
                reassign(victims, recipients);
                s.lastSteal = now;
            }
        }

        // Rate rule: a measurable straggler loses its unstarted jobs.
        if (opt_.stealFraction > 0.0 && opt_.rateWindowSec > 0.0) {
            std::vector<std::pair<int, double>> rates;
            for (int k = 0; k < numShards; ++k) {
                ShardSlot &s = slots[k];
                if (s.state != ShardState::Running || s.zombie ||
                    s.termSent || s.assigned.empty())
                    continue;
                if (s.samples.size() < 2 ||
                    secondsSince(s.startedAt) <= opt_.rateWindowSec ||
                    secondsSince(s.lastSteal) <= opt_.rateWindowSec)
                    continue;
                const double span =
                    std::chrono::duration<double>(
                        s.samples.back().first -
                        s.samples.front().first)
                        .count();
                if (span < opt_.rateWindowSec * 0.5)
                    continue;
                const double rate =
                    static_cast<double>(s.samples.back().second -
                                        s.samples.front().second) /
                    span;
                rates.emplace_back(k, rate);
            }
            if (rates.size() >= 2) {
                std::vector<double> sorted;
                for (const auto &[k, rate] : rates)
                    sorted.push_back(rate);
                std::sort(sorted.begin(), sorted.end());
                const double median = sorted[sorted.size() / 2];
                if (median > 0.0) {
                    for (const auto &[k, rate] : rates) {
                        if (rate >= opt_.stealFraction * median)
                            continue;
                        ShardSlot &s = slots[k];
                        std::vector<std::size_t> unstarted;
                        for (const std::size_t i : s.assigned)
                            if (!js[i].started)
                                unstarted.push_back(i);
                        if (unstarted.empty())
                            continue;
                        const std::vector<int> recipients =
                            liveRecipients(k);
                        if (recipients.empty())
                            continue;
                        ++stats_.rateSteals;
                        emit(k, "steal-rate",
                             std::to_string(unstarted.size()) +
                                 " jobs");
                        for (const std::size_t i : unstarted)
                            s.assigned.erase(
                                std::remove(s.assigned.begin(),
                                            s.assigned.end(), i),
                                s.assigned.end());
                        if (s.toFd >= 0) {
                            std::string frame =
                                "{\"type\":\"revoke\",\"jobs\":[";
                            for (std::size_t v = 0;
                                 v < unstarted.size(); ++v) {
                                if (v)
                                    frame += ',';
                                frame +=
                                    std::to_string(unstarted[v]);
                            }
                            frame += "]}";
                            writeFrame(s.toFd, frame);
                        }
                        reassign(unstarted, recipients);
                        s.lastSteal = now;
                    }
                }
            }
        }
    };

    // Initial spawns.
    for (int k = 0; k < numShards; ++k)
        spawnShard(k);

    while (done < numJobs) {
        const bool cancelNow =
            opt_.cancelFlag &&
            opt_.cancelFlag->load(std::memory_order_relaxed);
        if (cancelNow && !cancelled) {
            cancelled = true;
            for (int k = 0; k < numShards; ++k) {
                ShardSlot &s = slots[k];
                if (s.state == ShardState::Running) {
                    if (s.toFd >= 0)
                        writeFrame(s.toFd, "{\"type\":\"shutdown\"}");
                    if (!s.termSent) {
                        signalChild(s.pid, SIGTERM);
                        s.termSent = true;
                        s.termAt = Clock::now();
                    }
                }
            }
            for (std::size_t i = 0; i < numJobs; ++i) {
                if (js[i].finalized)
                    continue;
                SweepResult r;
                r.failureReason = "cancelled";
                r.error = "sweep cancelled";
                finalize(i, std::move(r));
            }
            emit(-1, "cancelled", "");
            break;
        }

        // Respawn slots whose backoff expired.
        const auto now = Clock::now();
        for (int k = 0; k < numShards; ++k)
            if (slots[k].state == ShardState::Backoff &&
                now >= slots[k].readyAt)
                spawnShard(k);

        // Deferred SIGCONTs from Stop chaos actions.
        for (auto it = pendingConts.begin();
             it != pendingConts.end();) {
            if (Clock::now() >= it->first) {
                signalChild(it->second, SIGCONT);
                it = pendingConts.erase(it);
            } else {
                ++it;
            }
        }

        // Wait for shard traffic (bounded so timers stay fresh).
        std::vector<pollfd> fds;
        std::vector<int> fdSlot;
        for (int k = 0; k < numShards; ++k) {
            if (slots[k].state == ShardState::Running &&
                slots[k].fromFd >= 0) {
                fds.push_back(pollfd{slots[k].fromFd, POLLIN, 0});
                fdSlot.push_back(k);
            }
        }
        if (!fds.empty()) {
            const int rc = poll(fds.data(),
                                static_cast<nfds_t>(fds.size()), 20);
            if (rc > 0) {
                for (std::size_t f = 0; f < fds.size(); ++f)
                    if (fds[f].revents &
                        (POLLIN | POLLHUP | POLLERR))
                        drainFrames(fdSlot[f]);
            }
        } else {
            // No readable pipe left. A slot can still be alive (its
            // pipe drained to EOF but the exit not yet reaped) or in
            // backoff; only when neither holds is the sweep wedged
            // (every runner dead, nothing respawning) and the reap
            // path has already finalized all orphans.
            bool anyPending = false;
            for (int k = 0; k < numShards; ++k)
                anyPending |=
                    slots[k].state == ShardState::Backoff ||
                    (slots[k].state == ShardState::Running &&
                     slots[k].pid >= 0);
            if (!anyPending && done < numJobs)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }

        // Reap exits, enforce liveness, escalate kills.
        for (int k = 0; k < numShards; ++k) {
            ShardSlot &s = slots[k];
            if (s.state != ShardState::Running || s.pid < 0)
                continue;
            if (const auto st = pollChild(s.pid)) {
                reapShard(k, *st);
                continue;
            }
            if (s.termSent &&
                secondsSince(s.termAt) > opt_.gracePeriodSec) {
                signalChild(s.pid, SIGKILL);
                continue;
            }
            if (s.termSent || s.zombie)
                continue;
            if (secondsSince(s.lastBeat) > hungAfterSec)
                killShard(k, "hung");
        }

        if (!cancelled)
            checkSteals();
    }

    // Shutdown: ask every live runner to stop, then drain until EOF
    // so late (stale-epoch) results are observed -- and fenced --
    // rather than lost in a closed pipe.
    for (int k = 0; k < numShards; ++k) {
        ShardSlot &s = slots[k];
        if (s.state != ShardState::Running)
            continue;
        if (s.toFd >= 0) {
            writeFrame(s.toFd, "{\"type\":\"shutdown\"}");
            close(s.toFd);
            s.toFd = -1;
        }
    }
    auto termDeadline = after(std::max(0.2, opt_.gracePeriodSec));
    bool escalatedTerm = false;
    auto killDeadline = termDeadline;
    for (;;) {
        bool anyAlive = false;
        std::vector<pollfd> fds;
        std::vector<int> fdSlot;
        for (int k = 0; k < numShards; ++k) {
            ShardSlot &s = slots[k];
            if (s.state != ShardState::Running)
                continue;
            if (s.pid >= 0) {
                if (const auto st = pollChild(s.pid)) {
                    drainFrames(k);
                    if (s.fromFd >= 0) {
                        close(s.fromFd);
                        s.fromFd = -1;
                    }
                    s.pid = -1;
                    s.state = ShardState::Dead;
                    continue;
                }
                anyAlive = true;
            }
            if (s.fromFd >= 0) {
                fds.push_back(pollfd{s.fromFd, POLLIN, 0});
                fdSlot.push_back(k);
            }
        }
        if (!anyAlive)
            break;
        if (!fds.empty()) {
            const int rc = poll(fds.data(),
                                static_cast<nfds_t>(fds.size()), 20);
            if (rc > 0)
                for (std::size_t f = 0; f < fds.size(); ++f)
                    if (fds[f].revents &
                        (POLLIN | POLLHUP | POLLERR))
                        drainFrames(fdSlot[f]);
        } else {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        const auto tnow = Clock::now();
        if (!escalatedTerm && tnow > termDeadline) {
            escalatedTerm = true;
            killDeadline = after(std::max(0.2, opt_.gracePeriodSec));
            for (int k = 0; k < numShards; ++k)
                if (slots[k].state == ShardState::Running &&
                    slots[k].pid >= 0)
                    signalChild(slots[k].pid, SIGTERM);
        } else if (escalatedTerm && tnow > killDeadline) {
            for (int k = 0; k < numShards; ++k)
                if (slots[k].state == ShardState::Running &&
                    slots[k].pid >= 0)
                    signalChild(slots[k].pid, SIGKILL);
        }
    }
    // Final reap of anything still registered (defensive).
    for (int k = 0; k < numShards; ++k) {
        ShardSlot &s = slots[k];
        if (s.pid >= 0) {
            signalChild(s.pid, SIGKILL);
            waitChild(s.pid);
            s.pid = -1;
        }
        if (s.fromFd >= 0) {
            close(s.fromFd);
            s.fromFd = -1;
        }
        if (s.toFd >= 0) {
            close(s.toFd);
            s.toFd = -1;
        }
    }

    std::vector<SweepResult> results;
    results.reserve(numJobs);
    for (JobState &j : js)
        results.push_back(std::move(j.result));
    return results;
}

} // namespace cawa
