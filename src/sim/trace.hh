/**
 * @file
 * Cycle-level structured event tracing. Components record
 * cycle-stamped TraceEvents (warp issue / stall-with-reason,
 * criticality updates, barrier arrive/release, cache fill / evict /
 * bypass, DRAM and interconnect transactions, block dispatch /
 * retire) into a bounded ring buffer through the CAWA_TRACE_EVENT
 * macro. Tracing is a pure observer: a sink is only attached when
 * GpuConfig::trace.enabled is set, every payload is derived from
 * values the simulator already computed, and the trace knob is
 * excluded from the checkpoint config signature -- SimReports are
 * byte-identical with tracing on or off (enforced by the
 * trace-labelled tests).
 *
 * The ring drops the oldest events on overflow and counts the drops,
 * so memory stays bounded no matter how long the run. Exporters
 * produce Chrome trace_event JSON (load in chrome://tracing or
 * https://ui.perfetto.dev: one process per SM, one thread lane per
 * warp slot, stalls as duration slices) and a JSONL stream (one
 * event object per line).
 */

#ifndef CAWA_SIM_TRACE_HH
#define CAWA_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cawa
{

enum class TraceEventKind : std::uint8_t
{
    WarpIssue,      ///< a = pc, b = warp classified critical (0/1)
    WarpStall,      ///< a = StallReason, b = stalled cycles
    CritUpdate,     ///< a = criticality value, b = quantized priority
    BarrierArrive,  ///< a = block id
    BarrierRelease, ///< a = block id, b = warps released
    CacheFill,      ///< a = line address, b = filled by critical warp
    CacheEvict,     ///< a = victim fill pc, b = zero-reuse eviction
    CacheBypass,    ///< a = line address, b = is store (write-through
                    ///< misses bypass the cache without allocating)
    DramRead,       ///< a = line address
    DramWrite,      ///< a = line address
    IcntToL2,       ///< a = line address, b = is store
    IcntToSm,       ///< a = line address
    BlockDispatch,  ///< a = block id
    BlockRetire,    ///< a = block id
};

inline constexpr int kNumTraceEventKinds = 14;

inline const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::WarpIssue: return "warpIssue";
      case TraceEventKind::WarpStall: return "warpStall";
      case TraceEventKind::CritUpdate: return "critUpdate";
      case TraceEventKind::BarrierArrive: return "barrierArrive";
      case TraceEventKind::BarrierRelease: return "barrierRelease";
      case TraceEventKind::CacheFill: return "cacheFill";
      case TraceEventKind::CacheEvict: return "cacheEvict";
      case TraceEventKind::CacheBypass: return "cacheBypass";
      case TraceEventKind::DramRead: return "dramRead";
      case TraceEventKind::DramWrite: return "dramWrite";
      case TraceEventKind::IcntToL2: return "icntToL2";
      case TraceEventKind::IcntToSm: return "icntToSm";
      case TraceEventKind::BlockDispatch: return "blockDispatch";
      case TraceEventKind::BlockRetire: return "blockRetire";
    }
    return "unknown";
}

/** Why a resident warp failed to issue this cycle (event payload). */
enum class StallReason : std::uint8_t
{
    Mem,          ///< waiting on outstanding loads / scoreboard
    Alu,          ///< ALU dependency not yet resolved
    Struct,       ///< LD/ST queue or token pool exhausted
    SchedWait,    ///< ready but lost scheduler arbitration
    Barrier,      ///< parked at a block-wide barrier
    FinishedWait, ///< exited, waiting for block peers to finish
};

inline constexpr int kNumStallReasons = 6;

inline const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::Mem: return "mem";
      case StallReason::Alu: return "alu";
      case StallReason::Struct: return "struct";
      case StallReason::SchedWait: return "schedWait";
      case StallReason::Barrier: return "barrier";
      case StallReason::FinishedWait: return "finishedWait";
    }
    return "unknown";
}

/**
 * One recorded event. `sm` is -1 for global components (L2, DRAM,
 * interconnect fan-in); `warp` is -1 when no single warp slot is
 * responsible. `a`/`b` payloads are per-kind (see TraceEventKind).
 */
struct TraceEvent
{
    Cycle cycle = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int32_t sm = -1;
    std::int32_t warp = -1;
    TraceEventKind kind = TraceEventKind::WarpIssue;
};

/**
 * Bounded drop-oldest ring of TraceEvents. record() is header-inline
 * so mem/ and sm/ components can emit without linking the sim
 * library; everything allocation-wise happens once in the ctor.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity)
        : ring_(capacity ? capacity : 1)
    {}

    void
    record(Cycle cycle, TraceEventKind kind, int sm, int warp,
           std::int64_t a = 0, std::int64_t b = 0)
    {
        TraceEvent e;
        e.cycle = cycle;
        e.a = a;
        e.b = b;
        e.sm = sm;
        e.warp = warp;
        e.kind = kind;
        if (size_ < ring_.size()) {
            ring_[(start_ + size_) % ring_.size()] = e;
            size_++;
        } else {
            ring_[start_] = e;
            start_ = (start_ + 1) % ring_.size();
            dropped_++;
        }
        recorded_++;
    }

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return size_; }

    /** Total events ever recorded, including dropped ones. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** i-th retained event, oldest first (0 <= i < size()). */
    const TraceEvent &
    at(std::size_t i) const
    {
        return ring_[(start_ + i) % ring_.size()];
    }

    void
    clear()
    {
        start_ = 0;
        size_ = 0;
        recorded_ = 0;
        dropped_ = 0;
    }

    /**
     * Overwrite the recorded/dropped totals. Used by
     * TraceSet::merged() so a merged view reports the exact per-ring
     * sums instead of its own (drop-free) insertion counts.
     */
    void
    setAccounting(std::uint64_t recorded, std::uint64_t dropped)
    {
        recorded_ = recorded;
        dropped_ = dropped;
    }

  private:
    std::vector<TraceEvent> ring_;
    std::size_t start_ = 0;
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Ring set for deterministic (and thread-safe) multi-source emission.
 * Block dispatch, each SM (plus its L1's tick-side events), and the
 * shared memory system (interconnect / L2 / DRAM plus L1 fill-side
 * events, recorded during the Gpu's serial drain phase) each own a
 * private ring, so the phase-1 parallel SM ticks never share a ring
 * across threads. The Gpu uses a TraceSet in serial mode too, which
 * makes exports byte-identical at any simThreads setting even when
 * rings overflow.
 *
 * merged() flattens the rings into one cycle-ordered view. Ties
 * within a cycle resolve dispatch ring -> SM rings by id -> memory
 * ring — exactly the order the serial tick loop visits the emitting
 * components — so the merged order is independent of the worker
 * count. The configured capacity is split evenly across the rings;
 * recorded/dropped stay exact per ring and merged() reports their
 * sums.
 */
class TraceSet
{
  public:
    TraceSet(int num_sms, std::uint64_t total_capacity);

    TraceBuffer *dispatchRing() { return &rings_.front(); }
    TraceBuffer *smRing(int sm)
    {
        return &rings_[1 + static_cast<std::size_t>(sm)];
    }
    TraceBuffer *memoryRing() { return &rings_.back(); }

    int numSms() const { return static_cast<int>(rings_.size()) - 2; }

    std::uint64_t recorded() const;
    std::uint64_t dropped() const;
    std::size_t totalCapacity() const;

    void clear();

    /** Cycle-ordered merge of every ring (see class comment). */
    TraceBuffer merged() const;

  private:
    std::vector<TraceBuffer> rings_; ///< [dispatch, sm 0..N-1, memory]
};

/**
 * The GpuConfig::trace knob. Observational only: it never enters
 * the checkpoint config signature, so a checkpoint taken with
 * tracing off restores fine into a tracing run (and vice versa).
 */
struct TraceConfig
{
    bool enabled = false;
    /// Ring capacity in events (~40 B each). 0 is invalid.
    std::uint64_t bufferCapacity = std::uint64_t{1} << 18;
};

/** Event predicate used by the exporters and the cawa_trace CLI. */
struct TraceFilter
{
    int sm = -1;   ///< -1 = any
    int warp = -1; ///< -1 = any
    Cycle minCycle = 0;
    Cycle maxCycle = kNoCycle;
    /// Bit i admits TraceEventKind(i); default admits everything.
    std::uint32_t kindMask = ~std::uint32_t{0};

    bool
    pass(const TraceEvent &e) const
    {
        if (sm >= 0 && e.sm != sm)
            return false;
        if (warp >= 0 && e.warp != warp)
            return false;
        if (e.cycle < minCycle || e.cycle > maxCycle)
            return false;
        return (kindMask >> static_cast<int>(e.kind)) & 1u;
    }
};

/**
 * Chrome trace_event JSON ("JSON object format"): metadata names one
 * process per SM (pid = sm + 1; pid 0 is the shared memory system)
 * and stalls become "X" duration slices on their warp's thread lane,
 * so chrome://tracing shows a per-warp timeline. Deterministic
 * output for identical buffer contents.
 */
std::string traceToChromeJson(const TraceBuffer &buf,
                              const TraceFilter &filter = {});

/** One compact JSON object per line; same filter semantics. */
std::string traceToJsonl(const TraceBuffer &buf,
                         const TraceFilter &filter = {});

} // namespace cawa

/**
 * Emit an event iff a sink is attached. Compiles to a null check on
 * the hot path; define CAWA_TRACE_DISABLED to compile tracing out
 * entirely.
 */
#ifdef CAWA_TRACE_DISABLED
#define CAWA_TRACE_EVENT(sink, ...) \
    do { \
    } while (0)
#else
#define CAWA_TRACE_EVENT(sink, ...) \
    do { \
        if (sink) \
            (sink)->record(__VA_ARGS__); \
    } while (0)
#endif

#endif // CAWA_SIM_TRACE_HH
