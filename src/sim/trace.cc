#include "sim/trace.hh"

#include <algorithm>
#include <set>
#include <sstream>

namespace cawa
{

TraceSet::TraceSet(int num_sms, std::uint64_t total_capacity)
{
    const std::size_t num_rings = static_cast<std::size_t>(num_sms) + 2;
    const std::size_t per_ring = static_cast<std::size_t>(
        std::max<std::uint64_t>(1, total_capacity / num_rings));
    rings_.reserve(num_rings);
    for (std::size_t i = 0; i < num_rings; ++i)
        rings_.emplace_back(per_ring);
}

std::uint64_t
TraceSet::recorded() const
{
    std::uint64_t total = 0;
    for (const TraceBuffer &ring : rings_)
        total += ring.recorded();
    return total;
}

std::uint64_t
TraceSet::dropped() const
{
    std::uint64_t total = 0;
    for (const TraceBuffer &ring : rings_)
        total += ring.dropped();
    return total;
}

std::size_t
TraceSet::totalCapacity() const
{
    std::size_t total = 0;
    for (const TraceBuffer &ring : rings_)
        total += ring.capacity();
    return total;
}

void
TraceSet::clear()
{
    for (TraceBuffer &ring : rings_)
        ring.clear();
}

TraceBuffer
TraceSet::merged() const
{
    std::size_t total = 0;
    for (const TraceBuffer &ring : rings_)
        total += ring.size();
    // Collect in ring order so the stable sort's tie-break reproduces
    // the serial visit order (dispatch, SMs by id, memory system)
    // within each cycle. Per-ring contents are cycle-monotone, so the
    // merged view is too.
    std::vector<const TraceEvent *> events;
    events.reserve(total);
    for (const TraceBuffer &ring : rings_)
        for (std::size_t i = 0; i < ring.size(); ++i)
            events.push_back(&ring.at(i));
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent *a, const TraceEvent *b) {
                         return a->cycle < b->cycle;
                     });
    TraceBuffer out(std::max<std::size_t>(total, 1));
    for (const TraceEvent *e : events)
        out.record(e->cycle, e->kind, e->sm, e->warp, e->a, e->b);
    out.setAccounting(recorded(), dropped());
    return out;
}

namespace
{

int
tracePid(const TraceEvent &e)
{
    // pid 0 groups the shared memory system (L2/DRAM/icnt); each SM
    // gets its own process so chrome://tracing nests warps under it.
    return e.sm < 0 ? 0 : e.sm + 1;
}

int
traceTid(const TraceEvent &e)
{
    return e.warp < 0 ? 0 : e.warp;
}

void
appendEvent(std::ostringstream &out, const TraceEvent &e, bool &first)
{
    if (!first)
        out << ",\n";
    first = false;
    if (e.kind == TraceEventKind::WarpStall) {
        // Stalls render as duration slices: one box per stalled span
        // on the warp's lane, named after the reason.
        out << "    {\"name\": \""
            << stallReasonName(static_cast<StallReason>(e.a))
            << "\", \"cat\": \"stall\", \"ph\": \"X\", \"ts\": "
            << e.cycle << ", \"dur\": " << e.b
            << ", \"pid\": " << tracePid(e)
            << ", \"tid\": " << traceTid(e) << "}";
        return;
    }
    out << "    {\"name\": \"" << traceEventKindName(e.kind)
        << "\", \"cat\": \"sim\", \"ph\": \"i\", \"s\": \"t\", "
        << "\"ts\": " << e.cycle << ", \"pid\": " << tracePid(e)
        << ", \"tid\": " << traceTid(e) << ", \"args\": {\"a\": "
        << e.a << ", \"b\": " << e.b << "}}";
}

void
appendProcessMeta(std::ostringstream &out, int pid, bool &first)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
        << pid << ", \"tid\": 0, \"args\": {\"name\": \"";
    if (pid == 0)
        out << "memory system";
    else
        out << "SM " << pid - 1;
    out << "\"}},\n";
    out << "    {\"name\": \"process_sort_index\", \"ph\": \"M\", "
        << "\"pid\": " << pid << ", \"tid\": 0, \"args\": "
        << "{\"sort_index\": " << pid << "}}";
}

} // namespace

std::string
traceToChromeJson(const TraceBuffer &buf, const TraceFilter &filter)
{
    std::set<int> pids;
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf.at(i);
        if (filter.pass(e))
            pids.insert(tracePid(e));
    }

    std::ostringstream out;
    out << "{\n  \"traceEvents\": [\n";
    bool first = true;
    for (int pid : pids)
        appendProcessMeta(out, pid, first);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf.at(i);
        if (filter.pass(e))
            appendEvent(out, e, first);
    }
    out << "\n  ],\n";
    out << "  \"displayTimeUnit\": \"ns\",\n";
    out << "  \"otherData\": {\"recorded\": " << buf.recorded()
        << ", \"dropped\": " << buf.dropped() << "}\n";
    out << "}\n";
    return out.str();
}

std::string
traceToJsonl(const TraceBuffer &buf, const TraceFilter &filter)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const TraceEvent &e = buf.at(i);
        if (!filter.pass(e))
            continue;
        out << "{\"cycle\": " << e.cycle << ", \"kind\": \""
            << traceEventKindName(e.kind) << "\", \"sm\": " << e.sm
            << ", \"warp\": " << e.warp;
        if (e.kind == TraceEventKind::WarpStall) {
            out << ", \"reason\": \""
                << stallReasonName(static_cast<StallReason>(e.a))
                << "\", \"cycles\": " << e.b;
        } else {
            out << ", \"a\": " << e.a << ", \"b\": " << e.b;
        }
        out << "}\n";
    }
    return out.str();
}

} // namespace cawa
