#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/sim_error.hh"

namespace cawa
{

namespace
{

[[noreturn]] void
badFile(const std::string &what)
{
    throw SimError(SimErrorKind::Checkpoint, what);
}

} // namespace

void
CheckpointWriter::add(const std::string &name, const OutArchive &ar)
{
    sections_.emplace_back(name, ar.bytes());
}

std::vector<std::uint8_t>
CheckpointWriter::finish() const
{
    OutArchive out;
    for (std::size_t i = 0; i < kCheckpointMagicLen; ++i)
        out.putU8(static_cast<std::uint8_t>(kCheckpointMagic[i]));
    out.putU32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto &[name, payload] : sections_) {
        out.putString(name);
        out.putU64(payload.size());
        out.putU32(crc32(payload.data(), payload.size()));
        for (std::uint8_t b : payload)
            out.putU8(b);
    }
    return out.bytes();
}

CheckpointReader::CheckpointReader(const std::uint8_t *data,
                                   std::size_t size)
{
    // Framing errors report absolute file offsets; section payloads
    // opened later report offsets relative to their own payload.
    InArchive ar(data, size, "checkpoint framing");
    if (size < kCheckpointMagicLen ||
        std::memcmp(data, kCheckpointMagic, kCheckpointMagicLen) != 0)
        badFile("not a checkpoint: bad magic (want '" +
                std::string(kCheckpointMagic) + "')");
    for (std::size_t i = 0; i < kCheckpointMagicLen; ++i)
        ar.getU8();

    const std::uint32_t count = ar.getU32();
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        s.name = ar.getString();
        const std::uint64_t payload_size = ar.getU64();
        const std::uint32_t stored_crc = ar.getU32();
        const std::size_t at = ar.offset();
        if (payload_size > ar.remaining())
            badFile("section '" + s.name + "' at byte offset " +
                    std::to_string(at) + ": truncated (payload claims " +
                    std::to_string(payload_size) + " bytes, " +
                    std::to_string(ar.remaining()) + " remain)");
        s.data = data + at;
        s.size = static_cast<std::size_t>(payload_size);
        const std::uint32_t computed = crc32(s.data, s.size);
        if (computed != stored_crc)
            badFile("section '" + s.name + "' at byte offset " +
                    std::to_string(at) + ": CRC mismatch (stored " +
                    std::to_string(stored_crc) + ", computed " +
                    std::to_string(computed) + "): file is corrupt");
        // Skip over the payload within the framing archive.
        for (std::size_t k = 0; k < s.size; ++k)
            ar.getU8();
        sections_.push_back(std::move(s));
    }
    ar.expectEnd();
}

InArchive
CheckpointReader::open(const std::string &name) const
{
    for (const Section &s : sections_)
        if (s.name == name)
            return InArchive(s.data, s.size, name);
    badFile("checkpoint has no section '" + name +
            "': written by an incompatible simulator build");
}

bool
CheckpointReader::has(const std::string &name) const
{
    for (const Section &s : sections_)
        if (s.name == name)
            return true;
    return false;
}

std::vector<std::string>
CheckpointReader::sectionNames() const
{
    std::vector<std::string> names;
    for (const Section &s : sections_)
        names.push_back(s.name);
    return names;
}

void
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &image,
                    std::int64_t corrupt_byte)
{
    std::vector<std::uint8_t> bytes = image;
    if (corrupt_byte >= 0 && !bytes.empty()) {
        const std::size_t at =
            static_cast<std::size_t>(corrupt_byte) % bytes.size();
        bytes[at] ^= std::uint8_t{1} << (corrupt_byte % 8);
    }

    // The temp name carries the writer's pid: two processes
    // checkpointing the same path (an orphaned worker from a crashed
    // cawad racing the restarted daemon's replacement worker) must
    // each rename their own temp file, never steal the other's.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        badFile("cannot open '" + tmp + "' for writing");
    const std::size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        badFile("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        badFile("cannot rename '" + tmp + "' over '" + path + "'");
    }
}

std::vector<std::uint8_t>
readCheckpointFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        badFile("cannot open checkpoint '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    if (sz < 0) {
        std::fclose(f);
        badFile("cannot size checkpoint '" + path + "'");
    }
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(sz));
    const std::size_t got =
        bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        badFile("short read from checkpoint '" + path + "'");
    return bytes;
}

} // namespace cawa
