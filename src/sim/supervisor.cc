#include "sim/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <unistd.h>

#include "common/rng.hh"
#include "common/sim_error.hh"
#include "sim/report_json.hh"

namespace cawa
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

std::uint64_t
mixSeed(std::uint64_t seed, const std::string &name, int attempt)
{
    // FNV-1a over (seed, name, attempt): cheap, stable across runs
    // and platforms, which is all the jitter needs.
    std::uint64_t h = 1469598103934665603ULL ^ seed;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    mix(static_cast<std::uint64_t>(attempt));
    return h;
}

} // namespace

std::string
frameJsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

double
backoffDelaySec(const BackoffPolicy &policy, const std::string &name,
                int attempt)
{
    const int step = std::max(1, attempt);
    double delay = policy.baseSec *
                   std::pow(2.0, static_cast<double>(step - 1));
    delay = std::min(delay, policy.capSec);
    Rng rng(mixSeed(policy.seed, name, step));
    const double jitter = 0.75 + 0.5 * rng.nextDouble();
    return delay * jitter;
}

double
backoffDelaySec(const SupervisorOptions &opt, const std::string &jobName,
                int attempt)
{
    return backoffDelaySec(BackoffPolicy{opt.backoffBaseSec,
                                         opt.backoffCapSec,
                                         opt.backoffSeed},
                           jobName, attempt);
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

namespace
{

/// Set by the worker's SIGTERM/SIGINT handler; wired into the job's
/// cancelFlag so a supervised kill produces a final checkpoint and a
/// clean "cancelled" result instead of a corpse.
std::atomic<bool> g_workerCancel{false};

/// Armed by the stall fault: the heartbeat thread stops sending.
std::atomic<bool> g_heartbeatStalled{false};

extern "C" void
workerShutdownSignal(int)
{
    g_workerCancel.store(true, std::memory_order_relaxed);
}

/**
 * Fault dispatch invoked by Gpu::checkInterrupts() once the armed
 * fault cycle is reached. Runs on the simulation thread inside the
 * worker process only (the supervisor never installs a handler in
 * the parent).
 */
void
fireWorkerFault(const FaultInjection &faults)
{
    if (faults.workerKillSignal > 0) {
        // A catchable signal must behave like a real crash, not like
        // the graceful-shutdown path.
        std::signal(faults.workerKillSignal, SIG_DFL);
        raise(faults.workerKillSignal);
    }
    if (faults.workerExitCode >= 0)
        _exit(faults.workerExitCode);
    if (faults.workerStallHeartbeat) {
        // Look alive to the kernel, dead to the supervisor: stop the
        // heartbeats and ignore every catchable signal, so only the
        // supervisor's SIGTERM -> SIGKILL escalation can end us.
        g_heartbeatStalled.store(true, std::memory_order_relaxed);
        for (;;)
            pause();
    }
}

/** Serialized frame writes: heartbeat thread vs simulation thread. */
struct FrameSink
{
    int fd;
    std::mutex mutex;

    bool send(const std::string &payload)
    {
        std::lock_guard<std::mutex> lock(mutex);
        return writeFrame(fd, payload);
    }
};

} // namespace

std::string
resultFrameJson(const SweepResult &result, int attempt)
{
    JsonWriteOptions full;
    full.includeBlocks = true;
    full.includeTrace = true;
    full.includeDerived = true;
    full.pretty = false;

    std::string out = "{\"type\":\"result\"";
    out += ",\"attempt\":" + std::to_string(attempt);
    out += ",\"verified\":";
    out += result.verified ? "true" : "false";
    out += ",\"attempts\":" + std::to_string(result.attempts);
    out += ",\"resumed\":";
    out += result.resumed ? "true" : "false";
    out += ",\"error\":" + frameJsonQuote(result.error);
    out += ",\"failureReason\":" + frameJsonQuote(result.failureReason);
    // The full-fidelity compact document: toJson() is deterministic
    // and reportFromJson() is lossless, so the parent can re-serialize
    // byte-identically to an in-process run.
    out += ",\"report\":" + toJson(result.report, full);
    out += "}";
    return out;
}

SweepResult
resultFromFrameFields(const JsonValue &doc)
{
    SweepResult r;
    r.verified = doc.at("verified").asBool();
    r.attempts = static_cast<int>(doc.at("attempts").asI64());
    r.resumed = doc.at("resumed").asBool();
    r.error = doc.at("error").asString();
    r.failureReason = doc.at("failureReason").asString();
    r.report = reportFromJson(doc.at("report"));
    return r;
}

SweepResult
resultFromFrame(const std::string &payload)
{
    const JsonValue doc = parseJson(payload);
    if (!doc.has("type") || doc.at("type").asString() != "result")
        throw std::runtime_error(
            "worker frame is not a result frame");
    return resultFromFrameFields(doc);
}

int
runSweepWorker(const SweepJob &job, int jobMaxAttempts, int outFd,
               double heartbeatIntervalSec, int attempt)
{
    g_workerCancel.store(false, std::memory_order_relaxed);
    g_heartbeatStalled.store(false, std::memory_order_relaxed);
    std::signal(SIGTERM, workerShutdownSignal);
    std::signal(SIGINT, workerShutdownSignal);
    // The parent closing its read end must not kill us mid-write; the
    // failed write is detected and reported via the exit code.
    std::signal(SIGPIPE, SIG_IGN);
    setWorkerFaultHandler(&fireWorkerFault);

    FrameSink sink{outFd, {}};

    // Heartbeat thread: liveness on a timer, independent of how long
    // one simulation chunk takes. cv-based so shutdown is prompt.
    std::mutex hbMutex;
    std::condition_variable hbCv;
    bool hbStop = false;
    std::thread heartbeat([&] {
        const auto interval = std::chrono::duration<double>(
            std::max(0.01, heartbeatIntervalSec));
        std::uint64_t seq = 0;
        std::unique_lock<std::mutex> lock(hbMutex);
        while (!hbCv.wait_for(lock, interval, [&] { return hbStop; })) {
            if (g_heartbeatStalled.load(std::memory_order_relaxed))
                continue;
            lock.unlock();
            sink.send("{\"type\":\"heartbeat\",\"seq\":" +
                      std::to_string(seq++) + "}");
            lock.lock();
        }
    });
    auto stopHeartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hbMutex);
            hbStop = true;
        }
        hbCv.notify_all();
        heartbeat.join();
    };

    SweepJob mine = job;
    mine.cfg.cancelFlag = &g_workerCancel;
    mine.cfg.checkpointWrittenHook = [&sink](const std::string &path,
                                             Cycle cycle) {
        sink.send("{\"type\":\"checkpoint-written\",\"path\":" +
                  frameJsonQuote(path) +
                  ",\"cycle\":" + std::to_string(cycle) + "}");
    };

    SweepResult result;
    try {
        result = runSweepJob(mine, jobMaxAttempts);
    } catch (const std::exception &e) {
        // runSweepJob captures job errors itself; this guards the
        // harness around it.
        result.error = e.what();
        result.attempts = std::max(result.attempts, 1);
    }

    // Under the RLIMIT_AS cap an allocation failure surfaces as
    // std::bad_alloc, which runSweepJob records as an ordinary error;
    // promote it to the first-class "oom" status the supervisor
    // retries at process level.
    if (result.failureReason.empty() &&
        result.error.find("bad_alloc") != std::string::npos)
        result.failureReason = "oom";

    stopHeartbeat();
    const bool sent = sink.send(resultFrameJson(result, attempt));
    return sent ? 0 : 3;
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

namespace
{

enum class SlotState { Pending, Running, Backoff, Done };

struct Slot
{
    SweepJob job;
    SlotState state = SlotState::Pending;
    int attempt = 0; ///< worker executions so far
    SweepResult result;

    // Active worker.
    pid_t pid = -1;
    int fromFd = -1;
    FrameReader reader;
    bool gotResult = false;
    SweepResult pending;
    std::string frameError;
    Clock::time_point started;
    Clock::time_point lastBeat;
    bool termSent = false;
    Clock::time_point termAt;
    std::string killReason; ///< "hung"/"walltime" when the parent kills

    // Progress carried across attempts.
    std::string lastCheckpoint;

    // Backoff gate.
    Clock::time_point readyAt;
};

bool
fileReadable(const std::string &path)
{
    return !path.empty() && access(path.c_str(), R_OK) == 0;
}

} // namespace

SweepSupervisor::SweepSupervisor(SupervisorOptions opt)
    : opt_(std::move(opt))
{
    if (opt_.heartbeatIntervalSec <= 0.0)
        opt_.heartbeatIntervalSec = 0.25;
    if (opt_.heartbeatMissLimit < 1)
        opt_.heartbeatMissLimit = 1;
    if (opt_.maxAttemptsPerJob < 1)
        opt_.maxAttemptsPerJob = 1;
    if (opt_.jobMaxAttempts < 1)
        opt_.jobMaxAttempts = 1;
}

std::vector<SweepResult>
SweepSupervisor::run(std::vector<SweepJob> jobs,
                     const SweepEngine::JobDone &on_done)
{
    if (!processIsolationAvailable())
        throw SimError(SimErrorKind::Config,
                       "process isolation is not available on this "
                       "platform; run the in-process sweep path");

    std::vector<Slot> slots(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        slots[i].job = std::move(jobs[i]);

    int maxWorkers = opt_.workers;
    if (maxWorkers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        maxWorkers = static_cast<int>(std::max(1u, hw));
    }
    maxWorkers = std::max(
        1, std::min<int>(maxWorkers,
                         static_cast<int>(std::max<std::size_t>(
                             1, slots.size()))));

    const double hungAfterSec =
        opt_.heartbeatIntervalSec * opt_.heartbeatMissLimit;

    auto emit = [&](std::size_t index, int attempt,
                    const std::string &event, const std::string &detail,
                    double delaySec) {
        if (opt_.onEvent)
            opt_.onEvent(index, attempt, event, detail, delaySec);
    };

    int running = 0;
    std::size_t done = 0;
    int retriesUsed = 0;
    bool cancelled = false;

    auto finalize = [&](std::size_t i, SweepResult r) {
        Slot &s = slots[i];
        s.result = std::move(r);
        s.state = SlotState::Done;
        ++done;
        emit(i, s.attempt, "result",
             s.result.ok() ? "completed"
                           : (s.result.failureReason.empty()
                                  ? "error"
                                  : s.result.failureReason),
             0.0);
        if (on_done)
            on_done(i, s.result);
    };

    auto spawn = [&](std::size_t i) {
        Slot &s = slots[i];
        ++s.attempt;

        // Disarm one-shot fault knobs on later attempts so a retried
        // job can complete.
        FaultInjection &f = s.job.cfg.faults;
        if (f.anyWorkerFault() && s.attempt > f.workerFaultAttempts) {
            f.workerKillSignal = 0;
            f.workerStallHeartbeat = false;
            f.workerExitCode = -1;
        }

        // Resume from the dead worker's progress when there is any.
        if (fileReadable(s.lastCheckpoint))
            s.job.resumeFromCheckpoint = s.lastCheckpoint;
        else if (s.attempt > 1 && fileReadable(s.job.cfg.checkpointPath))
            s.job.resumeFromCheckpoint = s.job.cfg.checkpointPath;

        ChildProcess child;
        if (!opt_.workerArgv0.empty()) {
            if (!opt_.jobSpec)
                throw SimError(SimErrorKind::Config,
                               "SupervisorOptions.workerArgv0 set "
                               "without a jobSpec serializer");
            child = spawnWorker({opt_.workerArgv0, "--worker"},
                                opt_.limits);
            const std::string spec = opt_.jobSpec(i, s.job, s.attempt);
            writeFrame(child.toChild, spec);
        } else {
            const SweepJob job = s.job;
            const int jobAttempts = opt_.jobMaxAttempts;
            const double hb = opt_.heartbeatIntervalSec;
            const int attempt = s.attempt;
            child = forkWorker(
                [&job, jobAttempts, hb, attempt](int inFd, int outFd) {
                    close(inFd);
                    return runSweepWorker(job, jobAttempts, outFd, hb,
                                          attempt);
                },
                opt_.limits);
        }
        if (child.toChild >= 0)
            close(child.toChild);
        setNonBlocking(child.fromChild);

        s.pid = child.pid;
        s.fromFd = child.fromChild;
        s.reader = FrameReader();
        s.gotResult = false;
        s.frameError.clear();
        s.started = s.lastBeat = Clock::now();
        s.termSent = false;
        s.killReason.clear();
        s.state = SlotState::Running;
        ++running;
        emit(i, s.attempt, "spawn", s.job.name, 0.0);
    };

    auto drainFrames = [&](std::size_t i) {
        Slot &s = slots[i];
        if (s.fromFd < 0)
            return;
        for (;;) {
            const int got = readAvailable(s.fromFd, s.reader);
            std::string payload;
            while (s.reader.next(payload)) {
                s.lastBeat = Clock::now();
                try {
                    const JsonValue frame = parseJson(payload);
                    const std::string type =
                        frame.has("type") ? frame.at("type").asString()
                                          : std::string();
                    if (type == "result") {
                        s.pending = resultFromFrame(payload);
                        s.gotResult = true;
                    } else if (type == "checkpoint-written") {
                        s.lastCheckpoint = frame.at("path").asString();
                        emit(i, s.attempt, "checkpoint",
                             s.lastCheckpoint, 0.0);
                    }
                    // heartbeats only refresh lastBeat, done above
                } catch (const std::exception &e) {
                    s.frameError = e.what();
                }
            }
            if (got == 0) { // EOF: worker closed its end
                close(s.fromFd);
                s.fromFd = -1;
                return;
            }
            if (got < 0)
                return; // would block
        }
    };

    auto killWorker = [&](std::size_t i, const std::string &reason) {
        Slot &s = slots[i];
        if (s.killReason.empty())
            s.killReason = reason;
        if (!s.termSent) {
            signalChild(s.pid, SIGTERM);
            s.termSent = true;
            s.termAt = Clock::now();
        }
    };

    auto classifyExit = [&](Slot &s,
                            const WaitStatus &st) -> SweepResult {
        // A worker that raced its own success against the parent's
        // kill decision still wins: real results are never discarded.
        if (s.gotResult && s.pending.ok()) {
            SweepResult r = s.pending;
            r.attempts += s.attempt - 1;
            return r;
        }
        if (!s.killReason.empty()) {
            SweepResult r;
            r.attempts = s.attempt;
            r.failureReason = s.killReason;
            r.error = s.killReason == "hung"
                          ? "worker missed " +
                                std::to_string(opt_.heartbeatMissLimit) +
                                " heartbeats and was killed (" +
                                st.describe() + ")"
                          : "worker exceeded the " +
                                std::to_string(opt_.workerDeadlineSec) +
                                "s wall-clock deadline (" +
                                st.describe() + ")";
            return r;
        }
        if (s.gotResult) {
            SweepResult r = s.pending;
            r.attempts += s.attempt - 1;
            return r;
        }
        SweepResult r;
        r.attempts = s.attempt;
        if (st.signaled && st.termSignal == SIGXCPU) {
            r.failureReason = "walltime";
            r.error = "worker hit its RLIMIT_CPU cap (" +
                      st.describe() + ")";
        } else {
            r.failureReason = "crashed";
            r.error =
                "worker died without reporting a result (" +
                st.describe() +
                (s.frameError.empty() ? std::string()
                                      : "; last frame error: " +
                                            s.frameError) +
                ")";
        }
        return r;
    };

    auto retryable = [&](const SweepResult &r) {
        return r.failureReason == "crashed" ||
               r.failureReason == "oom" || r.failureReason == "hung";
    };

    auto reap = [&](std::size_t i, const WaitStatus &st) {
        Slot &s = slots[i];
        drainFrames(i); // pull buffered frames (often the result)
        if (s.fromFd >= 0) {
            close(s.fromFd);
            s.fromFd = -1;
        }
        s.pid = -1;
        --running;

        SweepResult r = classifyExit(s, st);
        const bool wantRetry =
            !cancelled && !r.ok() && retryable(r) &&
            s.attempt < opt_.maxAttemptsPerJob &&
            (opt_.retryBudget < 0 || retriesUsed < opt_.retryBudget);
        if (!r.ok() && !r.failureReason.empty())
            emit(i, s.attempt, r.failureReason, r.error, 0.0);
        if (wantRetry) {
            ++retriesUsed;
            const double delay =
                backoffDelaySec(opt_, s.job.name, s.attempt);
            s.readyAt = Clock::now() +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(delay));
            s.state = SlotState::Backoff;
            emit(i, s.attempt, "retry", r.failureReason, delay);
            return;
        }
        finalize(i, std::move(r));
    };

    while (done < slots.size()) {
        const bool cancelNow =
            opt_.cancelFlag &&
            opt_.cancelFlag->load(std::memory_order_relaxed);
        if (cancelNow && !cancelled) {
            cancelled = true;
            for (std::size_t i = 0; i < slots.size(); ++i) {
                Slot &s = slots[i];
                if (s.state == SlotState::Running) {
                    // Plain SIGTERM, no killReason: the worker's own
                    // graceful "cancelled" result is the right answer.
                    if (!s.termSent) {
                        signalChild(s.pid, SIGTERM);
                        s.termSent = true;
                        s.termAt = Clock::now();
                    }
                } else if (s.state == SlotState::Pending ||
                           s.state == SlotState::Backoff) {
                    SweepResult r;
                    r.attempts = s.attempt;
                    r.failureReason = "cancelled";
                    r.error = "sweep cancelled before the job ran";
                    finalize(i, std::move(r));
                }
            }
        }

        // Launch whatever fits.
        if (!cancelled) {
            const auto now = Clock::now();
            for (std::size_t i = 0;
                 i < slots.size() && running < maxWorkers; ++i) {
                Slot &s = slots[i];
                if (s.state == SlotState::Pending ||
                    (s.state == SlotState::Backoff && now >= s.readyAt))
                    spawn(i);
            }
        }

        // Wait for worker traffic (bounded so timers stay fresh).
        std::vector<pollfd> fds;
        std::vector<std::size_t> fdSlot;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].state == SlotState::Running &&
                slots[i].fromFd >= 0) {
                fds.push_back(pollfd{slots[i].fromFd, POLLIN, 0});
                fdSlot.push_back(i);
            }
        }
        if (!fds.empty()) {
            const int rc = poll(fds.data(),
                                static_cast<nfds_t>(fds.size()), 20);
            if (rc > 0) {
                for (std::size_t k = 0; k < fds.size(); ++k)
                    if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
                        drainFrames(fdSlot[k]);
            }
        } else if (done < slots.size()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }

        // Reap exits, enforce liveness and deadlines.
        for (std::size_t i = 0; i < slots.size(); ++i) {
            Slot &s = slots[i];
            if (s.state != SlotState::Running)
                continue;
            if (const auto st = pollChild(s.pid)) {
                reap(i, *st);
                continue;
            }
            if (s.termSent &&
                secondsSince(s.termAt) > opt_.gracePeriodSec) {
                signalChild(s.pid, SIGKILL);
                continue;
            }
            if (s.termSent)
                continue;
            if (!s.gotResult && secondsSince(s.lastBeat) > hungAfterSec)
                killWorker(i, "hung");
            else if (!s.gotResult && opt_.workerDeadlineSec > 0.0 &&
                     secondsSince(s.started) > opt_.workerDeadlineSec)
                killWorker(i, "walltime");
        }
    }

    std::vector<SweepResult> results;
    results.reserve(slots.size());
    for (Slot &s : slots)
        results.push_back(std::move(s.result));
    return results;
}

} // namespace cawa
