/**
 * @file
 * Full simulator configuration. Defaults model the paper's Table 1
 * (NVIDIA Fermi GTX480 as configured in GPGPU-sim 3.2.0, with the
 * per-SM L1D as 8 sets x 16 ways x 128 B = 16 KB).
 */

#ifndef CAWA_SIM_GPU_CONFIG_HH
#define CAWA_SIM_GPU_CONFIG_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/cacp_policy.hh"
#include "mem/l1d_cache.hh"
#include "mem/l2_cache.hh"
#include "sched/scheduler.hh"
#include "sim/trace.hh"

namespace cawa
{

enum class CachePolicyKind { Lru, Srrip, Ship, Cacp };

std::string cachePolicyKindName(CachePolicyKind kind);

/**
 * Deterministic fault-injection hooks for the failure-handling tests
 * and the cawa_fuzz tool. Each field names the ordinal (0-based,
 * counted per SM) of one internal event to corrupt; -1 (the default)
 * injects nothing. A fault wedges the machine in a characteristic way
 * so the watchdog's deadlock classification and the invariant auditor
 * can be exercised on demand. Never enable these outside tests.
 */
struct FaultInjection
{
    /** Swallow the Nth barrier arrival: the block deadlocks at bar. */
    std::int64_t dropBarrierArrival = -1;
    /** Drop the Nth L1 load-completion: leaks an LD/ST token. */
    std::int64_t dropLoadCompletion = -1;
    /**
     * XOR-flip one bit of byte N (mod file size) of the next written
     * checkpoint, then disarm. The flip lands anywhere in the file —
     * magic, section framing, CRC or payload — and restore must
     * reject the file in every case (cawa_fuzz proves it).
     */
    std::int64_t corruptCheckpointByte = -1;
    /**
     * Drain SM->interconnect traffic in reverse SM order during the
     * tick's serial phase 2. Deliberately breaks the fixed
     * arbitration order the parallel-SM determinism argument rests
     * on; exists so test_parallel_sm can prove the byte-identity
     * matrix is not vacuous (a reordered drain must change reports).
     */
    bool reverseSmDrainOrder = false;

    // ---- process-level supervision faults (sim/supervisor) ----
    //
    // These knobs make every supervision path deterministically
    // testable: once the run reaches workerFaultCycle, the armed
    // action fires *in the worker process*. They are inert unless a
    // worker fault handler is installed (setWorkerFaultHandler --
    // only the isolated worker entry does that), so an in-process
    // sweep with a knob accidentally armed simulates normally. None
    // of them can change simulated results before the fault cycle,
    // and like every fault knob they are excluded from the
    // checkpoint config signature, so a retried worker can resume
    // the dead worker's checkpoint after the supervisor disarms
    // them.

    /** raise() this signal (e.g. SIGKILL) at the fault cycle; 0 off. */
    int workerKillSignal = 0;
    /**
     * At the fault cycle, stop sending heartbeats and spin forever:
     * the worker looks alive to the kernel but dead to the
     * supervisor, which must classify it "hung" and escalate
     * SIGTERM -> SIGKILL (the spin ignores SIGTERM by design).
     */
    bool workerStallHeartbeat = false;
    /** _exit() with this code at the fault cycle; -1 off. */
    int workerExitCode = -1;
    /** Simulated cycle at which the armed worker fault fires. */
    std::int64_t workerFaultCycle = 0;
    /**
     * The fault stays armed for this many worker attempts; the
     * supervisor disarms the knobs on later respawns so a retried
     * job can complete (the default makes every injected fault a
     * one-shot).
     */
    int workerFaultAttempts = 1;

    bool any() const
    {
        return dropBarrierArrival >= 0 || dropLoadCompletion >= 0;
    }

    bool anyWorkerFault() const
    {
        return workerKillSignal > 0 || workerStallHeartbeat ||
               workerExitCode >= 0;
    }
};

/**
 * Process-level worker fault dispatch: the isolated worker entry
 * installs a handler (supervisor.cc) and the Gpu run loop invokes it
 * once the armed fault cycle is reached. Without a handler the
 * worker fault knobs are inert, so in-process runs can never be
 * killed by a stray knob. Not thread-local: a worker process runs
 * exactly one job.
 */
using WorkerFaultHandler = void (*)(const FaultInjection &faults);
void setWorkerFaultHandler(WorkerFaultHandler handler);
WorkerFaultHandler workerFaultHandler();

/**
 * CAWA_SIM_THREADS=N overrides GpuConfig::simThreads (purely a speed
 * knob; reports are byte-identical at any value). An unset or empty
 * variable returns @p fallback; anything malformed or outside
 * [1, 256] raises SimError (kind Config) naming the variable and the
 * accepted range -- an out-of-range request is a user error, not
 * something to silently clamp or ignore.
 */
int simThreadsFromEnv(int fallback);

struct GpuConfig
{
    // SM organization (Table 1).
    int numSms = 15;
    int maxWarpsPerSm = 48;
    int maxBlocksPerSm = 8;
    int numSchedulersPerSm = 2;
    int warpSize = 32;
    int regFileSize = 32768;        ///< registers per SM
    int sharedMemBytes = 48 * 1024; ///< shared memory per SM

    // Execution latencies.
    Cycle aluLatency = 4;
    Cycle sfuLatency = 16;
    Cycle sharedMemLatency = 24;

    // L1 data cache (16KB: 8 sets / 16 ways / 128B lines).
    L1DConfig l1d;
    int l1PortsPerCycle = 1;    ///< transactions the L1 accepts/cycle
    int ldstQueueSize = 64;

    // Interconnect, L2 (768KB: 6 banks x 64 sets x 16 ways x 128B)
    // and DRAM. One-way icnt latency + L2 service = 120-cycle minimum
    // L2 round trip; + DRAM latency = ~220-cycle minimum DRAM trip.
    L2Config l2;
    Cycle icntLatency = 50;
    int icntWidth = 8;
    Cycle dramLatency = 120;
    int dramServiceInterval = 2;

    // Policy selection.
    SchedulerKind scheduler = SchedulerKind::Lrr;
    CachePolicyKind l1Policy = CachePolicyKind::Lru;
    CacpConfig cacp;

    // CPL configuration.
    double criticalFraction = 0.125;///< top fraction => critical warp
    int cplQuantShift = 5;          ///< priority bucket = 2^shift instructions
    bool cplUseInstTerm = true;
    bool cplUseStallTerm = true;
    Cycle cplSampleInterval = 512;  ///< accuracy sampling period

    // Tracing (Fig 12).
    std::int64_t traceBlockId = -1; ///< record criticality trace
    Cycle traceSampleInterval = 64;

    /**
     * Structured event tracing (sim/trace.hh): when enabled, every
     * component records cycle-stamped events into a bounded
     * drop-oldest ring that cawa_trace exports as Chrome trace_event
     * JSON or JSONL. A pure observer — SimReports are byte-identical
     * with the knob on or off, and it is excluded from the
     * checkpoint config signature.
     */
    TraceConfig trace;

    // Safety valve.
    std::uint64_t maxCycles = 100'000'000;

    /**
     * Deadlock watchdog cadence (cycles); 0 disables. At every
     * boundary the top level runs a *provable-wedge* check: the run is
     * declared dead only when no component holds any event that could
     * ever change machine state again (no ready warp, empty writeback
     * and LD/ST queues, idle interconnect/L2/DRAM, no placeable
     * block). The check is read-only and exact — a healthy run can
     * never trip it — so it is safe to leave on by default; on trigger
     * the run finishes early with SimReport::exitStatus = Deadlock and
     * a structured diagnostic dump instead of burning to maxCycles.
     */
    Cycle watchdogInterval = 100'000;

    /**
     * Runtime invariant auditing depth (overridden by CAWA_CHECK in
     * the environment): 0 = off (default), 1 = cheap conservation
     * checks (token pool, warp-slot/register/smem occupancy, barrier
     * accounting), 2 = full audit adding the lazy-stall-counter
     * recount, scoreboard-vs-inflight-writeback cross-check and
     * SIMT-stack sanity. Violations raise SimError (kind Invariant)
     * with cycle/SM/warp context. Audits are read-only: simulation
     * results are bit-identical at every level.
     */
    int checkLevel = 0;

    /** Cycles between invariant audits when checkLevel > 0. */
    Cycle auditInterval = 4096;

    /** Test-only fault hooks (see FaultInjection). */
    FaultInjection faults;

    /**
     * Event-driven fast-forward: when no SM can issue, jump the clock
     * to the next scheduled event (writeback, memory response,
     * sampling boundary, ...) instead of ticking through the idle
     * stretch, bulk-charging the skipped stall cycles. Every SimReport
     * field is bit-identical with the flag on or off; disable (or set
     * CAWA_FAST_FORWARD=0 in the environment) only to debug the
     * simulator cycle by cycle.
     */
    bool fastForward = true;

    /**
     * Hot-path phase timing: when set, each SM accumulates wall-clock
     * seconds per tick section (scheduler, L1/LDST, stall accounting,
     * CPL/trace sampling) and the Gpu times the shared memory system
     * (icnt + L2 + DRAM + fills); totals land in the SimReport's
     * phase*Seconds fields. A pure observer — simulated results are
     * bit-identical with the flag on or off, the numbers never enter
     * the JSON report or checkpoint formats, and the flag is excluded
     * from the checkpoint config signature. Used by bench_sim_speed's
     * breakdown run; costs a few clock reads per SM tick, so leave it
     * off otherwise.
     */
    bool profilePhases = false;

    /**
     * Worker threads for the phase-1 parallel SM tick (1 = the
     * serial loop, the default). SMs only interact through the
     * interconnect, which is drained serially in fixed SM order
     * regardless of the thread count, so every SimReport byte is
     * identical at any setting (enforced by test_parallel_sm). Like
     * fastForward, the knob is excluded from the checkpoint config
     * signature: checkpoints cross serial and parallel runs freely.
     * CAWA_SIM_THREADS in the environment overrides this value.
     */
    int simThreads = 1;

    /**
     * Periodic checkpointing: every checkpointInterval simulated
     * cycles (0 = off) Gpu::run() snapshots the full machine state
     * to checkpointPath (atomic tmp+rename, so a crash mid-write
     * never destroys the previous checkpoint). Restoring resumes the
     * run cycle-exactly: the final SimReport is byte-identical to an
     * uninterrupted run.
     */
    Cycle checkpointInterval = 0;
    std::string checkpointPath;

    /**
     * Observer invoked after every successful checkpoint write
     * (periodic, wall-clock-expiry and cancellation checkpoints
     * alike) with the file path and the snapshot cycle. The isolated
     * sweep worker uses it to stream `checkpoint-written` progress
     * frames to its supervisor. Pure observer: excluded from the
     * checkpoint config signature and never serialized.
     */
    std::function<void(const std::string &path, Cycle cycle)>
        checkpointWrittenHook;

    /**
     * Per-job wall-clock budget in seconds (0 = off). When exceeded,
     * Gpu::run() writes a final checkpoint (if checkpointPath is
     * set) and throws SimError (kind Walltime), which the sweep
     * layer reports as a `walltime` failure without retrying.
     */
    double wallClockLimitSec = 0.0;

    /**
     * Cooperative cancellation (graceful Ctrl-C): when non-null and
     * set, Gpu::run() writes a final checkpoint (if checkpointPath
     * is set) and throws SimError (kind Cancelled) at the next
     * check boundary. Not owned; must outlive the run.
     */
    const std::atomic<bool> *cancelFlag = nullptr;

    /** Paper Table 1 configuration (these defaults). */
    static GpuConfig fermiGtx480() { return GpuConfig{}; }

    /** Multi-line human-readable description (bench_table1). */
    std::string describe() const;

    /**
     * Check every field for usability and return one actionable
     * message per problem (empty = valid). Run by tools and the bench
     * harness before any Gpu is constructed so bad configurations are
     * reported as readable errors instead of constructor-time asserts.
     */
    std::vector<std::string> validate() const;

    /** Throw SimError (kind Config) listing every validate() issue. */
    void validateOrThrow() const;
};

/**
 * CRC-32 over every *semantic* knob of @p cfg -- the fields that can
 * change simulated results. Purely observational knobs (fastForward,
 * simThreads, trace, checkLevel/auditInterval, profilePhases,
 * checkpoint wiring, wallClockLimitSec, cancelFlag, fault hooks) are
 * deliberately excluded: two configs that differ only there produce
 * byte-identical reports, so they must share one checkpoint identity
 * and one service-cache entry. @p withOracle folds in whether a CAWS
 * oracle table will be attached (an oracle changes scheduler behavior
 * even under the same GpuConfig). Gpu::configSignature() and the
 * cawad result cache both key off this value.
 */
std::uint32_t configSignature(const GpuConfig &cfg, bool withOracle);

} // namespace cawa

#endif // CAWA_SIM_GPU_CONFIG_HH
