/**
 * @file
 * Full simulator configuration. Defaults model the paper's Table 1
 * (NVIDIA Fermi GTX480 as configured in GPGPU-sim 3.2.0, with the
 * per-SM L1D as 8 sets x 16 ways x 128 B = 16 KB).
 */

#ifndef CAWA_SIM_GPU_CONFIG_HH
#define CAWA_SIM_GPU_CONFIG_HH

#include <string>

#include "mem/cacp_policy.hh"
#include "mem/l1d_cache.hh"
#include "mem/l2_cache.hh"
#include "sched/scheduler.hh"

namespace cawa
{

enum class CachePolicyKind { Lru, Srrip, Ship, Cacp };

std::string cachePolicyKindName(CachePolicyKind kind);

struct GpuConfig
{
    // SM organization (Table 1).
    int numSms = 15;
    int maxWarpsPerSm = 48;
    int maxBlocksPerSm = 8;
    int numSchedulersPerSm = 2;
    int warpSize = 32;
    int regFileSize = 32768;        ///< registers per SM
    int sharedMemBytes = 48 * 1024; ///< shared memory per SM

    // Execution latencies.
    Cycle aluLatency = 4;
    Cycle sfuLatency = 16;
    Cycle sharedMemLatency = 24;

    // L1 data cache (16KB: 8 sets / 16 ways / 128B lines).
    L1DConfig l1d;
    int l1PortsPerCycle = 1;    ///< transactions the L1 accepts/cycle
    int ldstQueueSize = 64;

    // Interconnect, L2 (768KB: 6 banks x 64 sets x 16 ways x 128B)
    // and DRAM. One-way icnt latency + L2 service = 120-cycle minimum
    // L2 round trip; + DRAM latency = ~220-cycle minimum DRAM trip.
    L2Config l2;
    Cycle icntLatency = 50;
    int icntWidth = 8;
    Cycle dramLatency = 120;
    int dramServiceInterval = 2;

    // Policy selection.
    SchedulerKind scheduler = SchedulerKind::Lrr;
    CachePolicyKind l1Policy = CachePolicyKind::Lru;
    CacpConfig cacp;

    // CPL configuration.
    double criticalFraction = 0.125;///< top fraction => critical warp
    int cplQuantShift = 5;          ///< priority bucket = 2^shift instructions
    bool cplUseInstTerm = true;
    bool cplUseStallTerm = true;
    Cycle cplSampleInterval = 512;  ///< accuracy sampling period

    // Tracing (Fig 12).
    std::int64_t traceBlockId = -1; ///< record criticality trace
    Cycle traceSampleInterval = 64;

    // Safety valve.
    std::uint64_t maxCycles = 100'000'000;

    /**
     * Event-driven fast-forward: when no SM can issue, jump the clock
     * to the next scheduled event (writeback, memory response,
     * sampling boundary, ...) instead of ticking through the idle
     * stretch, bulk-charging the skipped stall cycles. Every SimReport
     * field is bit-identical with the flag on or off; disable (or set
     * CAWA_FAST_FORWARD=0 in the environment) only to debug the
     * simulator cycle by cycle.
     */
    bool fastForward = true;

    /** Paper Table 1 configuration (these defaults). */
    static GpuConfig fermiGtx480() { return GpuConfig{}; }

    /** Multi-line human-readable description (bench_table1). */
    std::string describe() const;
};

} // namespace cawa

#endif // CAWA_SIM_GPU_CONFIG_HH
