/**
 * @file
 * Process-isolated sweep supervisor: executes each sweep job in a
 * forked worker subprocess instead of a thread-pool task, so a real
 * SIGSEGV, OOM kill or runaway job inside one worker can never take
 * down the sweep or any in-flight result.
 *
 * Protocol: the parent ships the job to the worker (fork mode passes
 * it by inheritance; exec mode writes one length-prefixed JSON spec
 * frame to the worker's stdin) and reads back a stream of
 * length-prefixed JSON frames on the worker's stdout:
 *
 *   {"type":"heartbeat","seq":N}             liveness, sent on a timer
 *   {"type":"checkpoint-written",
 *    "path":"...","cycle":N}                 progress, per snapshot
 *   {"type":"result", ...}                   terminal, one per worker
 *
 * The supervisor enforces per-worker setrlimit caps (memory, CPU)
 * and a wall-clock deadline, declares a worker dead on missed
 * heartbeats, escalates SIGTERM -> SIGKILL, and retries failed
 * workers with capped exponential backoff and deterministic jitter
 * (seeded RNG, so a given sweep always produces the same retry
 * schedule) against a per-sweep retry budget. Workers resume from
 * their job's checkpoint when one exists, so a retry after SIGKILL
 * mid-job does not restart from cycle 0.
 *
 * Failure classification (SweepResult::failureReason and the journal
 * status): "crashed" (fatal signal or unexplained exit), "oom"
 * (allocation failure under the memory cap), "hung" (missed
 * heartbeats), "walltime" (deadline or CPU cap), "cancelled"
 * (cooperative shutdown). Only crashed/oom/hung are retried --
 * walltime and cancelled would burn the same budget again, and
 * result-level outcomes (timeout, deadlock, verify-failed) are
 * deterministic.
 *
 * Results come back in submission order with byte-identical reports
 * to an in-process run: the worker serializes its SimReport as a
 * full-fidelity cawa-simreport-v3 document whose round-trip is exact
 * (tests/test_supervisor.cc proves identity across kills, retries
 * and checkpoint-resumed workers).
 *
 * This wire protocol is deliberately the seed of the cawad job
 * protocol (ROADMAP: simulation-as-a-service).
 */

#ifndef CAWA_SIM_SUPERVISOR_HH
#define CAWA_SIM_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/subprocess.hh"
#include "sim/sweep.hh"

namespace cawa
{

class JsonValue;

/**
 * Capped-exponential backoff with deterministic jitter, shared by the
 * per-job supervisor and the shard coordinator: a given (seed, name,
 * attempt) always yields the same delay, so retry schedules are
 * reproducible run to run.
 */
struct BackoffPolicy
{
    double baseSec = 0.05;
    double capSec = 5.0;
    std::uint64_t seed = 1;
};

/**
 * Deterministic backoff delay for @p attempt of @p name (attempt
 * counts executions so far, >= 1): min(cap, base * 2^(attempt-1))
 * scaled by a jitter factor in [0.75, 1.25) drawn from an RNG seeded
 * with (seed, name, attempt).
 */
double backoffDelaySec(const BackoffPolicy &policy,
                       const std::string &name, int attempt);

/** JSON string literal (quotes + escapes) for frame serializers. */
std::string frameJsonQuote(const std::string &s);

struct SupervisorOptions
{
    /** Concurrent worker subprocesses; <= 0 means one per job slot
     *  up to hardware concurrency. */
    int workers = 0;

    /** Worker heartbeat cadence (seconds, real time). */
    double heartbeatIntervalSec = 0.25;
    /**
     * A worker silent for heartbeatMissLimit consecutive intervals
     * is declared hung and killed. Any frame counts as liveness.
     */
    int heartbeatMissLimit = 20;
    /** SIGTERM -> SIGKILL escalation delay (seconds). */
    double gracePeriodSec = 2.0;
    /** Per-attempt wall-clock deadline (seconds); 0 disables. */
    double workerDeadlineSec = 0.0;

    /** Worker executions allowed per job (first run + retries). */
    int maxAttemptsPerJob = 3;
    /**
     * Sweep-wide cap on process-level retries (respawns after a
     * crash/oom/hang), shared by all jobs; -1 = unlimited. Once
     * exhausted, further process failures are final.
     */
    int retryBudget = -1;

    /** Exponential backoff: base * 2^(attempt-1), capped. */
    double backoffBaseSec = 0.05;
    double backoffCapSec = 5.0;
    /**
     * Seed for the deterministic backoff jitter. A given (seed, job
     * name, attempt) always yields the same delay, so retry
     * schedules are reproducible run to run.
     */
    std::uint64_t backoffSeed = 1;

    /** setrlimit caps applied in each worker. */
    ChildLimits limits;

    /** In-worker runSweepJob attempts (the sweep --retries knob). */
    int jobMaxAttempts = 1;

    /**
     * Cooperative shutdown: when set, running workers get SIGTERM
     * (each writes a final checkpoint and reports "cancelled") and
     * unstarted jobs are finalized as cancelled without spawning.
     */
    const std::atomic<bool> *cancelFlag = nullptr;

    /**
     * Exec mode: when workerArgv0 is non-empty the supervisor
     * fork/execs `workerArgv0 --worker` per job and ships
     * jobSpec(index, job, attempt) as one frame on the worker's
     * stdin. When empty (the default) the worker is a plain fork
     * that inherits the SweepJob closures -- the mode unit tests
     * use, and the fallback when the spec is not serializable.
     */
    std::string workerArgv0;
    std::function<std::string(std::size_t index, const SweepJob &job,
                              int attempt)>
        jobSpec;

    /**
     * Observer for supervision events ("spawn", "crashed", "oom",
     * "hung", "walltime", "retry", "result"), used by tests and
     * verbose logging. detail carries the classification message;
     * delaySec is the scheduled backoff for "retry" events.
     */
    std::function<void(std::size_t index, int attempt,
                       const std::string &event,
                       const std::string &detail, double delaySec)>
        onEvent;
};

/**
 * Convenience overload drawing the policy fields from
 * SupervisorOptions (backoffBaseSec/backoffCapSec/backoffSeed).
 */
double backoffDelaySec(const SupervisorOptions &opt,
                       const std::string &jobName, int attempt);

class SweepSupervisor
{
  public:
    explicit SweepSupervisor(SupervisorOptions opt);

    /**
     * Run every job in an isolated worker subprocess and return
     * results indexed like @p jobs (submission order). @p on_done
     * fires in completion order as jobs finalize, exactly once per
     * job -- a killed worker that will be retried is not "done".
     * Jobs are taken by value: the supervisor rewrites
     * resumeFromCheckpoint and disarms worker-fault knobs between
     * attempts.
     */
    std::vector<SweepResult> run(std::vector<SweepJob> jobs,
                                 const SweepEngine::JobDone &on_done =
                                     nullptr);

    const SupervisorOptions &options() const { return opt_; }

  private:
    SupervisorOptions opt_;
};

/**
 * Worker-side entry: run @p job in the calling (child) process,
 * streaming heartbeat / checkpoint-written / result frames to
 * @p outFd. Installs the SIGTERM/SIGINT graceful-shutdown handler
 * (final checkpoint + "cancelled" result) and the worker fault
 * handler that makes the faults.worker* knobs fire. @p attempt is
 * the 1-based process attempt, echoed in the result frame. Returns
 * the worker exit code (0 once the result frame is written).
 *
 * Used by the fork-mode child directly and by the hidden
 * `cawa_sweep --worker` exec entrypoint.
 */
int runSweepWorker(const SweepJob &job, int jobMaxAttempts, int outFd,
                   double heartbeatIntervalSec, int attempt);

/** Serialize @p result as the worker protocol's result frame. */
std::string resultFrameJson(const SweepResult &result, int attempt);

/**
 * Parse a result frame back into a SweepResult; throws
 * std::runtime_error (with context) on malformed frames.
 */
SweepResult resultFromFrame(const std::string &payload);

/**
 * Extract the SweepResult fields from an already-parsed frame that
 * carries the resultFrameJson() field set (the coordinator's
 * job-result frames embed them next to index/epoch routing fields).
 */
SweepResult resultFromFrameFields(const JsonValue &doc);

} // namespace cawa

#endif // CAWA_SIM_SUPERVISOR_HH
