#include "sim/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/sim_error.hh"
#include "sim/report_json.hh"

namespace cawa
{

std::string
entryStatus(const SweepResult &result)
{
    if (!result.failureReason.empty())
        return result.failureReason;
    if (!result.error.empty())
        return "error";
    if (!result.verified)
        return "verify-failed";
    return exitStatusName(result.report.exitStatus);
}

namespace
{

std::string
firstLine(const std::string &text)
{
    const std::size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

} // namespace

JournalEntry
makeJournalEntry(const std::string &job, const SweepResult &result)
{
    JournalEntry entry;
    entry.job = job;
    entry.status = entryStatus(result);
    if (entry.status == "completed")
        entry.status = "ok";
    entry.error = firstLine(result.error);
    entry.attempts = result.attempts;
    return entry;
}

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
journalLine(const JournalEntry &entry)
{
    std::string out = "{\"job\":";
    appendJsonString(out, entry.job);
    out += ",\"status\":";
    appendJsonString(out, entry.status);
    out += ",\"attempts\":";
    out += std::to_string(entry.attempts);
    if (!entry.error.empty()) {
        out += ",\"error\":";
        appendJsonString(out, entry.error);
    }
    // Sharded-sweep fields are elided for unsharded entries so the
    // journal format stays byte-identical for the single-process
    // supervisor path.
    if (entry.epoch != 0) {
        out += ",\"epoch\":";
        out += std::to_string(entry.epoch);
    }
    if (entry.shard >= 0) {
        out += ",\"shard\":";
        out += std::to_string(entry.shard);
    }
    out += "}";
    return out;
}

std::vector<JournalEntry>
readJournal(const std::string &path)
{
    std::vector<JournalEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries; // no journal yet: nothing recorded
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        if (line.empty())
            continue;
        try {
            const JsonValue v = parseJson(line);
            JournalEntry entry;
            entry.job = v.at("job").asString();
            entry.status = v.at("status").asString();
            entry.attempts = static_cast<int>(v.at("attempts").asI64());
            if (v.has("error"))
                entry.error = v.at("error").asString();
            if (v.has("epoch"))
                entry.epoch = static_cast<int>(v.at("epoch").asI64());
            if (v.has("shard"))
                entry.shard = static_cast<int>(v.at("shard").asI64());
            entries.push_back(std::move(entry));
        } catch (const std::exception &e) {
            // A torn append (crash mid-write) or hand damage: keep
            // the intact prefix, note what was dropped.
            std::fprintf(stderr,
                         "warning: %s:%zu: skipping unreadable journal "
                         "line (%s)\n",
                         path.c_str(), lineno, e.what());
        }
    }
    return entries;
}

std::vector<SweepJob>
filterResumeJobs(const std::vector<SweepJob> &jobs,
                 const std::vector<JournalEntry> &journal)
{
    // Later entries win: a job that failed once and succeeded on a
    // resumed run is done.
    std::unordered_map<std::string, bool> done;
    for (const JournalEntry &entry : journal)
        done[entry.job] = entry.ok();
    std::vector<SweepJob> remaining;
    for (const SweepJob &job : jobs) {
        const auto it = done.find(job.name);
        if (it == done.end() || !it->second)
            remaining.push_back(job);
    }
    return remaining;
}

std::vector<JournalEntry>
compactEntries(const std::vector<JournalEntry> &entries)
{
    // Winner per job: highest ownership epoch; equal epochs fall back
    // to the later position (the plain latest-wins of an unsharded
    // journal, where every epoch is 0). Winners are emitted in the
    // order of their winning entry so the compacted journal reads
    // like the history it replaces: a retried-late job sorts late.
    std::unordered_map<std::string, std::size_t> winner;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto it = winner.find(entries[i].job);
        if (it == winner.end() ||
            entries[i].epoch >= entries[it->second].epoch)
            winner[entries[i].job] = i;
    }
    std::vector<JournalEntry> out;
    out.reserve(winner.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (winner.at(entries[i].job) == i)
            out.push_back(entries[i]);
    return out;
}

std::vector<JournalEntry>
mergeJournals(const std::vector<std::vector<JournalEntry>> &journals,
              const std::vector<std::string> *submissionOrder)
{
    std::vector<JournalEntry> all;
    for (const std::vector<JournalEntry> &journal : journals)
        all.insert(all.end(), journal.begin(), journal.end());
    std::vector<JournalEntry> merged = compactEntries(all);
    if (!submissionOrder)
        return merged;
    // Deterministic submission-order report: known jobs in matrix
    // order, stragglers (jobs journaled but no longer in the matrix)
    // after them in merge order.
    std::unordered_map<std::string, std::size_t> rank;
    rank.reserve(submissionOrder->size());
    for (std::size_t i = 0; i < submissionOrder->size(); ++i)
        rank.emplace((*submissionOrder)[i], i);
    std::vector<JournalEntry> out;
    out.reserve(merged.size());
    std::vector<const JournalEntry *> known(submissionOrder->size(),
                                            nullptr);
    std::vector<const JournalEntry *> unknown;
    for (const JournalEntry &entry : merged) {
        const auto it = rank.find(entry.job);
        if (it != rank.end() && !known[it->second])
            known[it->second] = &entry;
        else if (it == rank.end())
            unknown.push_back(&entry);
    }
    for (const JournalEntry *entry : known)
        if (entry)
            out.push_back(*entry);
    for (const JournalEntry *entry : unknown)
        out.push_back(*entry);
    return out;
}

std::string
shardJournalPath(const std::string &masterPath, int slot)
{
    return masterPath + ".shard" + std::to_string(slot);
}

std::size_t
attachResumeCheckpoints(std::vector<SweepJob> &jobs,
                        const std::string &checkpointDir)
{
    static const std::unordered_map<std::string, std::string> none;
    return attachResumeCheckpoints(jobs, checkpointDir, none);
}

std::size_t
attachResumeCheckpoints(
    std::vector<SweepJob> &jobs, const std::string &checkpointDir,
    const std::unordered_map<std::string, std::string> &preferred)
{
    std::size_t attached = 0;
    for (SweepJob &job : jobs) {
        std::string ckpt;
        const auto it = preferred.find(job.name);
        if (it != preferred.end() &&
            access(it->second.c_str(), R_OK) == 0)
            ckpt = it->second;
        if (ckpt.empty()) {
            ckpt = job.cfg.checkpointPath;
            if (ckpt.empty() && !checkpointDir.empty())
                ckpt = checkpointDir + "/" + job.name + ".ckpt";
            if (!ckpt.empty() && access(ckpt.c_str(), R_OK) != 0)
                ckpt.clear();
        }
        if (ckpt.empty())
            continue;
        job.resumeFromCheckpoint = ckpt;
        ++attached;
    }
    return attached;
}

namespace
{

[[noreturn]] void
journalFail(const std::string &path, const std::string &what)
{
    throw SimError(SimErrorKind::Journal,
                   path + ": " + what +
                       (errno ? std::string(": ") + std::strerror(errno)
                              : std::string()));
}

int
openLocked(const std::string &path)
{
    // O_CLOEXEC: exec'd worker children must never inherit the
    // journal fd -- an orphaned worker outliving a crashed daemon
    // would keep the flock and wedge every restart until it exited.
    const int fd = ::open(path.c_str(),
                          O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0)
        journalFail(path, "cannot open journal");
    if (flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        errno = 0;
        journalFail(path,
                    "journal is locked by another cawa_sweep -- two "
                    "writers on one journal would interleave appends; "
                    "wait for the other run or use a different "
                    "--journal file");
    }
    return fd;
}

void
writeAllOrFail(int fd, const std::string &path, const char *data,
               std::size_t n)
{
    std::size_t done = 0;
    while (done < n) {
        const ssize_t wrote = ::write(fd, data + done, n - done);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            journalFail(path, "journal write failed");
        }
        done += static_cast<std::size_t>(wrote);
    }
}

} // namespace

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        ::close(fd_); // releases the flock
}

void
JournalWriter::open(const std::string &path)
{
    close();
    fd_ = openLocked(path);
    path_ = path;

    // A crash mid-append can leave the file without a trailing
    // newline; terminate that torn line so new records don't merge
    // into it (the reader skips it with a warning either way).
    struct stat st;
    if (fstat(fd_, &st) == 0 && st.st_size > 0) {
        char last = '\n';
        if (pread(fd_, &last, 1, st.st_size - 1) == 1 && last != '\n')
            writeAllOrFail(fd_, path_, "\n", 1);
    }
}

void
JournalWriter::append(const JournalEntry &entry)
{
    appendLine(journalLine(entry));
}

void
JournalWriter::appendLine(const std::string &line)
{
    if (fd_ < 0)
        return;
    const std::string rec = line + "\n";
    writeAllOrFail(fd_, path_, rec.data(), rec.size());
    // One fsync per record: an entry the caller saw reported is on
    // disk even if the process dies on the next cycle.
    fsync(fd_);
}

void
JournalWriter::rewrite(const std::vector<JournalEntry> &entries)
{
    if (fd_ < 0)
        return;
    const std::string tmp = path_ + ".tmp";
    const int tmpFd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tmpFd < 0)
        journalFail(tmp, "cannot open journal rewrite temp");
    std::string body;
    for (const JournalEntry &entry : entries) {
        body += journalLine(entry);
        body += '\n';
    }
    try {
        writeAllOrFail(tmpFd, tmp, body.data(), body.size());
    } catch (...) {
        ::close(tmpFd);
        ::unlink(tmp.c_str());
        throw;
    }
    // fsync *before* rename: the new content must be durable before
    // it takes the journal's name, or a crash could leave an empty
    // renamed file where the old journal used to be.
    fsync(tmpFd);
    ::close(tmpFd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        ::unlink(tmp.c_str());
        journalFail(path_, "journal rewrite rename failed");
    }
    // The lock lives on the old (now unlinked) inode; move it to the
    // file the path names again.
    const int newFd = openLocked(path_);
    ::close(fd_);
    fd_ = newFd;
}

void
JournalWriter::close()
{
    if (fd_ < 0)
        return;
    fsync(fd_);
    ::close(fd_);
    fd_ = -1;
    path_.clear();
}

} // namespace cawa
