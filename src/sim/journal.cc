#include "sim/journal.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "sim/report_json.hh"

namespace cawa
{

std::string
entryStatus(const SweepResult &result)
{
    if (!result.failureReason.empty())
        return result.failureReason;
    if (!result.error.empty())
        return "error";
    if (!result.verified)
        return "verify-failed";
    return exitStatusName(result.report.exitStatus);
}

namespace
{

std::string
firstLine(const std::string &text)
{
    const std::size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

} // namespace

JournalEntry
makeJournalEntry(const std::string &job, const SweepResult &result)
{
    JournalEntry entry;
    entry.job = job;
    entry.status = entryStatus(result);
    if (entry.status == "completed")
        entry.status = "ok";
    entry.error = firstLine(result.error);
    entry.attempts = result.attempts;
    return entry;
}

namespace
{

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
journalLine(const JournalEntry &entry)
{
    std::string out = "{\"job\":";
    appendJsonString(out, entry.job);
    out += ",\"status\":";
    appendJsonString(out, entry.status);
    out += ",\"attempts\":";
    out += std::to_string(entry.attempts);
    if (!entry.error.empty()) {
        out += ",\"error\":";
        appendJsonString(out, entry.error);
    }
    out += "}";
    return out;
}

std::vector<JournalEntry>
readJournal(const std::string &path)
{
    std::vector<JournalEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries; // no journal yet: nothing recorded
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        if (line.empty())
            continue;
        try {
            const JsonValue v = parseJson(line);
            JournalEntry entry;
            entry.job = v.at("job").asString();
            entry.status = v.at("status").asString();
            entry.attempts = static_cast<int>(v.at("attempts").asI64());
            if (v.has("error"))
                entry.error = v.at("error").asString();
            entries.push_back(std::move(entry));
        } catch (const std::exception &e) {
            // A torn append (crash mid-write) or hand damage: keep
            // the intact prefix, note what was dropped.
            std::fprintf(stderr,
                         "warning: %s:%zu: skipping unreadable journal "
                         "line (%s)\n",
                         path.c_str(), lineno, e.what());
        }
    }
    return entries;
}

std::vector<SweepJob>
filterResumeJobs(const std::vector<SweepJob> &jobs,
                 const std::vector<JournalEntry> &journal)
{
    // Later entries win: a job that failed once and succeeded on a
    // resumed run is done.
    std::unordered_map<std::string, bool> done;
    for (const JournalEntry &entry : journal)
        done[entry.job] = entry.ok();
    std::vector<SweepJob> remaining;
    for (const SweepJob &job : jobs) {
        const auto it = done.find(job.name);
        if (it == done.end() || !it->second)
            remaining.push_back(job);
    }
    return remaining;
}

} // namespace cawa
