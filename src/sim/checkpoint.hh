/**
 * @file
 * Checkpoint container format `cawa-ckpt-v1`.
 *
 * A checkpoint file is a magic string followed by a sequence of named
 * sections, each carrying its own CRC-32:
 *
 *     "cawa-ckpt-v1"                 12 raw bytes
 *     u32  sectionCount
 *     per section:
 *         u32  nameLen, name bytes
 *         u64  payloadSize
 *         u32  crc32(payload)
 *         payload bytes
 *     (end of file -- trailing bytes are rejected)
 *
 * The framing carries no per-field redundancy, but every single-bit
 * corruption anywhere in the file is still detected on read: a flip
 * in a payload fails that section's CRC; a flip in the magic, the
 * section count, a name, a size or a stored CRC makes the framing
 * parse fail (bad magic / truncation / trailing bytes) or the CRC
 * comparison fail. cawa_fuzz proves this byte by byte.
 *
 * Section payloads are produced and consumed by the components' own
 * save()/load() methods via OutArchive/InArchive (common/serialize.hh);
 * this layer only frames, checksums and moves bytes to/from disk.
 */

#ifndef CAWA_SIM_CHECKPOINT_HH
#define CAWA_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hh"

namespace cawa
{

/** File magic; also doubles as the format version tag. */
inline constexpr char kCheckpointMagic[] = "cawa-ckpt-v1";
inline constexpr std::size_t kCheckpointMagicLen = 12;

/** Assembles a checkpoint image from named section payloads. */
class CheckpointWriter
{
  public:
    /** Append @p ar's bytes as section @p name (order is preserved). */
    void add(const std::string &name, const OutArchive &ar);

    /** Serialize magic + all sections into one file image. */
    std::vector<std::uint8_t> finish() const;

  private:
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        sections_;
};

/**
 * Parses and validates a checkpoint image. The constructor checks the
 * magic, walks every section header, verifies every payload CRC and
 * rejects trailing bytes; any defect throws SimError (kind
 * Checkpoint) naming the section and byte offset. The source buffer
 * must outlive the reader (payload views are borrowed, not copied).
 */
class CheckpointReader
{
  public:
    CheckpointReader(const std::uint8_t *data, std::size_t size);

    explicit CheckpointReader(const std::vector<std::uint8_t> &image)
        : CheckpointReader(image.data(), image.size())
    {}

    /**
     * Open section @p name for reading. Throws SimError (kind
     * Checkpoint) when the section does not exist -- a section list
     * mismatch means the file was written by an incompatible build.
     */
    InArchive open(const std::string &name) const;

    bool has(const std::string &name) const;

    /** Section names in file order (diagnostics). */
    std::vector<std::string> sectionNames() const;

  private:
    struct Section
    {
        std::string name;
        const std::uint8_t *data;
        std::size_t size;
    };

    std::vector<Section> sections_;
};

/**
 * Write @p image to @p path atomically: the bytes go to a `.tmp`
 * sibling first and are renamed over @p path only after a successful
 * write+flush, so a crash mid-write can never destroy an existing
 * good checkpoint. When @p corrupt_byte >= 0, one bit of byte
 * (corrupt_byte mod image size) is XOR-flipped before writing --
 * the fault-injection hook behind FaultInjection::corruptCheckpointByte.
 * Throws SimError (kind Checkpoint) on any I/O failure.
 */
void writeCheckpointFile(const std::string &path,
                         const std::vector<std::uint8_t> &image,
                         std::int64_t corrupt_byte = -1);

/** Read the whole file; throws SimError (kind Checkpoint) on failure. */
std::vector<std::uint8_t> readCheckpointFile(const std::string &path);

} // namespace cawa

#endif // CAWA_SIM_CHECKPOINT_HH
