/**
 * @file
 * Top-level GPU: owns the SM cores, interconnect, L2, DRAM and the
 * block dispatcher, and runs a kernel launch to completion.
 */

#ifndef CAWA_SIM_GPU_HH
#define CAWA_SIM_GPU_HH

#include <memory>
#include <vector>

#include "isa/kernel.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l2_cache.hh"
#include "mem/memory_image.hh"
#include "sim/gpu_config.hh"
#include "sim/report.hh"
#include "sm/dispatcher.hh"
#include "sm/records.hh"
#include "sm/sm_core.hh"

namespace cawa
{

class Gpu
{
  public:
    /**
     * @param mem global memory image, pre-loaded with kernel inputs;
     *        results are written back into it
     * @param oracle optional CAWS oracle profile (kept alive by the
     *        caller for the duration of run())
     */
    Gpu(const GpuConfig &cfg, MemoryImage &mem,
        const OracleTable *oracle = nullptr);

    /** Execute @p kernel to completion and return the report. */
    SimReport run(const KernelInfo &kernel);

  private:
    void tick(Cycle now, std::vector<std::unique_ptr<SmCore>> &sms,
              Interconnect &icnt, L2Cache &l2, DramModel &dram,
              BlockDispatcher &dispatcher);

    /**
     * Earliest cycle >= @p now at which any component does more than
     * stall accounting; kNoCycle when no component holds a pending
     * event (the watchdog then decides whether the machine is wedged
     * or merely waiting out the maxCycles timeout).
     */
    Cycle nextEventCycle(
        Cycle now, const std::vector<std::unique_ptr<SmCore>> &sms,
        const Interconnect &icnt, const L2Cache &l2,
        const DramModel &dram,
        const BlockDispatcher &dispatcher) const;

    /**
     * Provable-wedge check: true only when no component of the
     * machine holds any event that could ever change state again --
     * every SM quiescent, interconnect/L2/DRAM idle, and no
     * undispatched block placeable. Exact by construction (a healthy
     * run can never satisfy it), so the watchdog can run by default
     * without risking a false deadlock report.
     */
    bool wedged(const std::vector<std::unique_ptr<SmCore>> &sms,
                const Interconnect &icnt, const L2Cache &l2,
                const DramModel &dram,
                const BlockDispatcher &dispatcher) const;

    /**
     * Classify the wedge (barrier deadlock / lost fill / token leak /
     * generic livelock) and fill @p report's exitStatus and
     * structured diagnostic dump.
     */
    void recordDeadlock(SimReport &report, Cycle now,
                        const std::vector<std::unique_ptr<SmCore>> &sms,
                        const BlockDispatcher &dispatcher) const;

    GpuConfig cfg_;
    MemoryImage &mem_;
    const OracleTable *oracle_;
    bool fastForward_;
    int checkLevel_;    ///< cfg checkLevel after the CAWA_CHECK override
};

/** Convenience: build + run in one call. */
SimReport runKernel(const GpuConfig &cfg, MemoryImage &mem,
                    const KernelInfo &kernel,
                    const OracleTable *oracle = nullptr);

} // namespace cawa

#endif // CAWA_SIM_GPU_HH
