/**
 * @file
 * Top-level GPU: owns the SM cores, interconnect, L2, DRAM and the
 * block dispatcher, and runs a kernel launch to completion.
 *
 * The run is resumable: launch() builds the machine, stepUntil()
 * advances it to a cycle boundary, saveCheckpoint()/restoreCheckpoint()
 * snapshot and rebuild the complete state cycle-exactly, and finish()
 * produces the SimReport. run() composes these for the common case
 * and adds periodic checkpointing, a wall-clock budget and
 * cooperative cancellation (see GpuConfig).
 */

#ifndef CAWA_SIM_GPU_HH
#define CAWA_SIM_GPU_HH

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "isa/kernel.hh"
#include "mem/dram.hh"
#include "mem/interconnect.hh"
#include "mem/l2_cache.hh"
#include "mem/memory_image.hh"
#include "sim/gpu_config.hh"
#include "sim/report.hh"
#include "sim/trace.hh"
#include "sm/dispatcher.hh"
#include "sm/records.hh"
#include "sm/sm_core.hh"

namespace cawa
{

class ForkJoin;

class Gpu
{
  public:
    /**
     * @param mem global memory image, pre-loaded with kernel inputs;
     *        results are written back into it
     * @param oracle optional CAWS oracle profile (kept alive by the
     *        caller for the duration of run())
     */
    Gpu(const GpuConfig &cfg, MemoryImage &mem,
        const OracleTable *oracle = nullptr);
    ~Gpu();

    /**
     * Execute @p kernel to completion and return the report.
     * Equivalent to launch() + runToCompletion() + finish(); may
     * throw SimError of kind Walltime or Cancelled (after writing a
     * final checkpoint when configured) -- see GpuConfig.
     */
    SimReport run(const KernelInfo &kernel);

    // --- Stepwise interface (checkpointing and tests) ---

    /**
     * Validate @p kernel against the configuration and build the
     * machine at cycle 0. @p kernel must outlive the run.
     */
    void launch(const KernelInfo &kernel);

    /**
     * Advance the machine until its cycle reaches @p stop or the run
     * ends (completion, timeout or deadlock -- then true). A paused
     * machine sits at a cycle boundary: checkpointing there and
     * resuming (in this Gpu or a fresh one) yields a final SimReport
     * byte-identical to an uninterrupted run.
     */
    bool stepUntil(Cycle stop);

    /** stepUntil(end) with checkpoint/walltime/cancel handling. */
    void runToCompletion();

    /** Finalize accounting, build the report, tear down the machine. */
    SimReport finish();

    bool launched() const { return machine_ != nullptr; }

    /** Current cycle of the launched machine. */
    Cycle cycle() const;

    /**
     * Snapshot the complete machine state (every SM, caches, DRAM,
     * interconnect, dispatcher, global memory and the run's own
     * clocks) to @p path in the checksummed `cawa-ckpt-v1` format.
     * The write is atomic (tmp + rename). Requires launched().
     */
    void saveCheckpoint(const std::string &path);

    /**
     * Rebuild the machine from a checkpoint written by an identically
     * configured run of the same kernel. Verifies the container
     * checksums plus a configuration signature and kernel/program
     * hash before touching any state, and runs the full invariant
     * audit (level 2) on every SM afterwards; any defect throws
     * SimError (kind Checkpoint). Continue with stepUntil() or
     * runToCompletion(), then finish().
     */
    void restoreCheckpoint(const std::string &path,
                           const KernelInfo &kernel);

    /**
     * Merged, cycle-ordered view of the structured-event rings for
     * the current launch; nullptr unless GpuConfig::trace.enabled.
     * Events live in a per-source TraceSet internally (see
     * sim/trace.hh); this view is rebuilt lazily when new events have
     * arrived. Valid from launch() until the next call, the next
     * launch() or restoreCheckpoint() (finish() keeps it alive so
     * callers can export events after the run).
     */
    TraceBuffer *traceBuffer() const;

  private:
    struct Machine;

    void tick(Machine &m);

    /**
     * Earliest cycle >= now at which any component does more than
     * stall accounting; kNoCycle when no component holds a pending
     * event (the watchdog then decides whether the machine is wedged
     * or merely waiting out the maxCycles timeout).
     */
    Cycle nextEventCycle(const Machine &m) const;

    /**
     * Provable-wedge check: true only when no component of the
     * machine holds any event that could ever change state again --
     * every SM quiescent, interconnect/L2/DRAM idle, and no
     * undispatched block placeable. Exact by construction (a healthy
     * run can never satisfy it), so the watchdog can run by default
     * without risking a false deadlock report.
     */
    bool wedged(const Machine &m) const;

    /**
     * Classify the wedge (barrier deadlock / lost fill / token leak /
     * generic livelock) and fill the report's exitStatus and
     * structured diagnostic dump.
     */
    void recordDeadlock(Machine &m) const;

    /**
     * CRC of every behavior-affecting configuration field (plus
     * whether an oracle drives the scheduler). Stored in checkpoint
     * metadata so a restore under a different configuration is
     * rejected up front instead of silently diverging.
     */
    std::uint32_t configSignature() const;

    /** Throw Walltime/Cancelled (after a final checkpoint) when due. */
    void checkInterrupts();

    GpuConfig cfg_;
    MemoryImage &mem_;
    const OracleTable *oracle_;
    bool fastForward_;
    int checkLevel_;    ///< cfg checkLevel after the CAWA_CHECK override
    int simThreads_;    ///< cfg simThreads after CAWA_SIM_THREADS
    /** Fork-join team for phase 1; null while simThreads_ == 1. */
    std::unique_ptr<ForkJoin> pool_;
    std::unique_ptr<TraceSet> traceSet_;
    /** Lazily rebuilt merge of traceSet_ (see traceBuffer()). */
    mutable std::unique_ptr<TraceBuffer> mergedTrace_;
    mutable std::uint64_t mergedStamp_ = 0;
    std::unique_ptr<Machine> machine_;
    std::chrono::steady_clock::time_point wallStart_;
    /**
     * Wall seconds spent in tick()'s shared memory-system section
     * (icnt/L2/DRAM/fills); accumulates only under
     * GpuConfig::profilePhases (see SimReport::phaseMemSeconds).
     */
    double memPhaseSeconds_ = 0.0;
};

/** Convenience: build + run in one call. */
SimReport runKernel(const GpuConfig &cfg, MemoryImage &mem,
                    const KernelInfo &kernel,
                    const OracleTable *oracle = nullptr);

} // namespace cawa

#endif // CAWA_SIM_GPU_HH
