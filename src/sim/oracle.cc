#include "sim/oracle.hh"

namespace cawa
{

OracleTable
buildOracle(const SimReport &profile)
{
    OracleTable table;
    for (const auto &block : profile.blocks) {
        auto &values = table.values[block.id];
        values.resize(block.warps.size());
        for (std::size_t w = 0; w < block.warps.size(); ++w)
            values[w] =
                static_cast<std::int64_t>(block.warps[w].execTime());
    }
    return table;
}

SimReport
runWithCawsOracle(const GpuConfig &cfg, MemoryImage &mem,
                  MemoryImage &profile_mem, const KernelInfo &kernel,
                  const std::string &resume_path, bool *resumed)
{
    GpuConfig profile_cfg = cfg;
    profile_cfg.scheduler = SchedulerKind::Lrr;
    // The profiling pass must never write to the job's checkpoint
    // path: a profile snapshot there would clobber (and, having a
    // different scheduler, invalidate) the measured pass's resume
    // point. Wall-clock and cancellation settings stay active.
    profile_cfg.checkpointInterval = 0;
    profile_cfg.checkpointPath.clear();
    const SimReport profile = runKernel(profile_cfg, profile_mem, kernel);
    const OracleTable oracle = buildOracle(profile);

    GpuConfig caws_cfg = cfg;
    caws_cfg.scheduler = SchedulerKind::CawsOracle;
    Gpu gpu(caws_cfg, mem, &oracle);
    if (!resume_path.empty()) {
        gpu.restoreCheckpoint(resume_path, kernel);
        if (resumed)
            *resumed = true;
    } else {
        gpu.launch(kernel);
    }
    gpu.runToCompletion();
    return gpu.finish();
}

} // namespace cawa
