#include "sim/oracle.hh"

namespace cawa
{

OracleTable
buildOracle(const SimReport &profile)
{
    OracleTable table;
    for (const auto &block : profile.blocks) {
        auto &values = table.values[block.id];
        values.resize(block.warps.size());
        for (std::size_t w = 0; w < block.warps.size(); ++w)
            values[w] =
                static_cast<std::int64_t>(block.warps[w].execTime());
    }
    return table;
}

SimReport
runWithCawsOracle(const GpuConfig &cfg, MemoryImage &mem,
                  MemoryImage &profile_mem, const KernelInfo &kernel)
{
    GpuConfig profile_cfg = cfg;
    profile_cfg.scheduler = SchedulerKind::Lrr;
    const SimReport profile = runKernel(profile_cfg, profile_mem, kernel);
    const OracleTable oracle = buildOracle(profile);

    GpuConfig caws_cfg = cfg;
    caws_cfg.scheduler = SchedulerKind::CawsOracle;
    return runKernel(caws_cfg, mem, kernel, &oracle);
}

} // namespace cawa
