/**
 * @file
 * Parallel sweep engine: runs a list of independent simulation jobs
 * (one Gpu instance each) on a fixed-size worker pool and returns the
 * reports in submission order regardless of completion order.
 *
 * Every job owns its MemoryImage and Gpu, and the simulator keeps no
 * global mutable state, so a sweep is bit-identical at any thread
 * count: the report stream for a given job list is a pure function of
 * the jobs (including their seeds).
 */

#ifndef CAWA_SIM_SWEEP_HH
#define CAWA_SIM_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/kernel.hh"
#include "mem/memory_image.hh"
#include "sim/gpu_config.hh"
#include "sim/report.hh"

namespace cawa
{

/**
 * One cell of a sweep matrix. build() must be deterministic and
 * self-contained (it may not touch state shared with other jobs): it
 * writes the kernel inputs into the fresh image it is handed and
 * returns the launch descriptor. CawsOracle configs additionally run
 * a profiling pass on a second image built by buildProfile (or
 * build when unset). verify, when present, checks the post-run image
 * against the workload's functional reference.
 */
struct SweepJob
{
    std::string name; ///< label used in reports and output file names
    GpuConfig cfg;
    std::function<KernelInfo(MemoryImage &)> build;
    std::function<KernelInfo(MemoryImage &)> buildProfile;
    std::function<bool(const MemoryImage &)> verify;

    /**
     * When non-empty, try to restore this checkpoint and continue
     * from it instead of running from cycle 0. An unusable file
     * (corrupt, truncated, written under a different config or
     * kernel) is not fatal: the job falls back to a from-scratch run
     * on freshly rebuilt inputs, which is always byte-equivalent.
     */
    std::string resumeFromCheckpoint;
};

struct SweepResult
{
    SimReport report;
    bool verified = true;  ///< false when the job's verify() failed
    std::string error;     ///< non-empty when the job threw
    int attempts = 0;      ///< executions consumed (>= 1 once run)
    bool resumed = false;  ///< continued from a restored checkpoint

    /**
     * Failure class for errors with first-class harness handling:
     * "walltime" (the job's wall-clock budget ran out) or
     * "cancelled" (cooperative shutdown). Empty for ordinary errors.
     * These outcomes are never retried -- re-running would just burn
     * the same budget again -- and are journaled under this status.
     */
    std::string failureReason;

    bool ok() const
    {
        return error.empty() && verified &&
               report.exitStatus == ExitStatus::Completed;
    }
};

/**
 * Execute one job in the calling thread, crash-isolated: the config
 * is validated before any Gpu is built, sim_assert failures raise
 * SimError instead of aborting the process (throw-mode is forced on
 * for the job's duration), and any exception is captured into
 * SweepResult::error. A job that throws is retried until it succeeds
 * or @p max_attempts executions are used up; deterministic bad
 * outcomes (timeout, deadlock, failed verification) are not retried.
 */
SweepResult runSweepJob(const SweepJob &job, int max_attempts = 1);

class SweepEngine
{
  public:
    /** @param threads worker count; <= 0 means hardware concurrency. */
    explicit SweepEngine(int threads = 0);

    int threads() const { return threads_; }

    /**
     * Called (under an engine-internal lock, so it may touch shared
     * state freely) as each job finishes, in completion order.
     */
    using JobDone =
        std::function<void(std::size_t index, const SweepResult &)>;

    /**
     * Run every job and return results indexed like @p jobs. Jobs
     * execute concurrently on min(threads, jobs.size()) workers; a
     * single-thread engine (or a single job) runs inline. A crashing
     * job never takes the sweep down: its error is reported in its
     * result slot and every other job still runs.
     *
     * @param on_done optional per-job completion hook (journaling)
     * @param max_attempts executions allowed per throwing job
     */
    std::vector<SweepResult> run(const std::vector<SweepJob> &jobs,
                                 const JobDone &on_done = nullptr,
                                 int max_attempts = 1) const;

  private:
    int threads_;
};

/**
 * Worker count requested via CAWA_BENCH_THREADS: 0 when the variable
 * is unset or invalid (let the engine pick its default), otherwise
 * the validated positive value. Warns on stderr for garbage input.
 */
int sweepThreadsFromEnv();

} // namespace cawa

#endif // CAWA_SIM_SWEEP_HH
