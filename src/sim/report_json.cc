#include "sim/report_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cawa
{

namespace
{

/**
 * Streaming writer with a fixed, deterministic layout: 2-space
 * indentation in pretty mode, no whitespace otherwise, keys emitted
 * in call order.
 */
class Writer
{
  public:
    explicit Writer(bool pretty) : pretty_(pretty) {}

    void beginObject() { open('{'); }
    void endObject() { close('}'); }
    void beginArray() { open('['); }
    void endArray() { close(']'); }

    void
    key(const std::string &k)
    {
        element();
        appendString(k);
        out_ += pretty_ ? ": " : ":";
        pending_key_ = true;
    }

    void value(std::uint64_t v) { element(); out_ += std::to_string(v); }
    void value(std::int64_t v) { element(); out_ += std::to_string(v); }

    void
    value(double v)
    {
        element();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }

    void
    value(bool v)
    {
        element();
        out_ += v ? "true" : "false";
    }

    void
    value(const std::string &v)
    {
        element();
        appendString(v);
    }

    std::string take() { return std::move(out_); }

  private:
    void
    element()
    {
        if (pending_key_) {
            pending_key_ = false;
            return;
        }
        if (!first_.empty()) {
            if (!first_.back())
                out_ += ',';
            first_.back() = false;
        }
        newlineIndent(first_.size());
    }

    void
    open(char c)
    {
        element();
        out_ += c;
        first_.push_back(true);
    }

    void
    close(char c)
    {
        const bool was_empty = first_.back();
        first_.pop_back();
        if (!was_empty)
            newlineIndent(first_.size());
        out_ += c;
    }

    void
    newlineIndent(std::size_t depth)
    {
        if (!pretty_ || depth == 0)
            return;
        out_ += '\n';
        out_.append(2 * depth, ' ');
    }

    void
    appendString(const std::string &s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
              case '"': out_ += "\\\""; break;
              case '\\': out_ += "\\\\"; break;
              case '\n': out_ += "\\n"; break;
              case '\r': out_ += "\\r"; break;
              case '\t': out_ += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    bool pretty_;
    bool pending_key_ = false;
    std::string out_;
    std::vector<bool> first_; ///< per open container: no element yet
};

void
writeCacheStats(Writer &w, const CacheStats &s)
{
    w.beginObject();
    w.key("accesses"); w.value(s.accesses);
    w.key("hits"); w.value(s.hits);
    w.key("misses"); w.value(s.misses);
    w.key("mshrMerges"); w.value(s.mshrMerges);
    w.key("mshrRejects"); w.value(s.mshrRejects);
    w.key("evictions"); w.value(s.evictions);
    w.key("criticalAccesses"); w.value(s.criticalAccesses);
    w.key("criticalHits"); w.value(s.criticalHits);
    w.key("nonCriticalAccesses"); w.value(s.nonCriticalAccesses);
    w.key("nonCriticalHits"); w.value(s.nonCriticalHits);
    w.key("zeroReuseEvictions"); w.value(s.zeroReuseEvictions);
    w.key("zeroReuseCriticalEvictions");
    w.value(s.zeroReuseCriticalEvictions);
    w.key("criticalFills"); w.value(s.criticalFills);
    w.key("reuseDistanceHist");
    w.beginArray();
    for (std::uint64_t v : s.reuseDistanceHist)
        w.value(v);
    w.endArray();
    w.key("criticalReuseDistanceHist");
    w.beginArray();
    for (std::uint64_t v : s.criticalReuseDistanceHist)
        w.value(v);
    w.endArray();
    w.key("perPc");
    w.beginObject();
    for (const auto &[pc, st] : s.perPc) {
        w.key(std::to_string(pc));
        w.beginObject();
        w.key("fills"); w.value(st.fills);
        w.key("hits"); w.value(st.hits);
        w.key("zeroReuseEvictions"); w.value(st.zeroReuseEvictions);
        w.key("reusedEvictions"); w.value(st.reusedEvictions);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
writeWarpRecord(Writer &w, const WarpRecord &r)
{
    w.beginObject();
    w.key("warpInBlock"); w.value(static_cast<std::int64_t>(r.warpInBlock));
    w.key("startCycle"); w.value(r.startCycle);
    w.key("endCycle"); w.value(r.endCycle);
    w.key("instructions"); w.value(r.instructions);
    w.key("memStallCycles"); w.value(r.memStallCycles);
    w.key("aluStallCycles"); w.value(r.aluStallCycles);
    w.key("structStallCycles"); w.value(r.structStallCycles);
    w.key("schedWaitCycles"); w.value(r.schedWaitCycles);
    w.key("barrierCycles"); w.value(r.barrierCycles);
    w.key("finishedWaitCycles"); w.value(r.finishedWaitCycles);
    w.key("slowSamples"); w.value(r.slowSamples);
    w.endObject();
}

void
writeBlockRecord(Writer &w, const BlockRecord &b)
{
    w.beginObject();
    w.key("id"); w.value(static_cast<std::uint64_t>(b.id));
    w.key("smId"); w.value(static_cast<std::int64_t>(b.smId));
    w.key("startCycle"); w.value(b.startCycle);
    w.key("endCycle"); w.value(b.endCycle);
    w.key("cplSamples"); w.value(b.cplSamples);
    w.key("warps");
    w.beginArray();
    for (const auto &warp : b.warps)
        writeWarpRecord(w, warp);
    w.endArray();
    w.endObject();
}

/**
 * Registry entries equivalent to a report whose components never
 * registered (hand-built or legacy-parsed reports): the typed fields
 * mapped onto their well-known stats names, so every v3 document
 * carries a "stats" object whichever way the report was produced.
 */
StatsRegistry
defaultReportStats(const SimReport &r)
{
    StatsRegistry reg;
    reg.counter("sim.cycles", r.cycles);
    reg.counter("sim.instructions", r.instructions);
    r.l1.registerStats(reg, "l1");
    r.l2.registerStats(reg, "l2");
    reg.counter("dram.reads", r.dramReads);
    reg.counter("dram.writes", r.dramWrites);
    reg.counter("icnt.messages", r.icntMessages);
    return reg;
}

void
writeStatsRegistry(Writer &w, const StatsRegistry &reg)
{
    w.beginObject();
    for (const StatEntry &e : reg.entries()) {
        w.key(e.name);
        if (e.kind == StatKind::Counter) {
            w.value(e.value);
        } else {
            w.beginArray();
            for (std::uint64_t v : e.values)
                w.value(v);
            w.endArray();
        }
    }
    w.endObject();
}

void
writeReport(Writer &w, const SimReport &r, const JsonWriteOptions &opt)
{
    if (opt.schemaVersion != 2 && opt.schemaVersion != 3)
        throw std::runtime_error(
            "json: unsupported write schemaVersion " +
            std::to_string(opt.schemaVersion) + " (expected 2 or 3)");
    const bool v3 = opt.schemaVersion == 3;
    w.beginObject();
    w.key("schema");
    w.value(std::string(v3 ? "cawa-simreport-v3"
                           : "cawa-simreport-v2"));
    w.key("kernel"); w.value(r.kernelName);
    w.key("scheduler"); w.value(r.schedulerName);
    w.key("cachePolicy"); w.value(r.cachePolicyName);
    w.key("timedOut"); w.value(r.timedOut);
    w.key("exitStatus");
    w.value(std::string(exitStatusName(r.exitStatus)));
    // Only emitted when non-empty so serialize->parse->serialize stays
    // a fixed point (an absent key parses back to an empty string).
    if (!r.diagnostic.empty()) {
        w.key("diagnostic"); w.value(r.diagnostic);
    }
    if (v3) {
        w.key("stats");
        if (r.stats.empty())
            writeStatsRegistry(w, defaultReportStats(r));
        else
            writeStatsRegistry(w, r.stats);
    } else {
        w.key("cycles"); w.value(r.cycles);
        w.key("instructions"); w.value(r.instructions);
        w.key("dramReads"); w.value(r.dramReads);
        w.key("dramWrites"); w.value(r.dramWrites);
        w.key("icntMessages"); w.value(r.icntMessages);
        w.key("l1");
        writeCacheStats(w, r.l1);
        w.key("l2");
        writeCacheStats(w, r.l2);
    }
    if (opt.includeDerived) {
        w.key("derived");
        w.beginObject();
        w.key("ipc"); w.value(r.ipc());
        w.key("l1Mpki"); w.value(r.mpki());
        w.key("l1HitRate"); w.value(r.l1.hitRate());
        w.key("l2HitRate"); w.value(r.l2.hitRate());
        w.key("avgDisparity"); w.value(r.avgDisparity());
        w.key("maxDisparity"); w.value(r.maxDisparity());
        w.key("cplAccuracy"); w.value(r.cplAccuracy());
        w.key("memStallFraction"); w.value(r.memStallFraction());
        w.key("schedWaitFraction"); w.value(r.schedWaitFraction());
        w.endObject();
    }
    if (opt.includeBlocks) {
        w.key("blocks");
        w.beginArray();
        for (const auto &block : r.blocks)
            writeBlockRecord(w, block);
        w.endArray();
    }
    if (opt.includeTrace) {
        w.key("trace");
        w.beginArray();
        for (const auto &sample : r.trace) {
            w.beginObject();
            w.key("cycle"); w.value(sample.cycle);
            w.key("criticality");
            w.beginArray();
            for (std::int64_t c : sample.criticality)
                w.value(c);
            w.endArray();
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

} // namespace

std::string
toJson(const CacheStats &stats, const JsonWriteOptions &opt)
{
    Writer w(opt.pretty);
    writeCacheStats(w, stats);
    return w.take();
}

std::string
toJson(const SimReport &report, const JsonWriteOptions &opt)
{
    Writer w(opt.pretty);
    writeReport(w, report, opt);
    return w.take();
}

std::string
failureToJson(const std::string &job, const std::string &error,
              int attempts, const JsonWriteOptions &opt,
              const std::string &reason)
{
    Writer w(opt.pretty);
    w.beginObject();
    w.key("schema"); w.value(std::string("cawa-sweepfailure-v1"));
    w.key("job"); w.value(job);
    w.key("error"); w.value(error);
    if (!reason.empty()) {
        w.key("reason"); w.value(reason);
    }
    w.key("attempts"); w.value(static_cast<std::int64_t>(attempts));
    w.endObject();
    return w.take();
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

void
JsonValue::typeFail(const char *expected) const
{
    throw std::runtime_error(
        std::string("json: not ") + expected + " at offset " +
        std::to_string(srcOffset_) + " near '" + excerpt_ + "'");
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        typeFail("a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        typeFail("a number");
    return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number)
        typeFail("a number");
    return std::strtoull(scalar_.c_str(), nullptr, 10);
}

std::int64_t
JsonValue::asI64() const
{
    if (kind_ != Kind::Number)
        typeFail("a number");
    return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        typeFail("a string");
    return scalar_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        typeFail("an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        typeFail("an object");
    return members_;
}

bool
JsonValue::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &[k, v] : members_)
        if (k == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    for (const auto &[k, v] : members()) {
        if (k == key)
            return v;
    }
    throw std::runtime_error("json: missing key '" + key +
                             "' in object at offset " +
                             std::to_string(srcOffset_) + " near '" +
                             excerpt_ + "'");
}

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + " near '" +
                                 excerptAt(pos_) + "': " + why);
    }

    /** ~20 source characters starting at @p at, for error context. */
    std::string
    excerptAt(std::size_t at) const
    {
        static constexpr std::size_t kExcerptLen = 20;
        if (at >= text_.size())
            return "<end of input>";
        return text_.substr(at, kExcerptLen);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const std::size_t start = pos_;
        JsonValue v;
        switch (peek()) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"': v = parseString(); break;
          case 't': case 'f': v = parseBool(); break;
          case 'n': v = parseNull(); break;
          default: v = parseNumber(); break;
        }
        v.srcOffset_ = start;
        v.excerpt_ = excerptAt(start);
        return v;
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (consumeIf('}'))
            return v;
        for (;;) {
            skipWs();
            JsonValue key = parseString();
            skipWs();
            expect(':');
            v.members_.emplace_back(key.scalar_, parseValue());
            skipWs();
            if (consumeIf('}'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (consumeIf(']'))
            return v;
        for (;;) {
            v.items_.push_back(parseValue());
            skipWs();
            if (consumeIf(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        expect('"');
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"': v.scalar_ += '"'; break;
                  case '\\': v.scalar_ += '\\'; break;
                  case '/': v.scalar_ += '/'; break;
                  case 'n': v.scalar_ += '\n'; break;
                  case 'r': v.scalar_ += '\r'; break;
                  case 't': v.scalar_ += '\t'; break;
                  case 'b': v.scalar_ += '\b'; break;
                  case 'f': v.scalar_ += '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            fail("bad \\u escape");
                    }
                    // The writer only emits \u00xx control codes;
                    // clamp anything wider to one byte.
                    v.scalar_ += static_cast<char>(code & 0xff);
                    break;
                  }
                  default: fail("bad escape");
                }
            } else {
                v.scalar_ += c;
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.bool_ = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.bool_ = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        if (consumeIf('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("bad number");
        v.scalar_ = text_.substr(start, pos_ - start);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

CacheStats
cacheStatsFromJson(const JsonValue &v)
{
    CacheStats s;
    s.accesses = v.at("accesses").asU64();
    s.hits = v.at("hits").asU64();
    s.misses = v.at("misses").asU64();
    s.mshrMerges = v.at("mshrMerges").asU64();
    s.mshrRejects = v.at("mshrRejects").asU64();
    s.evictions = v.at("evictions").asU64();
    s.criticalAccesses = v.at("criticalAccesses").asU64();
    s.criticalHits = v.at("criticalHits").asU64();
    s.nonCriticalAccesses = v.at("nonCriticalAccesses").asU64();
    s.nonCriticalHits = v.at("nonCriticalHits").asU64();
    s.zeroReuseEvictions = v.at("zeroReuseEvictions").asU64();
    s.zeroReuseCriticalEvictions =
        v.at("zeroReuseCriticalEvictions").asU64();
    s.criticalFills = v.at("criticalFills").asU64();
    const auto &hist = v.at("reuseDistanceHist").items();
    const auto &crit_hist = v.at("criticalReuseDistanceHist").items();
    if (hist.size() != s.reuseDistanceHist.size() ||
        crit_hist.size() != s.criticalReuseDistanceHist.size())
        throw std::runtime_error("json: bad reuse histogram size");
    for (std::size_t i = 0; i < hist.size(); ++i) {
        s.reuseDistanceHist[i] = hist[i].asU64();
        s.criticalReuseDistanceHist[i] = crit_hist[i].asU64();
    }
    for (const auto &[pc_text, st] : v.at("perPc").members()) {
        PcReuseStats pc_stats;
        pc_stats.fills = st.at("fills").asU64();
        pc_stats.hits = st.at("hits").asU64();
        pc_stats.zeroReuseEvictions = st.at("zeroReuseEvictions").asU64();
        pc_stats.reusedEvictions = st.at("reusedEvictions").asU64();
        s.perPc[static_cast<std::uint32_t>(
            std::strtoul(pc_text.c_str(), nullptr, 10))] = pc_stats;
    }
    return s;
}

namespace
{

WarpRecord
warpFromJson(const JsonValue &v)
{
    WarpRecord r;
    r.warpInBlock = static_cast<int>(v.at("warpInBlock").asI64());
    r.startCycle = v.at("startCycle").asU64();
    r.endCycle = v.at("endCycle").asU64();
    r.instructions = v.at("instructions").asU64();
    r.memStallCycles = v.at("memStallCycles").asU64();
    r.aluStallCycles = v.at("aluStallCycles").asU64();
    r.structStallCycles = v.at("structStallCycles").asU64();
    r.schedWaitCycles = v.at("schedWaitCycles").asU64();
    r.barrierCycles = v.at("barrierCycles").asU64();
    r.finishedWaitCycles = v.at("finishedWaitCycles").asU64();
    r.slowSamples = v.at("slowSamples").asU64();
    return r;
}

BlockRecord
blockFromJson(const JsonValue &v)
{
    BlockRecord b;
    b.id = static_cast<BlockId>(v.at("id").asU64());
    b.smId = static_cast<int>(v.at("smId").asI64());
    b.startCycle = v.at("startCycle").asU64();
    b.endCycle = v.at("endCycle").asU64();
    b.cplSamples = v.at("cplSamples").asU64();
    for (const auto &warp : v.at("warps").items())
        b.warps.push_back(warpFromJson(warp));
    return b;
}

} // namespace

namespace
{

/**
 * v3: rebuild the registry from the "stats" object (numbers are
 * counters, arrays are histograms, order preserved so a re-serialize
 * is byte-exact), then project the well-known entries onto the
 * report's typed fields.
 */
void
statsFromJson(const JsonValue &v, SimReport &r)
{
    for (const auto &[name, value] : v.members()) {
        if (value.kind() == JsonValue::Kind::Array) {
            std::vector<std::uint64_t> buckets;
            for (const auto &item : value.items())
                buckets.push_back(item.asU64());
            r.stats.histogram(name, std::move(buckets));
        } else {
            r.stats.counter(name, value.asU64());
        }
    }
    r.cycles = r.stats.counterOr("sim.cycles");
    r.instructions = r.stats.counterOr("sim.instructions");
    r.dramReads = r.stats.counterOr("dram.reads");
    r.dramWrites = r.stats.counterOr("dram.writes");
    if (r.stats.find("icnt.messages"))
        r.icntMessages = r.stats.counterOr("icnt.messages");
    else
        r.icntMessages = r.stats.counterOr("icnt.messagesToL2") +
                         r.stats.counterOr("icnt.messagesToSm");
    for (const StatEntry &e : r.stats.entries()) {
        if (e.name.rfind("l1.", 0) == 0)
            r.l1.applyStat(e.name.substr(3), e);
        else if (e.name.rfind("l2.", 0) == 0)
            r.l2.applyStat(e.name.substr(3), e);
    }
}

} // namespace

SimReport
reportFromJson(const JsonValue &v)
{
    const std::string &schema = v.at("schema").asString();
    const bool v1 = schema == "cawa-simreport-v1";
    const bool v2 = schema == "cawa-simreport-v2";
    if (!v1 && !v2 && schema != "cawa-simreport-v3")
        throw std::runtime_error("json: unknown report schema '" +
                                 schema + "' (expected cawa-simreport-"
                                 "v1, -v2 or -v3)");
    SimReport r;
    r.kernelName = v.at("kernel").asString();
    r.schedulerName = v.at("scheduler").asString();
    r.cachePolicyName = v.at("cachePolicy").asString();
    r.timedOut = v.at("timedOut").asBool();
    if (v1) {
        // v1 predates exit statuses: a timeout is the only abnormal
        // end the old schema could record.
        r.exitStatus = r.timedOut ? ExitStatus::Timeout
                                  : ExitStatus::Completed;
    } else {
        const std::string &status = v.at("exitStatus").asString();
        if (!exitStatusFromName(status, r.exitStatus))
            throw std::runtime_error("json: unknown exitStatus '" +
                                     status + "'");
        if (v.has("diagnostic"))
            r.diagnostic = v.at("diagnostic").asString();
    }
    if (v1 || v2) {
        r.cycles = v.at("cycles").asU64();
        r.instructions = v.at("instructions").asU64();
        r.dramReads = v.at("dramReads").asU64();
        r.dramWrites = v.at("dramWrites").asU64();
        r.icntMessages = v.at("icntMessages").asU64();
        r.l1 = cacheStatsFromJson(v.at("l1"));
        r.l2 = cacheStatsFromJson(v.at("l2"));
    } else {
        statsFromJson(v.at("stats"), r);
    }
    if (v.has("blocks")) {
        for (const auto &block : v.at("blocks").items())
            r.blocks.push_back(blockFromJson(block));
    }
    if (v.has("trace")) {
        for (const auto &sample : v.at("trace").items()) {
            TraceSample s;
            s.cycle = sample.at("cycle").asU64();
            for (const auto &c : sample.at("criticality").items())
                s.criticality.push_back(c.asI64());
            r.trace.push_back(s);
        }
    }
    return r;
}

SimReport
reportFromJson(const std::string &text)
{
    return reportFromJson(parseJson(text));
}

} // namespace cawa
